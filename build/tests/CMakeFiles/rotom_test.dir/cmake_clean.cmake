file(REMOVE_RECURSE
  "CMakeFiles/rotom_test.dir/rotom_test.cc.o"
  "CMakeFiles/rotom_test.dir/rotom_test.cc.o.d"
  "rotom_test"
  "rotom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
