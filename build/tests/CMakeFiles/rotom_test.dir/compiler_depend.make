# Empty compiler generated dependencies file for rotom_test.
# This may be replaced when dependencies are built.
