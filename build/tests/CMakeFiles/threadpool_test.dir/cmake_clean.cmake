file(REMOVE_RECURSE
  "CMakeFiles/threadpool_test.dir/threadpool_test.cc.o"
  "CMakeFiles/threadpool_test.dir/threadpool_test.cc.o.d"
  "threadpool_test"
  "threadpool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threadpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
