# Empty dependencies file for threadpool_test.
# This may be replaced when dependencies are built.
