# Empty dependencies file for layers_test.
# This may be replaced when dependencies are built.
