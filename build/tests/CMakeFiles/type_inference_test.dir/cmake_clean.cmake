file(REMOVE_RECURSE
  "CMakeFiles/type_inference_test.dir/type_inference_test.cc.o"
  "CMakeFiles/type_inference_test.dir/type_inference_test.cc.o.d"
  "type_inference_test"
  "type_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
