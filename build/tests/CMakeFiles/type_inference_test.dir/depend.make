# Empty dependencies file for type_inference_test.
# This may be replaced when dependencies are built.
