# Empty compiler generated dependencies file for prepare_test.
# This may be replaced when dependencies are built.
