file(REMOVE_RECURSE
  "CMakeFiles/prepare_test.dir/prepare_test.cc.o"
  "CMakeFiles/prepare_test.dir/prepare_test.cc.o.d"
  "prepare_test"
  "prepare_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
