file(REMOVE_RECURSE
  "CMakeFiles/autograd_fuzz_test.dir/autograd_fuzz_test.cc.o"
  "CMakeFiles/autograd_fuzz_test.dir/autograd_fuzz_test.cc.o.d"
  "autograd_fuzz_test"
  "autograd_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
