# Empty compiler generated dependencies file for autograd_fuzz_test.
# This may be replaced when dependencies are built.
