file(REMOVE_RECURSE
  "CMakeFiles/bench_common_test.dir/bench_common_test.cc.o"
  "CMakeFiles/bench_common_test.dir/bench_common_test.cc.o.d"
  "bench_common_test"
  "bench_common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
