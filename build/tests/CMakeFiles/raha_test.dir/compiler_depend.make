# Empty compiler generated dependencies file for raha_test.
# This may be replaced when dependencies are built.
