
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/raha_test.cc" "tests/CMakeFiles/raha_test.dir/raha_test.cc.o" "gcc" "tests/CMakeFiles/raha_test.dir/raha_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/birnn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/birnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/birnn_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/rotom/CMakeFiles/birnn_rotom.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/birnn_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/raha/CMakeFiles/birnn_raha.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/birnn_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/birnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/birnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/birnn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/birnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
