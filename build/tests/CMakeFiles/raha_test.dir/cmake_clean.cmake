file(REMOVE_RECURSE
  "CMakeFiles/raha_test.dir/raha_test.cc.o"
  "CMakeFiles/raha_test.dir/raha_test.cc.o.d"
  "raha_test"
  "raha_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
