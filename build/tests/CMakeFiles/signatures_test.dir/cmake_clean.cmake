file(REMOVE_RECURSE
  "CMakeFiles/signatures_test.dir/signatures_test.cc.o"
  "CMakeFiles/signatures_test.dir/signatures_test.cc.o.d"
  "signatures_test"
  "signatures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signatures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
