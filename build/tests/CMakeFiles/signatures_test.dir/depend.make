# Empty dependencies file for signatures_test.
# This may be replaced when dependencies are built.
