file(REMOVE_RECURSE
  "CMakeFiles/recurrent_test.dir/recurrent_test.cc.o"
  "CMakeFiles/recurrent_test.dir/recurrent_test.cc.o.d"
  "recurrent_test"
  "recurrent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
