# Empty compiler generated dependencies file for recurrent_test.
# This may be replaced when dependencies are built.
