# Empty dependencies file for bench_ablation_samplers.
# This may be replaced when dependencies are built.
