file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_samplers.dir/bench_ablation_samplers.cc.o"
  "CMakeFiles/bench_ablation_samplers.dir/bench_ablation_samplers.cc.o.d"
  "bench_ablation_samplers"
  "bench_ablation_samplers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_samplers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
