# Empty compiler generated dependencies file for birnn_bench_common.
# This may be replaced when dependencies are built.
