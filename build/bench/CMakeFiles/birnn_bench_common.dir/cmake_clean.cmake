file(REMOVE_RECURSE
  "CMakeFiles/birnn_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/birnn_bench_common.dir/bench_common.cc.o.d"
  "libbirnn_bench_common.a"
  "libbirnn_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
