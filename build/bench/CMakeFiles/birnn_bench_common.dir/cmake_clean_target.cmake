file(REMOVE_RECURSE
  "libbirnn_bench_common.a"
)
