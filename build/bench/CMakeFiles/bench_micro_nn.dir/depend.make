# Empty dependencies file for bench_micro_nn.
# This may be replaced when dependencies are built.
