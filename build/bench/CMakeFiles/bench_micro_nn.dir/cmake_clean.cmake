file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_nn.dir/bench_micro_nn.cc.o"
  "CMakeFiles/bench_micro_nn.dir/bench_micro_nn.cc.o.d"
  "bench_micro_nn"
  "bench_micro_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
