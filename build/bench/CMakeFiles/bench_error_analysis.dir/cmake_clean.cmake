file(REMOVE_RECURSE
  "CMakeFiles/bench_error_analysis.dir/bench_error_analysis.cc.o"
  "CMakeFiles/bench_error_analysis.dir/bench_error_analysis.cc.o.d"
  "bench_error_analysis"
  "bench_error_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
