# Empty compiler generated dependencies file for bench_error_analysis.
# This may be replaced when dependencies are built.
