file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_truncation.dir/bench_ablation_truncation.cc.o"
  "CMakeFiles/bench_ablation_truncation.dir/bench_ablation_truncation.cc.o.d"
  "bench_ablation_truncation"
  "bench_ablation_truncation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
