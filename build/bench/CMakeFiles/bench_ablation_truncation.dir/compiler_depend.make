# Empty compiler generated dependencies file for bench_ablation_truncation.
# This may be replaced when dependencies are built.
