# Empty compiler generated dependencies file for bench_fig6_test_accuracy.
# This may be replaced when dependencies are built.
