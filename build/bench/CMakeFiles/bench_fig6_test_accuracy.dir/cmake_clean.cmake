file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_test_accuracy.dir/bench_fig6_test_accuracy.cc.o"
  "CMakeFiles/bench_fig6_test_accuracy.dir/bench_fig6_test_accuracy.cc.o.d"
  "bench_fig6_test_accuracy"
  "bench_fig6_test_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_test_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
