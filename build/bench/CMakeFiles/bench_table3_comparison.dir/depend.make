# Empty dependencies file for bench_table3_comparison.
# This may be replaced when dependencies are built.
