file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_train_test.dir/bench_fig7_train_test.cc.o"
  "CMakeFiles/bench_fig7_train_test.dir/bench_fig7_train_test.cc.o.d"
  "bench_fig7_train_test"
  "bench_fig7_train_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
