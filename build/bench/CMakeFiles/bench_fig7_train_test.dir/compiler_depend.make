# Empty compiler generated dependencies file for bench_fig7_train_test.
# This may be replaced when dependencies are built.
