# Empty compiler generated dependencies file for bench_table5_train_time.
# This may be replaced when dependencies are built.
