# Empty compiler generated dependencies file for bench_repair.
# This may be replaced when dependencies are built.
