file(REMOVE_RECURSE
  "CMakeFiles/bench_repair.dir/bench_repair.cc.o"
  "CMakeFiles/bench_repair.dir/bench_repair.cc.o.d"
  "bench_repair"
  "bench_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
