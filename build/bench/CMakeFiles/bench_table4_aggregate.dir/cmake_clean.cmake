file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_aggregate.dir/bench_table4_aggregate.cc.o"
  "CMakeFiles/bench_table4_aggregate.dir/bench_table4_aggregate.cc.o.d"
  "bench_table4_aggregate"
  "bench_table4_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
