# Empty dependencies file for bench_table4_aggregate.
# This may be replaced when dependencies are built.
