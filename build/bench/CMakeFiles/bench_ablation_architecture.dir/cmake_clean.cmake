file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_architecture.dir/bench_ablation_architecture.cc.o"
  "CMakeFiles/bench_ablation_architecture.dir/bench_ablation_architecture.cc.o.d"
  "bench_ablation_architecture"
  "bench_ablation_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
