# Empty dependencies file for bench_ablation_architecture.
# This may be replaced when dependencies are built.
