file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cell_type.dir/bench_ablation_cell_type.cc.o"
  "CMakeFiles/bench_ablation_cell_type.dir/bench_ablation_cell_type.cc.o.d"
  "bench_ablation_cell_type"
  "bench_ablation_cell_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cell_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
