# Empty compiler generated dependencies file for bench_ablation_cell_type.
# This may be replaced when dependencies are built.
