file(REMOVE_RECURSE
  "CMakeFiles/compare_baselines.dir/compare_baselines.cpp.o"
  "CMakeFiles/compare_baselines.dir/compare_baselines.cpp.o.d"
  "compare_baselines"
  "compare_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
