# Empty compiler generated dependencies file for compare_baselines.
# This may be replaced when dependencies are built.
