file(REMOVE_RECURSE
  "CMakeFiles/clean_csv.dir/clean_csv.cpp.o"
  "CMakeFiles/clean_csv.dir/clean_csv.cpp.o.d"
  "clean_csv"
  "clean_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clean_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
