# Empty compiler generated dependencies file for clean_csv.
# This may be replaced when dependencies are built.
