# Empty compiler generated dependencies file for detect_and_repair.
# This may be replaced when dependencies are built.
