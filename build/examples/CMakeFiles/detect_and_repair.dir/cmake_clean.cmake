file(REMOVE_RECURSE
  "CMakeFiles/detect_and_repair.dir/detect_and_repair.cpp.o"
  "CMakeFiles/detect_and_repair.dir/detect_and_repair.cpp.o.d"
  "detect_and_repair"
  "detect_and_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_and_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
