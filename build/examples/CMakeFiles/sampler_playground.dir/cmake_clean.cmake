file(REMOVE_RECURSE
  "CMakeFiles/sampler_playground.dir/sampler_playground.cpp.o"
  "CMakeFiles/sampler_playground.dir/sampler_playground.cpp.o.d"
  "sampler_playground"
  "sampler_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampler_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
