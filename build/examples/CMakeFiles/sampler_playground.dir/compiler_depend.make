# Empty compiler generated dependencies file for sampler_playground.
# This may be replaced when dependencies are built.
