file(REMOVE_RECURSE
  "CMakeFiles/birnn_core.dir/detector.cc.o"
  "CMakeFiles/birnn_core.dir/detector.cc.o.d"
  "CMakeFiles/birnn_core.dir/model.cc.o"
  "CMakeFiles/birnn_core.dir/model.cc.o.d"
  "CMakeFiles/birnn_core.dir/trainer.cc.o"
  "CMakeFiles/birnn_core.dir/trainer.cc.o.d"
  "libbirnn_core.a"
  "libbirnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
