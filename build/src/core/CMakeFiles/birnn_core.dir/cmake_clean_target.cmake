file(REMOVE_RECURSE
  "libbirnn_core.a"
)
