
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/birnn_core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/birnn_core.dir/detector.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/birnn_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/birnn_core.dir/model.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/birnn_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/birnn_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/birnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/birnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/birnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/birnn_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/raha/CMakeFiles/birnn_raha.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/birnn_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
