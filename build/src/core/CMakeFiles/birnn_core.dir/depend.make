# Empty dependencies file for birnn_core.
# This may be replaced when dependencies are built.
