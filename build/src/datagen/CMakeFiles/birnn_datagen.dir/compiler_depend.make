# Empty compiler generated dependencies file for birnn_datagen.
# This may be replaced when dependencies are built.
