
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/datasets.cc" "src/datagen/CMakeFiles/birnn_datagen.dir/datasets.cc.o" "gcc" "src/datagen/CMakeFiles/birnn_datagen.dir/datasets.cc.o.d"
  "/root/repo/src/datagen/injector.cc" "src/datagen/CMakeFiles/birnn_datagen.dir/injector.cc.o" "gcc" "src/datagen/CMakeFiles/birnn_datagen.dir/injector.cc.o.d"
  "/root/repo/src/datagen/loader.cc" "src/datagen/CMakeFiles/birnn_datagen.dir/loader.cc.o" "gcc" "src/datagen/CMakeFiles/birnn_datagen.dir/loader.cc.o.d"
  "/root/repo/src/datagen/stats.cc" "src/datagen/CMakeFiles/birnn_datagen.dir/stats.cc.o" "gcc" "src/datagen/CMakeFiles/birnn_datagen.dir/stats.cc.o.d"
  "/root/repo/src/datagen/vocab.cc" "src/datagen/CMakeFiles/birnn_datagen.dir/vocab.cc.o" "gcc" "src/datagen/CMakeFiles/birnn_datagen.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/birnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/birnn_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
