file(REMOVE_RECURSE
  "CMakeFiles/birnn_datagen.dir/datasets.cc.o"
  "CMakeFiles/birnn_datagen.dir/datasets.cc.o.d"
  "CMakeFiles/birnn_datagen.dir/injector.cc.o"
  "CMakeFiles/birnn_datagen.dir/injector.cc.o.d"
  "CMakeFiles/birnn_datagen.dir/loader.cc.o"
  "CMakeFiles/birnn_datagen.dir/loader.cc.o.d"
  "CMakeFiles/birnn_datagen.dir/stats.cc.o"
  "CMakeFiles/birnn_datagen.dir/stats.cc.o.d"
  "CMakeFiles/birnn_datagen.dir/vocab.cc.o"
  "CMakeFiles/birnn_datagen.dir/vocab.cc.o.d"
  "libbirnn_datagen.a"
  "libbirnn_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
