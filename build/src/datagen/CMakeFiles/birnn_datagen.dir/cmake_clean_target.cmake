file(REMOVE_RECURSE
  "libbirnn_datagen.a"
)
