file(REMOVE_RECURSE
  "CMakeFiles/birnn_sampling.dir/sampler.cc.o"
  "CMakeFiles/birnn_sampling.dir/sampler.cc.o.d"
  "libbirnn_sampling.a"
  "libbirnn_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
