file(REMOVE_RECURSE
  "libbirnn_sampling.a"
)
