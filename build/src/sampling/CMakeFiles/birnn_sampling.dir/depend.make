# Empty dependencies file for birnn_sampling.
# This may be replaced when dependencies are built.
