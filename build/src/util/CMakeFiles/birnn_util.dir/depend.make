# Empty dependencies file for birnn_util.
# This may be replaced when dependencies are built.
