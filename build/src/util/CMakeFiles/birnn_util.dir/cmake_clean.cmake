file(REMOVE_RECURSE
  "CMakeFiles/birnn_util.dir/flags.cc.o"
  "CMakeFiles/birnn_util.dir/flags.cc.o.d"
  "CMakeFiles/birnn_util.dir/logging.cc.o"
  "CMakeFiles/birnn_util.dir/logging.cc.o.d"
  "CMakeFiles/birnn_util.dir/rng.cc.o"
  "CMakeFiles/birnn_util.dir/rng.cc.o.d"
  "CMakeFiles/birnn_util.dir/stats.cc.o"
  "CMakeFiles/birnn_util.dir/stats.cc.o.d"
  "CMakeFiles/birnn_util.dir/status.cc.o"
  "CMakeFiles/birnn_util.dir/status.cc.o.d"
  "CMakeFiles/birnn_util.dir/string_util.cc.o"
  "CMakeFiles/birnn_util.dir/string_util.cc.o.d"
  "CMakeFiles/birnn_util.dir/threadpool.cc.o"
  "CMakeFiles/birnn_util.dir/threadpool.cc.o.d"
  "libbirnn_util.a"
  "libbirnn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
