file(REMOVE_RECURSE
  "libbirnn_util.a"
)
