file(REMOVE_RECURSE
  "CMakeFiles/birnn_nn.dir/gradcheck.cc.o"
  "CMakeFiles/birnn_nn.dir/gradcheck.cc.o.d"
  "CMakeFiles/birnn_nn.dir/graph.cc.o"
  "CMakeFiles/birnn_nn.dir/graph.cc.o.d"
  "CMakeFiles/birnn_nn.dir/init.cc.o"
  "CMakeFiles/birnn_nn.dir/init.cc.o.d"
  "CMakeFiles/birnn_nn.dir/layers.cc.o"
  "CMakeFiles/birnn_nn.dir/layers.cc.o.d"
  "CMakeFiles/birnn_nn.dir/ops.cc.o"
  "CMakeFiles/birnn_nn.dir/ops.cc.o.d"
  "CMakeFiles/birnn_nn.dir/optimizer.cc.o"
  "CMakeFiles/birnn_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/birnn_nn.dir/recurrent.cc.o"
  "CMakeFiles/birnn_nn.dir/recurrent.cc.o.d"
  "CMakeFiles/birnn_nn.dir/serialize.cc.o"
  "CMakeFiles/birnn_nn.dir/serialize.cc.o.d"
  "CMakeFiles/birnn_nn.dir/tensor.cc.o"
  "CMakeFiles/birnn_nn.dir/tensor.cc.o.d"
  "libbirnn_nn.a"
  "libbirnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
