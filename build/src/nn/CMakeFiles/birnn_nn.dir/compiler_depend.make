# Empty compiler generated dependencies file for birnn_nn.
# This may be replaced when dependencies are built.
