file(REMOVE_RECURSE
  "libbirnn_nn.a"
)
