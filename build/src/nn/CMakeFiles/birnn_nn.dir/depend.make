# Empty dependencies file for birnn_nn.
# This may be replaced when dependencies are built.
