
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raha/cluster.cc" "src/raha/CMakeFiles/birnn_raha.dir/cluster.cc.o" "gcc" "src/raha/CMakeFiles/birnn_raha.dir/cluster.cc.o.d"
  "/root/repo/src/raha/detector.cc" "src/raha/CMakeFiles/birnn_raha.dir/detector.cc.o" "gcc" "src/raha/CMakeFiles/birnn_raha.dir/detector.cc.o.d"
  "/root/repo/src/raha/features.cc" "src/raha/CMakeFiles/birnn_raha.dir/features.cc.o" "gcc" "src/raha/CMakeFiles/birnn_raha.dir/features.cc.o.d"
  "/root/repo/src/raha/strategy.cc" "src/raha/CMakeFiles/birnn_raha.dir/strategy.cc.o" "gcc" "src/raha/CMakeFiles/birnn_raha.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/birnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/birnn_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
