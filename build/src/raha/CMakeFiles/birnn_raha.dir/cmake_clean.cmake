file(REMOVE_RECURSE
  "CMakeFiles/birnn_raha.dir/cluster.cc.o"
  "CMakeFiles/birnn_raha.dir/cluster.cc.o.d"
  "CMakeFiles/birnn_raha.dir/detector.cc.o"
  "CMakeFiles/birnn_raha.dir/detector.cc.o.d"
  "CMakeFiles/birnn_raha.dir/features.cc.o"
  "CMakeFiles/birnn_raha.dir/features.cc.o.d"
  "CMakeFiles/birnn_raha.dir/strategy.cc.o"
  "CMakeFiles/birnn_raha.dir/strategy.cc.o.d"
  "libbirnn_raha.a"
  "libbirnn_raha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_raha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
