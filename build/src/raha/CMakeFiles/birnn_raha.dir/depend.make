# Empty dependencies file for birnn_raha.
# This may be replaced when dependencies are built.
