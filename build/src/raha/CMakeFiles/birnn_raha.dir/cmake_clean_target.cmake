file(REMOVE_RECURSE
  "libbirnn_raha.a"
)
