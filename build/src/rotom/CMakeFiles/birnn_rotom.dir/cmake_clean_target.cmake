file(REMOVE_RECURSE
  "libbirnn_rotom.a"
)
