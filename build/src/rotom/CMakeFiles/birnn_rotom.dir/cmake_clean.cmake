file(REMOVE_RECURSE
  "CMakeFiles/birnn_rotom.dir/augment.cc.o"
  "CMakeFiles/birnn_rotom.dir/augment.cc.o.d"
  "CMakeFiles/birnn_rotom.dir/baseline.cc.o"
  "CMakeFiles/birnn_rotom.dir/baseline.cc.o.d"
  "libbirnn_rotom.a"
  "libbirnn_rotom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_rotom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
