# Empty compiler generated dependencies file for birnn_rotom.
# This may be replaced when dependencies are built.
