
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rotom/augment.cc" "src/rotom/CMakeFiles/birnn_rotom.dir/augment.cc.o" "gcc" "src/rotom/CMakeFiles/birnn_rotom.dir/augment.cc.o.d"
  "/root/repo/src/rotom/baseline.cc" "src/rotom/CMakeFiles/birnn_rotom.dir/baseline.cc.o" "gcc" "src/rotom/CMakeFiles/birnn_rotom.dir/baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/birnn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/birnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/birnn_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
