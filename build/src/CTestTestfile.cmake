# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("nn")
subdirs("data")
subdirs("datagen")
subdirs("raha")
subdirs("sampling")
subdirs("rotom")
subdirs("repair")
subdirs("core")
subdirs("eval")
