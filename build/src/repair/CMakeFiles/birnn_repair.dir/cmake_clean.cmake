file(REMOVE_RECURSE
  "CMakeFiles/birnn_repair.dir/corrector.cc.o"
  "CMakeFiles/birnn_repair.dir/corrector.cc.o.d"
  "libbirnn_repair.a"
  "libbirnn_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
