file(REMOVE_RECURSE
  "libbirnn_repair.a"
)
