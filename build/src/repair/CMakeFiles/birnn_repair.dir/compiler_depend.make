# Empty compiler generated dependencies file for birnn_repair.
# This may be replaced when dependencies are built.
