
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/birnn_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/birnn_data.dir/csv.cc.o.d"
  "/root/repo/src/data/dictionary.cc" "src/data/CMakeFiles/birnn_data.dir/dictionary.cc.o" "gcc" "src/data/CMakeFiles/birnn_data.dir/dictionary.cc.o.d"
  "/root/repo/src/data/encoding.cc" "src/data/CMakeFiles/birnn_data.dir/encoding.cc.o" "gcc" "src/data/CMakeFiles/birnn_data.dir/encoding.cc.o.d"
  "/root/repo/src/data/prepare.cc" "src/data/CMakeFiles/birnn_data.dir/prepare.cc.o" "gcc" "src/data/CMakeFiles/birnn_data.dir/prepare.cc.o.d"
  "/root/repo/src/data/table.cc" "src/data/CMakeFiles/birnn_data.dir/table.cc.o" "gcc" "src/data/CMakeFiles/birnn_data.dir/table.cc.o.d"
  "/root/repo/src/data/type_inference.cc" "src/data/CMakeFiles/birnn_data.dir/type_inference.cc.o" "gcc" "src/data/CMakeFiles/birnn_data.dir/type_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/birnn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
