file(REMOVE_RECURSE
  "libbirnn_data.a"
)
