# Empty dependencies file for birnn_data.
# This may be replaced when dependencies are built.
