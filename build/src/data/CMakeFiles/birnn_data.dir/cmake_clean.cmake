file(REMOVE_RECURSE
  "CMakeFiles/birnn_data.dir/csv.cc.o"
  "CMakeFiles/birnn_data.dir/csv.cc.o.d"
  "CMakeFiles/birnn_data.dir/dictionary.cc.o"
  "CMakeFiles/birnn_data.dir/dictionary.cc.o.d"
  "CMakeFiles/birnn_data.dir/encoding.cc.o"
  "CMakeFiles/birnn_data.dir/encoding.cc.o.d"
  "CMakeFiles/birnn_data.dir/prepare.cc.o"
  "CMakeFiles/birnn_data.dir/prepare.cc.o.d"
  "CMakeFiles/birnn_data.dir/table.cc.o"
  "CMakeFiles/birnn_data.dir/table.cc.o.d"
  "CMakeFiles/birnn_data.dir/type_inference.cc.o"
  "CMakeFiles/birnn_data.dir/type_inference.cc.o.d"
  "libbirnn_data.a"
  "libbirnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
