file(REMOVE_RECURSE
  "CMakeFiles/birnn_eval.dir/report.cc.o"
  "CMakeFiles/birnn_eval.dir/report.cc.o.d"
  "CMakeFiles/birnn_eval.dir/runner.cc.o"
  "CMakeFiles/birnn_eval.dir/runner.cc.o.d"
  "libbirnn_eval.a"
  "libbirnn_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
