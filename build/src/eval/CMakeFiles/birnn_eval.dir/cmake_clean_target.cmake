file(REMOVE_RECURSE
  "libbirnn_eval.a"
)
