# Empty compiler generated dependencies file for birnn_eval.
# This may be replaced when dependencies are built.
