file(REMOVE_RECURSE
  "libbirnn_metrics.a"
)
