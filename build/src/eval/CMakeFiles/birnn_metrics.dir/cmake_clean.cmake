file(REMOVE_RECURSE
  "CMakeFiles/birnn_metrics.dir/metrics.cc.o"
  "CMakeFiles/birnn_metrics.dir/metrics.cc.o.d"
  "libbirnn_metrics.a"
  "libbirnn_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birnn_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
