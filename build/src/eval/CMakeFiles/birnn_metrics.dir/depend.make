# Empty dependencies file for birnn_metrics.
# This may be replaced when dependencies are built.
