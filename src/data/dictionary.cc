#include "data/dictionary.h"

namespace birnn::data {

CharIndex CharIndex::Build(const CellFrame& frame) {
  CharIndex idx;
  for (const auto& cell : frame.cells()) {
    for (char c : cell.value) {
      const auto u = static_cast<unsigned char>(c);
      if (idx.index_of_[u] == 0) {
        idx.index_of_[u] = ++idx.num_chars_;
      }
    }
  }
  return idx;
}

CharIndex CharIndex::BuildFromStrings(const std::vector<std::string>& values) {
  CharIndex idx;
  for (const auto& v : values) {
    for (char c : v) {
      const auto u = static_cast<unsigned char>(c);
      if (idx.index_of_[u] == 0) {
        idx.index_of_[u] = ++idx.num_chars_;
      }
    }
  }
  return idx;
}

StatusOr<CharIndex> CharIndex::FromIndexTable(const std::array<int, 256>& table,
                                              int num_chars) {
  if (num_chars < 0 || num_chars > 256) {
    return Status::InvalidArgument("char dictionary count out of range");
  }
  std::array<int, 256> seen{};
  for (int c = 0; c < 256; ++c) {
    const int idx = table[static_cast<size_t>(c)];
    if (idx == 0) continue;
    if (idx < 1 || idx > num_chars) {
      return Status::InvalidArgument("char index entry out of range");
    }
    if (seen[static_cast<size_t>(idx - 1)]++ > 0) {
      return Status::InvalidArgument("duplicate char index entry");
    }
  }
  for (int i = 0; i < num_chars; ++i) {
    if (seen[static_cast<size_t>(i)] == 0) {
      return Status::InvalidArgument("unused char index slot");
    }
  }
  CharIndex idx;
  idx.index_of_ = table;
  idx.num_chars_ = num_chars;
  return idx;
}

int CharIndex::IndexOf(char c) const {
  const int i = index_of_[static_cast<unsigned char>(c)];
  return i == 0 ? unknown_index() : i;
}

std::vector<int> CharIndex::Encode(const std::string& s) const {
  std::vector<int> out;
  out.reserve(s.size());
  for (char c : s) out.push_back(IndexOf(c));
  return out;
}

std::vector<int> CharIndex::Encode(const std::string& s,
                                   int64_t* oov_chars) const {
  std::vector<int> out;
  out.reserve(s.size());
  const int unknown = unknown_index();
  int64_t oov = 0;
  for (char c : s) {
    const int idx = IndexOf(c);
    if (idx == unknown) ++oov;
    out.push_back(idx);
  }
  if (oov_chars != nullptr) *oov_chars += oov;
  return out;
}

uint64_t CharIndex::Fingerprint() const {
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t h = kOffset;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xFFu;
      h *= kPrime;
    }
  };
  mix(static_cast<uint64_t>(static_cast<uint32_t>(num_chars_)));
  for (int c = 0; c < 256; ++c) {
    mix(static_cast<uint64_t>(
        static_cast<uint32_t>(index_of_[static_cast<size_t>(c)])));
  }
  return h;
}

int AttributeIndex::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace birnn::data
