#ifndef BIRNN_DATA_PREPARE_H_
#define BIRNN_DATA_PREPARE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace birnn::data {

/// One cell of the long-format dataset `df` produced by the paper's §4.1
/// merge step. A tuple (`row_id`) contributes one record per attribute.
struct CellRecord {
  int64_t row_id = 0;       ///< 'id_': sequence number of the tuple.
  int attr = 0;             ///< attribute index (column position).
  std::string value;        ///< 'value_x': dirty value (truncated).
  std::string clean_value;  ///< 'value_y': ground-truth value (analysis only).
  int label = 0;            ///< 0 = correct, 1 = wrong.
  bool empty = false;       ///< 'empty': value_x has no content.
  float length_norm = 0.f;  ///< len(value_x) / max len of this attribute.
  std::string concat;       ///< 'concat': attribute name + value_x.
};

/// Long-format view of a dirty/clean table pair: `num_tuples() * num_attrs()`
/// cell records in (tuple-major) order, plus attribute metadata.
class CellFrame {
 public:
  CellFrame() = default;
  CellFrame(std::vector<std::string> attr_names,
            std::vector<CellRecord> cells);

  int num_attrs() const { return static_cast<int>(attr_names_.size()); }
  int64_t num_tuples() const {
    return attr_names_.empty()
               ? 0
               : static_cast<int64_t>(cells_.size()) / num_attrs();
  }
  int64_t num_cells() const { return static_cast<int64_t>(cells_.size()); }

  const std::vector<std::string>& attr_names() const { return attr_names_; }
  const std::vector<CellRecord>& cells() const { return cells_; }

  /// Record for tuple `row_id`, attribute `attr`.
  const CellRecord& cell(int64_t row_id, int attr) const;

  /// Fraction of cells with label 1 (the dataset's error rate).
  double ErrorRate() const;

  /// Number of distinct characters across all value_x (the value-dictionary
  /// size the paper reports in Table 2).
  int DistinctCharacters() const;

  /// Longest value_x length (after truncation).
  int MaxValueLength() const;

 private:
  std::vector<std::string> attr_names_;
  std::vector<CellRecord> cells_;  // tuple-major: id*num_attrs + attr
};

/// Options for the data-preparation pipeline.
struct PrepareOptions {
  /// Values longer than this are cut off (paper: 128, which "achieves good
  /// F1-score results and reduced the training time").
  int max_value_len = 128;
  /// Structure transformation: remove preceding whitespace.
  bool trim_leading_whitespace = true;
  /// Treat the literal string "NaN" as an empty value for the 'empty'
  /// column (pandas renders missing values as NaN).
  bool treat_nan_as_empty = true;
};

/// Runs the paper's data-preparation process (§4.1, Fig. 3): structure
/// transformation, merge into long format, label derivation
/// (value_x != value_y), truncation, and computation of the 'empty',
/// 'concat' and 'length_norm' columns.
///
/// `dirty` and `clean` must have the same shape; dirty columns are aligned
/// to clean columns by position (the renaming step).
StatusOr<CellFrame> PrepareData(const Table& dirty, const Table& clean,
                                const PrepareOptions& options = {});

/// Prepares a dirty table without ground truth (deployment mode: labels are
/// all 0 and meaningless; used when real users label sampled tuples).
StatusOr<CellFrame> PrepareDirtyOnly(const Table& dirty,
                                     const PrepareOptions& options = {});

}  // namespace birnn::data

#endif  // BIRNN_DATA_PREPARE_H_
