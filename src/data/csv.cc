#include "data/csv.h"

#include <fstream>
#include <sstream>

namespace birnn::data {

namespace {

/// Incremental CSV record parser. Returns false at end of input.
/// Handles quoted fields per RFC 4180 including embedded newlines.
bool ReadRecord(std::istream& in, char delimiter,
                std::vector<std::string>* fields, Status* error) {
  fields->clear();
  *error = Status::OK();
  if (in.peek() == EOF) return false;

  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  int c;
  while ((c = in.get()) != EOF) {
    saw_any = true;
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          in.get();
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
      continue;
    }
    if (ch == '"') {
      // Opening quote only valid at field start; mid-field quotes are kept
      // literally (lenient, matches how pandas reads dirty data).
      if (field.empty()) {
        in_quotes = true;
      } else {
        field += ch;
      }
    } else if (ch == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (ch == '\r') {
      if (in.peek() == '\n') in.get();
      fields->push_back(std::move(field));
      return true;
    } else if (ch == '\n') {
      fields->push_back(std::move(field));
      return true;
    } else {
      field += ch;
    }
  }
  if (in_quotes) {
    *error = Status::InvalidArgument("unterminated quoted field at EOF");
    return false;
  }
  if (saw_any) {
    fields->push_back(std::move(field));
    return true;
  }
  return false;
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void WriteField(std::ostream& out, const std::string& s, char delimiter) {
  if (!NeedsQuoting(s, delimiter)) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << "\"\"";
    else out << c;
  }
  out << '"';
}

}  // namespace

StatusOr<Table> ReadCsv(std::istream& in, const CsvOptions& options) {
  std::vector<std::string> fields;
  Status error;

  std::vector<std::string> header;
  if (options.has_header) {
    if (!ReadRecord(in, options.delimiter, &fields, &error)) {
      if (!error.ok()) return error;
      return Status::InvalidArgument("empty CSV input (no header)");
    }
    header = fields;
  }

  Table table;
  bool first_data_row = true;
  int line = options.has_header ? 2 : 1;
  while (ReadRecord(in, options.delimiter, &fields, &error)) {
    if (first_data_row) {
      if (!options.has_header) {
        header.clear();
        for (size_t i = 0; i < fields.size(); ++i) {
          header.push_back("col" + std::to_string(i));
        }
      }
      table = Table(header);
      first_data_row = false;
    }
    Status st = table.AppendRow(fields);
    if (!st.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                     st.message());
    }
    ++line;
  }
  if (!error.ok()) return error;
  if (first_data_row) {
    // Header only (or completely empty without header): valid empty table.
    table = Table(header);
  }
  return table;
}

StatusOr<Table> ReadCsvFile(const std::string& path,
                            const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  return ReadCsv(in, options);
}

Status WriteCsv(const Table& table, std::ostream& out,
                const CsvOptions& options) {
  if (options.has_header) {
    const auto& cols = table.column_names();
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) out << options.delimiter;
      WriteField(out, cols[i], options.delimiter);
    }
    out << '\n';
  }
  for (int r = 0; r < table.num_rows(); ++r) {
    const auto& row = table.row(r);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << options.delimiter;
      WriteField(out, row[i], options.delimiter);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  return WriteCsv(table, out, options);
}

}  // namespace birnn::data
