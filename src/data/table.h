#ifndef BIRNN_DATA_TABLE_H_
#define BIRNN_DATA_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace birnn::data {

/// A relational table in wide format: named columns, string-typed cells
/// (values in dirty real-world data are strings regardless of the intended
/// type, which is exactly what the paper's character-level models consume).
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> column_names)
      : columns_(std::move(column_names)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  const std::vector<std::string>& column_names() const { return columns_; }

  /// Index of the named column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Renames column `index` (used by the structure-transformation step to
  /// align dirty/clean headers).
  void RenameColumn(int index, std::string name);

  /// Appends a row; must have exactly num_columns() cells.
  Status AppendRow(std::vector<std::string> cells);

  const std::vector<std::string>& row(int r) const {
    return rows_[static_cast<size_t>(r)];
  }

  const std::string& cell(int r, int c) const {
    return rows_[static_cast<size_t>(r)][static_cast<size_t>(c)];
  }
  void set_cell(int r, int c, std::string value) {
    rows_[static_cast<size_t>(r)][static_cast<size_t>(c)] = std::move(value);
  }

  /// All values of one column, in row order.
  std::vector<std::string> Column(int c) const;

  /// True if both tables have identical headers and cells.
  bool Equals(const Table& other) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace birnn::data

#endif  // BIRNN_DATA_TABLE_H_
