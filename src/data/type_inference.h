#ifndef BIRNN_DATA_TYPE_INFERENCE_H_
#define BIRNN_DATA_TYPE_INFERENCE_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace birnn::data {

/// Coarse value types for relational columns, used by the rule-based
/// strategies (outlier detection needs to know whether a column is
/// numeric) and the repair engines.
enum class ValueType {
  kEmpty,    ///< "" / NaN spellings.
  kInteger,  ///< optional sign, digits only.
  kDecimal,  ///< parses as a number but not an integer.
  kDate,     ///< common date shapes ("12/02/2011", "22-Mar", "1 June 2005").
  kTime,     ///< clock times ("6:55 a.m.", "18:55").
  kText,     ///< everything else.
};

const char* ValueTypeName(ValueType type);

/// Classifies a single value.
ValueType ClassifyValue(const std::string& value);

/// Distribution of value types in one column plus the inferred dominant
/// type (ignoring empties) and its share of the non-empty values.
struct ColumnTypeInfo {
  ValueType dominant = ValueType::kText;
  double dominance = 0.0;  ///< dominant count / non-empty count.
  int64_t empty_count = 0;
  int64_t total_count = 0;
  std::vector<int64_t> counts;  ///< indexed by ValueType.

  /// True when the column is numerically typed strongly enough for
  /// statistical outlier detection.
  bool IsNumeric(double min_dominance = 0.6) const {
    return (dominant == ValueType::kInteger ||
            dominant == ValueType::kDecimal) &&
           dominance >= min_dominance;
  }
};

/// Infers the type profile of column `col`.
ColumnTypeInfo InferColumnType(const Table& table, int col);

/// Infers every column.
std::vector<ColumnTypeInfo> InferAllColumnTypes(const Table& table);

}  // namespace birnn::data

#endif  // BIRNN_DATA_TYPE_INFERENCE_H_
