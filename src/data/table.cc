#include "data/table.h"

namespace birnn::data {

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Table::RenameColumn(int index, std::string name) {
  columns_[static_cast<size_t>(index)] = std::move(name);
}

Status Table::AppendRow(std::vector<std::string> cells) {
  if (static_cast<int>(cells.size()) != num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(cells.size()) + " cells, table has " +
        std::to_string(num_columns()) + " columns");
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

std::vector<std::string> Table::Column(int c) const {
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[static_cast<size_t>(c)]);
  return out;
}

bool Table::Equals(const Table& other) const {
  return columns_ == other.columns_ && rows_ == other.rows_;
}

}  // namespace birnn::data
