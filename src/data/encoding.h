#ifndef BIRNN_DATA_ENCODING_H_
#define BIRNN_DATA_ENCODING_H_

#include <cstdint>
#include <vector>

#include "data/dictionary.h"
#include "data/prepare.h"

namespace birnn::data {

/// Numeric model inputs for a set of cells: fixed-length padded character
/// index sequences (X), attribute ids (X_attribute), length_norm values and
/// labels (Y). Produced from a CellFrame by `EncodeCells`.
struct EncodedDataset {
  int max_len = 0;   ///< padded sequence length (global, per the paper).
  int vocab = 0;     ///< character vocabulary incl. pad + unknown.
  int n_attrs = 0;   ///< attribute vocabulary for the metadata branch.

  /// Character ids, row-major: seqs[i * max_len + t]; 0-padded at the end.
  std::vector<int32_t> seqs;
  std::vector<int32_t> attrs;        ///< attribute id per cell.
  std::vector<float> length_norm;    ///< per cell.
  std::vector<int32_t> labels;       ///< 0/1 per cell.
  std::vector<int64_t> row_ids;      ///< owning tuple id per cell.

  int64_t num_cells() const { return static_cast<int64_t>(labels.size()); }

  /// Character id of cell i at time step t.
  int32_t seq_at(int64_t i, int t) const {
    return seqs[static_cast<size_t>(i) * max_len + static_cast<size_t>(t)];
  }

  /// Number of leading character ids of cell i up to and including the last
  /// non-pad id — the cell's content length; steps >= effective_len(i) are
  /// all padding (id 0).
  int effective_len(int64_t i) const;

  /// Stable 64-bit content key of cell i (FNV-1a over the attribute id, the
  /// length_norm bit pattern and the character ids up to the effective
  /// length). The model's prediction for a cell is a pure function of
  /// exactly these inputs, so cells with equal content — confirmed via
  /// `CellContentEquals`, the hash alone can collide — are interchangeable
  /// under memoized inference.
  uint64_t CellContentHash(int64_t i) const;

  /// True if cells a and b have identical model inputs (attribute id,
  /// length_norm and character sequence).
  bool CellContentEquals(int64_t a, int64_t b) const;
};

/// Encodes every cell of `frame` using the value dictionary: character
/// sequences padded with 0 ("end indicator") to the global maximum length.
/// Characters outside `chars` map deterministically to the reserved
/// unknown index and — when `oov_chars` is non-null — are counted, so a
/// frame encoded against a foreign (e.g. train-time) dictionary cannot
/// silently desync: every OOV occurrence is visible to the caller.
EncodedDataset EncodeCells(const CellFrame& frame, const CharIndex& chars,
                           int64_t* oov_chars = nullptr);

/// Train/test split by tuple id: cells whose row_id is in `train_ids` form
/// `train`, all other cells form `test` (the paper's setup: 20 labeled
/// tuples for training, everything else for testing).
void SplitByRowIds(const EncodedDataset& all,
                   const std::vector<int64_t>& train_ids, EncodedDataset* train,
                   EncodedDataset* test);

/// Extracts the subset of cells at `indices` (in order).
EncodedDataset TakeCells(const EncodedDataset& all,
                         const std::vector<int64_t>& indices);

}  // namespace birnn::data

#endif  // BIRNN_DATA_ENCODING_H_
