#ifndef BIRNN_DATA_CSV_H_
#define BIRNN_DATA_CSV_H_

#include <istream>
#include <ostream>
#include <string>

#include "data/table.h"
#include "util/status.h"

namespace birnn::data {

/// RFC 4180-style CSV options.
struct CsvOptions {
  char delimiter = ',';
  /// First row is the header (column names). If false, columns are named
  /// "col0", "col1", ...
  bool has_header = true;
};

/// Parses CSV from a stream. Supports quoted fields with embedded
/// delimiters, escaped quotes ("") and embedded newlines; tolerates CRLF.
/// Rows with a differing field count are an InvalidArgument error.
StatusOr<Table> ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Reads a CSV file from disk.
StatusOr<Table> ReadCsvFile(const std::string& path,
                            const CsvOptions& options = {});

/// Writes a table as CSV, quoting fields that contain the delimiter,
/// quotes, or newlines.
Status WriteCsv(const Table& table, std::ostream& out,
                const CsvOptions& options = {});

/// Writes a CSV file to disk.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace birnn::data

#endif  // BIRNN_DATA_CSV_H_
