#include "data/type_inference.h"

#include <cctype>

#include "util/string_util.h"

namespace birnn::data {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kEmpty:
      return "empty";
    case ValueType::kInteger:
      return "integer";
    case ValueType::kDecimal:
      return "decimal";
    case ValueType::kDate:
      return "date";
    case ValueType::kTime:
      return "time";
    case ValueType::kText:
      return "text";
  }
  return "?";
}

namespace {

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// "H:MM ..." or "HH:MM" clock time.
bool LooksLikeTime(const std::string& v) {
  const size_t colon = v.find(':');
  if (colon == std::string::npos || colon == 0 || colon > 2) return false;
  for (size_t i = 0; i < colon; ++i) {
    if (!IsDigit(v[i])) return false;
  }
  if (colon + 3 > v.size()) return false;  // need two minute digits
  if (!IsDigit(v[colon + 1]) || !IsDigit(v[colon + 2])) return false;
  // Anything after the minutes must be am/pm-ish or empty.
  const std::string rest = ToLower(Trim(v.substr(colon + 3)));
  return rest.empty() || rest == "a.m." || rest == "p.m." || rest == "am" ||
         rest == "pm";
}

/// "NN/NN/NNNN", "NN-Mon"/"Mon-NN", or "D Month YYYY".
bool LooksLikeDate(const std::string& v) {
  static const char* kMonths[] = {"jan", "feb", "mar", "apr", "may", "jun",
                                  "jul", "aug", "sep", "oct", "nov", "dec"};
  const std::string lower = ToLower(v);
  // NN/NN/NNNN (optionally followed by a time, which makes it a datetime —
  // still date-shaped for our purposes).
  if (lower.size() >= 10 && IsDigit(lower[0]) && IsDigit(lower[1]) &&
      lower[2] == '/' && IsDigit(lower[3]) && IsDigit(lower[4]) &&
      lower[5] == '/' && IsDigit(lower[6]) && IsDigit(lower[7]) &&
      IsDigit(lower[8]) && IsDigit(lower[9])) {
    return true;
  }
  // Month-name containing short forms: "22-mar", "mar-22", "1 june 2005".
  for (const char* month : kMonths) {
    const size_t pos = lower.find(month);
    if (pos == std::string::npos) continue;
    // Needs at least one digit elsewhere in the value.
    for (char c : lower) {
      if (IsDigit(c)) return true;
    }
  }
  return false;
}

}  // namespace

ValueType ClassifyValue(const std::string& value) {
  const std::string v = Trim(value);
  if (v.empty()) return ValueType::kEmpty;
  const std::string lower = ToLower(v);
  if (lower == "nan" || lower == "n/a" || lower == "null" || lower == "-" ||
      lower == "none") {
    return ValueType::kEmpty;
  }
  if (LooksLikeTime(v)) return ValueType::kTime;
  if (LooksLikeDate(v)) return ValueType::kDate;
  std::string unsigned_part = v;
  if (unsigned_part[0] == '+' || unsigned_part[0] == '-') {
    unsigned_part = unsigned_part.substr(1);
  }
  if (IsAllDigits(unsigned_part)) return ValueType::kInteger;
  double parsed = 0.0;
  if (ParseDouble(v, &parsed)) return ValueType::kDecimal;
  return ValueType::kText;
}

ColumnTypeInfo InferColumnType(const Table& table, int col) {
  ColumnTypeInfo info;
  info.counts.assign(6, 0);
  for (int r = 0; r < table.num_rows(); ++r) {
    const ValueType type = ClassifyValue(table.cell(r, col));
    info.counts[static_cast<size_t>(type)]++;
    ++info.total_count;
    if (type == ValueType::kEmpty) ++info.empty_count;
  }
  const int64_t non_empty = info.total_count - info.empty_count;
  if (non_empty == 0) {
    info.dominant = ValueType::kEmpty;
    info.dominance = 1.0;
    return info;
  }
  // Integers count toward a decimal-dominant column (ints are decimals).
  int64_t best = -1;
  for (int t = 1; t < 6; ++t) {
    int64_t count = info.counts[static_cast<size_t>(t)];
    if (t == static_cast<int>(ValueType::kDecimal)) {
      count += info.counts[static_cast<size_t>(ValueType::kInteger)];
    }
    if (count > best) {
      best = count;
      info.dominant = static_cast<ValueType>(t);
    }
  }
  // Prefer the plain integer label when the column has no true decimals.
  if (info.dominant == ValueType::kDecimal &&
      info.counts[static_cast<size_t>(ValueType::kDecimal)] == 0) {
    info.dominant = ValueType::kInteger;
  }
  info.dominance = static_cast<double>(best) / static_cast<double>(non_empty);
  return info;
}

std::vector<ColumnTypeInfo> InferAllColumnTypes(const Table& table) {
  std::vector<ColumnTypeInfo> out;
  out.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    out.push_back(InferColumnType(table, c));
  }
  return out;
}

}  // namespace birnn::data
