#ifndef BIRNN_DATA_DICTIONARY_H_
#define BIRNN_DATA_DICTIONARY_H_

#include <array>
#include <string>
#include <vector>

#include "data/prepare.h"

namespace birnn::data {

/// The paper's *value dictionary* (char_index): maps each character that
/// occurs in value_x to an index 1..N. Index 0 is reserved as the padding /
/// end indicator; unseen characters at encode time map to a dedicated
/// unknown index N+1 (so deployment data cannot crash the embedding).
class CharIndex {
 public:
  CharIndex() { index_of_.fill(0); }

  /// Builds the dictionary from every value in `frame`, assigning indexes
  /// in first-occurrence order (deterministic given the frame).
  static CharIndex Build(const CellFrame& frame);

  /// Builds from an explicit list of strings (tests, custom corpora).
  static CharIndex BuildFromStrings(const std::vector<std::string>& values);

  /// Reconstructs a dictionary from its serialized state (index table +
  /// count), as stored in a detector bundle. `table[c]` must be 0 or a
  /// value in 1..num_chars, with every value in that range used exactly
  /// once; violations are rejected.
  static StatusOr<CharIndex> FromIndexTable(const std::array<int, 256>& table,
                                            int num_chars);

  /// The raw byte -> index table backing IndexOf (0 = not in dictionary).
  /// Together with num_chars() this is the dictionary's full state — what
  /// a detector bundle persists.
  const std::array<int, 256>& index_table() const { return index_of_; }

  /// Index for a character: 1..N if known, unknown_index() otherwise.
  int IndexOf(char c) const;

  /// Encodes a string as a sequence of character indexes (no padding).
  std::vector<int> Encode(const std::string& s) const;

  /// Encode with out-of-vocabulary accounting: characters absent from the
  /// dictionary map to the reserved unknown_index() — deterministically,
  /// never to a data-dependent slot — and `*oov_chars` is advanced by how
  /// many such characters were seen. Streaming ingest uses the count to
  /// detect character-distribution drift; the encoding itself is identical
  /// to Encode(s).
  std::vector<int> Encode(const std::string& s, int64_t* oov_chars) const;

  /// Order-sensitive FNV-1a fingerprint of the dictionary's full state
  /// (num_chars + the 256-entry index table). Two dictionaries encode every
  /// string identically iff their fingerprints match; bundles persist it so
  /// a streaming session can prove its encoder is the train-time one.
  uint64_t Fingerprint() const;

  /// Number of distinct characters in the dictionary (paper's Table 2
  /// "Different Characters" column).
  int num_chars() const { return num_chars_; }

  /// Index used for characters outside the dictionary.
  int unknown_index() const { return num_chars_ + 1; }

  /// Total embedding vocabulary: pad(0) + chars + unknown.
  int vocab_size() const { return num_chars_ + 2; }

 private:
  std::array<int, 256> index_of_;
  int num_chars_ = 0;
};

/// The paper's *attribute dictionary* (attribute_index): attribute name to
/// index. Attribute ids feed the ETSB-RNN metadata branch.
class AttributeIndex {
 public:
  explicit AttributeIndex(std::vector<std::string> attr_names)
      : names_(std::move(attr_names)) {}

  static AttributeIndex Build(const CellFrame& frame) {
    return AttributeIndex(frame.attr_names());
  }

  /// Index of a named attribute, or -1 if absent.
  int IndexOf(const std::string& name) const;

  const std::string& NameOf(int index) const {
    return names_[static_cast<size_t>(index)];
  }

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
};

}  // namespace birnn::data

#endif  // BIRNN_DATA_DICTIONARY_H_
