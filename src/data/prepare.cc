#include "data/prepare.h"

#include <algorithm>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace birnn::data {

CellFrame::CellFrame(std::vector<std::string> attr_names,
                     std::vector<CellRecord> cells)
    : attr_names_(std::move(attr_names)), cells_(std::move(cells)) {
  BIRNN_CHECK(!attr_names_.empty());
  BIRNN_CHECK_EQ(cells_.size() % attr_names_.size(), 0u);
}

const CellRecord& CellFrame::cell(int64_t row_id, int attr) const {
  BIRNN_CHECK_GE(row_id, 0);
  BIRNN_CHECK_LT(row_id, num_tuples());
  BIRNN_CHECK_GE(attr, 0);
  BIRNN_CHECK_LT(attr, num_attrs());
  return cells_[static_cast<size_t>(row_id) * num_attrs() +
                static_cast<size_t>(attr)];
}

double CellFrame::ErrorRate() const {
  if (cells_.empty()) return 0.0;
  int64_t wrong = 0;
  for (const auto& c : cells_) wrong += c.label;
  return static_cast<double>(wrong) / static_cast<double>(cells_.size());
}

int CellFrame::DistinctCharacters() const {
  std::set<char> chars;
  for (const auto& c : cells_) {
    for (char ch : c.value) chars.insert(ch);
  }
  return static_cast<int>(chars.size());
}

int CellFrame::MaxValueLength() const {
  size_t mx = 0;
  for (const auto& c : cells_) mx = std::max(mx, c.value.size());
  return static_cast<int>(mx);
}

namespace {

bool IsEmptyValue(const std::string& v, const PrepareOptions& options) {
  if (v.empty()) return true;
  if (options.treat_nan_as_empty && (v == "NaN" || v == "nan")) return true;
  return false;
}

/// Builds the long-format frame. `clean` may be null (deployment mode).
StatusOr<CellFrame> BuildFrame(const Table& dirty, const Table* clean,
                               const PrepareOptions& options) {
  if (dirty.num_columns() == 0) {
    return Status::InvalidArgument("dirty table has no columns");
  }
  if (clean != nullptr) {
    if (clean->num_columns() != dirty.num_columns()) {
      return Status::InvalidArgument(
          "dirty and clean tables have different column counts");
    }
    if (clean->num_rows() != dirty.num_rows()) {
      return Status::InvalidArgument(
          "dirty and clean tables have different row counts");
    }
  }

  // Structure transformation: the dirty columns take the clean dataset's
  // names so both sides merge on identical attributes.
  const std::vector<std::string>& attr_names =
      clean != nullptr ? clean->column_names() : dirty.column_names();

  const int n_attrs = dirty.num_columns();
  const int n_rows = dirty.num_rows();
  std::vector<CellRecord> cells;
  cells.reserve(static_cast<size_t>(n_rows) * n_attrs);

  for (int r = 0; r < n_rows; ++r) {
    for (int a = 0; a < n_attrs; ++a) {
      CellRecord rec;
      rec.row_id = r;
      rec.attr = a;
      std::string vx = dirty.cell(r, a);
      if (options.trim_leading_whitespace) vx = TrimLeft(vx);
      std::string vy;
      if (clean != nullptr) {
        vy = clean->cell(r, a);
        if (options.trim_leading_whitespace) vy = TrimLeft(vy);
      }
      // Label from the untruncated values; truncation only affects the
      // model input.
      rec.label = (clean != nullptr && vx != vy) ? 1 : 0;
      if (static_cast<int>(vx.size()) > options.max_value_len) {
        vx.resize(static_cast<size_t>(options.max_value_len));
      }
      if (static_cast<int>(vy.size()) > options.max_value_len) {
        vy.resize(static_cast<size_t>(options.max_value_len));
      }
      rec.empty = IsEmptyValue(vx, options);
      rec.concat = attr_names[static_cast<size_t>(a)] + '\x1F' + vx;
      rec.value = std::move(vx);
      rec.clean_value = std::move(vy);
      cells.push_back(std::move(rec));
    }
  }

  // length_norm: value length relative to the longest value per attribute.
  std::vector<size_t> max_len(static_cast<size_t>(n_attrs), 0);
  for (const auto& c : cells) {
    max_len[static_cast<size_t>(c.attr)] =
        std::max(max_len[static_cast<size_t>(c.attr)], c.value.size());
  }
  for (auto& c : cells) {
    const size_t mx = max_len[static_cast<size_t>(c.attr)];
    c.length_norm =
        mx == 0 ? 0.0f
                : static_cast<float>(c.value.size()) / static_cast<float>(mx);
  }

  return CellFrame(attr_names, std::move(cells));
}

}  // namespace

StatusOr<CellFrame> PrepareData(const Table& dirty, const Table& clean,
                                const PrepareOptions& options) {
  return BuildFrame(dirty, &clean, options);
}

StatusOr<CellFrame> PrepareDirtyOnly(const Table& dirty,
                                     const PrepareOptions& options) {
  return BuildFrame(dirty, nullptr, options);
}

}  // namespace birnn::data
