#include "data/encoding.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "util/logging.h"

namespace birnn::data {

int EncodedDataset::effective_len(int64_t i) const {
  const int32_t* seq = seqs.data() + static_cast<size_t>(i) * max_len;
  int len = max_len;
  while (len > 0 && seq[len - 1] == 0) --len;
  return len;
}

uint64_t EncodedDataset::CellContentHash(int64_t i) const {
  // FNV-1a, mixing the attribute id, the length_norm bit pattern and the
  // character ids up to the effective length.
  constexpr uint64_t kOffset = 1469598103934665603ULL;
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t h = kOffset;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xFFu;
      h *= kPrime;
    }
  };
  mix(static_cast<uint64_t>(static_cast<uint32_t>(attrs[static_cast<size_t>(i)])));
  uint32_t len_bits = 0;
  static_assert(sizeof(len_bits) == sizeof(float));
  std::memcpy(&len_bits, &length_norm[static_cast<size_t>(i)], sizeof(len_bits));
  mix(len_bits);
  const int len = effective_len(i);
  mix(static_cast<uint64_t>(static_cast<uint32_t>(len)));
  const int32_t* seq = seqs.data() + static_cast<size_t>(i) * max_len;
  for (int t = 0; t < len; ++t) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(seq[t])));
  }
  return h;
}

bool EncodedDataset::CellContentEquals(int64_t a, int64_t b) const {
  if (attrs[static_cast<size_t>(a)] != attrs[static_cast<size_t>(b)]) {
    return false;
  }
  uint32_t la = 0;
  uint32_t lb = 0;
  std::memcpy(&la, &length_norm[static_cast<size_t>(a)], sizeof(la));
  std::memcpy(&lb, &length_norm[static_cast<size_t>(b)], sizeof(lb));
  if (la != lb) return false;
  return std::memcmp(seqs.data() + static_cast<size_t>(a) * max_len,
                     seqs.data() + static_cast<size_t>(b) * max_len,
                     sizeof(int32_t) * static_cast<size_t>(max_len)) == 0;
}

EncodedDataset EncodeCells(const CellFrame& frame, const CharIndex& chars,
                           int64_t* oov_chars) {
  EncodedDataset ds;
  ds.max_len = std::max(1, frame.MaxValueLength());
  ds.vocab = chars.vocab_size();
  ds.n_attrs = frame.num_attrs();

  const int64_t n = frame.num_cells();
  ds.seqs.assign(static_cast<size_t>(n) * ds.max_len, 0);
  ds.attrs.reserve(static_cast<size_t>(n));
  ds.length_norm.reserve(static_cast<size_t>(n));
  ds.labels.reserve(static_cast<size_t>(n));
  ds.row_ids.reserve(static_cast<size_t>(n));

  int64_t i = 0;
  for (const auto& cell : frame.cells()) {
    const std::vector<int> ids = chars.Encode(cell.value, oov_chars);
    BIRNN_CHECK_LE(ids.size(), static_cast<size_t>(ds.max_len));
    for (size_t t = 0; t < ids.size(); ++t) {
      ds.seqs[static_cast<size_t>(i) * ds.max_len + t] = ids[t];
    }
    ds.attrs.push_back(cell.attr);
    ds.length_norm.push_back(cell.length_norm);
    ds.labels.push_back(cell.label);
    ds.row_ids.push_back(cell.row_id);
    ++i;
  }
  return ds;
}

namespace {
EncodedDataset EmptyLike(const EncodedDataset& all) {
  EncodedDataset out;
  out.max_len = all.max_len;
  out.vocab = all.vocab;
  out.n_attrs = all.n_attrs;
  return out;
}

void AppendCell(const EncodedDataset& all, int64_t i, EncodedDataset* out) {
  const size_t base = static_cast<size_t>(i) * all.max_len;
  out->seqs.insert(out->seqs.end(), all.seqs.begin() + base,
                   all.seqs.begin() + base + all.max_len);
  out->attrs.push_back(all.attrs[static_cast<size_t>(i)]);
  out->length_norm.push_back(all.length_norm[static_cast<size_t>(i)]);
  out->labels.push_back(all.labels[static_cast<size_t>(i)]);
  out->row_ids.push_back(all.row_ids[static_cast<size_t>(i)]);
}
}  // namespace

void SplitByRowIds(const EncodedDataset& all,
                   const std::vector<int64_t>& train_ids, EncodedDataset* train,
                   EncodedDataset* test) {
  std::unordered_set<int64_t> in_train(train_ids.begin(), train_ids.end());
  *train = EmptyLike(all);
  *test = EmptyLike(all);
  for (int64_t i = 0; i < all.num_cells(); ++i) {
    if (in_train.count(all.row_ids[static_cast<size_t>(i)]) > 0) {
      AppendCell(all, i, train);
    } else {
      AppendCell(all, i, test);
    }
  }
}

EncodedDataset TakeCells(const EncodedDataset& all,
                         const std::vector<int64_t>& indices) {
  EncodedDataset out = EmptyLike(all);
  for (int64_t i : indices) {
    BIRNN_CHECK_GE(i, 0);
    BIRNN_CHECK_LT(i, all.num_cells());
    AppendCell(all, i, &out);
  }
  return out;
}

}  // namespace birnn::data
