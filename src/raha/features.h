#ifndef BIRNN_RAHA_FEATURES_H_
#define BIRNN_RAHA_FEATURES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/table.h"
#include "raha/strategy.h"
#include "util/threadpool.h"

namespace birnn::raha {

/// One bit per strategy per cell — Raha's representation of "the results of
/// various error detection algorithms as a feature vector".
struct FeatureMatrix {
  int n_rows = 0;
  int n_cols = 0;
  int n_strategies = 0;
  /// features[(row * n_cols + col) * n_strategies + s]
  std::vector<uint8_t> bits;

  /// Feature vector of one cell (n_strategies bytes).
  const uint8_t* cell(int row, int col) const {
    return bits.data() +
           (static_cast<size_t>(row) * n_cols + static_cast<size_t>(col)) *
               n_strategies;
  }

  /// Number of strategies that flagged this cell.
  int VoteCount(int row, int col) const {
    const uint8_t* f = cell(row, col);
    int votes = 0;
    for (int s = 0; s < n_strategies; ++s) votes += f[s];
    return votes;
  }
};

/// Runs every strategy over the table and assembles the per-cell feature
/// vectors. When `pool` is non-null the strategies fan out across it —
/// each strategy is stateless and writes only its own stride-`s` slots of
/// `bits`, so the matrix is bit-identical for every thread count.
FeatureMatrix BuildFeatures(
    const data::Table& table,
    const std::vector<std::unique_ptr<Strategy>>& strategies,
    ThreadPool* pool = nullptr);

/// Hamming distance between two feature vectors of length n.
int HammingDistance(const uint8_t* a, const uint8_t* b, int n);

}  // namespace birnn::raha

#endif  // BIRNN_RAHA_FEATURES_H_
