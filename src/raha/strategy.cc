#include "raha/strategy.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <unordered_map>

#include "data/type_inference.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace birnn::raha {

namespace {

size_t CellIndex(const data::Table& table, int row, int col) {
  return static_cast<size_t>(row) * table.num_columns() +
         static_cast<size_t>(col);
}

bool IsMissingSpelling(const std::string& v) {
  if (v.empty()) return true;
  const std::string lower = ToLower(Trim(v));
  return lower.empty() || lower == "nan" || lower == "n/a" ||
         lower == "null" || lower == "-" || lower == "none";
}

}  // namespace

// ------------------------------------------------------------ NullStrategy

void NullStrategy::Detect(const data::Table& table,
                          DetectionMask* mask) const {
  for (int r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (IsMissingSpelling(table.cell(r, c))) {
        (*mask)[CellIndex(table, r, c)] = 1;
      }
    }
  }
}

// -------------------------------------------------- GaussianOutlierStrategy

std::string GaussianOutlierStrategy::name() const {
  return "gaussian_outlier(" + FormatFixed(k_, 1) + ")";
}

void GaussianOutlierStrategy::Detect(const data::Table& table,
                                     DetectionMask* mask) const {
  const int n = table.num_rows();
  for (int c = 0; c < table.num_columns(); ++c) {
    // Only statistically profile columns the type inferencer calls numeric.
    const data::ColumnTypeInfo type_info = data::InferColumnType(table, c);
    if (!type_info.IsNumeric(0.6)) continue;

    std::vector<double> values(static_cast<size_t>(n));
    std::vector<bool> parsed(static_cast<size_t>(n), false);
    int n_parsed = 0;
    for (int r = 0; r < n; ++r) {
      const std::string& v = table.cell(r, c);
      if (IsMissingSpelling(v)) continue;
      double x = 0.0;
      if (ParseDouble(v, &x)) {
        values[static_cast<size_t>(r)] = x;
        parsed[static_cast<size_t>(r)] = true;
        ++n_parsed;
      }
    }
    if (n_parsed < 4) continue;
    double mean = 0.0;
    for (int r = 0; r < n; ++r) {
      if (parsed[static_cast<size_t>(r)]) mean += values[static_cast<size_t>(r)];
    }
    mean /= n_parsed;
    double var = 0.0;
    for (int r = 0; r < n; ++r) {
      if (parsed[static_cast<size_t>(r)]) {
        const double d = values[static_cast<size_t>(r)] - mean;
        var += d * d;
      }
    }
    var /= n_parsed;
    const double stddev = std::sqrt(var);
    for (int r = 0; r < n; ++r) {
      const std::string& v = table.cell(r, c);
      if (IsMissingSpelling(v)) continue;
      if (!parsed[static_cast<size_t>(r)]) {
        // Non-numeric value in a numeric column.
        (*mask)[CellIndex(table, r, c)] = 1;
      } else if (stddev > 0.0 &&
                 std::fabs(values[static_cast<size_t>(r)] - mean) >
                     k_ * stddev) {
        (*mask)[CellIndex(table, r, c)] = 1;
      }
    }
  }
}

// ------------------------------------------------- HistogramOutlierStrategy

std::string HistogramOutlierStrategy::name() const {
  return "histogram_outlier(" + FormatFixed(min_ratio_, 3) + ")";
}

void HistogramOutlierStrategy::Detect(const data::Table& table,
                                      DetectionMask* mask) const {
  const int n = table.num_rows();
  if (n == 0) return;
  for (int c = 0; c < table.num_columns(); ++c) {
    std::unordered_map<std::string, int> counts;
    for (int r = 0; r < n; ++r) counts[table.cell(r, c)]++;
    // Skip high-cardinality columns (free-text, ids): every value is rare.
    if (static_cast<double>(counts.size()) / n > max_cardinality_ratio_) {
      continue;
    }
    for (int r = 0; r < n; ++r) {
      const int count = counts[table.cell(r, c)];
      if (static_cast<double>(count) / n < min_ratio_) {
        (*mask)[CellIndex(table, r, c)] = 1;
      }
    }
  }
}

// ------------------------------------------------- PatternViolationStrategy

std::string PatternViolationStrategy::Shape(const std::string& value) {
  std::string shape;
  char prev = '\0';
  for (char ch : value) {
    char cls;
    const auto u = static_cast<unsigned char>(ch);
    if (std::isdigit(u)) {
      cls = '9';
    } else if (std::isalpha(u)) {
      cls = 'a';
    } else {
      cls = ch;
    }
    // Compress runs of the same class so "1234" and "56" share a shape.
    if (cls != prev || (cls != '9' && cls != 'a')) shape += cls;
    prev = cls;
  }
  return shape;
}

std::string PatternViolationStrategy::name() const {
  return "pattern_violation(" + FormatFixed(min_ratio_, 3) + ")";
}

void PatternViolationStrategy::Detect(const data::Table& table,
                                      DetectionMask* mask) const {
  const int n = table.num_rows();
  if (n == 0) return;
  for (int c = 0; c < table.num_columns(); ++c) {
    std::unordered_map<std::string, int> shape_counts;
    std::vector<std::string> shapes(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      shapes[static_cast<size_t>(r)] = Shape(table.cell(r, c));
      shape_counts[shapes[static_cast<size_t>(r)]]++;
    }
    for (int r = 0; r < n; ++r) {
      const int count = shape_counts[shapes[static_cast<size_t>(r)]];
      if (static_cast<double>(count) / n < min_ratio_) {
        (*mask)[CellIndex(table, r, c)] = 1;
      }
    }
  }
}

// ------------------------------------------------------ FdViolationStrategy

std::string FdViolationStrategy::name() const {
  return "fd_violation(" + FormatFixed(min_support_, 2) + ")";
}

void FdViolationStrategy::Detect(const data::Table& table,
                                 DetectionMask* mask) const {
  const int n = table.num_rows();
  const int m = table.num_columns();
  if (n < 4) return;
  for (int lhs = 0; lhs < m; ++lhs) {
    // Group rows by lhs value. Keys with a single row carry no signal.
    std::unordered_map<std::string, std::vector<int>> groups;
    for (int r = 0; r < n; ++r) groups[table.cell(r, lhs)].push_back(r);
    // Require lhs to partition the data into repeating groups.
    int64_t grouped_rows = 0;
    for (const auto& [key, rows] : groups) {
      if (rows.size() >= 2) grouped_rows += static_cast<int64_t>(rows.size());
    }
    if (grouped_rows < n / 2) continue;

    for (int rhs = 0; rhs < m; ++rhs) {
      if (rhs == lhs) continue;
      // Measure FD support: fraction of rows agreeing with their group's
      // dominant rhs value.
      int64_t agree = 0;
      int64_t considered = 0;
      std::vector<std::pair<const std::vector<int>*, std::string>> dominant;
      for (const auto& [key, rows] : groups) {
        if (rows.size() < 2) continue;
        std::unordered_map<std::string, int> counts;
        for (int r : rows) counts[table.cell(r, rhs)]++;
        const std::string* best = nullptr;
        int best_count = 0;
        for (const auto& [v, cnt] : counts) {
          if (cnt > best_count) {
            best_count = cnt;
            best = &v;
          }
        }
        agree += best_count;
        considered += static_cast<int64_t>(rows.size());
        dominant.emplace_back(&rows, *best);
      }
      if (considered == 0) continue;
      const double support =
          static_cast<double>(agree) / static_cast<double>(considered);
      if (support < min_support_) continue;  // no (approximate) dependency
      for (const auto& [rows, best] : dominant) {
        for (int r : *rows) {
          if (table.cell(r, rhs) != best) {
            (*mask)[CellIndex(table, r, rhs)] = 1;
          }
        }
      }
    }
  }
}

// ------------------------------------------------------- DictionaryStrategy

std::string DictionaryStrategy::name() const {
  return "dictionary(" + std::to_string(max_edit_distance_) + ")";
}

void DictionaryStrategy::Detect(const data::Table& table,
                                DetectionMask* mask) const {
  const int n = table.num_rows();
  if (n == 0) return;
  for (int c = 0; c < table.num_columns(); ++c) {
    std::unordered_map<std::string, int> counts;
    for (int r = 0; r < n; ++r) counts[table.cell(r, c)]++;
    if (static_cast<double>(counts.size()) / n > 0.5) continue;  // free text
    // Frequent values form the column dictionary.
    std::vector<std::pair<std::string, int>> frequent;
    for (const auto& [v, cnt] : counts) {
      if (cnt >= 3 && !v.empty()) frequent.emplace_back(v, cnt);
    }
    if (frequent.empty()) continue;
    for (const auto& [v, cnt] : counts) {
      if (v.empty()) continue;
      for (const auto& [dict_v, dict_cnt] : frequent) {
        if (dict_v == v) continue;
        if (static_cast<double>(dict_cnt) <
            frequency_factor_ * static_cast<double>(cnt)) {
          continue;  // not enough frequency contrast for a typo call
        }
        if (std::abs(static_cast<int>(dict_v.size()) -
                     static_cast<int>(v.size())) > max_edit_distance_) {
          continue;
        }
        if (static_cast<int>(EditDistance(v, dict_v)) <=
            max_edit_distance_) {
          // v is a rare near-duplicate of a frequent value: flag all its
          // occurrences.
          for (int r = 0; r < n; ++r) {
            if (table.cell(r, c) == v) {
              (*mask)[CellIndex(table, r, c)] = 1;
            }
          }
          break;
        }
      }
    }
  }
}

// ----------------------------------------------------- KeyDuplicateStrategy

int KeyDuplicateStrategy::InferKeyColumn(const data::Table& table) {
  const int n = table.num_rows();
  const int m = table.num_columns();
  if (n < 4) return -1;
  int best_col = -1;
  double best_score = 0.0;
  for (int c = 0; c < m; ++c) {
    std::unordered_map<std::string, int> counts;
    for (int r = 0; r < n; ++r) counts[table.cell(r, c)]++;
    int64_t in_groups = 0;
    for (const auto& [v, cnt] : counts) {
      if (cnt >= 2 && cnt <= 20) in_groups += cnt;
    }
    const double coverage = static_cast<double>(in_groups) / n;
    const double cardinality = static_cast<double>(counts.size()) / n;
    // A key column has high cardinality but still groups duplicates.
    const double score = coverage * cardinality;
    if (coverage > 0.5 && cardinality > 0.05 && score > best_score) {
      best_score = score;
      best_col = c;
    }
  }
  return best_col;
}

void KeyDuplicateStrategy::Detect(const data::Table& table,
                                  DetectionMask* mask) const {
  const int key_col = InferKeyColumn(table);
  if (key_col < 0) return;
  const int n = table.num_rows();
  const int m = table.num_columns();
  std::unordered_map<std::string, std::vector<int>> groups;
  for (int r = 0; r < n; ++r) groups[table.cell(r, key_col)].push_back(r);
  for (const auto& [key, rows] : groups) {
    if (rows.size() < 2) continue;
    for (int c = 0; c < m; ++c) {
      if (c == key_col) continue;
      std::unordered_map<std::string, int> counts;
      for (int r : rows) counts[table.cell(r, c)]++;
      if (counts.size() == 1) continue;
      const std::string* best = nullptr;
      int best_count = 0;
      for (const auto& [v, cnt] : counts) {
        if (cnt > best_count) {
          best_count = cnt;
          best = &v;
        }
      }
      // Only flag when there is a clear majority to disagree with.
      if (best_count * 2 <= static_cast<int>(rows.size())) continue;
      for (int r : rows) {
        if (table.cell(r, c) != *best) {
          (*mask)[CellIndex(table, r, c)] = 1;
        }
      }
    }
  }
}

std::vector<std::unique_ptr<Strategy>> DefaultStrategies() {
  std::vector<std::unique_ptr<Strategy>> out;
  out.push_back(std::make_unique<NullStrategy>());
  out.push_back(std::make_unique<GaussianOutlierStrategy>(2.5));
  out.push_back(std::make_unique<GaussianOutlierStrategy>(3.5));
  out.push_back(std::make_unique<HistogramOutlierStrategy>(0.01));
  out.push_back(std::make_unique<HistogramOutlierStrategy>(0.05));
  out.push_back(std::make_unique<PatternViolationStrategy>(0.02));
  out.push_back(std::make_unique<PatternViolationStrategy>(0.10));
  out.push_back(std::make_unique<FdViolationStrategy>(0.85));
  out.push_back(std::make_unique<DictionaryStrategy>(2));
  out.push_back(std::make_unique<KeyDuplicateStrategy>());
  return out;
}

}  // namespace birnn::raha
