#include "raha/features.h"

namespace birnn::raha {

FeatureMatrix BuildFeatures(
    const data::Table& table,
    const std::vector<std::unique_ptr<Strategy>>& strategies,
    ThreadPool* pool) {
  FeatureMatrix fm;
  fm.n_rows = table.num_rows();
  fm.n_cols = table.num_columns();
  fm.n_strategies = static_cast<int>(strategies.size());
  const size_t n_cells = static_cast<size_t>(fm.n_rows) * fm.n_cols;
  fm.bits.assign(n_cells * fm.n_strategies, 0);

  // One task per strategy: strategy s owns exactly the byte slots
  // bits[cell * n_strategies + s], so tasks never write the same address
  // and the result cannot depend on scheduling order.
  const auto run_strategy = [&](int64_t s) {
    DetectionMask mask(n_cells, 0);
    strategies[static_cast<size_t>(s)]->Detect(table, &mask);
    for (size_t cell = 0; cell < n_cells; ++cell) {
      fm.bits[cell * strategies.size() + static_cast<size_t>(s)] = mask[cell];
    }
  };

  if (pool != nullptr && pool->num_threads() > 0) {
    pool->ParallelFor(static_cast<int64_t>(strategies.size()), run_strategy);
  } else {
    for (size_t s = 0; s < strategies.size(); ++s) {
      run_strategy(static_cast<int64_t>(s));
    }
  }
  return fm;
}

int HammingDistance(const uint8_t* a, const uint8_t* b, int n) {
  int d = 0;
  for (int i = 0; i < n; ++i) d += (a[i] != b[i]) ? 1 : 0;
  return d;
}

}  // namespace birnn::raha
