#include "raha/features.h"

namespace birnn::raha {

FeatureMatrix BuildFeatures(
    const data::Table& table,
    const std::vector<std::unique_ptr<Strategy>>& strategies) {
  FeatureMatrix fm;
  fm.n_rows = table.num_rows();
  fm.n_cols = table.num_columns();
  fm.n_strategies = static_cast<int>(strategies.size());
  const size_t n_cells = static_cast<size_t>(fm.n_rows) * fm.n_cols;
  fm.bits.assign(n_cells * fm.n_strategies, 0);

  DetectionMask mask;
  for (size_t s = 0; s < strategies.size(); ++s) {
    mask.assign(n_cells, 0);
    strategies[s]->Detect(table, &mask);
    for (size_t cell = 0; cell < n_cells; ++cell) {
      fm.bits[cell * strategies.size() + s] = mask[cell];
    }
  }
  return fm;
}

int HammingDistance(const uint8_t* a, const uint8_t* b, int n) {
  int d = 0;
  for (int i = 0; i < n; ++i) d += (a[i] != b[i]) ? 1 : 0;
  return d;
}

}  // namespace birnn::raha
