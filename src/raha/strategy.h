#ifndef BIRNN_RAHA_STRATEGY_H_
#define BIRNN_RAHA_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/table.h"

namespace birnn::raha {

/// Per-cell suspicion mask, row-major: mask[row * n_cols + col] is 1 when
/// the strategy considers that cell erroneous.
using DetectionMask = std::vector<uint8_t>;

/// One configured error-detection strategy à la Raha (Mahdavi et al.,
/// SIGMOD'19): outlier detectors, pattern checkers, rule checkers. Each
/// strategy's verdicts become one dimension of every cell's feature vector.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Stable identifier ("gaussian_outlier(3.0)").
  virtual std::string name() const = 0;

  /// Marks suspicious cells; `mask` is pre-sized to rows*cols and zeroed.
  virtual void Detect(const data::Table& table, DetectionMask* mask) const = 0;
};

/// Flags empty cells and missing-value spellings ("", "NaN", "nan", "N/A",
/// "null", "-").
class NullStrategy : public Strategy {
 public:
  std::string name() const override { return "null_check"; }
  void Detect(const data::Table& table, DetectionMask* mask) const override;
};

/// dBoost-style Gaussian outlier detection: in predominantly numeric
/// columns, flags values more than `k` standard deviations from the column
/// mean, and values that fail to parse at all.
class GaussianOutlierStrategy : public Strategy {
 public:
  explicit GaussianOutlierStrategy(double k = 3.0) : k_(k) {}
  std::string name() const override;
  void Detect(const data::Table& table, DetectionMask* mask) const override;

 private:
  double k_;
};

/// dBoost-style histogram outlier detection: in low-cardinality columns,
/// flags values whose relative frequency is below `min_ratio`.
class HistogramOutlierStrategy : public Strategy {
 public:
  explicit HistogramOutlierStrategy(double min_ratio = 0.01,
                                    double max_cardinality_ratio = 0.2)
      : min_ratio_(min_ratio), max_cardinality_ratio_(max_cardinality_ratio) {}
  std::string name() const override;
  void Detect(const data::Table& table, DetectionMask* mask) const override;

 private:
  double min_ratio_;
  double max_cardinality_ratio_;
};

/// Pattern-violation detection (Wrangler-style): maps every value to a
/// character-class shape ("8:42 a.m." -> "9:99 a.a."), then flags values
/// whose shape is rare within the column.
class PatternViolationStrategy : public Strategy {
 public:
  explicit PatternViolationStrategy(double min_ratio = 0.05)
      : min_ratio_(min_ratio) {}
  std::string name() const override;
  void Detect(const data::Table& table, DetectionMask* mask) const override;

  /// The shape abstraction: digits -> '9', letters -> 'a', runs compressed.
  static std::string Shape(const std::string& value);

 private:
  double min_ratio_;
};

/// Rule-violation detection (NADEEF-style): discovers approximate
/// functional dependencies lhs -> rhs between column pairs and flags rhs
/// cells that contradict the dominant value of their lhs group.
class FdViolationStrategy : public Strategy {
 public:
  explicit FdViolationStrategy(double min_support = 0.9)
      : min_support_(min_support) {}
  std::string name() const override;
  void Detect(const data::Table& table, DetectionMask* mask) const override;

 private:
  double min_support_;
};

/// KATARA-style dictionary check, approximated without an external
/// knowledge base: flags rare values that are within small edit distance
/// of a much more frequent value in the same column (likely typos).
class DictionaryStrategy : public Strategy {
 public:
  explicit DictionaryStrategy(int max_edit_distance = 2,
                              double frequency_factor = 5.0)
      : max_edit_distance_(max_edit_distance),
        frequency_factor_(frequency_factor) {}
  std::string name() const override;
  void Detect(const data::Table& table, DetectionMask* mask) const override;

 private:
  int max_edit_distance_;
  double frequency_factor_;
};

/// Duplicate-record disagreement check (the paper's §5.7 "identify primary
/// keys" future work): groups rows by the most key-like column and flags
/// cells that disagree with their group's majority value.
class KeyDuplicateStrategy : public Strategy {
 public:
  std::string name() const override { return "key_duplicate"; }
  void Detect(const data::Table& table, DetectionMask* mask) const override;

  /// Picks the column that best behaves like a record key shared by
  /// duplicate rows (repeating groups of size >= 2). Returns -1 if none.
  static int InferKeyColumn(const data::Table& table);
};

/// The default strategy zoo used by the Raha baseline and RahaSet sampler.
std::vector<std::unique_ptr<Strategy>> DefaultStrategies();

}  // namespace birnn::raha

#endif  // BIRNN_RAHA_STRATEGY_H_
