#ifndef BIRNN_RAHA_CLUSTER_H_
#define BIRNN_RAHA_CLUSTER_H_

#include <vector>

#include "raha/features.h"

namespace birnn::raha {

/// Clustering of one column's cells by feature-vector similarity. Raha
/// groups "similar cells with the help of the previously created vectors"
/// and later propagates user labels within each cluster.
struct ColumnClustering {
  int n_clusters = 0;
  /// Cluster id of row r's cell in this column.
  std::vector<int> cell_cluster;
};

/// Hierarchical agglomerative clustering (average linkage over Hamming
/// distance) of the distinct feature vectors in `col`, merged down to at
/// most `target_clusters` clusters.
ColumnClustering ClusterColumn(const FeatureMatrix& features, int col,
                               int target_clusters);

/// Clusters every column.
std::vector<ColumnClustering> ClusterAllColumns(const FeatureMatrix& features,
                                                int target_clusters);

}  // namespace birnn::raha

#endif  // BIRNN_RAHA_CLUSTER_H_
