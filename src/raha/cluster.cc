#include "raha/cluster.h"

#include <map>
#include <vector>

#include "util/logging.h"

namespace birnn::raha {

ColumnClustering ClusterColumn(const FeatureMatrix& features, int col,
                               int target_clusters) {
  BIRNN_CHECK_GE(target_clusters, 1);
  const int n = features.n_rows;
  const int fs = features.n_strategies;

  // Distinct feature vectors with member rows. The distinct count is
  // bounded by 2^n_strategies and in practice tiny, which keeps the O(k^3)
  // agglomeration cheap.
  std::map<std::vector<uint8_t>, std::vector<int>> distinct;
  for (int r = 0; r < n; ++r) {
    const uint8_t* f = features.cell(r, col);
    distinct[std::vector<uint8_t>(f, f + fs)].push_back(r);
  }

  struct Cluster {
    std::vector<const std::vector<uint8_t>*> vectors;
    std::vector<int> rows;
    bool alive = true;
  };
  std::vector<Cluster> clusters;
  clusters.reserve(distinct.size());
  for (const auto& [vec, rows] : distinct) {
    Cluster c;
    c.vectors.push_back(&vec);
    c.rows = rows;
    clusters.push_back(std::move(c));
  }

  auto average_distance = [fs](const Cluster& a, const Cluster& b) {
    int64_t total = 0;
    for (const auto* va : a.vectors) {
      for (const auto* vb : b.vectors) {
        total += HammingDistance(va->data(), vb->data(), fs);
      }
    }
    return static_cast<double>(total) /
           (static_cast<double>(a.vectors.size()) *
            static_cast<double>(b.vectors.size()));
  };

  int alive = static_cast<int>(clusters.size());
  while (alive > target_clusters) {
    // Find the closest pair of alive clusters.
    double best = -1.0;
    int bi = -1;
    int bj = -1;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (!clusters[i].alive) continue;
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        if (!clusters[j].alive) continue;
        const double d = average_distance(clusters[i], clusters[j]);
        if (bi < 0 || d < best) {
          best = d;
          bi = static_cast<int>(i);
          bj = static_cast<int>(j);
        }
      }
    }
    if (bi < 0) break;
    auto& a = clusters[static_cast<size_t>(bi)];
    auto& b = clusters[static_cast<size_t>(bj)];
    a.vectors.insert(a.vectors.end(), b.vectors.begin(), b.vectors.end());
    a.rows.insert(a.rows.end(), b.rows.begin(), b.rows.end());
    b.alive = false;
    --alive;
  }

  ColumnClustering out;
  out.cell_cluster.assign(static_cast<size_t>(n), 0);
  int next_id = 0;
  for (const auto& c : clusters) {
    if (!c.alive) continue;
    for (int r : c.rows) out.cell_cluster[static_cast<size_t>(r)] = next_id;
    ++next_id;
  }
  out.n_clusters = next_id;
  return out;
}

std::vector<ColumnClustering> ClusterAllColumns(const FeatureMatrix& features,
                                                int target_clusters) {
  std::vector<ColumnClustering> out;
  out.reserve(static_cast<size_t>(features.n_cols));
  for (int c = 0; c < features.n_cols; ++c) {
    out.push_back(ClusterColumn(features, c, target_clusters));
  }
  return out;
}

}  // namespace birnn::raha
