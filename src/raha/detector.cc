#include "raha/detector.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace birnn::raha {

RahaDetector::RahaDetector(RahaOptions options)
    : options_(options), strategies_(DefaultStrategies()) {}

void RahaDetector::Analyze(const data::Table& dirty) {
  n_rows_ = dirty.num_rows();
  n_cols_ = dirty.num_columns();
  if (options_.feature_threads > 0) {
    ThreadPool pool(options_.feature_threads);
    features_ = BuildFeatures(dirty, strategies_, &pool);
  } else {
    features_ = BuildFeatures(dirty, strategies_);
  }
  const int k = options_.clusters_per_column > 0 ? options_.clusters_per_column
                                                 : options_.n_label_tuples;
  clusterings_ = ClusterAllColumns(features_, k);
  analyzed_ = true;
}

std::vector<int64_t> RahaDetector::SampleTuples(int n, Rng* rng) {
  BIRNN_CHECK(analyzed_) << "call Analyze() before SampleTuples()";
  n = std::min(n, n_rows_);

  // covered[col][cluster] = a sampled tuple already hits this cluster.
  std::vector<std::vector<uint8_t>> covered(static_cast<size_t>(n_cols_));
  for (int c = 0; c < n_cols_; ++c) {
    covered[static_cast<size_t>(c)].assign(
        static_cast<size_t>(clusterings_[static_cast<size_t>(c)].n_clusters),
        0);
  }

  std::vector<uint8_t> sampled(static_cast<size_t>(n_rows_), 0);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  for (int pick = 0; pick < n; ++pick) {
    // Score = number of yet-uncovered clusters this tuple's cells touch.
    int best_score = -1;
    std::vector<int> best_rows;
    for (int r = 0; r < n_rows_; ++r) {
      if (sampled[static_cast<size_t>(r)]) continue;
      int score = 0;
      for (int c = 0; c < n_cols_; ++c) {
        const int cl =
            clusterings_[static_cast<size_t>(c)].cell_cluster[static_cast<size_t>(r)];
        if (!covered[static_cast<size_t>(c)][static_cast<size_t>(cl)]) ++score;
      }
      if (score > best_score) {
        best_score = score;
        best_rows.clear();
        best_rows.push_back(r);
      } else if (score == best_score) {
        best_rows.push_back(r);
      }
    }
    if (best_rows.empty()) break;
    const int chosen = best_rows[rng->UniformInt(best_rows.size())];
    sampled[static_cast<size_t>(chosen)] = 1;
    out.push_back(chosen);
    for (int c = 0; c < n_cols_; ++c) {
      const int cl = clusterings_[static_cast<size_t>(c)]
                         .cell_cluster[static_cast<size_t>(chosen)];
      covered[static_cast<size_t>(c)][static_cast<size_t>(cl)] = 1;
    }
  }
  return out;
}

DetectionMask RahaDetector::Propagate(const std::vector<int64_t>& labeled_rows,
                                      const LabelOracle& oracle) const {
  BIRNN_CHECK(analyzed_) << "call Analyze() before Propagate()";
  DetectionMask predicted(static_cast<size_t>(n_rows_) * n_cols_, 0);

  for (int c = 0; c < n_cols_; ++c) {
    const ColumnClustering& clustering = clusterings_[static_cast<size_t>(c)];
    // Tally labels per cluster and remember labeled feature vectors for the
    // nearest-neighbour fallback.
    std::vector<int> cluster_pos(static_cast<size_t>(clustering.n_clusters), 0);
    std::vector<int> cluster_neg(static_cast<size_t>(clustering.n_clusters), 0);
    std::vector<std::pair<const uint8_t*, int>> labeled_features;
    for (int64_t r : labeled_rows) {
      const int label = oracle(r, c);
      const int cl = clustering.cell_cluster[static_cast<size_t>(r)];
      if (label == 1) {
        cluster_pos[static_cast<size_t>(cl)]++;
      } else {
        cluster_neg[static_cast<size_t>(cl)]++;
      }
      labeled_features.emplace_back(features_.cell(static_cast<int>(r), c),
                                    label);
    }

    for (int r = 0; r < n_rows_; ++r) {
      const int cl = clustering.cell_cluster[static_cast<size_t>(r)];
      const int pos = cluster_pos[static_cast<size_t>(cl)];
      const int neg = cluster_neg[static_cast<size_t>(cl)];
      int label;
      if (pos + neg > 0) {
        // Label propagation within the cluster (majority).
        label = pos > neg ? 1 : 0;
      } else if (!labeled_features.empty()) {
        // Nearest labeled feature vector in this column.
        const uint8_t* f = features_.cell(r, c);
        int best_d = features_.n_strategies + 1;
        int pos_votes = 0;
        int neg_votes = 0;
        for (const auto& [lf, ll] : labeled_features) {
          const int d = HammingDistance(f, lf, features_.n_strategies);
          if (d < best_d) {
            best_d = d;
            pos_votes = 0;
            neg_votes = 0;
          }
          if (d == best_d) {
            if (ll == 1) {
              ++pos_votes;
            } else {
              ++neg_votes;
            }
          }
        }
        label = pos_votes > neg_votes ? 1 : 0;
      } else {
        // No labels in this column at all: strategy-vote fallback.
        label = features_.VoteCount(r, c) >= options_.fallback_votes ? 1 : 0;
      }
      predicted[static_cast<size_t>(r) * n_cols_ + static_cast<size_t>(c)] =
          static_cast<uint8_t>(label);
    }
  }
  return predicted;
}

DetectionMask RahaDetector::DetectErrors(
    const data::Table& dirty, const data::Table& clean, Rng* rng,
    std::vector<int64_t>* labeled_rows_out) {
  Analyze(dirty);
  const std::vector<int64_t> labeled =
      SampleTuples(options_.n_label_tuples, rng);
  if (labeled_rows_out != nullptr) *labeled_rows_out = labeled;
  LabelOracle oracle = [&dirty, &clean](int64_t row, int col) {
    return dirty.cell(static_cast<int>(row), col) !=
                   clean.cell(static_cast<int>(row), col)
               ? 1
               : 0;
  };
  return Propagate(labeled, oracle);
}

}  // namespace birnn::raha
