#ifndef BIRNN_RAHA_DETECTOR_H_
#define BIRNN_RAHA_DETECTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "data/table.h"
#include "raha/cluster.h"
#include "raha/features.h"
#include "raha/strategy.h"
#include "util/rng.h"

namespace birnn::raha {

/// Configuration of the Raha-style detector.
struct RahaOptions {
  /// Label budget in tuples (the paper and Raha both use 20).
  int n_label_tuples = 20;
  /// Clusters per column; 0 means "same as the label budget", Raha's
  /// setting (one expected label per cluster).
  int clusters_per_column = 0;
  /// Fallback vote threshold for columns/clusters with no label signal:
  /// a cell flagged by at least this many strategies is predicted dirty.
  int fallback_votes = 2;

  /// Worker threads for the strategy featurization in Analyze() (0 = run
  /// every strategy inline). The feature matrix is bit-identical for every
  /// value — each strategy writes disjoint slots (see BuildFeatures).
  int feature_threads = 0;
};

/// Answers "is cell (row, col) erroneous?" for tuples a user labeled. In
/// experiments this is backed by ground truth; in deployment by a human.
using LabelOracle = std::function<int(int64_t row, int col)>;

/// Reimplementation of Raha's pipeline (configuration-free error
/// detection): run a strategy zoo, build per-cell feature vectors, cluster
/// cells per column, sample informative tuples for labeling, propagate
/// labels through clusters, and classify the remaining cells.
///
/// Used two ways in this repo: as the `RahaSet` trainset sampler
/// (Algorithm 2) and as the comparison baseline of Tables 3/4.
class RahaDetector {
 public:
  explicit RahaDetector(RahaOptions options = {});

  /// Phase 1 — runs the strategies and clusters every column.
  /// Must be called before SampleTuples/Propagate.
  void Analyze(const data::Table& dirty);

  /// Phase 2 — iteratively samples `n` tuples, preferring tuples whose
  /// cells fall into clusters not yet covered by a sampled tuple (maximum
  /// expected label information).
  std::vector<int64_t> SampleTuples(int n, Rng* rng);

  /// Phase 3 — propagates the oracle's labels for `labeled_rows` through
  /// the clusters; cells in unlabeled clusters fall back to a
  /// nearest-labeled-feature-vector classifier, then to strategy votes.
  /// Returns the per-cell prediction mask.
  DetectionMask Propagate(const std::vector<int64_t>& labeled_rows,
                          const LabelOracle& oracle) const;

  /// Convenience: full pipeline against a ground-truth clean table.
  DetectionMask DetectErrors(const data::Table& dirty,
                             const data::Table& clean, Rng* rng,
                             std::vector<int64_t>* labeled_rows_out = nullptr);

  const FeatureMatrix& features() const { return features_; }
  const std::vector<ColumnClustering>& clusterings() const {
    return clusterings_;
  }

 private:
  RahaOptions options_;
  std::vector<std::unique_ptr<Strategy>> strategies_;
  FeatureMatrix features_;
  std::vector<ColumnClustering> clusterings_;
  int n_rows_ = 0;
  int n_cols_ = 0;
  bool analyzed_ = false;
};

}  // namespace birnn::raha

#endif  // BIRNN_RAHA_DETECTOR_H_
