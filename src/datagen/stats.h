#ifndef BIRNN_DATAGEN_STATS_H_
#define BIRNN_DATAGEN_STATS_H_

#include <string>

#include "datagen/injector.h"

namespace birnn::datagen {

/// Summary statistics of a generated dataset pair — the columns of the
/// paper's Table 2.
struct DatasetStats {
  std::string name;
  int rows = 0;
  int cols = 0;
  double error_rate = 0.0;    ///< fraction of cells where dirty != clean.
  int distinct_chars = 0;     ///< distinct characters across dirty values.
  std::string error_types;    ///< e.g. "MV, FI, VAD".
};

/// Computes Table 2 statistics from a dataset pair (left-trimming values,
/// matching the preparation pipeline's label definition).
DatasetStats ComputeStats(const DatasetPair& pair);

}  // namespace birnn::datagen

#endif  // BIRNN_DATAGEN_STATS_H_
