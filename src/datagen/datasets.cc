#include "datagen/datasets.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "datagen/vocab.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace birnn::datagen {

namespace {

int ScaledRows(int paper_rows, double scale) {
  const int rows = static_cast<int>(std::lround(paper_rows * scale));
  return std::max(30, rows);
}

std::string Itoa(int64_t v) { return std::to_string(v); }

std::string Percent(int value) { return Itoa(value) + "%"; }

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const auto& specs = *new std::vector<DatasetSpec>{
      {"beers", 2410, 11, 0.16, 86,
       {ErrorType::kMissingValue, ErrorType::kFormattingIssue,
        ErrorType::kViolatedAttributeDependency}},
      {"flights", 2376, 7, 0.30, 70,
       {ErrorType::kMissingValue, ErrorType::kFormattingIssue,
        ErrorType::kViolatedAttributeDependency}},
      {"hospital", 1000, 20, 0.03, 46,
       {ErrorType::kTypo, ErrorType::kViolatedAttributeDependency}},
      {"movies", 7390, 17, 0.06, 135,
       {ErrorType::kMissingValue, ErrorType::kFormattingIssue}},
      {"rayyan", 1000, 10, 0.09, 101,
       {ErrorType::kMissingValue, ErrorType::kTypo,
        ErrorType::kFormattingIssue,
        ErrorType::kViolatedAttributeDependency}},
      {"tax", 200000, 15, 0.04, 69,
       {ErrorType::kTypo, ErrorType::kFormattingIssue,
        ErrorType::kViolatedAttributeDependency}},
  };
  return specs;
}

StatusOr<DatasetSpec> FindDatasetSpec(const std::string& name) {
  const std::string lower = ToLower(name);
  for (const auto& spec : AllDatasetSpecs()) {
    if (spec.name == lower) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

// ------------------------------------------------------------------- Beers

DatasetPair MakeBeers(const GenOptions& options) {
  Rng rng(options.seed ^ 0xBEE25ULL);
  const int rows = ScaledRows(2410, options.scale);

  data::Table clean(std::vector<std::string>{
      "index", "id", "beer_name", "style", "ounces", "abv", "ibu",
      "brewery_id", "brewery_name", "city", "state"});

  static const char* kBeerSuffix[] = {"IPA",  "Ale",   "Lager",
                                      "Stout", "Porter", "Pilsner"};
  static const char* kOunces[] = {"12.0", "16.0", "8.4", "24.0", "32.0"};
  for (int r = 0; r < rows; ++r) {
    const CityState& cs = rng.Choice(CityStates());
    const int brewery_id = static_cast<int>(rng.UniformRange(1, 400));
    char abv[16];
    std::snprintf(abv, sizeof(abv), "0.%03d",
                  static_cast<int>(rng.UniformRange(35, 120)));
    std::vector<std::string> row{
        Itoa(r),
        Itoa(1000 + r),
        rng.Choice(BreweryWords()) + " " +
            kBeerSuffix[rng.UniformInt(std::size(kBeerSuffix))],
        rng.Choice(BeerStyles()),
        kOunces[rng.UniformInt(std::size(kOunces))],
        abv,
        Itoa(rng.UniformRange(5, 120)),
        Itoa(brewery_id),
        rng.Choice(BreweryWords()) + " Brewing Company",
        cs.city,
        cs.state,
    };
    BIRNN_CHECK(clean.AppendRow(std::move(row)).ok());
  }

  // State domain for VAD swaps.
  std::vector<std::string> states;
  for (const auto& cs : CityStates()) states.push_back(cs.state);

  std::vector<ColumnCorruption> corruptions;
  corruptions.push_back({clean.ColumnIndex("ounces"), 2.0,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           return CorruptAppendSuffix(v, " oz");
                         }});
  corruptions.push_back({clean.ColumnIndex("abv"), 2.0,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           return CorruptAppendSuffix(v, "%");
                         }});
  corruptions.push_back({clean.ColumnIndex("state"), 1.5,
                         ErrorType::kMissingValue,
                         [](const std::string& v, int, Rng* rng) {
                           return CorruptMissing(v, rng);
                         }});
  corruptions.push_back({clean.ColumnIndex("ibu"), 1.0,
                         ErrorType::kMissingValue,
                         [](const std::string& v, int, Rng* rng) {
                           return CorruptMissing(v, rng);
                         }});
  corruptions.push_back({clean.ColumnIndex("state"), 1.5,
                         ErrorType::kViolatedAttributeDependency,
                         [states](const std::string& v, int, Rng* rng) {
                           return CorruptSwapDomainValue(v, states, rng);
                         }});

  DatasetPair pair;
  pair.name = "beers";
  pair.dirty = InjectErrors(clean, corruptions, 0.16, &rng, &pair.injected_errors);
  pair.clean = std::move(clean);
  pair.error_types = {ErrorType::kMissingValue, ErrorType::kFormattingIssue,
                      ErrorType::kViolatedAttributeDependency};
  return pair;
}

// ----------------------------------------------------------------- Flights

DatasetPair MakeFlights(const GenOptions& options) {
  Rng rng(options.seed ^ 0xF11457ULL);
  const int rows = ScaledRows(2376, options.scale);
  static const char* kSources[] = {"aa",          "orbitz", "flightstats",
                                   "travelocity", "expedia", "kayak"};
  const int sources_per_flight = static_cast<int>(std::size(kSources));
  const int flights = std::max(1, rows / sources_per_flight);

  data::Table clean(std::vector<std::string>{
      "tuple_id", "src", "flight", "sched_dep_time", "act_dep_time",
      "sched_arr_time", "act_arr_time"});

  int emitted = 0;
  for (int f = 0; f < flights && emitted < rows; ++f) {
    const std::string& origin = rng.Choice(Airports());
    std::string dest = rng.Choice(Airports());
    if (dest == origin) dest = origin == "JFK" ? "SFO" : "JFK";
    const std::string flight_id =
        rng.Choice(Airlines()) + "-" + Itoa(rng.UniformRange(100, 2999)) +
        "-" + origin + "-" + dest;
    const std::string sched_dep = RandomClockTime(&rng);
    const std::string act_dep = RandomClockTime(&rng);
    const std::string sched_arr = RandomClockTime(&rng);
    const std::string act_arr = RandomClockTime(&rng);
    for (int s = 0; s < sources_per_flight && emitted < rows; ++s) {
      std::vector<std::string> row{
          std::string(kSources[s]) + "@" + flight_id,
          kSources[s],
          flight_id,
          sched_dep,
          act_dep,
          sched_arr,
          act_arr,
      };
      BIRNN_CHECK(clean.AppendRow(std::move(row)).ok());
      ++emitted;
    }
  }

  std::vector<ColumnCorruption> corruptions;
  for (const char* col :
       {"sched_dep_time", "act_dep_time", "sched_arr_time", "act_arr_time"}) {
    const int c = clean.ColumnIndex(col);
    corruptions.push_back({c, 1.5, ErrorType::kMissingValue,
                           [](const std::string&, int, Rng*) {
                             return std::string();  // '' rather than a time
                           }});
    corruptions.push_back({c, 1.0, ErrorType::kFormattingIssue,
                           [](const std::string& v, int, Rng* rng) {
                             return CorruptPrependDate(v, rng);
                           }});
    corruptions.push_back({c, 2.0, ErrorType::kViolatedAttributeDependency,
                           [](const std::string& v, int, Rng* rng) {
                             return CorruptShiftTimeMinutes(v, rng);
                           }});
  }

  DatasetPair pair;
  pair.name = "flights";
  pair.dirty = InjectErrors(clean, corruptions, 0.30, &rng, &pair.injected_errors);
  pair.clean = std::move(clean);
  pair.error_types = {ErrorType::kMissingValue, ErrorType::kFormattingIssue,
                      ErrorType::kViolatedAttributeDependency};
  return pair;
}

// ---------------------------------------------------------------- Hospital

DatasetPair MakeHospital(const GenOptions& options) {
  Rng rng(options.seed ^ 0x805417A1ULL);
  const int rows = ScaledRows(1000, options.scale);

  data::Table clean(std::vector<std::string>{
      "provider_number", "hospital_name", "address_1", "address_2",
      "address_3", "city", "state", "zip_code", "county_name",
      "phone_number", "hospital_type", "hospital_owner", "emergency_service",
      "condition", "measure_code", "measure_name", "score", "sample",
      "stateavg", "measure_id"});

  // ~10 measures per hospital: hospital attributes repeat across rows,
  // which is what makes VAD detectable.
  struct Hospital {
    std::string provider;
    std::string name;
    std::string address;
    std::string city;
    std::string state;
    std::string zip;
    std::string county;
    std::string phone;
    std::string owner;
    std::string emergency;
  };
  const int n_hospitals = std::max(1, rows / 10);
  std::vector<Hospital> hospitals;
  hospitals.reserve(static_cast<size_t>(n_hospitals));
  static const char* kOwners[] = {"government - state",
                                  "voluntary non-profit - private",
                                  "proprietary", "government - local"};
  for (int h = 0; h < n_hospitals; ++h) {
    const CityState& cs = rng.Choice(CityStates());
    Hospital hosp;
    hosp.provider = RandomDigits(5, &rng);
    hosp.name = ToLower(cs.city) + " regional medical center";
    hosp.address = RandomDigits(3, &rng) + " " +
                   ToLower(rng.Choice(StreetWords()));
    hosp.city = ToLower(cs.city);
    hosp.state = ToLower(cs.state);
    hosp.zip = RandomDigits(5, &rng);
    hosp.county = ToLower(cs.city) + " county";
    hosp.phone = RandomDigits(10, &rng);
    hosp.owner = kOwners[rng.UniformInt(std::size(kOwners))];
    hosp.emergency = rng.Bernoulli(0.7) ? "yes" : "no";
    hospitals.push_back(std::move(hosp));
  }

  const auto& measures = HospitalMeasures();
  for (int r = 0; r < rows; ++r) {
    const Hospital& hosp = hospitals[static_cast<size_t>(r) % hospitals.size()];
    const size_t mi = rng.UniformInt(measures.size());
    const std::string code =
        "ami-" + Itoa(static_cast<int64_t>(mi) + 1);
    std::vector<std::string> row{
        hosp.provider,
        hosp.name,
        hosp.address,
        "",  // address_2 is empty in the real dataset
        "",  // address_3 likewise
        hosp.city,
        hosp.state,
        hosp.zip,
        hosp.county,
        hosp.phone,
        "acute care hospitals",
        hosp.owner,
        hosp.emergency,
        rng.Choice(HospitalConditions()),
        code,
        measures[mi],
        Percent(static_cast<int>(rng.UniformRange(40, 99))),
        Itoa(rng.UniformRange(10, 900)) + " patients",
        hosp.state + "_" + code,
        code + "_" + hosp.provider,
    };
    BIRNN_CHECK(clean.AppendRow(std::move(row)).ok());
  }

  std::vector<ColumnCorruption> corruptions;
  // The hallmark Hospital error: typos that replace characters with 'x'
  // ("hexrt fxilure"). In the real dataset the violated attribute
  // dependencies ARE these typos — an 'x'-typo in city breaks the
  // city -> state/zip dependency — so the VAD corruption uses the same
  // signature on the FD-participating columns.
  for (const char* col : {"hospital_name", "county_name", "measure_name",
                          "condition", "hospital_owner"}) {
    corruptions.push_back({clean.ColumnIndex(col), 2.0, ErrorType::kTypo,
                           [](const std::string& v, int, Rng* rng) {
                             return CorruptTypoX(v, rng);
                           }});
  }
  for (const char* col : {"city", "state", "zip_code"}) {
    corruptions.push_back({clean.ColumnIndex(col), 1.3,
                           ErrorType::kViolatedAttributeDependency,
                           [](const std::string& v, int, Rng* rng) {
                             return CorruptTypoX(v, rng);
                           }});
  }

  DatasetPair pair;
  pair.name = "hospital";
  pair.dirty = InjectErrors(clean, corruptions, 0.03, &rng, &pair.injected_errors);
  pair.clean = std::move(clean);
  pair.error_types = {ErrorType::kTypo,
                      ErrorType::kViolatedAttributeDependency};
  return pair;
}

// ------------------------------------------------------------------ Movies

DatasetPair MakeMovies(const GenOptions& options) {
  Rng rng(options.seed ^ 0x30F1E5ULL);
  const int rows = ScaledRows(7390, options.scale);

  data::Table clean(std::vector<std::string>{
      "id", "name", "year", "release_date", "director", "creator", "actors",
      "cast", "language", "country", "duration", "rating_value",
      "rating_count", "review_count", "genre", "filming_locations",
      "description"});

  static const char* kMonths[] = {"January", "February", "March",   "April",
                                  "May",     "June",     "July",    "August",
                                  "September", "October", "November",
                                  "December"};
  auto person = [&rng]() {
    return rng.Choice(FirstNames()) + " " + rng.Choice(LastNames());
  };
  for (int r = 0; r < rows; ++r) {
    const int year = static_cast<int>(rng.UniformRange(1960, 2020));
    std::string name = RandomPhrase(MovieTitleWords(), 3, &rng);
    if (rng.Bernoulli(0.15)) {
      name += " and " + rng.Choice(MovieTitleWords());
    }
    const CityState& cs = rng.Choice(CityStates());
    std::vector<std::string> row{
        "tt" + RandomDigits(7, &rng),
        name,
        Itoa(year),
        Itoa(rng.UniformRange(1, 28)) + " " +
            kMonths[rng.UniformInt(std::size(kMonths))] + " " + Itoa(year),
        person(),
        person() + ", " + person(),
        person() + "," + person() + "," + person(),
        person() + "," + person(),
        rng.Choice(Languages()),
        rng.Choice(Countries()),
        Itoa(rng.UniformRange(70, 210)) + " min",
        FormatFixed(rng.UniformDouble() * 4.0 + 5.0, 1),
        Itoa(rng.UniformRange(1000, 999999)),
        Itoa(rng.UniformRange(10, 5000)),
        rng.Choice(MovieGenres()) + "," + rng.Choice(MovieGenres()),
        std::string(cs.city) + ", " + cs.state + ", USA",
        RandomPhrase(ArticleWords(), 8, &rng),
    };
    BIRNN_CHECK(clean.AppendRow(std::move(row)).ok());
  }

  std::vector<ColumnCorruption> corruptions;
  corruptions.push_back({clean.ColumnIndex("duration"), 2.0,
                         ErrorType::kMissingValue,
                         [](const std::string&, int, Rng*) {
                           return std::string("NaN");
                         }});
  corruptions.push_back({clean.ColumnIndex("rating_count"), 2.0,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           return CorruptThousandsSeparators(v);
                         }});
  corruptions.push_back({clean.ColumnIndex("rating_value"), 1.5,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           // '8.0' rather than '8': add a superfluous digit
                           // of precision.
                           return v + "0";
                         }});
  corruptions.push_back({clean.ColumnIndex("name"), 1.5,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           // 'Frankie & Johnny' rather than
                           // 'Frankie and Johnny'.
                           const size_t pos = v.find(" and ");
                           if (pos == std::string::npos) return v;
                           return v.substr(0, pos) + " & " + v.substr(pos + 5);
                         }});
  corruptions.push_back({clean.ColumnIndex("creator"), 1.5,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           // Missing parts: 'Roger Kumble' instead of
                           // 'Choderlos de Laclos, Roger Kumble'.
                           const size_t pos = v.find(", ");
                           if (pos == std::string::npos) return v;
                           return v.substr(pos + 2);
                         }});
  corruptions.push_back({clean.ColumnIndex("year"), 1.0,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng* rng) {
                           // Several year indications instead of one.
                           const int y = std::atoi(v.c_str());
                           return v + " " +
                                  Itoa(y + rng->UniformRange(1, 3));
                         }});

  DatasetPair pair;
  pair.name = "movies";
  pair.dirty = InjectErrors(clean, corruptions, 0.06, &rng, &pair.injected_errors);
  pair.clean = std::move(clean);
  pair.error_types = {ErrorType::kMissingValue, ErrorType::kFormattingIssue};
  return pair;
}

// ------------------------------------------------------------------ Rayyan

DatasetPair MakeRayyan(const GenOptions& options) {
  Rng rng(options.seed ^ 0x4A77A9ULL);
  const int rows = ScaledRows(1000, options.scale);

  data::Table clean(std::vector<std::string>{
      "article_title", "journal_title", "journal_issn", "journal_volume",
      "journal_issue", "article_pagination", "author_list", "language",
      "journal_abbreviation", "article_year"});

  static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  auto person = [&rng]() {
    return rng.Choice(LastNames()) + " " +
           std::string(1, rng.Choice(FirstNames())[0]) + ".";
  };
  for (int r = 0; r < rows; ++r) {
    std::string journal = "Journal of " + RandomPhrase(JournalWords(), 2, &rng);
    // Abbreviation functionally depends on the title (VAD target).
    std::string abbrev = "J";
    for (size_t i = 11; i < journal.size(); ++i) {
      if (journal[i - 1] == ' ') {
        abbrev += ' ';
        abbrev += journal[i];
      }
    }
    abbrev += ".";
    const int page_start = static_cast<int>(rng.UniformRange(1, 900));
    std::vector<std::string> row{
        RandomPhrase(ArticleWords(), 7, &rng),
        journal,
        RandomDigits(4, &rng) + "-" + RandomDigits(4, &rng),
        Itoa(rng.UniformRange(1, 60)),
        Itoa(rng.UniformRange(1, 12)) + "-" +
            kMonths[rng.UniformInt(std::size(kMonths))],
        Itoa(page_start) + "-" + Itoa(page_start +
                                      rng.UniformRange(2, 20)),
        person() + "; " + person() + "; " + person(),
        rng.Choice(Languages()),
        abbrev,
        Itoa(rng.UniformRange(1980, 2020)),
    };
    BIRNN_CHECK(clean.AppendRow(std::move(row)).ok());
  }

  std::vector<ColumnCorruption> corruptions;
  corruptions.push_back({clean.ColumnIndex("journal_issue"), 2.0,
                         ErrorType::kMissingValue,
                         [](const std::string& v, int, Rng* rng) {
                           return CorruptMissing(v, rng);
                         }});
  corruptions.push_back({clean.ColumnIndex("journal_issue"), 1.5,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           // 'Mar-22' rather than '22-Mar'.
                           return CorruptSwapDashParts(v);
                         }});
  corruptions.push_back({clean.ColumnIndex("article_pagination"), 2.0,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           // '70-6' rather than '70-76': drop the shared
                           // prefix of the end page.
                           const size_t dash = v.find('-');
                           if (dash == std::string::npos) return v;
                           std::string lo = v.substr(0, dash);
                           std::string hi = v.substr(dash + 1);
                           size_t k = 0;
                           while (k < lo.size() && k < hi.size() &&
                                  lo[k] == hi[k]) {
                             ++k;
                           }
                           if (k == 0 || k >= hi.size()) return v;
                           return lo + "-" + hi.substr(k);
                         }});
  for (const char* col : {"journal_title", "article_title"}) {
    corruptions.push_back({clean.ColumnIndex(col), 1.5, ErrorType::kTypo,
                           [](const std::string& v, int, Rng* rng) {
                             return CorruptTypo(v, rng);
                           }});
  }
  corruptions.push_back({clean.ColumnIndex("journal_abbreviation"), 1.0,
                         ErrorType::kViolatedAttributeDependency,
                         [](const std::string& v, int, Rng* rng) {
                           return CorruptTypo(v, rng);
                         }});

  DatasetPair pair;
  pair.name = "rayyan";
  pair.dirty = InjectErrors(clean, corruptions, 0.09, &rng, &pair.injected_errors);
  pair.clean = std::move(clean);
  pair.error_types = {ErrorType::kMissingValue, ErrorType::kTypo,
                      ErrorType::kFormattingIssue,
                      ErrorType::kViolatedAttributeDependency};
  return pair;
}

// --------------------------------------------------------------------- Tax

DatasetPair MakeTax(const GenOptions& options) {
  Rng rng(options.seed ^ 0x7A4157ULL);
  const int rows = ScaledRows(200000, options.scale);

  data::Table clean(std::vector<std::string>{
      "f_name", "l_name", "gender", "area_code", "phone", "city", "state",
      "zip", "marital_status", "has_child", "salary", "rate", "single_exemp",
      "married_exemp", "child_exemp"});

  for (int r = 0; r < rows; ++r) {
    const CityState& cs = rng.Choice(CityStates());
    const bool married = rng.Bernoulli(0.5);
    const bool has_child = married && rng.Bernoulli(0.5);
    // Clean rates are whole percentages and clean zips are uniformly
    // 5-digit (~30% with a leading zero, like New England zips): that is
    // what makes '7.0' and the zero-stripped '1907' detectable outliers in
    // the real dataset.
    std::string rate = Itoa(rng.UniformRange(2, 9));
    const std::string zip =
        (rng.Bernoulli(0.3) ? "0" : Itoa(rng.UniformRange(1, 9))) +
        RandomDigits(4, &rng);
    std::vector<std::string> row{
        ToUpper(rng.Choice(FirstNames())),
        ToUpper(rng.Choice(LastNames())),
        rng.Bernoulli(0.5) ? "M" : "F",
        RandomDigits(3, &rng),
        RandomDigits(3, &rng) + "-" + RandomDigits(4, &rng),
        ToUpper(cs.city),
        cs.state,
        zip,
        married ? "M" : "S",
        has_child ? "Y" : "N",
        Itoa(rng.UniformRange(20000, 180000)),
        rate,
        married ? "0" : Itoa(rng.UniformRange(1, 9) * 250),
        married ? Itoa(rng.UniformRange(1, 9) * 500) : "0",
        has_child ? Itoa(rng.UniformRange(1, 6) * 200) : "0",
    };
    BIRNN_CHECK(clean.AppendRow(std::move(row)).ok());
  }

  std::vector<std::string> states;
  for (const auto& cs : CityStates()) states.push_back(cs.state);

  std::vector<ColumnCorruption> corruptions;
  corruptions.push_back({clean.ColumnIndex("f_name"), 2.0, ErrorType::kTypo,
                         [](const std::string& v, int, Rng* rng) {
                           // 'Jun"ichi' rather than 'Jun'ichi'.
                           const size_t apo = v.find('\'');
                           if (apo != std::string::npos) {
                             std::string out = v;
                             out[apo] = '"';
                             return out;
                           }
                           return CorruptTypo(v, rng);
                         }});
  corruptions.push_back({clean.ColumnIndex("city"), 2.0, ErrorType::kTypo,
                         [](const std::string& v, int, Rng*) {
                           // 'ARCHIE-*' rather than 'ARCHIE'.
                           return v + "-*";
                         }});
  corruptions.push_back({clean.ColumnIndex("zip"), 2.0,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           return CorruptStripLeadingZeros(v);
                         }});
  corruptions.push_back({clean.ColumnIndex("rate"), 2.0,
                         ErrorType::kFormattingIssue,
                         [](const std::string& v, int, Rng*) {
                           return CorruptAppendDecimal(v);
                         }});
  corruptions.push_back({clean.ColumnIndex("state"), 1.5,
                         ErrorType::kViolatedAttributeDependency,
                         [states](const std::string& v, int, Rng* rng) {
                           return CorruptSwapDomainValue(v, states, rng);
                         }});
  corruptions.push_back({clean.ColumnIndex("has_child"), 1.5,
                         ErrorType::kViolatedAttributeDependency,
                         [](const std::string& v, int, Rng*) {
                           return v == "Y" ? std::string("N")
                                           : std::string("Y");
                         }});

  DatasetPair pair;
  pair.name = "tax";
  pair.dirty = InjectErrors(clean, corruptions, 0.04, &rng, &pair.injected_errors);
  pair.clean = std::move(clean);
  pair.error_types = {ErrorType::kTypo, ErrorType::kFormattingIssue,
                      ErrorType::kViolatedAttributeDependency};
  return pair;
}

StatusOr<DatasetPair> MakeDataset(const std::string& name,
                                  const GenOptions& options) {
  const std::string lower = ToLower(name);
  if (lower == "beers") return MakeBeers(options);
  if (lower == "flights") return MakeFlights(options);
  if (lower == "hospital") return MakeHospital(options);
  if (lower == "movies") return MakeMovies(options);
  if (lower == "rayyan") return MakeRayyan(options);
  if (lower == "tax") return MakeTax(options);
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace birnn::datagen
