#include "datagen/synthetic.h"

#include <algorithm>
#include <cassert>

namespace birnn::datagen {

namespace {

// splitmix64 finalizer: a cheap stateless counter hash with full avalanche.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

SyntheticDataGen::SyntheticDataGen(const SyntheticSpec& spec) : spec_(spec) {
  assert(spec_.cols > 0 && spec_.uniques_per_col > 0);
  assert(spec_.vocab >= 3 && spec_.max_len >= spec_.min_len);
  const int max_len = spec_.max_len;
  const int32_t alphabet = spec_.vocab - 1;  // usable char ids 1..vocab-1
  // How many leading characters are needed to spell the unique id in base
  // `alphabet`: guarantees pool entries are pairwise distinct within a
  // column even when the tail characters collide.
  int id_digits = 1;
  for (int64_t span = alphabet; span < spec_.uniques_per_col;
       span *= alphabet) {
    ++id_digits;
  }
  pool_seqs_.assign(
      static_cast<size_t>(spec_.cols) * spec_.uniques_per_col * max_len, 0);
  pool_length_norm_.resize(
      static_cast<size_t>(spec_.cols) * spec_.uniques_per_col);
  for (int c = 0; c < spec_.cols; ++c) {
    for (int64_t u = 0; u < spec_.uniques_per_col; ++u) {
      const size_t entry = static_cast<size_t>(c) * spec_.uniques_per_col + u;
      int32_t* seq = &pool_seqs_[entry * max_len];
      const uint64_t h =
          Mix64(spec_.seed ^ Mix64(static_cast<uint64_t>(c) * 0x10001ULL + 1) ^
                Mix64(static_cast<uint64_t>(u) + 0xC0FFEEULL));
      const int span = spec_.max_len - spec_.min_len + 1;
      int len = spec_.min_len + static_cast<int>(h % static_cast<uint64_t>(span));
      len = std::max(len, std::min(id_digits, max_len));
      // Leading digits spell u (distinctness), the tail is hashed filler.
      int64_t rem = u;
      for (int t = 0; t < len; ++t) {
        if (t < id_digits) {
          seq[t] = 1 + static_cast<int32_t>(rem % alphabet);
          rem /= alphabet;
        } else {
          seq[t] = 1 + static_cast<int32_t>(
                           Mix64(h ^ static_cast<uint64_t>(t)) %
                           static_cast<uint64_t>(alphabet));
        }
      }
      // Same normalization shape as EncodeCells: length over the column
      // maximum (here the spec maximum, identical for every cell of the
      // column, so duplicates stay bit-identical).
      pool_length_norm_[entry] =
          static_cast<float>(len) / static_cast<float>(max_len);
    }
  }
}

void SyntheticDataGen::FillChunk(int64_t row_begin, int64_t n_rows,
                                 data::EncodedDataset* out) const {
  const int max_len = spec_.max_len;
  const int cols = spec_.cols;
  const int64_t n = n_rows * cols;
  out->max_len = max_len;
  out->vocab = spec_.vocab;
  out->n_attrs = cols;
  out->seqs.assign(static_cast<size_t>(n) * max_len, 0);
  out->attrs.resize(static_cast<size_t>(n));
  out->length_norm.resize(static_cast<size_t>(n));
  out->labels.assign(static_cast<size_t>(n), 0);
  out->row_ids.resize(static_cast<size_t>(n));
  for (int64_t r = 0; r < n_rows; ++r) {
    const int64_t row = row_begin + r;
    for (int c = 0; c < cols; ++c) {
      const int64_t i = r * cols + c;
      const uint64_t pick =
          Mix64(spec_.seed ^ Mix64(static_cast<uint64_t>(row) * 2654435761ULL) ^
                Mix64(static_cast<uint64_t>(c) + 0xABCDULL));
      const int64_t u =
          static_cast<int64_t>(pick % static_cast<uint64_t>(spec_.uniques_per_col));
      const size_t entry = static_cast<size_t>(c) * spec_.uniques_per_col + u;
      std::copy_n(&pool_seqs_[entry * max_len], max_len,
                  &out->seqs[static_cast<size_t>(i) * max_len]);
      out->attrs[static_cast<size_t>(i)] = c;
      out->length_norm[static_cast<size_t>(i)] = pool_length_norm_[entry];
      out->row_ids[static_cast<size_t>(i)] = row;
    }
  }
}

}  // namespace birnn::datagen
