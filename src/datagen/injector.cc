#include "datagen/injector.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "util/logging.h"

namespace birnn::datagen {

const char* ErrorTypeCode(ErrorType type) {
  switch (type) {
    case ErrorType::kMissingValue:
      return "MV";
    case ErrorType::kTypo:
      return "T";
    case ErrorType::kFormattingIssue:
      return "FI";
    case ErrorType::kViolatedAttributeDependency:
      return "VAD";
  }
  return "?";
}

data::Table InjectErrors(const data::Table& clean,
                         const std::vector<ColumnCorruption>& corruptions,
                         double target_cell_error_rate, Rng* rng,
                         std::vector<InjectedError>* injected_out) {
  BIRNN_CHECK(!corruptions.empty());
  BIRNN_CHECK_GE(target_cell_error_rate, 0.0);
  BIRNN_CHECK_LT(target_cell_error_rate, 1.0);

  data::Table dirty = clean;
  const int64_t total_cells =
      static_cast<int64_t>(clean.num_rows()) * clean.num_columns();
  const auto target_errors =
      static_cast<int64_t>(target_cell_error_rate *
                           static_cast<double>(total_cells) + 0.5);

  double total_weight = 0.0;
  for (const auto& c : corruptions) total_weight += c.weight;
  BIRNN_CHECK_GT(total_weight, 0.0);

  std::unordered_set<int64_t> corrupted;  // row * n_cols + col
  int64_t injected = 0;
  // Bounded attempts so a pathological corruption set cannot loop forever.
  int64_t attempts = 0;
  const int64_t max_attempts = 50 * std::max<int64_t>(1, target_errors) + 1000;
  while (injected < target_errors && attempts < max_attempts) {
    ++attempts;
    // Weighted column pick.
    double pick = rng->UniformDouble() * total_weight;
    const ColumnCorruption* chosen = &corruptions.back();
    for (const auto& c : corruptions) {
      pick -= c.weight;
      if (pick <= 0.0) {
        chosen = &c;
        break;
      }
    }
    const int row = static_cast<int>(
        rng->UniformInt(static_cast<uint64_t>(clean.num_rows())));
    const int64_t key =
        static_cast<int64_t>(row) * clean.num_columns() + chosen->col;
    if (corrupted.count(key) > 0) continue;

    const std::string& original = clean.cell(row, chosen->col);
    std::string bad = chosen->corrupt(original, row, rng);
    if (bad == original) continue;  // corruption was a no-op; try elsewhere
    dirty.set_cell(row, chosen->col, std::move(bad));
    corrupted.insert(key);
    if (injected_out != nullptr) {
      injected_out->push_back({row, chosen->col, chosen->type});
    }
    ++injected;
  }
  if (injected < target_errors) {
    BIRNN_LOG(Warning) << "InjectErrors: wanted " << target_errors
                       << " errors but only injected " << injected;
  }
  return dirty;
}

std::string CorruptMissing(const std::string& value, Rng* rng) {
  (void)value;
  return rng->Bernoulli(0.5) ? std::string() : std::string("NaN");
}

std::string CorruptTypoX(const std::string& value, Rng* rng) {
  // Replace one or two alphabetic characters with 'x' ("hexrt fxilure").
  std::vector<size_t> candidates;
  for (size_t i = 0; i < value.size(); ++i) {
    const auto c = static_cast<unsigned char>(value[i]);
    if (std::isalpha(c) && value[i] != 'x' && value[i] != 'X') {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return value + "x";
  std::string out = value;
  const size_t n_typos = (candidates.size() > 1 && rng->Bernoulli(0.5)) ? 2 : 1;
  for (size_t k = 0; k < n_typos; ++k) {
    const size_t pick = rng->UniformInt(candidates.size());
    const size_t pos = candidates[pick];
    out[pos] = std::isupper(static_cast<unsigned char>(out[pos])) ? 'X' : 'x';
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    if (candidates.empty()) break;
  }
  return out;
}

std::string CorruptTypo(const std::string& value, Rng* rng) {
  std::string out = value;
  if (out.empty()) return "?";
  const uint64_t kind = rng->UniformInt(4);
  const size_t pos = rng->UniformInt(out.size());
  static constexpr char kNoise[] = "abcdefghijklmnopqrstuvwxyz'*-";
  const char noise = kNoise[rng->UniformInt(sizeof(kNoise) - 1)];
  switch (kind) {
    case 0:  // replace
      out[pos] = noise;
      break;
    case 1:  // insert
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), noise);
      break;
    case 2:  // delete
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
      break;
    case 3:  // transpose with next char
      if (pos + 1 < out.size()) {
        std::swap(out[pos], out[pos + 1]);
      } else {
        out += noise;
      }
      break;
  }
  return out;
}

std::string CorruptThousandsSeparators(const std::string& value) {
  // Find the longest digit run and add commas every 3 digits from the right.
  size_t best_start = std::string::npos;
  size_t best_len = 0;
  size_t i = 0;
  while (i < value.size()) {
    if (std::isdigit(static_cast<unsigned char>(value[i]))) {
      size_t j = i;
      while (j < value.size() &&
             std::isdigit(static_cast<unsigned char>(value[j]))) {
        ++j;
      }
      if (j - i > best_len) {
        best_len = j - i;
        best_start = i;
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (best_start == std::string::npos || best_len < 4) return value;
  std::string digits = value.substr(best_start, best_len);
  std::string grouped;
  const size_t n = digits.size();
  for (size_t k = 0; k < n; ++k) {
    if (k > 0 && (n - k) % 3 == 0) grouped += ',';
    grouped += digits[k];
  }
  return value.substr(0, best_start) + grouped +
         value.substr(best_start + best_len);
}

std::string CorruptAppendSuffix(const std::string& value,
                                const std::string& suffix) {
  return value + suffix;
}

std::string CorruptStripLeadingZeros(const std::string& value) {
  size_t i = 0;
  while (i + 1 < value.size() && value[i] == '0') ++i;
  return value.substr(i);
}

std::string CorruptAppendDecimal(const std::string& value) {
  if (value.find('.') != std::string::npos) return value;
  return value + ".0";
}

std::string CorruptSwapDashParts(const std::string& value) {
  const size_t dash = value.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= value.size()) {
    return value;
  }
  return value.substr(dash + 1) + "-" + value.substr(0, dash);
}

std::string CorruptPrependDate(const std::string& value, Rng* rng) {
  const int month = static_cast<int>(rng->UniformRange(1, 12));
  const int day = static_cast<int>(rng->UniformRange(1, 28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d/%02d/2011 ", month, day);
  return std::string(buf) + value;
}

std::string CorruptShiftTimeMinutes(const std::string& value, Rng* rng) {
  // Expect "H:MM a.m." / "HH:MM p.m.".
  const size_t colon = value.find(':');
  if (colon == std::string::npos || colon + 2 >= value.size()) return value;
  int hour = 0;
  int minute = 0;
  for (size_t i = 0; i < colon; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(value[i]))) return value;
    hour = hour * 10 + (value[i] - '0');
  }
  if (!std::isdigit(static_cast<unsigned char>(value[colon + 1])) ||
      !std::isdigit(static_cast<unsigned char>(value[colon + 2]))) {
    return value;
  }
  minute = (value[colon + 1] - '0') * 10 + (value[colon + 2] - '0');
  int delta = static_cast<int>(rng->UniformRange(1, 25));
  if (rng->Bernoulli(0.5)) delta = -delta;
  minute += delta;
  while (minute < 0) {
    minute += 60;
    --hour;
  }
  while (minute >= 60) {
    minute -= 60;
    ++hour;
  }
  if (hour < 1) hour = 12;
  if (hour > 12) hour -= 12;
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%d:%02d", hour, minute);
  return std::string(buf) + value.substr(colon + 3);
}

std::string CorruptSwapDomainValue(const std::string& value,
                                   const std::vector<std::string>& domain,
                                   Rng* rng) {
  BIRNN_CHECK(!domain.empty());
  for (int tries = 0; tries < 16; ++tries) {
    const std::string& candidate = rng->Choice(domain);
    if (candidate != value) return candidate;
  }
  return value + "-*";  // degenerate domain; force a difference
}

}  // namespace birnn::datagen
