#ifndef BIRNN_DATAGEN_DATASETS_H_
#define BIRNN_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/injector.h"
#include "util/status.h"

namespace birnn::datagen {

/// Options shared by every dataset generator.
struct GenOptions {
  /// Row count multiplier relative to the paper's dataset size (Table 2).
  /// scale=1.0 reproduces the paper's row counts; benches use smaller
  /// scales on constrained machines (documented in EXPERIMENTS.md).
  double scale = 1.0;
  /// Seed for the clean data and the error injection.
  uint64_t seed = 7;
};

/// Static description of one of the six benchmark datasets (paper Table 2).
struct DatasetSpec {
  std::string name;
  int paper_rows = 0;
  int paper_cols = 0;
  double paper_error_rate = 0.0;
  int paper_distinct_chars = 0;
  std::vector<ErrorType> error_types;
};

/// The six benchmark datasets, in the paper's order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Spec lookup by (case-insensitive) name.
StatusOr<DatasetSpec> FindDatasetSpec(const std::string& name);

/// Synthetic reproductions of the paper's datasets: a clean table with
/// realistic attribute distributions plus a dirty twin with the error
/// signatures §5.1/§5.5 describe, injected at the Table 2 error rates.
DatasetPair MakeBeers(const GenOptions& options = {});
DatasetPair MakeFlights(const GenOptions& options = {});
DatasetPair MakeHospital(const GenOptions& options = {});
DatasetPair MakeMovies(const GenOptions& options = {});
DatasetPair MakeRayyan(const GenOptions& options = {});
DatasetPair MakeTax(const GenOptions& options = {});

/// Generator dispatch by dataset name ("beers", "flights", ...).
StatusOr<DatasetPair> MakeDataset(const std::string& name,
                                  const GenOptions& options = {});

}  // namespace birnn::datagen

#endif  // BIRNN_DATAGEN_DATASETS_H_
