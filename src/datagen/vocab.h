#ifndef BIRNN_DATAGEN_VOCAB_H_
#define BIRNN_DATAGEN_VOCAB_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace birnn::datagen {

/// Shared word material for the synthetic dataset generators. Each accessor
/// returns a reference to a function-local static vector (no global
/// destructors of non-trivial type at namespace scope, per style guide).

/// (city, state-abbreviation) pairs with a consistent city->state mapping —
/// the functional dependency Beers/Hospital/Tax violate via VAD errors.
struct CityState {
  const char* city;
  const char* state;
};
const std::vector<CityState>& CityStates();

const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();
const std::vector<std::string>& BeerStyles();
const std::vector<std::string>& BreweryWords();
const std::vector<std::string>& HospitalConditions();
const std::vector<std::string>& HospitalMeasures();
const std::vector<std::string>& MovieTitleWords();
const std::vector<std::string>& MovieGenres();
const std::vector<std::string>& Languages();
const std::vector<std::string>& Countries();
const std::vector<std::string>& JournalWords();
const std::vector<std::string>& ArticleWords();
const std::vector<std::string>& StreetWords();
const std::vector<std::string>& Airports();
const std::vector<std::string>& Airlines();

/// Random zero-padded integer of fixed width ("00421").
std::string RandomDigits(int width, Rng* rng);

/// "H:MM a.m." / "H:MM p.m." clock time.
std::string RandomClockTime(Rng* rng);

/// Joins 1..max_words random words from `pool`, space-separated.
std::string RandomPhrase(const std::vector<std::string>& pool, int max_words,
                         Rng* rng);

}  // namespace birnn::datagen

#endif  // BIRNN_DATAGEN_VOCAB_H_
