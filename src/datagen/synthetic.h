#ifndef BIRNN_DATAGEN_SYNTHETIC_H_
#define BIRNN_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/encoding.h"

namespace birnn::datagen {

/// Shape of a synthetic duplicate-heavy table used by the warehouse-scale
/// memo benches: `rows * cols` cells drawn from `cols` pools of
/// `uniques_per_col` distinct contents each, so the duplication factor is
/// rows / uniques_per_col per column. Everything is derived from `seed`
/// with counter-based hashing — generation is deterministic and
/// position-independent, which lets benches stream arbitrary row ranges
/// without materializing the whole table.
struct SyntheticSpec {
  int64_t rows = 1000000;
  int cols = 2;
  /// Distinct cell contents per column. Total distinct contents across the
  /// table is cols * uniques_per_col (attribute id is part of content).
  int64_t uniques_per_col = 50000;
  int min_len = 6;
  int max_len = 16;
  /// Character vocabulary including the pad id 0 (ids 1..vocab-1 are used).
  int vocab = 64;
  uint64_t seed = 7;
};

/// Streaming generator of already-encoded synthetic cells. The per-column
/// content pools are materialized once at construction (small: uniques *
/// max_len ids); FillChunk then stamps out any row range by copying pool
/// entries selected with a counter hash of (seed, col, row). Two cells
/// referencing the same pool entry are bit-identical model inputs, so the
/// memo layer sees exactly cols * uniques_per_col distinct contents no
/// matter how many rows are swept.
class SyntheticDataGen {
 public:
  explicit SyntheticDataGen(const SyntheticSpec& spec);

  const SyntheticSpec& spec() const { return spec_; }

  /// Distinct cell contents across the whole table (pool entries are
  /// guaranteed pairwise distinct within and across columns).
  int64_t total_unique_cells() const {
    return spec_.uniques_per_col * spec_.cols;
  }

  /// Fills `out` with the cells of rows [row_begin, row_begin + n_rows),
  /// row-major (all columns of a row before the next row). `out` is reset;
  /// labels are 0 and row_ids are the absolute row indices. The same
  /// (row_begin, n_rows) always produces the same bytes.
  void FillChunk(int64_t row_begin, int64_t n_rows,
                 data::EncodedDataset* out) const;

 private:
  SyntheticSpec spec_;
  /// Pool entry u of column c lives at pool_seqs_[(c * uniques_per_col + u)
  /// * max_len .. + max_len); 0-padded like EncodeCells output.
  std::vector<int32_t> pool_seqs_;
  std::vector<float> pool_length_norm_;
};

}  // namespace birnn::datagen

#endif  // BIRNN_DATAGEN_SYNTHETIC_H_
