#include "datagen/vocab.h"

#include <cstdio>

namespace birnn::datagen {

const std::vector<CityState>& CityStates() {
  static const auto& v = *new std::vector<CityState>{
      {"San Francisco", "CA"}, {"Los Angeles", "CA"}, {"San Diego", "CA"},
      {"Portland", "OR"},      {"Seattle", "WA"},     {"Denver", "CO"},
      {"Boulder", "CO"},       {"Austin", "TX"},      {"Houston", "TX"},
      {"Dallas", "TX"},        {"Chicago", "IL"},     {"Springfield", "IL"},
      {"Boston", "MA"},        {"Cambridge", "MA"},   {"New York", "NY"},
      {"Buffalo", "NY"},       {"Miami", "FL"},       {"Tampa", "FL"},
      {"Atlanta", "GA"},       {"Savannah", "GA"},    {"Birmingham", "AL"},
      {"Montgomery", "AL"},    {"Nashville", "TN"},   {"Memphis", "TN"},
      {"Phoenix", "AZ"},       {"Tucson", "AZ"},      {"Las Vegas", "NV"},
      {"Reno", "NV"},          {"Detroit", "MI"},     {"Ann Arbor", "MI"},
      {"Cleveland", "OH"},     {"Columbus", "OH"},    {"Baltimore", "MD"},
      {"Annapolis", "MD"},     {"Richmond", "VA"},    {"Norfolk", "VA"},
      {"Milwaukee", "WI"},     {"Madison", "WI"},     {"Minneapolis", "MN"},
      {"St Paul", "MN"},       {"Kansas City", "MO"}, {"St Louis", "MO"},
      {"New Orleans", "LA"},   {"Baton Rouge", "LA"}, {"Salt Lake City", "UT"},
      {"Provo", "UT"},         {"Boise", "ID"},       {"Anchorage", "AK"},
      {"Honolulu", "HI"},      {"Charlotte", "NC"},
  };
  return v;
}

const std::vector<std::string>& FirstNames() {
  static const auto& v = *new std::vector<std::string>{
      "James",  "Mary",   "John",    "Patricia", "Robert", "Jennifer",
      "Michael", "Linda",  "William", "Elizabeth", "David", "Barbara",
      "Richard", "Susan",  "Joseph",  "Jessica",  "Thomas", "Sarah",
      "Charles", "Karen",  "Jun'ichi", "Akira",   "Maria",  "Jose",
      "Anna",    "Luis",   "Carmen",  "Pedro",    "Sofia",  "Diego",
  };
  return v;
}

const std::vector<std::string>& LastNames() {
  static const auto& v = *new std::vector<std::string>{
      "Smith",    "Johnson", "Williams", "Brown",   "Jones",   "Garcia",
      "Miller",   "Davis",   "Rodriguez", "Martinez", "Hernandez", "Lopez",
      "Gonzalez", "Wilson",  "Anderson", "Thomas",  "Taylor",  "Moore",
      "Jackson",  "Martin",  "O'Brien",  "O'Connor", "Nakamura", "Tanaka",
  };
  return v;
}

const std::vector<std::string>& BeerStyles() {
  static const auto& v = *new std::vector<std::string>{
      "American IPA",          "American Pale Ale (APA)",
      "American Amber / Red Ale", "American Blonde Ale",
      "American Double / Imperial IPA", "American Porter",
      "American Stout",        "Fruit / Vegetable Beer",
      "Hefeweizen",            "Witbier",
      "Saison / Farmhouse Ale", "Kolsch",
      "English Brown Ale",     "Oatmeal Stout",
      "Scotch Ale / Wee Heavy", "Vienna Lager",
      "Czech Pilsener",        "Märzen / Oktoberfest",
  };
  return v;
}

const std::vector<std::string>& BreweryWords() {
  static const auto& v = *new std::vector<std::string>{
      "Anchor", "Golden", "River",  "Mountain", "Valley", "Iron",
      "Copper", "Stone",  "Cedar",  "Lakeside", "Harbor", "Summit",
      "Prairie", "Canyon", "Redwood", "Granite", "Pioneer", "Frontier",
  };
  return v;
}

const std::vector<std::string>& HospitalConditions() {
  static const auto& v = *new std::vector<std::string>{
      "heart attack",       "heart failure",  "pneumonia",
      "surgical infection prevention", "children's asthma care",
  };
  return v;
}

const std::vector<std::string>& HospitalMeasures() {
  static const auto& v = *new std::vector<std::string>{
      "heart attack patients given aspirin at arrival",
      "heart attack patients given aspirin at discharge",
      "heart attack patients given beta blocker at arrival",
      "heart failure patients given ace inhibitor or arb for lvsd",
      "heart failure patients given an evaluation of left ventricular systolic function",
      "pneumonia patients given initial antibiotic within 6 hours after arrival",
      "pneumonia patients given the most appropriate initial antibiotic",
      "surgery patients who were given an antibiotic at the right time",
      "surgery patients whose preventive antibiotics were stopped at the right time",
      "children and their caregivers who received home management plan of care document",
  };
  return v;
}

const std::vector<std::string>& MovieTitleWords() {
  static const auto& v = *new std::vector<std::string>{
      "Dark",   "Night",  "Return", "Lost",    "City",  "Dream",
      "Secret", "Last",   "First",  "King",    "Queen", "Shadow",
      "Light",  "Winter", "Summer", "Stone",   "Fire",  "Water",
      "Broken", "Silent", "Golden", "Hidden",  "Iron",  "Glass",
  };
  return v;
}

const std::vector<std::string>& MovieGenres() {
  static const auto& v = *new std::vector<std::string>{
      "Drama",    "Comedy", "Action",   "Thriller", "Romance",
      "Horror",   "Sci-Fi", "Adventure", "Crime",    "Fantasy",
      "Animation", "Mystery",
  };
  return v;
}

const std::vector<std::string>& Languages() {
  static const auto& v = *new std::vector<std::string>{
      "English", "French", "Spanish", "German", "Italian",
      "Japanese", "Mandarin", "Hindi", "Korean", "Portuguese",
  };
  return v;
}

const std::vector<std::string>& Countries() {
  static const auto& v = *new std::vector<std::string>{
      "USA",   "UK",    "France", "Germany", "Italy",
      "Japan", "China", "India",  "Canada",  "Australia",
  };
  return v;
}

const std::vector<std::string>& JournalWords() {
  static const auto& v = *new std::vector<std::string>{
      "Journal", "International", "Review", "Annals",  "Archives",
      "Clinical", "Medicine",     "Surgery", "Pediatrics", "Oncology",
      "Cardiology", "Neurology",  "Psychiatry", "Epidemiology", "Therapeutics",
  };
  return v;
}

const std::vector<std::string>& ArticleWords() {
  static const auto& v = *new std::vector<std::string>{
      "randomized", "controlled", "trial",     "systematic", "review",
      "meta-analysis", "cohort",  "study",     "treatment",  "outcomes",
      "efficacy",   "safety",     "patients",  "chronic",    "acute",
      "management", "therapy",    "diagnosis", "risk",       "factors",
  };
  return v;
}

const std::vector<std::string>& StreetWords() {
  static const auto& v = *new std::vector<std::string>{
      "Main St",   "Oak Ave",   "Park Blvd", "First St", "Second Ave",
      "Maple Dr",  "Cedar Ln",  "Elm St",    "Lake Rd",  "Hill St",
  };
  return v;
}

const std::vector<std::string>& Airports() {
  static const auto& v = *new std::vector<std::string>{
      "JFK", "SFO", "LAX", "ORD", "DFW", "DEN", "SEA", "ATL",
      "BOS", "MIA", "PHX", "IAH", "EWR", "MSP", "DTW", "PHL",
  };
  return v;
}

const std::vector<std::string>& Airlines() {
  static const auto& v = *new std::vector<std::string>{
      "AA", "UA", "DL", "WN", "B6", "AS", "NK", "F9",
  };
  return v;
}

std::string RandomDigits(int width, Rng* rng) {
  std::string out;
  out.reserve(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i) {
    out += static_cast<char>('0' + rng->UniformInt(10));
  }
  return out;
}

std::string RandomClockTime(Rng* rng) {
  const int hour = static_cast<int>(rng->UniformRange(1, 12));
  const int minute = static_cast<int>(rng->UniformRange(0, 59));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d:%02d %s", hour, minute,
                rng->Bernoulli(0.5) ? "a.m." : "p.m.");
  return std::string(buf);
}

std::string RandomPhrase(const std::vector<std::string>& pool, int max_words,
                         Rng* rng) {
  const int n = static_cast<int>(rng->UniformRange(1, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += rng->Choice(pool);
  }
  return out;
}

}  // namespace birnn::datagen
