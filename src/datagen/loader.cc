#include "datagen/loader.h"

#include "data/csv.h"

namespace birnn::datagen {

StatusOr<DatasetPair> LoadDatasetPair(const std::string& dirty_csv,
                                      const std::string& clean_csv,
                                      const std::string& name) {
  BIRNN_ASSIGN_OR_RETURN(data::Table dirty, data::ReadCsvFile(dirty_csv));
  BIRNN_ASSIGN_OR_RETURN(data::Table clean, data::ReadCsvFile(clean_csv));
  if (dirty.num_columns() != clean.num_columns()) {
    return Status::InvalidArgument(
        "dirty and clean CSVs have different column counts (" +
        std::to_string(dirty.num_columns()) + " vs " +
        std::to_string(clean.num_columns()) + ")");
  }
  if (dirty.num_rows() != clean.num_rows()) {
    return Status::InvalidArgument(
        "dirty and clean CSVs have different row counts (" +
        std::to_string(dirty.num_rows()) + " vs " +
        std::to_string(clean.num_rows()) + ")");
  }
  DatasetPair pair;
  pair.name = name;
  pair.dirty = std::move(dirty);
  pair.clean = std::move(clean);
  return pair;
}

StatusOr<DatasetPair> LoadDatasetDir(const std::string& dir) {
  std::string base = dir;
  while (!base.empty() && base.back() == '/') base.pop_back();
  const size_t slash = base.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? base : base.substr(slash + 1);
  return LoadDatasetPair(base + "/dirty.csv", base + "/clean.csv", name);
}

}  // namespace birnn::datagen
