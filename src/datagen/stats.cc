#include "datagen/stats.h"

#include <set>

#include "util/string_util.h"

namespace birnn::datagen {

DatasetStats ComputeStats(const DatasetPair& pair) {
  DatasetStats stats;
  stats.name = pair.name;
  stats.rows = pair.dirty.num_rows();
  stats.cols = pair.dirty.num_columns();

  int64_t wrong = 0;
  std::set<char> chars;
  for (int r = 0; r < pair.dirty.num_rows(); ++r) {
    for (int c = 0; c < pair.dirty.num_columns(); ++c) {
      const std::string vx = TrimLeft(pair.dirty.cell(r, c));
      const std::string vy = TrimLeft(pair.clean.cell(r, c));
      if (vx != vy) ++wrong;
      for (char ch : vx) chars.insert(ch);
    }
  }
  const int64_t total =
      static_cast<int64_t>(stats.rows) * static_cast<int64_t>(stats.cols);
  stats.error_rate = total == 0 ? 0.0
                                : static_cast<double>(wrong) /
                                      static_cast<double>(total);
  stats.distinct_chars = static_cast<int>(chars.size());

  for (size_t i = 0; i < pair.error_types.size(); ++i) {
    if (i > 0) stats.error_types += ", ";
    stats.error_types += ErrorTypeCode(pair.error_types[i]);
  }
  return stats;
}

}  // namespace birnn::datagen
