#ifndef BIRNN_DATAGEN_INJECTOR_H_
#define BIRNN_DATAGEN_INJECTOR_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "data/table.h"
#include "util/rng.h"

namespace birnn::datagen {

/// Error taxonomy of the paper's Table 2 (definitions from Raha).
enum class ErrorType {
  kMissingValue,               ///< MV: value removed or replaced by NaN.
  kTypo,                       ///< T: character-level misspelling.
  kFormattingIssue,            ///< FI: same content, wrong representation.
  kViolatedAttributeDependency  ///< VAD: value inconsistent with a
                               ///  functionally dependent attribute.
};

/// Short code used in Table 2 ("MV", "T", "FI", "VAD").
const char* ErrorTypeCode(ErrorType type);

/// One injected corruption: where, and which error class it belongs to.
/// Enables per-error-type recall analysis (paper §5.5).
struct InjectedError {
  int row = 0;
  int col = 0;
  ErrorType type = ErrorType::kTypo;
};

/// A clean table, its corrupted twin, and metadata; what a benchmark
/// dataset consists of.
struct DatasetPair {
  std::string name;
  data::Table clean;
  data::Table dirty;
  std::vector<ErrorType> error_types;
  /// Every cell the injector corrupted, with its error class.
  std::vector<InjectedError> injected_errors;
};

/// How one column may be corrupted: a weighted cell-rewriting function.
/// `corrupt` receives the clean value and must return a *different* value
/// (the injector retries/falls back when it doesn't).
struct ColumnCorruption {
  int col = 0;
  double weight = 1.0;
  ErrorType type = ErrorType::kTypo;
  std::function<std::string(const std::string& value, int row, Rng* rng)>
      corrupt;
};

/// Corrupts random cells of `clean` until the fraction of changed cells
/// reaches `target_cell_error_rate` (over all cells of the table). Never
/// corrupts the same cell twice. Columns are chosen by corruption weight;
/// rows uniformly. Returns the dirty table; if `injected` is non-null it
/// receives one record per corrupted cell.
data::Table InjectErrors(const data::Table& clean,
                         const std::vector<ColumnCorruption>& corruptions,
                         double target_cell_error_rate, Rng* rng,
                         std::vector<InjectedError>* injected = nullptr);

// ---------------------------------------------------------------------------
// Reusable cell corruption primitives (the error signatures §5.1 documents).
// ---------------------------------------------------------------------------

/// MV: "" or the literal "NaN" (pandas-style missing marker).
std::string CorruptMissing(const std::string& value, Rng* rng);

/// T (Hospital-style): replaces one letter with 'x' ("heart" -> "hexrt").
std::string CorruptTypoX(const std::string& value, Rng* rng);

/// T (generic): random insert / delete / replace / transpose of one char.
std::string CorruptTypo(const std::string& value, Rng* rng);

/// FI: inserts thousands separators into a digit run ("379998" -> "379,998").
std::string CorruptThousandsSeparators(const std::string& value);

/// FI: appends a unit suffix ("12.0" -> "12.0 oz").
std::string CorruptAppendSuffix(const std::string& value,
                                const std::string& suffix);

/// FI: strips leading zeros ("01907" -> "1907").
std::string CorruptStripLeadingZeros(const std::string& value);

/// FI: integer -> trailing ".0" ("8" -> "8.0"); non-integers get ".0" too.
std::string CorruptAppendDecimal(const std::string& value);

/// FI: swaps the halves of an A-B token ("22-Mar" -> "Mar-22").
std::string CorruptSwapDashParts(const std::string& value);

/// FI: prefixes a timestamp date ("6:55 a.m." -> "12/02/2011 6:55 a.m.").
std::string CorruptPrependDate(const std::string& value, Rng* rng);

/// VAD (Flights-style): shifts the minutes of an "H:MM a.m./p.m." time by a
/// few minutes ("8:42 a.m." -> "9:00 a.m.").
std::string CorruptShiftTimeMinutes(const std::string& value, Rng* rng);

/// VAD (generic): replaces the value with a different member of `domain`.
std::string CorruptSwapDomainValue(const std::string& value,
                                   const std::vector<std::string>& domain,
                                   Rng* rng);

}  // namespace birnn::datagen

#endif  // BIRNN_DATAGEN_INJECTOR_H_
