#ifndef BIRNN_DATAGEN_LOADER_H_
#define BIRNN_DATAGEN_LOADER_H_

#include <string>

#include "datagen/injector.h"
#include "util/status.h"

namespace birnn::datagen {

/// Loads a dirty/clean CSV pair from explicit paths. Validates that both
/// tables have matching shapes. Use this to run the harnesses against the
/// *original* benchmark datasets (the Raha repository ships each dataset
/// as a directory with dirty.csv and clean.csv).
StatusOr<DatasetPair> LoadDatasetPair(const std::string& dirty_csv,
                                      const std::string& clean_csv,
                                      const std::string& name);

/// Loads `<dir>/dirty.csv` and `<dir>/clean.csv`; the dataset name is the
/// directory's base name.
StatusOr<DatasetPair> LoadDatasetDir(const std::string& dir);

}  // namespace birnn::datagen

#endif  // BIRNN_DATAGEN_LOADER_H_
