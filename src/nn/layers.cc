#include "nn/layers.h"

#include <cmath>
#include <utility>

#include "nn/init.h"
#include "nn/ops.h"

namespace birnn::nn {

// ---------------------------------------------------------------- Embedding

Embedding::Embedding(std::string name, int vocab, int dim, Rng* rng)
    : table_(name + "/table", Tensor(vocab, dim)) {
  // Keras Embedding default: uniform(-0.05, 0.05).
  UniformInit(&table_.value, 0.05f, rng);
}

void Embedding::LookupForward(const std::vector<int>& ids, Tensor* out) const {
  GatherRows(table_.value, ids, out);
}

// -------------------------------------------------------------------- Dense

Dense::Dense(std::string name, int input_dim, int output_dim, Activation act,
             Rng* rng)
    : w_(name + "/w", Tensor(input_dim, output_dim)),
      b_(name + "/b", Tensor(std::vector<int>{output_dim})),
      act_(act) {
  GlorotUniform(&w_.value, rng);
}

Graph::Var Dense::Bound::Apply(Graph::Var x) const {
  Graph::Var z = g->AddBias(g->MatMul(x, w), b);
  switch (act) {
    case Activation::kNone:
      return z;
    case Activation::kRelu:
      return g->Relu(z);
    case Activation::kTanh:
      return g->Tanh(z);
  }
  return z;
}

Dense::Bound Dense::Bind(Graph* g) {
  return Bound{g, g->Param(&w_), g->Param(&b_), act_};
}

void Dense::ApplyForward(const Tensor& x, Tensor* out) const {
  ForwardScratch scratch;
  ApplyForward(x, out, &scratch);
}

void Dense::ApplyForward(const Tensor& x, Tensor* out,
                         ForwardScratch* scratch) const {
  MatMul(x, w_.value, &scratch->z);
  switch (act_) {
    case Activation::kNone:
      AddBias(scratch->z, b_.value, out);
      return;
    case Activation::kRelu:
      AddBias(scratch->z, b_.value, &scratch->zb);
      ReluElem(scratch->zb, out);
      return;
    case Activation::kTanh:
      AddBiasTanh(scratch->z, b_.value, out);
      return;
  }
}

// -------------------------------------------------------------- BatchNorm1d

BatchNorm1d::BatchNorm1d(std::string name, int features, float momentum,
                         float eps)
    : gamma_(name + "/gamma", Tensor::Full({features}, 1.0f)),
      beta_(name + "/beta", Tensor(std::vector<int>{features})),
      running_mean_(std::vector<int>{features}),
      running_var_(Tensor::Full({features}, 1.0f)),
      momentum_(momentum),
      eps_(eps) {}

Graph::Var BatchNorm1d::Apply(Graph* g, Graph::Var x, bool training) {
  Graph::Var gamma = g->Param(&gamma_);
  Graph::Var beta = g->Param(&beta_);
  if (training) {
    return g->BatchNormTrain(x, gamma, beta, &running_mean_, &running_var_,
                             momentum_, eps_);
  }
  return g->BatchNormInfer(x, gamma, beta, running_mean_, running_var_, eps_);
}

Graph::Var BatchNorm1d::ApplyTrainCaptured(Graph* g, Graph::Var x,
                                           Tensor* mean_out, Tensor* var_out) {
  Graph::Var gamma = g->Param(&gamma_);
  Graph::Var beta = g->Param(&beta_);
  return g->BatchNormTrain(x, gamma, beta, /*running_mean=*/nullptr,
                           /*running_var=*/nullptr, momentum_, eps_, mean_out,
                           var_out);
}

void BatchNorm1d::UpdateRunningStats(const Tensor& batch_mean,
                                     const Tensor& batch_var) {
  BIRNN_CHECK_EQ(batch_mean.size(), running_mean_.size());
  BIRNN_CHECK_EQ(batch_var.size(), running_var_.size());
  for (size_t j = 0; j < running_mean_.size(); ++j) {
    running_mean_[j] =
        momentum_ * running_mean_[j] + (1.0f - momentum_) * batch_mean[j];
    running_var_[j] =
        momentum_ * running_var_[j] + (1.0f - momentum_) * batch_var[j];
  }
}

void BatchNorm1d::ApplyForward(const Tensor& x, Tensor* out) const {
  BIRNN_CHECK_EQ(x.rank(), 2);
  const int n = x.rows();
  const int m = x.cols();
  BIRNN_CHECK_EQ(running_mean_.size(), static_cast<size_t>(m));
  out->ResizeForOverwrite(n, m);
  for (int j = 0; j < m; ++j) {
    const size_t sj = static_cast<size_t>(j);
    const float inv_std =
        1.0f / std::sqrt(running_var_[sj] + eps_);
    const float g = gamma_.value[sj];
    const float b = beta_.value[sj];
    const float mu = running_mean_[sj];
    for (int i = 0; i < n; ++i) {
      out->at(i, j) = g * (x.at(i, j) - mu) * inv_std + b;
    }
  }
}

void BatchNorm1d::SetRunningStats(Tensor mean, Tensor var) {
  BIRNN_CHECK(mean.shape() == running_mean_.shape());
  BIRNN_CHECK(var.shape() == running_var_.shape());
  running_mean_ = std::move(mean);
  running_var_ = std::move(var);
}

// ------------------------------------------------------------------ RnnCell

RnnCell::RnnCell(std::string name, int input_dim, int units, Rng* rng)
    : wx_(name + "/wx", Tensor(input_dim, units)),
      wh_(name + "/wh", Tensor(units, units)),
      bh_(name + "/bh", Tensor(std::vector<int>{units})) {
  // Keras SimpleRNN defaults: glorot-uniform input kernel, orthogonal
  // recurrent kernel, zero bias.
  GlorotUniform(&wx_.value, rng);
  OrthogonalInit(&wh_.value, rng);
}

Graph::Var RnnCell::Bound::Step(Graph::Var x, Graph::Var h_prev) const {
  return g->RnnTanhStep(x, wx, h_prev, wh, bh);
}

RnnCell::Bound RnnCell::Bind(Graph* g) {
  return Bound{g, g->Param(&wx_), g->Param(&wh_), g->Param(&bh_)};
}

void RnnCell::StepForward(const Tensor& x, const Tensor& h_prev,
                          Tensor* h_out) const {
  Tensor zx;
  MatMul(x, wx_.value, &zx);
  MatMulAcc(h_prev, wh_.value, &zx);
  AddBiasTanh(zx, bh_.value, h_out);
}

// -------------------------------------------------------------- StackedBiRnn

StackedBiRnn::StackedBiRnn(std::string name, int input_dim, int units,
                           int stacks, bool bidirectional, Rng* rng)
    : units_(units), stacks_(stacks), bidirectional_(bidirectional) {
  BIRNN_CHECK_GE(stacks, 1);
  const int dirs = bidirectional ? 2 : 1;
  cells_.resize(static_cast<size_t>(dirs));
  for (int d = 0; d < dirs; ++d) {
    cells_[static_cast<size_t>(d)].reserve(static_cast<size_t>(stacks));
    for (int l = 0; l < stacks; ++l) {
      const int in_dim = (l == 0) ? input_dim : units;
      cells_[static_cast<size_t>(d)].emplace_back(
          name + "/dir" + std::to_string(d) + "/level" + std::to_string(l),
          in_dim, units, rng);
    }
  }
}

Graph::Var StackedBiRnn::RunDirection(Graph* g,
                                      const std::vector<Graph::Var>& steps,
                                      int batch, bool backward_direction,
                                      const std::vector<RnnCell*>& cells) {
  std::vector<RnnCell::Bound> bound;
  bound.reserve(cells.size());
  for (RnnCell* c : cells) bound.push_back(c->Bind(g));

  // One hidden state Var per level, initialized to zeros.
  std::vector<Graph::Var> h(cells.size());
  for (size_t l = 0; l < cells.size(); ++l) {
    h[l] = g->Input(Tensor(batch, units_));
  }
  const int t_count = static_cast<int>(steps.size());
  for (int i = 0; i < t_count; ++i) {
    const int t = backward_direction ? (t_count - 1 - i) : i;
    Graph::Var x = steps[static_cast<size_t>(t)];
    for (size_t l = 0; l < cells.size(); ++l) {
      h[l] = bound[l].Step(x, h[l]);
      x = h[l];  // level l+1 consumes level l's hidden state
    }
  }
  return h.back();
}

Graph::Var StackedBiRnn::Apply(Graph* g, const std::vector<Graph::Var>& steps,
                               int batch) {
  BIRNN_CHECK(!steps.empty());
  std::vector<RnnCell*> fwd;
  for (auto& c : cells_[0]) fwd.push_back(&c);
  Graph::Var out_fwd = RunDirection(g, steps, batch, /*backward=*/false, fwd);
  if (!bidirectional_) return out_fwd;
  std::vector<RnnCell*> bwd;
  for (auto& c : cells_[1]) bwd.push_back(&c);
  Graph::Var out_bwd = RunDirection(g, steps, batch, /*backward=*/true, bwd);
  return g->ConcatCols({out_fwd, out_bwd});
}

void StackedBiRnn::RunDirectionForward(
    const std::vector<Tensor>& steps, bool backward_direction,
    const std::vector<const RnnCell*>& cells, Tensor* out) const {
  const int batch = steps[0].rows();
  std::vector<Tensor> h(cells.size(), Tensor(batch, units_));
  Tensor next;
  const int t_count = static_cast<int>(steps.size());
  for (int i = 0; i < t_count; ++i) {
    const int t = backward_direction ? (t_count - 1 - i) : i;
    const Tensor* x = &steps[static_cast<size_t>(t)];
    for (size_t l = 0; l < cells.size(); ++l) {
      cells[l]->StepForward(*x, h[l], &next);
      h[l] = next;
      x = &h[l];
    }
  }
  *out = h.back();
}

void StackedBiRnn::ApplyForward(const std::vector<Tensor>& steps,
                                Tensor* out) const {
  BIRNN_CHECK(!steps.empty());
  std::vector<const RnnCell*> fwd;
  for (const auto& c : cells_[0]) fwd.push_back(&c);
  Tensor out_fwd;
  RunDirectionForward(steps, /*backward=*/false, fwd, &out_fwd);
  if (!bidirectional_) {
    *out = std::move(out_fwd);
    return;
  }
  std::vector<const RnnCell*> bwd;
  for (const auto& c : cells_[1]) bwd.push_back(&c);
  Tensor out_bwd;
  RunDirectionForward(steps, /*backward=*/true, bwd, &out_bwd);
  ConcatCols({&out_fwd, &out_bwd}, out);
}

std::vector<Parameter*> StackedBiRnn::Params() {
  std::vector<Parameter*> out;
  for (auto& dir : cells_) {
    for (auto& cell : dir) {
      for (Parameter* p : cell.Params()) out.push_back(p);
    }
  }
  return out;
}

}  // namespace birnn::nn
