#include "nn/ops.h"

#include <algorithm>
#include <cmath>

namespace birnn::nn {

namespace {
void EnsureShape(Tensor* t, int rows, int cols) {
  if (t->rank() != 2 || t->rows() != rows || t->cols() != cols) {
    *t = Tensor(rows, cols);
  } else {
    t->Zero();
  }
}
}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  BIRNN_CHECK_EQ(a.rank(), 2);
  BIRNN_CHECK_EQ(b.rank(), 2);
  BIRNN_CHECK_EQ(a.cols(), b.rows());
  EnsureShape(out, a.rows(), b.cols());
  MatMulAcc(a, b, out);
}

void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  BIRNN_CHECK_EQ(b.rows(), k);
  BIRNN_CHECK_EQ(out->rows(), n);
  BIRNN_CHECK_EQ(out->cols(), m);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  // i-k-j loop order: streams through b and c rows, vectorizes the inner j
  // loop. Adequate for the 32–256 wide matrices this library uses.
  for (int i = 0; i < n; ++i) {
    const float* arow = pa + static_cast<size_t>(i) * k;
    float* crow = pc + static_cast<size_t>(i) * m;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = pb + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeAAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  BIRNN_CHECK_EQ(b.rows(), n);
  BIRNN_CHECK_EQ(out->rows(), k);
  BIRNN_CHECK_EQ(out->cols(), m);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  for (int i = 0; i < n; ++i) {
    const float* arow = pa + static_cast<size_t>(i) * k;
    const float* brow = pb + static_cast<size_t>(i) * m;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* crow = pc + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeBAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  const int n = a.rows();
  const int m = a.cols();
  const int k = b.rows();
  BIRNN_CHECK_EQ(b.cols(), m);
  BIRNN_CHECK_EQ(out->rows(), n);
  BIRNN_CHECK_EQ(out->cols(), k);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  for (int i = 0; i < n; ++i) {
    const float* arow = pa + static_cast<size_t>(i) * m;
    float* crow = pc + static_cast<size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float* brow = pb + static_cast<size_t>(kk) * m;
      float dot = 0.0f;
      for (int j = 0; j < m; ++j) dot += arow[j] * brow[j];
      crow[kk] += dot;
    }
  }
}

void AddBias(const Tensor& x, const Tensor& bias, Tensor* out) {
  BIRNN_CHECK_EQ(x.rank(), 2);
  const int n = x.rows();
  const int m = x.cols();
  BIRNN_CHECK_EQ(bias.size(), static_cast<size_t>(m));
  *out = x;
  float* po = out->data();
  const float* pb = bias.data();
  for (int i = 0; i < n; ++i) {
    float* row = po + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) row[j] += pb[j];
  }
}

void AddElem(const Tensor& a, const Tensor& b, Tensor* out) {
  BIRNN_CHECK(a.shape() == b.shape());
  *out = a;
  for (size_t i = 0; i < b.size(); ++i) (*out)[i] += b[i];
}

void SubElem(const Tensor& a, const Tensor& b, Tensor* out) {
  BIRNN_CHECK(a.shape() == b.shape());
  *out = a;
  for (size_t i = 0; i < b.size(); ++i) (*out)[i] -= b[i];
}

void MulElem(const Tensor& a, const Tensor& b, Tensor* out) {
  BIRNN_CHECK(a.shape() == b.shape());
  *out = a;
  for (size_t i = 0; i < b.size(); ++i) (*out)[i] *= b[i];
}

void TanhElem(const Tensor& x, Tensor* out) {
  *out = x;
  for (size_t i = 0; i < out->size(); ++i) (*out)[i] = std::tanh((*out)[i]);
}

void ReluElem(const Tensor& x, Tensor* out) {
  *out = x;
  for (size_t i = 0; i < out->size(); ++i) {
    (*out)[i] = std::max(0.0f, (*out)[i]);
  }
}

void SigmoidElem(const Tensor& x, Tensor* out) {
  *out = x;
  for (size_t i = 0; i < out->size(); ++i) {
    (*out)[i] = 1.0f / (1.0f + std::exp(-(*out)[i]));
  }
}

void SoftmaxRows(const Tensor& logits, Tensor* out) {
  BIRNN_CHECK_EQ(logits.rank(), 2);
  const int n = logits.rows();
  const int m = logits.cols();
  *out = logits;
  float* p = out->data();
  for (int i = 0; i < n; ++i) {
    float* row = p + static_cast<size_t>(i) * m;
    float mx = row[0];
    for (int j = 1; j < m; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (int j = 0; j < m; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < m; ++j) row[j] *= inv;
  }
}

void ConcatCols(const std::vector<const Tensor*>& parts, Tensor* out) {
  BIRNN_CHECK(!parts.empty());
  const int n = parts[0]->rows();
  int total = 0;
  for (const Tensor* p : parts) {
    BIRNN_CHECK_EQ(p->rank(), 2);
    BIRNN_CHECK_EQ(p->rows(), n);
    total += p->cols();
  }
  *out = Tensor(n, total);
  float* po = out->data();
  for (int i = 0; i < n; ++i) {
    float* row = po + static_cast<size_t>(i) * total;
    int off = 0;
    for (const Tensor* p : parts) {
      const int m = p->cols();
      const float* src = p->data() + static_cast<size_t>(i) * m;
      std::copy(src, src + m, row + off);
      off += m;
    }
  }
}

void SliceCols(const Tensor& x, int start, int count, Tensor* out) {
  BIRNN_CHECK_EQ(x.rank(), 2);
  BIRNN_CHECK_GE(start, 0);
  BIRNN_CHECK_GE(count, 0);
  BIRNN_CHECK_LE(start + count, x.cols());
  const int n = x.rows();
  const int m = x.cols();
  *out = Tensor(n, count);
  for (int i = 0; i < n; ++i) {
    const float* src = x.data() + static_cast<size_t>(i) * m + start;
    float* dst = out->data() + static_cast<size_t>(i) * count;
    std::copy(src, src + count, dst);
  }
}

void GatherRows(const Tensor& table, const std::vector<int>& ids,
                Tensor* out) {
  BIRNN_CHECK_EQ(table.rank(), 2);
  const int e = table.cols();
  const int n = static_cast<int>(ids.size());
  *out = Tensor(n, e);
  for (int i = 0; i < n; ++i) {
    const int id = ids[static_cast<size_t>(i)];
    BIRNN_CHECK_GE(id, 0);
    BIRNN_CHECK_LT(id, table.rows());
    const float* src = table.data() + static_cast<size_t>(id) * e;
    std::copy(src, src + e, out->data() + static_cast<size_t>(i) * e);
  }
}

void ScatterAddRows(const Tensor& grad, const std::vector<int>& ids,
                    Tensor* table_grad) {
  BIRNN_CHECK_EQ(grad.rank(), 2);
  BIRNN_CHECK_EQ(grad.rows(), static_cast<int>(ids.size()));
  const int e = grad.cols();
  BIRNN_CHECK_EQ(table_grad->cols(), e);
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    const float* src = grad.data() + i * static_cast<size_t>(e);
    float* dst = table_grad->data() + static_cast<size_t>(id) * e;
    for (int j = 0; j < e; ++j) dst[j] += src[j];
  }
}

void ColSum(const Tensor& x, Tensor* out) {
  BIRNN_CHECK_EQ(x.rank(), 2);
  const int n = x.rows();
  const int m = x.cols();
  *out = Tensor(std::vector<int>{m});
  float* po = out->data();
  for (int i = 0; i < n; ++i) {
    const float* row = x.data() + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) po[j] += row[j];
  }
}

float SoftmaxCrossEntropyLoss(const Tensor& logits,
                              const std::vector<int>& labels, Tensor* probs) {
  BIRNN_CHECK_EQ(logits.rank(), 2);
  BIRNN_CHECK_EQ(logits.rows(), static_cast<int>(labels.size()));
  Tensor local;
  Tensor* p = probs != nullptr ? probs : &local;
  SoftmaxRows(logits, p);
  const int n = logits.rows();
  const int m = logits.cols();
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<size_t>(i)];
    BIRNN_CHECK_GE(y, 0);
    BIRNN_CHECK_LT(y, m);
    const float py = std::max(p->at(i, y), 1e-12f);
    loss -= std::log(static_cast<double>(py));
  }
  return static_cast<float>(loss / std::max(1, n));
}

}  // namespace birnn::nn
