#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "nn/vecmath.h"

namespace birnn::nn {

namespace {
void EnsureShapeZeroed(Tensor* t, int rows, int cols) {
  t->Resize(rows, cols);
}
}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  BIRNN_CHECK_EQ(a.rank(), 2);
  BIRNN_CHECK_EQ(b.rank(), 2);
  BIRNN_CHECK_EQ(a.cols(), b.rows());
  EnsureShapeZeroed(out, a.rows(), b.cols());
  MatMulAcc(a, b, out);
}

void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  BIRNN_CHECK_EQ(b.rows(), k);
  BIRNN_CHECK_EQ(out->rows(), n);
  BIRNN_CHECK_EQ(out->cols(), m);
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict pc = out->data();
  // i-k-j order with the k loop register-blocked by 4: each pass over a row
  // of c performs four fused multiply-adds per load/store of c[j], and the
  // inner j loop stays contiguous so it vectorizes.
  for (int i = 0; i < n; ++i) {
    const float* __restrict arow = pa + static_cast<size_t>(i) * k;
    float* __restrict crow = pc + static_cast<size_t>(i) * m;
    int kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float a0 = arow[kk];
      const float a1 = arow[kk + 1];
      const float a2 = arow[kk + 2];
      const float a3 = arow[kk + 3];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* __restrict b0 = pb + static_cast<size_t>(kk) * m;
      const float* __restrict b1 = b0 + m;
      const float* __restrict b2 = b1 + m;
      const float* __restrict b3 = b2 + m;
      for (int j = 0; j < m; ++j) {
        crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
    }
    for (; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* __restrict brow = pb + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeAAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  BIRNN_CHECK_EQ(b.rows(), n);
  BIRNN_CHECK_EQ(out->rows(), k);
  BIRNN_CHECK_EQ(out->cols(), m);
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict pc = out->data();
  // Blocked over four rows of a/b at a time so every c row written in the
  // kk loop receives four rank-1 contributions per pass.
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* __restrict a0 = pa + static_cast<size_t>(i) * k;
    const float* __restrict a1 = a0 + k;
    const float* __restrict a2 = a1 + k;
    const float* __restrict a3 = a2 + k;
    const float* __restrict b0 = pb + static_cast<size_t>(i) * m;
    const float* __restrict b1 = b0 + m;
    const float* __restrict b2 = b1 + m;
    const float* __restrict b3 = b2 + m;
    for (int kk = 0; kk < k; ++kk) {
      const float w0 = a0[kk];
      const float w1 = a1[kk];
      const float w2 = a2[kk];
      const float w3 = a3[kk];
      if (w0 == 0.0f && w1 == 0.0f && w2 == 0.0f && w3 == 0.0f) continue;
      float* __restrict crow = pc + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) {
        crow[j] += w0 * b0[j] + w1 * b1[j] + w2 * b2[j] + w3 * b3[j];
      }
    }
  }
  for (; i < n; ++i) {
    const float* __restrict arow = pa + static_cast<size_t>(i) * k;
    const float* __restrict brow = pb + static_cast<size_t>(i) * m;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* __restrict crow = pc + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposeBAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  const int n = a.rows();
  const int m = a.cols();
  const int k = b.rows();
  BIRNN_CHECK_EQ(b.cols(), m);
  BIRNN_CHECK_EQ(out->rows(), n);
  BIRNN_CHECK_EQ(out->cols(), k);
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict pc = out->data();
  // The natural formulation is a row-times-row dot product, but a float
  // reduction cannot be vectorized under strict FP semantics. Instead,
  // transpose b into a (thread-local, reused) scratch buffer and run the
  // same broadcast-FMA i-k-j pattern as MatMulAcc, which keeps the inner
  // loop contiguous and reduction-free. The transpose is O(k*m) against
  // O(n*k*m) compute.
  thread_local std::vector<float> bt_scratch;
  bt_scratch.resize(static_cast<size_t>(m) * k);
  float* __restrict pt = bt_scratch.data();
  for (int kk = 0; kk < k; ++kk) {
    const float* __restrict brow = pb + static_cast<size_t>(kk) * m;
    for (int j = 0; j < m; ++j) {
      pt[static_cast<size_t>(j) * k + kk] = brow[j];
    }
  }
  for (int i = 0; i < n; ++i) {
    const float* __restrict arow = pa + static_cast<size_t>(i) * m;
    float* __restrict crow = pc + static_cast<size_t>(i) * k;
    int j = 0;
    for (; j + 4 <= m; j += 4) {
      const float a0 = arow[j];
      const float a1 = arow[j + 1];
      const float a2 = arow[j + 2];
      const float a3 = arow[j + 3];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* __restrict t0 = pt + static_cast<size_t>(j) * k;
      const float* __restrict t1 = t0 + k;
      const float* __restrict t2 = t1 + k;
      const float* __restrict t3 = t2 + k;
      for (int kk = 0; kk < k; ++kk) {
        crow[kk] += a0 * t0[kk] + a1 * t1[kk] + a2 * t2[kk] + a3 * t3[kk];
      }
    }
    for (; j < m; ++j) {
      const float av = arow[j];
      if (av == 0.0f) continue;
      const float* __restrict trow = pt + static_cast<size_t>(j) * k;
      for (int kk = 0; kk < k; ++kk) crow[kk] += av * trow[kk];
    }
  }
}

void AddBias(const Tensor& x, const Tensor& bias, Tensor* out) {
  BIRNN_CHECK_EQ(x.rank(), 2);
  const int n = x.rows();
  const int m = x.cols();
  BIRNN_CHECK_EQ(bias.size(), static_cast<size_t>(m));
  out->ResizeForOverwrite(x.shape());
  const float* __restrict px = x.data();
  const float* __restrict pb = bias.data();
  float* __restrict po = out->data();
  for (int i = 0; i < n; ++i) {
    const float* __restrict xrow = px + static_cast<size_t>(i) * m;
    float* __restrict row = po + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) row[j] = xrow[j] + pb[j];
  }
}

void AddBiasTanh(const Tensor& x, const Tensor& bias, Tensor* out) {
  BIRNN_CHECK_EQ(x.rank(), 2);
  const int n = x.rows();
  const int m = x.cols();
  BIRNN_CHECK_EQ(bias.size(), static_cast<size_t>(m));
  out->ResizeForOverwrite(x.shape());
  const float* __restrict px = x.data();
  const float* __restrict pb = bias.data();
  float* __restrict po = out->data();
  for (int i = 0; i < n; ++i) {
    const float* __restrict xrow = px + static_cast<size_t>(i) * m;
    float* __restrict row = po + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) row[j] = xrow[j] + pb[j];
  }
  TanhVec(po, po, static_cast<size_t>(n) * m);
}

void AddElem(const Tensor& a, const Tensor& b, Tensor* out) {
  BIRNN_CHECK(a.shape() == b.shape());
  out->ResizeForOverwrite(a.shape());
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict po = out->data();
  const size_t sz = a.size();
  for (size_t i = 0; i < sz; ++i) po[i] = pa[i] + pb[i];
}

void SubElem(const Tensor& a, const Tensor& b, Tensor* out) {
  BIRNN_CHECK(a.shape() == b.shape());
  out->ResizeForOverwrite(a.shape());
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict po = out->data();
  const size_t sz = a.size();
  for (size_t i = 0; i < sz; ++i) po[i] = pa[i] - pb[i];
}

void MulElem(const Tensor& a, const Tensor& b, Tensor* out) {
  BIRNN_CHECK(a.shape() == b.shape());
  out->ResizeForOverwrite(a.shape());
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict po = out->data();
  const size_t sz = a.size();
  for (size_t i = 0; i < sz; ++i) po[i] = pa[i] * pb[i];
}

void TanhElem(const Tensor& x, Tensor* out) {
  out->ResizeForOverwrite(x.shape());
  TanhVec(x.data(), out->data(), x.size());
}

void ReluElem(const Tensor& x, Tensor* out) {
  out->ResizeForOverwrite(x.shape());
  const float* __restrict px = x.data();
  float* __restrict po = out->data();
  const size_t sz = x.size();
  for (size_t i = 0; i < sz; ++i) po[i] = px[i] > 0.0f ? px[i] : 0.0f;
}

void SigmoidElem(const Tensor& x, Tensor* out) {
  out->ResizeForOverwrite(x.shape());
  SigmoidVec(x.data(), out->data(), x.size());
}

void SoftmaxRows(const Tensor& logits, Tensor* out) {
  BIRNN_CHECK_EQ(logits.rank(), 2);
  const int n = logits.rows();
  const int m = logits.cols();
  out->ResizeForOverwrite(logits.shape());
  const float* __restrict pl = logits.data();
  float* __restrict p = out->data();
  for (int i = 0; i < n; ++i) {
    const float* __restrict lrow = pl + static_cast<size_t>(i) * m;
    float* __restrict row = p + static_cast<size_t>(i) * m;
    float mx = lrow[0];
    for (int j = 1; j < m; ++j) mx = std::max(mx, lrow[j]);
    float sum = 0.0f;
    for (int j = 0; j < m; ++j) {
      row[j] = std::exp(lrow[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < m; ++j) row[j] *= inv;
  }
}

void ConcatCols(const std::vector<const Tensor*>& parts, Tensor* out) {
  BIRNN_CHECK(!parts.empty());
  const int n = parts[0]->rows();
  int total = 0;
  for (const Tensor* p : parts) {
    BIRNN_CHECK_EQ(p->rank(), 2);
    BIRNN_CHECK_EQ(p->rows(), n);
    total += p->cols();
  }
  out->ResizeForOverwrite(n, total);
  float* po = out->data();
  for (int i = 0; i < n; ++i) {
    float* row = po + static_cast<size_t>(i) * total;
    int off = 0;
    for (const Tensor* p : parts) {
      const int m = p->cols();
      const float* src = p->data() + static_cast<size_t>(i) * m;
      std::copy(src, src + m, row + off);
      off += m;
    }
  }
}

void SliceCols(const Tensor& x, int start, int count, Tensor* out) {
  BIRNN_CHECK_EQ(x.rank(), 2);
  BIRNN_CHECK_GE(start, 0);
  BIRNN_CHECK_GE(count, 0);
  BIRNN_CHECK_LE(start + count, x.cols());
  const int n = x.rows();
  const int m = x.cols();
  out->ResizeForOverwrite(n, count);
  for (int i = 0; i < n; ++i) {
    const float* src = x.data() + static_cast<size_t>(i) * m + start;
    float* dst = out->data() + static_cast<size_t>(i) * count;
    std::copy(src, src + count, dst);
  }
}

void GatherRows(const Tensor& table, const std::vector<int>& ids,
                Tensor* out) {
  BIRNN_CHECK_EQ(table.rank(), 2);
  const int e = table.cols();
  const int n = static_cast<int>(ids.size());
  out->ResizeForOverwrite(n, e);
  for (int i = 0; i < n; ++i) {
    const int id = ids[static_cast<size_t>(i)];
    BIRNN_CHECK_GE(id, 0);
    BIRNN_CHECK_LT(id, table.rows());
    const float* src = table.data() + static_cast<size_t>(id) * e;
    std::copy(src, src + e, out->data() + static_cast<size_t>(i) * e);
  }
}

void ScatterAddRows(const Tensor& grad, const std::vector<int>& ids,
                    Tensor* table_grad) {
  BIRNN_CHECK_EQ(grad.rank(), 2);
  BIRNN_CHECK_EQ(grad.rows(), static_cast<int>(ids.size()));
  const int e = grad.cols();
  BIRNN_CHECK_EQ(table_grad->cols(), e);
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    const float* __restrict src = grad.data() + i * static_cast<size_t>(e);
    float* __restrict dst = table_grad->data() + static_cast<size_t>(id) * e;
    for (int j = 0; j < e; ++j) dst[j] += src[j];
  }
}

void ColSum(const Tensor& x, Tensor* out) {
  BIRNN_CHECK_EQ(x.rank(), 2);
  const int n = x.rows();
  const int m = x.cols();
  out->Resize(std::vector<int>{m});
  float* __restrict po = out->data();
  for (int i = 0; i < n; ++i) {
    const float* __restrict row = x.data() + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) po[j] += row[j];
  }
}

float SoftmaxCrossEntropyLoss(const Tensor& logits,
                              const std::vector<int>& labels, Tensor* probs) {
  BIRNN_CHECK_EQ(logits.rank(), 2);
  BIRNN_CHECK_EQ(logits.rows(), static_cast<int>(labels.size()));
  Tensor local;
  Tensor* p = probs != nullptr ? probs : &local;
  SoftmaxRows(logits, p);
  const int n = logits.rows();
  const int m = logits.cols();
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<size_t>(i)];
    BIRNN_CHECK_GE(y, 0);
    BIRNN_CHECK_LT(y, m);
    const float py = std::max(p->at(i, y), 1e-12f);
    loss -= std::log(static_cast<double>(py));
  }
  return static_cast<float>(loss / std::max(1, n));
}

}  // namespace birnn::nn
