#ifndef BIRNN_NN_SERIALIZE_H_
#define BIRNN_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/status.h"

namespace birnn::nn {

/// Element dtypes a v2 checkpoint entry can carry. f32 entries are model
/// parameters; i8/u16 entries are quantized shadow weights (nn/quant.h).
inline constexpr uint8_t kDtypeF32 = 0;
inline constexpr uint8_t kDtypeI8 = 1;
inline constexpr uint8_t kDtypeU16 = 2;

/// Returns the element size for a dtype tag, or 0 if unknown.
size_t DtypeSize(uint8_t dtype);

/// One non-parameter checkpoint entry (v2 format): a named, typed, shaped
/// raw blob. Carried alongside the fp32 parameters so a bundle can ship
/// pre-quantized weights and make low-precision loading zero-cost.
struct TypedEntry {
  std::string name;
  uint8_t dtype = kDtypeF32;
  std::vector<int> shape;
  std::string bytes;  ///< little-endian payload, ShapeSize(shape)*DtypeSize.
};

/// In-memory snapshot of parameter values (the paper's "save the training
/// weights with a callback if the loss improved"). Order matters: restore
/// into the same parameter list.
std::vector<Tensor> SnapshotParams(const std::vector<Parameter*>& params);

/// Writes snapshot values back into the parameters. Shapes must match.
void RestoreParams(const std::vector<Tensor>& snapshot,
                   const std::vector<Parameter*>& params);

/// Binary on-disk checkpoint, format v1:
///   magic "BRNNCKPT"
///   u32  0xFFFFFFFF           version sentinel (v0 stored the entry count
///                             here; four billion parameters is impossible,
///                             so the sentinel is unambiguous)
///   u8   format version (1)
///   payload: u32 count, then per parameter: u32 name length, name bytes,
///            u32 rank, dims (i32 each), float32 data
///   u64  FNV-1a checksum of the payload bytes
/// Little-endian (the only platform we target). The trailing checksum makes
/// truncated or bit-flipped files fail loudly instead of loading garbage
/// weights.
Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

/// Binary checkpoint, format v2: same framing as v1 (magic, sentinel,
/// version byte 2, payload, trailing FNV-1a checksum) but every payload
/// entry carries a dtype byte after its name:
///   u32 count, then per entry: u32 name length, name bytes, u8 dtype,
///   u32 rank, dims (i32 each), raw element data (dtype-sized)
/// fp32 params are written first, then `extras` (typed blobs — the
/// pre-quantized shadow weights). v1 files remain loadable; v2 is only
/// written when there are extras to carry.
Status SaveParametersV2(const std::vector<Parameter*>& params,
                        const std::vector<TypedEntry>& extras,
                        const std::string& path);

/// Loads a checkpoint saved by SaveParameters or SaveParametersV2.
/// Verifies the payload checksum (v1/v2), then matches parameters by name;
/// a missing, shape-mismatched, duplicate or *extra* unmatched entry is an
/// error — a checkpoint that does not exactly cover the parameter list is
/// treated as drift, not silently accepted. Files written before the
/// checksum existed (v0: count immediately after the magic) still load.
/// Non-f32 entries (v2) — plus any v2 f32 entry that matches no parameter,
/// i.e. the "__q8s/..." quantization scales — are returned through `extras`
/// when non-null and rejected otherwise.
Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params,
                      std::vector<TypedEntry>* extras);
Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params);

}  // namespace birnn::nn

#endif  // BIRNN_NN_SERIALIZE_H_
