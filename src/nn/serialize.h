#ifndef BIRNN_NN_SERIALIZE_H_
#define BIRNN_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/status.h"

namespace birnn::nn {

/// In-memory snapshot of parameter values (the paper's "save the training
/// weights with a callback if the loss improved"). Order matters: restore
/// into the same parameter list.
std::vector<Tensor> SnapshotParams(const std::vector<Parameter*>& params);

/// Writes snapshot values back into the parameters. Shapes must match.
void RestoreParams(const std::vector<Tensor>& snapshot,
                   const std::vector<Parameter*>& params);

/// Binary on-disk checkpoint. Format: magic "BRNNCKPT", u32 count, then per
/// parameter: u32 name length, name bytes, u32 rank, dims (i32 each),
/// float32 data. Little-endian (the only platform we target).
Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

/// Loads a checkpoint saved by SaveParameters. Parameters are matched by
/// name; a missing or shape-mismatched entry is an error.
Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params);

}  // namespace birnn::nn

#endif  // BIRNN_NN_SERIALIZE_H_
