#ifndef BIRNN_NN_SERIALIZE_H_
#define BIRNN_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "util/status.h"

namespace birnn::nn {

/// In-memory snapshot of parameter values (the paper's "save the training
/// weights with a callback if the loss improved"). Order matters: restore
/// into the same parameter list.
std::vector<Tensor> SnapshotParams(const std::vector<Parameter*>& params);

/// Writes snapshot values back into the parameters. Shapes must match.
void RestoreParams(const std::vector<Tensor>& snapshot,
                   const std::vector<Parameter*>& params);

/// Binary on-disk checkpoint, format v1:
///   magic "BRNNCKPT"
///   u32  0xFFFFFFFF           version sentinel (v0 stored the entry count
///                             here; four billion parameters is impossible,
///                             so the sentinel is unambiguous)
///   u8   format version (1)
///   payload: u32 count, then per parameter: u32 name length, name bytes,
///            u32 rank, dims (i32 each), float32 data
///   u64  FNV-1a checksum of the payload bytes
/// Little-endian (the only platform we target). The trailing checksum makes
/// truncated or bit-flipped files fail loudly instead of loading garbage
/// weights.
Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

/// Loads a checkpoint saved by SaveParameters. Verifies the payload
/// checksum (v1), then matches parameters by name; a missing,
/// shape-mismatched, duplicate or *extra* unmatched entry is an error —
/// a checkpoint that does not exactly cover the parameter list is treated
/// as drift, not silently accepted. Files written before the checksum
/// existed (v0: count immediately after the magic) still load.
Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params);

}  // namespace birnn::nn

#endif  // BIRNN_NN_SERIALIZE_H_
