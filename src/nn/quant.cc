#include "nn/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX512BW__)
#include <immintrin.h>
#endif

#include "nn/ops.h"
#include "util/string_util.h"

namespace birnn::nn {

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
  }
  return "?";
}

StatusOr<Precision> ParsePrecision(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "fp32" || lower == "float32" || lower == "f32") {
    return Precision::kFp32;
  }
  if (lower == "bf16" || lower == "bfloat16") return Precision::kBf16;
  if (lower == "int8" || lower == "i8" || lower == "q8") {
    return Precision::kInt8;
  }
  return Status::NotFound("unknown precision: " + name);
}

uint16_t Bf16FromFloat(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return static_cast<uint16_t>(bits >> 16);
}

float FloatFromBf16(uint16_t v) {
  const uint32_t bits = static_cast<uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

namespace {

/// float with the low 16 mantissa bits chopped (round-toward-zero bf16).
inline float TruncateBf16(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bits &= 0xFFFF0000u;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

/// rint to int8 range. lrintf uses the process rounding mode, which this
/// codebase never changes from the default (nearest-even) — deterministic.
inline int8_t QuantizeValue(float v, float inv_scale) {
  const long q = std::lrintf(v * inv_scale);
  return static_cast<int8_t>(std::clamp<long>(q, -127, 127));
}

}  // namespace

void QuantizedMatrix::RebuildPacked() {
  const int kp = (cols + 1) / 2;
  packed.assign(static_cast<size_t>(kp) * rows * 2, 0);
  for (int p = 0; p < kp; ++p) {
    for (int j = 0; j < rows; ++j) {
      const size_t dst = (static_cast<size_t>(p) * rows + j) * 2;
      packed[dst] = q[static_cast<size_t>(j) * cols + 2 * p];
      if (2 * p + 1 < cols) {
        packed[dst + 1] = q[static_cast<size_t>(j) * cols + 2 * p + 1];
      }
    }
  }
}

QuantizedMatrix QuantizeWeightInt8(const Tensor& w) {
  BIRNN_CHECK_EQ(w.rank(), 2);
  const int in = w.rows();
  const int out = w.cols();
  QuantizedMatrix m;
  m.rows = out;
  m.cols = in;
  m.q.resize(static_cast<size_t>(out) * in);
  m.scales.resize(static_cast<size_t>(out));
  for (int j = 0; j < out; ++j) {
    float absmax = 0.0f;
    for (int k = 0; k < in; ++k) {
      absmax = std::max(absmax, std::fabs(w.at(k, j)));
    }
    const float scale = absmax / 127.0f;
    const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
    m.scales[static_cast<size_t>(j)] = scale;
    for (int k = 0; k < in; ++k) {
      m.q[static_cast<size_t>(j) * in + k] = QuantizeValue(w.at(k, j), inv);
    }
  }
  m.RebuildPacked();
  return m;
}

QuantizedMatrix QuantizedMatrixFromParts(int rows, int cols,
                                         std::vector<int8_t> q,
                                         std::vector<float> scales) {
  BIRNN_CHECK_EQ(q.size(), static_cast<size_t>(rows) * cols);
  BIRNN_CHECK_EQ(scales.size(), static_cast<size_t>(rows));
  QuantizedMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.q = std::move(q);
  m.scales = std::move(scales);
  m.RebuildPacked();
  return m;
}

Bf16Matrix QuantizeWeightBf16(const Tensor& w) {
  BIRNN_CHECK_EQ(w.rank(), 2);
  Bf16Matrix m;
  m.rows = w.rows();
  m.cols = w.cols();
  m.q.resize(w.size());
  for (size_t i = 0; i < w.size(); ++i) m.q[i] = Bf16FromFloat(w[i]);
  return m;
}

namespace {

/// Quantizes each row of x (n,k) to int16-widened int8 values in
/// scratch->aq (stride 2*kp, odd tail zero-padded) with per-row scales.
/// The AVX-512 tier is bit-identical to the scalar one: cvtps2dq rounds
/// nearest-even exactly like lrintf under the default rounding mode, and
/// the clamp bounds match.
void QuantizeRows(const Tensor& x, int kp, QuantScratch* scratch) {
  const int n = x.rows();
  const int k = x.cols();
  scratch->aq.assign(static_cast<size_t>(n) * kp * 2, 0);
  scratch->ascale.resize(static_cast<size_t>(n));
  const float* __restrict px = x.data();
  for (int i = 0; i < n; ++i) {
    const float* __restrict row = px + static_cast<size_t>(i) * k;
    float absmax = 0.0f;
    int c = 0;
#if defined(__AVX512F__)
    if (k >= 16) {
      __m512 vmax = _mm512_setzero_ps();
      const __m512 sign_mask =
          _mm512_castsi512_ps(_mm512_set1_epi32(0x7FFFFFFF));
      for (; c + 16 <= k; c += 16) {
        const __m512 v = _mm512_and_ps(_mm512_loadu_ps(row + c), sign_mask);
        vmax = _mm512_max_ps(vmax, v);
      }
      absmax = _mm512_reduce_max_ps(vmax);
    }
#endif
    for (; c < k; ++c) absmax = std::max(absmax, std::fabs(row[c]));
    const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
    scratch->ascale[static_cast<size_t>(i)] = absmax / 127.0f;
    int16_t* __restrict qrow = scratch->aq.data() + static_cast<size_t>(i) * kp * 2;
    c = 0;
#if defined(__AVX512F__)
    {
      const __m512 vinv = _mm512_set1_ps(inv);
      const __m512i lo = _mm512_set1_epi32(-127);
      const __m512i hi = _mm512_set1_epi32(127);
      for (; c + 16 <= k; c += 16) {
        const __m512i qi = _mm512_max_epi32(
            lo, _mm512_min_epi32(
                    hi, _mm512_cvtps_epi32(
                            _mm512_mul_ps(_mm512_loadu_ps(row + c), vinv))));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(qrow + c),
                            _mm512_cvtsepi32_epi16(qi));
      }
    }
#endif
    for (; c < k; ++c) qrow[c] = QuantizeValue(row[c], inv);
  }
}

/// acc[i][j] = Σ_k aq[i][k] · w.q[j][k], exact int32. The packed layout
/// pairs adjacent k so the inner op is a pairwise multiply-add; integer
/// arithmetic is exact, so the scalar and SIMD tiers are bit-identical.
void Int8Gemm(const QuantScratch& scratch, int n, int kp,
              const QuantizedMatrix& w, int32_t* __restrict acc) {
  const int m = w.rows;
  const int16_t* __restrict wp = w.packed.data();
  for (int i = 0; i < n; ++i) {
    const int16_t* __restrict arow =
        scratch.aq.data() + static_cast<size_t>(i) * kp * 2;
    int32_t* __restrict accrow = acc + static_cast<size_t>(i) * m;
    int j = 0;
#if defined(__AVX512BW__)
    for (; j + 64 <= m; j += 64) {
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      for (int p = 0; p < kp; ++p) {
        const uint32_t pair =
            static_cast<uint16_t>(arow[2 * p]) |
            (static_cast<uint32_t>(static_cast<uint16_t>(arow[2 * p + 1]))
             << 16);
        const __m512i av = _mm512_set1_epi32(static_cast<int>(pair));
        const int16_t* wrow = wp + (static_cast<size_t>(p) * m + j) * 2;
        const __m512i w0 = _mm512_loadu_si512(wrow);
        const __m512i w1 = _mm512_loadu_si512(wrow + 32);
        const __m512i w2 = _mm512_loadu_si512(wrow + 64);
        const __m512i w3 = _mm512_loadu_si512(wrow + 96);
#if defined(__AVX512VNNI__)
        acc0 = _mm512_dpwssd_epi32(acc0, av, w0);
        acc1 = _mm512_dpwssd_epi32(acc1, av, w1);
        acc2 = _mm512_dpwssd_epi32(acc2, av, w2);
        acc3 = _mm512_dpwssd_epi32(acc3, av, w3);
#else
        acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(av, w0));
        acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(av, w1));
        acc2 = _mm512_add_epi32(acc2, _mm512_madd_epi16(av, w2));
        acc3 = _mm512_add_epi32(acc3, _mm512_madd_epi16(av, w3));
#endif
      }
      _mm512_storeu_si512(accrow + j, acc0);
      _mm512_storeu_si512(accrow + j + 16, acc1);
      _mm512_storeu_si512(accrow + j + 32, acc2);
      _mm512_storeu_si512(accrow + j + 48, acc3);
    }
    for (; j + 16 <= m; j += 16) {
      __m512i vacc = _mm512_setzero_si512();
      for (int p = 0; p < kp; ++p) {
        const uint32_t pair =
            static_cast<uint16_t>(arow[2 * p]) |
            (static_cast<uint32_t>(static_cast<uint16_t>(arow[2 * p + 1]))
             << 16);
        const __m512i av = _mm512_set1_epi32(static_cast<int>(pair));
        const __m512i wv =
            _mm512_loadu_si512(wp + (static_cast<size_t>(p) * m + j) * 2);
#if defined(__AVX512VNNI__)
        vacc = _mm512_dpwssd_epi32(vacc, av, wv);
#else
        vacc = _mm512_add_epi32(vacc, _mm512_madd_epi16(av, wv));
#endif
      }
      _mm512_storeu_si512(accrow + j, vacc);
    }
#endif  // __AVX512BW__
    for (; j < m; ++j) {
      int32_t s = 0;
      for (int p = 0; p < kp; ++p) {
        const int32_t a0 = arow[2 * p];
        const int32_t a1 = arow[2 * p + 1];
        const int16_t* w2 = wp + (static_cast<size_t>(p) * m + j) * 2;
        s += a0 * w2[0] + a1 * w2[1];
      }
      accrow[j] = s;
    }
  }
}

/// out[i][j] (= or +=) float(acc[i][j]) * (ascale[i] * w.scales[j]) — the
/// documented combined-scale expression; tests replicate it verbatim.
void ApplyScales(const QuantScratch& scratch, int n,
                 const QuantizedMatrix& w, bool accumulate, Tensor* out) {
  const int m = w.rows;
  const int32_t* __restrict acc = scratch.acc.data();
  const float* __restrict ws = w.scales.data();
  float* __restrict pc = out->data();
  for (int i = 0; i < n; ++i) {
    const float as = scratch.ascale[static_cast<size_t>(i)];
    const int32_t* __restrict accrow = acc + static_cast<size_t>(i) * m;
    float* __restrict crow = pc + static_cast<size_t>(i) * m;
    if (accumulate) {
      for (int j = 0; j < m; ++j) {
        crow[j] += static_cast<float>(accrow[j]) * (as * ws[j]);
      }
    } else {
      for (int j = 0; j < m; ++j) {
        crow[j] = static_cast<float>(accrow[j]) * (as * ws[j]);
      }
    }
  }
}

void Int8MatMulImpl(const Tensor& x, const QuantizedMatrix& w, bool accumulate,
                    Tensor* out, QuantScratch* scratch) {
  BIRNN_CHECK_EQ(x.rank(), 2);
  BIRNN_CHECK_EQ(x.cols(), w.cols);
  BIRNN_CHECK(!w.empty()) << "int8 weights not prepared";
  const int n = x.rows();
  if (accumulate) {
    BIRNN_CHECK_EQ(out->rows(), n);
    BIRNN_CHECK_EQ(out->cols(), w.rows);
  } else {
    out->ResizeForOverwrite(n, w.rows);
  }
  const int kp = (w.cols + 1) / 2;
  QuantizeRows(x, kp, scratch);
  scratch->acc.resize(static_cast<size_t>(n) * w.rows);
  Int8Gemm(*scratch, n, kp, w, scratch->acc.data());
  ApplyScales(*scratch, n, w, accumulate, out);
}

}  // namespace

void Int8MatMul(const Tensor& x, const QuantizedMatrix& w, Tensor* out,
                QuantScratch* scratch) {
  Int8MatMulImpl(x, w, /*accumulate=*/false, out, scratch);
}

void Int8MatMulAcc(const Tensor& x, const QuantizedMatrix& w, Tensor* out,
                   QuantScratch* scratch) {
  Int8MatMulImpl(x, w, /*accumulate=*/true, out, scratch);
}

void Int8RnnTanhStep(const Tensor& x, const QuantizedMatrix& wx,
                     const Tensor& h, const QuantizedMatrix& wh,
                     const Tensor& b, Tensor* out, Tensor* z_scratch,
                     QuantScratch* scratch) {
  Int8MatMul(x, wx, z_scratch, scratch);
  Int8MatMulAcc(h, wh, z_scratch, scratch);
  AddBiasTanh(*z_scratch, b, out);
}

namespace {

void Bf16MatMulImpl(const Tensor& x, const Bf16Matrix& w, bool accumulate,
                    Tensor* out) {
  BIRNN_CHECK_EQ(x.rank(), 2);
  BIRNN_CHECK_EQ(x.cols(), w.rows);
  BIRNN_CHECK(!w.empty()) << "bf16 weights not prepared";
  const int n = x.rows();
  const int k = w.rows;
  const int m = w.cols;
  if (accumulate) {
    BIRNN_CHECK_EQ(out->rows(), n);
    BIRNN_CHECK_EQ(out->cols(), m);
  } else {
    out->Resize(n, m);
  }
  const float* __restrict pa = x.data();
  const uint16_t* __restrict pb = w.q.data();
  float* __restrict pc = out->data();
  // Same i-k-j 4-way k-blocked order as the fp32 MatMulAcc kernel, with
  // both operands truncated to bf16 before each multiply and fp32
  // accumulation. The zero-skip is exact: a truncated-to-zero activation
  // contributes exactly 0.
  for (int i = 0; i < n; ++i) {
    const float* __restrict arow = pa + static_cast<size_t>(i) * k;
    float* __restrict crow = pc + static_cast<size_t>(i) * m;
    int kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const float a0 = TruncateBf16(arow[kk]);
      const float a1 = TruncateBf16(arow[kk + 1]);
      const float a2 = TruncateBf16(arow[kk + 2]);
      const float a3 = TruncateBf16(arow[kk + 3]);
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const uint16_t* __restrict b0 = pb + static_cast<size_t>(kk) * m;
      const uint16_t* __restrict b1 = b0 + m;
      const uint16_t* __restrict b2 = b1 + m;
      const uint16_t* __restrict b3 = b2 + m;
      for (int j = 0; j < m; ++j) {
        crow[j] += a0 * FloatFromBf16(b0[j]) + a1 * FloatFromBf16(b1[j]) +
                   a2 * FloatFromBf16(b2[j]) + a3 * FloatFromBf16(b3[j]);
      }
    }
    for (; kk < k; ++kk) {
      const float av = TruncateBf16(arow[kk]);
      if (av == 0.0f) continue;
      const uint16_t* __restrict brow = pb + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * FloatFromBf16(brow[j]);
    }
  }
}

}  // namespace

void Bf16MatMul(const Tensor& x, const Bf16Matrix& w, Tensor* out) {
  Bf16MatMulImpl(x, w, /*accumulate=*/false, out);
}

void Bf16MatMulAcc(const Tensor& x, const Bf16Matrix& w, Tensor* out) {
  Bf16MatMulImpl(x, w, /*accumulate=*/true, out);
}

}  // namespace birnn::nn
