#include "nn/tensor.h"

#include <cmath>
#include <sstream>

namespace birnn::nn {

size_t ShapeSize(const std::vector<int>& shape) {
  size_t n = 1;
  for (int d : shape) {
    BIRNN_CHECK_GE(d, 0);
    n *= static_cast<size_t>(d);
  }
  return n;
}

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(ShapeSize(shape_), 0.0f);
}

Tensor Tensor::Scalar(float v) {
  Tensor t(std::vector<int>{1});
  t.data_[0] = v;
  return t;
}

Tensor Tensor::Full(std::vector<int> shape, float v) {
  Tensor t(std::move(shape));
  t.Fill(v);
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  Tensor t(std::vector<int>{static_cast<int>(values.size())});
  t.data_ = values;
  return t;
}

Tensor Tensor::FromMatrix(int rows, int cols,
                          const std::vector<float>& values) {
  BIRNN_CHECK_EQ(values.size(), static_cast<size_t>(rows) * cols);
  Tensor t(rows, cols);
  t.data_ = values;
  return t;
}

void Tensor::Resize(std::vector<int> shape) {
  const size_t n = ShapeSize(shape);
  shape_ = std::move(shape);
  data_.assign(n, 0.0f);  // vector::assign reuses capacity
}

void Tensor::ResizeForOverwrite(std::vector<int> shape) {
  const size_t n = ShapeSize(shape);
  shape_ = std::move(shape);
  data_.resize(n);  // stale values retained; caller overwrites
}

void Tensor::Fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::Add(const Tensor& other) {
  BIRNN_CHECK(shape_ == other.shape_) << "shape mismatch in Tensor::Add";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Scale(float s) {
  for (auto& x : data_) x *= s;
}

Tensor Tensor::Reshaped(std::vector<int> new_shape) const {
  BIRNN_CHECK_EQ(ShapeSize(new_shape), size());
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

float Tensor::Sum() const {
  float s = 0.0f;
  for (float x : data_) s += x;
  return s;
}

bool Tensor::Equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::ToString(size_t max_elems) const {
  std::ostringstream out;
  out << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << "x";
    out << shape_[i];
  }
  out << "]{";
  for (size_t i = 0; i < data_.size() && i < max_elems; ++i) {
    if (i > 0) out << ", ";
    out << data_[i];
  }
  if (data_.size() > max_elems) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace birnn::nn
