#ifndef BIRNN_NN_GRAPH_H_
#define BIRNN_NN_GRAPH_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/parameter.h"
#include "nn/tensor.h"

namespace birnn::nn {

/// Define-by-run reverse-mode autodiff tape.
///
/// Operations execute eagerly and record a backward closure; calling
/// `Backward(loss)` walks the tape in reverse, accumulating gradients into
/// every node and finally into the bound `Parameter::grad` buffers (or into
/// a caller-owned `ParamGradMap` sink for data-parallel training).
///
/// The tape is an arena: `Reset()` rewinds it without releasing node slots
/// or their tensor buffers, so a Graph that is rebuilt with the same
/// structure every step (the training loop) stops allocating after the
/// first step. A Graph is not thread-safe; data-parallel trainers use one
/// Graph per shard. Inference paths should use the forward-only kernels in
/// `nn/ops.h` directly (no tape overhead).
class Graph {
 public:
  /// Handle to a node on the tape.
  using Var = int;

  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Rewinds the tape for the next step. Node slots, tensor buffers and
  /// op-specific aux storage are retained and reused by subsequent ops, so
  /// steady-state steps perform no heap allocation for the tape itself.
  void Reset();

  /// Leaf holding a constant input; no gradient flows out of the graph.
  Var Input(Tensor value);

  /// Leaf bound to a trainable parameter. After Backward, the node's
  /// gradient is accumulated into `p->grad` (or the Backward sink).
  Var Param(Parameter* p);

  /// c = a * b (matrix product).
  Var MatMul(Var a, Var b);

  /// Elementwise sum; shapes must match.
  Var Add(Var a, Var b);

  /// x (n,m) plus a bias vector (m) broadcast over rows.
  Var AddBias(Var x, Var bias);

  /// Elementwise difference / product.
  Var Sub(Var a, Var b);
  Var Mul(Var a, Var b);

  /// Elementwise scale by a constant.
  Var ScaleBy(Var a, float s);

  /// Elementwise nonlinearities.
  Var Tanh(Var x);
  Var Relu(Var x);
  Var Sigmoid(Var x);

  /// Fused vanilla-RNN step: tanh(x wx + h wh + b) as a single tape node.
  /// Equivalent to Tanh(AddBias(Add(MatMul(x,wx), MatMul(h,wh)), b)) but
  /// with one node instead of five — the recurrence dominates the tape, so
  /// this removes most of the per-step bookkeeping and intermediate buffers.
  Var RnnTanhStep(Var x, Var wx, Var h, Var wh, Var b);

  /// Concatenates matrices with equal row counts along the column axis.
  Var ConcatCols(const std::vector<Var>& parts);

  /// Columns [start, start+count) of x.
  Var SliceCols(Var x, int start, int count);

  /// Embedding lookup: rows of `table` (a Param or Input of shape (V,E))
  /// selected by integer ids; result is (|ids|, E).
  Var Embedding(Var table, std::vector<int> ids);

  /// Batch normalization over the feature (column) axis, training mode:
  /// normalizes with batch statistics. By default the running estimates are
  /// updated in-place (running = momentum * running + (1-momentum) * batch).
  /// When `batch_mean_out`/`batch_var_out` are non-null the batch statistics
  /// are written there instead and the running estimates are NOT touched —
  /// data-parallel shards use this to defer the EMA update so it can be
  /// applied in fixed shard order (`running_mean`/`running_var` may then be
  /// null).
  Var BatchNormTrain(Var x, Var gamma, Var beta, Tensor* running_mean,
                     Tensor* running_var, float momentum = 0.9f,
                     float eps = 1e-5f, Tensor* batch_mean_out = nullptr,
                     Tensor* batch_var_out = nullptr);

  /// Batch normalization, inference mode: uses the provided running
  /// statistics (still differentiable w.r.t. x, gamma, beta).
  Var BatchNormInfer(Var x, Var gamma, Var beta, const Tensor& running_mean,
                     const Tensor& running_var, float eps = 1e-5f);

  /// Mean softmax cross-entropy of `logits` (n,C) against integer labels;
  /// returns a scalar node. The softmax probabilities are retained and can
  /// be read back with `Probs`.
  Var SoftmaxCrossEntropy(Var logits, std::vector<int> labels);

  /// Softmax probabilities saved by SoftmaxCrossEntropy for node `loss`.
  const Tensor& Probs(Var loss) const;

  /// Runs reverse-mode accumulation from `loss` (must be a scalar node).
  /// Parameter gradients are *added* to `Parameter::grad` — call
  /// `Parameter::ZeroGrad()` between steps.
  void Backward(Var loss) { Backward(loss, 1.0f, nullptr); }

  /// Backward with an explicit seed gradient on the loss node (shard
  /// weighting in data-parallel training) and an optional sink: when `sink`
  /// is non-null, parameter gradients are accumulated into `(*sink)[param]`
  /// instead of `Parameter::grad`, leaving shared parameters untouched so
  /// shards can run concurrently.
  void Backward(Var loss, float loss_seed, ParamGradMap* sink);

  const Tensor& value(Var v) const { return nodes_[CheckVar(v)].value; }
  const Tensor& grad(Var v) const { return nodes_[CheckVar(v)].grad; }

  size_t num_nodes() const { return live_; }

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    std::function<void()> backward;  // empty for leaves
    Parameter* param = nullptr;
    std::shared_ptr<Tensor> aux;  // op-specific saved forward state
  };

  size_t CheckVar(Var v) const {
    BIRNN_CHECK_GE(v, 0);
    BIRNN_CHECK_LT(static_cast<size_t>(v), live_);
    return static_cast<size_t>(v);
  }

  /// Claims the next tape slot, reusing a retired node (and its buffers)
  /// when the arena has one.
  Var NewSlot() {
    if (live_ == nodes_.size()) {
      nodes_.emplace_back();
    } else {
      Node& nd = nodes_[live_];
      nd.backward = nullptr;
      nd.param = nullptr;
    }
    return static_cast<Var>(live_++);
  }

  /// The reusable aux tensor of node `v` (allocated on first use).
  Tensor* Aux(Var v) {
    Node& nd = node(v);
    if (nd.aux == nullptr) nd.aux = std::make_shared<Tensor>();
    return nd.aux.get();
  }

  Node& node(Var v) { return nodes_[CheckVar(v)]; }

  size_t live_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace birnn::nn

#endif  // BIRNN_NN_GRAPH_H_
