#ifndef BIRNN_NN_GRAPH_H_
#define BIRNN_NN_GRAPH_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/parameter.h"
#include "nn/tensor.h"

namespace birnn::nn {

/// Define-by-run reverse-mode autodiff tape.
///
/// Operations execute eagerly and record a backward closure; calling
/// `Backward(loss)` walks the tape in reverse, accumulating gradients into
/// every node and finally into the bound `Parameter::grad` buffers.
///
/// A Graph is built per training step and then discarded. It is not
/// thread-safe. Inference paths should use the forward-only kernels in
/// `nn/ops.h` directly (no tape overhead).
class Graph {
 public:
  /// Handle to a node on the tape.
  using Var = int;

  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Leaf holding a constant input; no gradient flows out of the graph.
  Var Input(Tensor value);

  /// Leaf bound to a trainable parameter. After Backward, the node's
  /// gradient is accumulated into `p->grad`.
  Var Param(Parameter* p);

  /// c = a * b (matrix product).
  Var MatMul(Var a, Var b);

  /// Elementwise sum; shapes must match.
  Var Add(Var a, Var b);

  /// x (n,m) plus a bias vector (m) broadcast over rows.
  Var AddBias(Var x, Var bias);

  /// Elementwise difference / product.
  Var Sub(Var a, Var b);
  Var Mul(Var a, Var b);

  /// Elementwise scale by a constant.
  Var ScaleBy(Var a, float s);

  /// Elementwise nonlinearities.
  Var Tanh(Var x);
  Var Relu(Var x);
  Var Sigmoid(Var x);

  /// Concatenates matrices with equal row counts along the column axis.
  Var ConcatCols(const std::vector<Var>& parts);

  /// Columns [start, start+count) of x.
  Var SliceCols(Var x, int start, int count);

  /// Embedding lookup: rows of `table` (a Param or Input of shape (V,E))
  /// selected by integer ids; result is (|ids|, E).
  Var Embedding(Var table, std::vector<int> ids);

  /// Batch normalization over the feature (column) axis, training mode:
  /// normalizes with batch statistics and updates the running estimates
  /// in-place: running = momentum * running + (1-momentum) * batch.
  Var BatchNormTrain(Var x, Var gamma, Var beta, Tensor* running_mean,
                     Tensor* running_var, float momentum = 0.9f,
                     float eps = 1e-5f);

  /// Batch normalization, inference mode: uses the provided running
  /// statistics (still differentiable w.r.t. x, gamma, beta).
  Var BatchNormInfer(Var x, Var gamma, Var beta, const Tensor& running_mean,
                     const Tensor& running_var, float eps = 1e-5f);

  /// Mean softmax cross-entropy of `logits` (n,C) against integer labels;
  /// returns a scalar node. The softmax probabilities are retained and can
  /// be read back with `Probs`.
  Var SoftmaxCrossEntropy(Var logits, std::vector<int> labels);

  /// Softmax probabilities saved by SoftmaxCrossEntropy for node `loss`.
  const Tensor& Probs(Var loss) const;

  /// Runs reverse-mode accumulation from `loss` (must be a scalar node).
  /// Parameter gradients are *added* to `Parameter::grad` — call
  /// `Parameter::ZeroGrad()` between steps.
  void Backward(Var loss);

  const Tensor& value(Var v) const { return nodes_[CheckVar(v)].value; }
  const Tensor& grad(Var v) const { return nodes_[CheckVar(v)].grad; }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    std::function<void()> backward;  // empty for leaves
    Parameter* param = nullptr;
    std::shared_ptr<Tensor> aux;  // op-specific saved forward state
  };

  size_t CheckVar(Var v) const {
    BIRNN_CHECK_GE(v, 0);
    BIRNN_CHECK_LT(static_cast<size_t>(v), nodes_.size());
    return static_cast<size_t>(v);
  }

  Var NewNode(Tensor value) {
    nodes_.push_back(Node{std::move(value), Tensor(), nullptr, nullptr, {}});
    return static_cast<Var>(nodes_.size() - 1);
  }

  Node& node(Var v) { return nodes_[CheckVar(v)]; }

  std::vector<Node> nodes_;
};

}  // namespace birnn::nn

#endif  // BIRNN_NN_GRAPH_H_
