#ifndef BIRNN_NN_RECURRENT_H_
#define BIRNN_NN_RECURRENT_H_

#include <map>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/parameter.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "util/rng.h"
#include "util/status.h"

namespace birnn::nn {

/// Recurrent cell families. The paper (§2) argues for plain tanh RNNs over
/// LSTM/GRU on complexity and training-time grounds; implementing all
/// three makes that claim measurable (bench_ablation_cell_type).
enum class CellType {
  kVanilla,  ///< h' = tanh(x Wx + h Wh + b)        — the paper's cell.
  kGru,      ///< gated recurrent unit (Chung et al. 2014).
  kLstm,     ///< long short-term memory (Hochreiter & Schmidhuber 1997).
};

const char* CellTypeName(CellType type);
StatusOr<CellType> ParseCellType(const std::string& name);

/// Recurrent state: hidden vector plus (LSTM only) a cell vector.
struct RecurrentState {
  Graph::Var h = -1;
  Graph::Var c = -1;  ///< valid only for kLstm.
};

/// Forward-only counterpart of RecurrentState.
struct RecurrentTensors {
  Tensor h;
  Tensor c;  ///< used only by kLstm.
};

/// Reusable pre-activation buffers for `RecurrentCell::StepForward`; keep
/// one per thread and the per-step MatMul outputs stop allocating.
struct StepScratch {
  Tensor z1;  ///< vanilla: fused gates; gru: input gates; lstm: gates.
  Tensor z2;  ///< gru only: recurrent gates.
  QuantScratch quant;  ///< int8 path: activation rows + accumulators.
};

/// One recurrent cell of any family, usable on the autodiff graph (training)
/// and via forward-only kernels (inference). Weight layout per family:
///   vanilla: wx (in,u), wh (u,u), b (u)
///   gru:     wx (in,3u), wh (u,3u), b (3u)      gates [z | r | h~]
///   lstm:    wx (in,4u), wh (u,4u), b (4u)      gates [i | f | g | o]
/// Input kernels are Glorot-initialized, recurrent kernels orthogonal per
/// gate block, biases zero except the LSTM forget gate (+1, the standard
/// trick).
///
/// Low-precision inference: each cell can carry quantized shadow copies of
/// wx/wh (int8 per-row-absmax and/or bf16 truncation — see nn/quant.h).
/// The shadows are pure deterministic functions of the fp32 weights, built
/// by PrepareQuantized or installed from a bundle; the fp32 parameters stay
/// authoritative and the fp32 forward path is untouched.
class RecurrentCell {
 public:
  RecurrentCell(CellType type, std::string name, int input_dim, int units,
                Rng* rng);

  /// This cell's nodes bound to one graph (create once per graph).
  struct Bound {
    const RecurrentCell* cell;
    Graph* g;
    Graph::Var wx;
    Graph::Var wh;
    Graph::Var b;
    /// One step of the recurrence on the graph.
    RecurrentState Step(Graph::Var x, const RecurrentState& prev) const;
  };
  Bound Bind(Graph* g) const;

  /// Zero-initialized state Vars for a batch.
  RecurrentState InitialState(Graph* g, int batch) const;
  /// Zero-initialized state tensors for a batch.
  RecurrentTensors InitialTensors(int batch) const;

  /// Forward-only step.
  void StepForward(const Tensor& x, const RecurrentTensors& prev,
                   RecurrentTensors* out) const;

  /// Forward-only step with caller-owned pre-activation scratch
  /// (bit-identical to the scratch-free overload). With a non-fp32
  /// precision, the two GEMMs run the quantized kernels (the shadow
  /// weights must be prepared); the gate nonlinearities always run fp32.
  void StepForward(const Tensor& x, const RecurrentTensors& prev,
                   RecurrentTensors* out, StepScratch* scratch,
                   Precision precision = Precision::kFp32) const;

  /// Forward-only step whose input projection x·Wx (no bias) has already
  /// been computed into `scratch->z1` — the level-major batched path
  /// (StackedBiRecurrent computes one GEMM covering every time step, then
  /// slices per-step rows into z1). Consumes/overwrites z1. Bit-identical
  /// to StepForward at the same precision: the kernels are row-independent
  /// and the per-element FP operation sequence is unchanged.
  void StepForwardPre(const RecurrentTensors& prev, RecurrentTensors* out,
                      StepScratch* scratch, Precision precision) const;

  /// out = x · Wx at `precision` (overwrite; no bias). The batched
  /// projection hook: `x` may stack any number of step batches row-wise.
  void ProjectInput(const Tensor& x, Tensor* out, StepScratch* scratch,
                    Precision precision) const;

  /// Per-precision shadow weights (empty until prepared/installed).
  struct QuantWeights {
    QuantizedMatrix wx_q8, wh_q8;
    Bf16Matrix wx_bf16, wh_bf16;
  };

  /// Idempotently builds the shadow weights for `p` from the fp32 kernels
  /// (kFp32 is a no-op). Mutates only the mutable shadow cache; NOT
  /// thread-safe — callers serialize and establish a happens-before edge
  /// to any concurrent readers (see ErrorDetectionModel::
  /// PrepareQuantizedInference).
  void PrepareQuantized(Precision p) const;
  bool QuantizedReady(Precision p) const;
  const QuantWeights& quant() const { return quant_; }

  /// Installs pre-quantized weights (bundle load). Shapes must match.
  void InstallInt8(QuantizedMatrix wx, QuantizedMatrix wh) const;
  void InstallBf16(Bf16Matrix wx, Bf16Matrix wh) const;

  std::vector<Parameter*> Params() const;
  CellType type() const { return type_; }
  int units() const { return units_; }
  int input_dim() const { return input_dim_; }
  int gate_count() const;
  const std::string& wx_name() const { return wx_.name; }
  const std::string& wh_name() const { return wh_.name; }

 private:
  /// out (+)= h · Wh at `precision`.
  void RecurrentProjection(const Tensor& h, bool accumulate, Tensor* out,
                           StepScratch* scratch, Precision precision) const;
  /// The fused GRU / LSTM elementwise gate tails (bias folded in), shared
  /// verbatim by the fp32 and quantized step paths.
  void GruGateTail(const Tensor& xg, const Tensor& hg,
                   const RecurrentTensors& prev, RecurrentTensors* out) const;
  void LstmGateTail(const Tensor& gates, const RecurrentTensors& prev,
                    RecurrentTensors* out) const;

  CellType type_;
  int input_dim_;
  int units_;
  mutable Parameter wx_;
  mutable Parameter wh_;
  mutable Parameter b_;
  mutable QuantWeights quant_;
};

/// Backward-chain states over an all-pad prefix. When a sequence ends in
/// pad steps, the backward direction processes those pads FIRST — from the
/// zero initial state, with the identical pad input at every step — so the
/// state after k pad steps is the same for every cell, at every level of
/// the stack. `states[k][l]` is level l's state (one row) after k pad
/// steps; `states[0]` is the zero state. Precomputed once per sweep by
/// `ComputeBackwardPadPrefix` and used to warm-start length-bucketed
/// batches (`ApplyForwardBucketed`).
struct PadPrefixTrajectory {
  std::vector<std::vector<RecurrentTensors>> states;  ///< [k][level], 1 row.
  int max_steps() const { return static_cast<int>(states.size()) - 1; }
};

/// Stack of recurrent levels run in one or two directions over a sequence —
/// the generic version of StackedBiRnn, parameterized by cell family.
/// Output is the concatenated final top-level hidden state(s)
/// (units * directions wide).
class StackedBiRecurrent {
 public:
  StackedBiRecurrent(CellType type, std::string name, int input_dim,
                     int units, int stacks, bool bidirectional, Rng* rng);

  /// Reusable per-thread state for `ApplyForward`: per-level hidden/cell
  /// tensors plus the step buffers. After the first batch of a sweep, the
  /// whole stack runs without heap allocation.
  struct ForwardScratch {
    std::vector<RecurrentTensors> state;
    RecurrentTensors next;
    StepScratch step;
    Tensor out_fwd;
    Tensor out_bwd;
    Tensor seq_in;   ///< level inputs, all steps stacked in process order.
    Tensor seq_out;  ///< level outputs, same stacking.
    Tensor xz;       ///< batched input projections for the current level.
  };

  Graph::Var Apply(Graph* g, const std::vector<Graph::Var>& steps,
                   int batch) const;
  void ApplyForward(const std::vector<Tensor>& steps, Tensor* out) const;

  /// Forward-only application over the span `steps[0, t_count)` with
  /// caller-owned scratch (bit-identical to the scratch-free overload).
  /// `t_count` may be shorter than the training sequence length — the stack
  /// simply runs fewer time steps (the length-bucketed inference contract;
  /// see core::InferenceEngine). Non-fp32 precisions require prepared
  /// shadow weights (PrepareQuantized).
  void ApplyForward(const Tensor* steps, int t_count, Tensor* out,
                    ForwardScratch* scratch,
                    Precision precision = Precision::kFp32) const;

  /// Precomputes the backward direction's state trajectory over an all-pad
  /// prefix of up to `max_steps` steps. `pad_step` must hold the pad input
  /// embedding replicated over its rows (use a full SIMD register of rows
  /// so the elementwise kernels take the same vector path as real batches —
  /// that keeps the warm start bit-identical to running the prefix inline).
  /// The trajectory is precision-specific: compute it at the precision the
  /// bucketed sweep will run. Leaves the trajectory empty for
  /// unidirectional stacks.
  void ComputeBackwardPadPrefix(const Tensor& pad_step, int max_steps,
                                PadPrefixTrajectory* traj,
                                Precision precision = Precision::kFp32) const;

  /// Length-bucketed application, bit-identical to ApplyForward over the
  /// same sequence padded to `t_total` steps (at the same precision):
  /// - the forward chain runs steps[0, t_count) and then `t_total - t_count`
  ///   extra steps of `pad_step` input — its pad tail cannot be skipped,
  ///   because the (trained) pad embedding keeps moving per-cell state;
  /// - the backward chain runs only steps[t_count-1 .. 0], warm-started
  ///   from `traj` at prefix length `t_total - t_count` — its pad prefix is
  ///   cell-independent, so those steps are shared instead of re-run.
  /// `pad_step` must hold the pad embedding in every row (batch rows).
  void ApplyForwardBucketed(const Tensor* steps, int t_count, int t_total,
                            const Tensor& pad_step,
                            const PadPrefixTrajectory& traj, Tensor* out,
                            ForwardScratch* scratch,
                            Precision precision = Precision::kFp32) const;

  /// Builds every cell's shadow weights for `p` (idempotent; kFp32 no-op).
  /// Not thread-safe — see RecurrentCell::PrepareQuantized.
  void PrepareQuantized(Precision p) const;
  bool QuantizedReady(Precision p) const;

  /// Appends this stack's quantized shadow weights (int8 + bf16, prepared
  /// on demand) as typed checkpoint entries named
  ///   "__q8/<param>" (i8, out×in) / "__q8s/<param>" (f32 scales, out) /
  ///   "__bf16/<param>" (u16, in×out)
  /// for each wx/wh parameter name.
  void ExportQuantized(std::vector<TypedEntry>* entries) const;

  /// Installs shadow weights from `entries` (consuming recognized names).
  /// Partial precisions are fine (e.g. int8-only bundles); shape or scale
  /// mismatches fail.
  Status ImportQuantized(std::map<std::string, TypedEntry>* entries) const;

  std::vector<Parameter*> Params() const;
  int output_dim() const { return units_ * (bidirectional_ ? 2 : 1); }
  CellType type() const { return type_; }

 private:
  Graph::Var RunDirection(Graph* g, const std::vector<Graph::Var>& steps,
                          int batch, bool backward_direction,
                          const std::vector<const RecurrentCell*>& cells) const;
  /// Runs one direction. Forward direction: steps[0, t_count) followed by
  /// `tail_count` steps of `tail_step` input. Backward direction
  /// (tail_count must be 0): steps[t_count-1 .. 0], starting from `warm`
  /// per-level states (broadcast over the batch rows) instead of zeros when
  /// non-null. Executes level-major with time-step-batched input
  /// projections: level l runs over every step before level l+1 starts, so
  /// each level's x·Wx collapses into ONE GEMM over the whole sequence and
  /// the per-step work is just the recurrent projection + gate tail. This
  /// is bit-identical to the step-major order (levels only consume the
  /// level below at the same step) and to per-step projections (the GEMM
  /// kernels are row-independent).
  void RunDirectionForward(const Tensor* steps, int t_count,
                           bool backward_direction,
                           const std::vector<const RecurrentCell*>& cells,
                           const Tensor* tail_step, int tail_count,
                           const std::vector<RecurrentTensors>* warm,
                           Tensor* out, ForwardScratch* scratch,
                           Precision precision) const;

  CellType type_;
  int units_;
  int stacks_;
  bool bidirectional_;
  std::vector<std::vector<RecurrentCell>> cells_;  // [dir][level]
};

}  // namespace birnn::nn

#endif  // BIRNN_NN_RECURRENT_H_
