#ifndef BIRNN_NN_RECURRENT_H_
#define BIRNN_NN_RECURRENT_H_

#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/parameter.h"
#include "util/rng.h"
#include "util/status.h"

namespace birnn::nn {

/// Recurrent cell families. The paper (§2) argues for plain tanh RNNs over
/// LSTM/GRU on complexity and training-time grounds; implementing all
/// three makes that claim measurable (bench_ablation_cell_type).
enum class CellType {
  kVanilla,  ///< h' = tanh(x Wx + h Wh + b)        — the paper's cell.
  kGru,      ///< gated recurrent unit (Chung et al. 2014).
  kLstm,     ///< long short-term memory (Hochreiter & Schmidhuber 1997).
};

const char* CellTypeName(CellType type);
StatusOr<CellType> ParseCellType(const std::string& name);

/// Recurrent state: hidden vector plus (LSTM only) a cell vector.
struct RecurrentState {
  Graph::Var h = -1;
  Graph::Var c = -1;  ///< valid only for kLstm.
};

/// Forward-only counterpart of RecurrentState.
struct RecurrentTensors {
  Tensor h;
  Tensor c;  ///< used only by kLstm.
};

/// One recurrent cell of any family, usable on the autodiff graph (training)
/// and via forward-only kernels (inference). Weight layout per family:
///   vanilla: wx (in,u), wh (u,u), b (u)
///   gru:     wx (in,3u), wh (u,3u), b (3u)      gates [z | r | h~]
///   lstm:    wx (in,4u), wh (u,4u), b (4u)      gates [i | f | g | o]
/// Input kernels are Glorot-initialized, recurrent kernels orthogonal per
/// gate block, biases zero except the LSTM forget gate (+1, the standard
/// trick).
class RecurrentCell {
 public:
  RecurrentCell(CellType type, std::string name, int input_dim, int units,
                Rng* rng);

  /// This cell's nodes bound to one graph (create once per graph).
  struct Bound {
    const RecurrentCell* cell;
    Graph* g;
    Graph::Var wx;
    Graph::Var wh;
    Graph::Var b;
    /// One step of the recurrence on the graph.
    RecurrentState Step(Graph::Var x, const RecurrentState& prev) const;
  };
  Bound Bind(Graph* g) const;

  /// Zero-initialized state Vars for a batch.
  RecurrentState InitialState(Graph* g, int batch) const;
  /// Zero-initialized state tensors for a batch.
  RecurrentTensors InitialTensors(int batch) const;

  /// Forward-only step.
  void StepForward(const Tensor& x, const RecurrentTensors& prev,
                   RecurrentTensors* out) const;

  std::vector<Parameter*> Params() const;
  CellType type() const { return type_; }
  int units() const { return units_; }
  int input_dim() const { return input_dim_; }

 private:
  CellType type_;
  int input_dim_;
  int units_;
  mutable Parameter wx_;
  mutable Parameter wh_;
  mutable Parameter b_;
};

/// Stack of recurrent levels run in one or two directions over a sequence —
/// the generic version of StackedBiRnn, parameterized by cell family.
/// Output is the concatenated final top-level hidden state(s)
/// (units * directions wide).
class StackedBiRecurrent {
 public:
  StackedBiRecurrent(CellType type, std::string name, int input_dim,
                     int units, int stacks, bool bidirectional, Rng* rng);

  Graph::Var Apply(Graph* g, const std::vector<Graph::Var>& steps,
                   int batch) const;
  void ApplyForward(const std::vector<Tensor>& steps, Tensor* out) const;

  std::vector<Parameter*> Params() const;
  int output_dim() const { return units_ * (bidirectional_ ? 2 : 1); }
  CellType type() const { return type_; }

 private:
  Graph::Var RunDirection(Graph* g, const std::vector<Graph::Var>& steps,
                          int batch, bool backward_direction,
                          const std::vector<const RecurrentCell*>& cells) const;
  void RunDirectionForward(const std::vector<Tensor>& steps,
                           bool backward_direction,
                           const std::vector<const RecurrentCell*>& cells,
                           Tensor* out) const;

  CellType type_;
  int units_;
  int stacks_;
  bool bidirectional_;
  std::vector<std::vector<RecurrentCell>> cells_;  // [dir][level]
};

}  // namespace birnn::nn

#endif  // BIRNN_NN_RECURRENT_H_
