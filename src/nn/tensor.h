#ifndef BIRNN_NN_TENSOR_H_
#define BIRNN_NN_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/logging.h"

namespace birnn::nn {

/// A dense row-major float tensor. The neural-network substrate only needs
/// rank 0–2 (scalars, vectors, matrices), so the shape is a small vector of
/// dimension sizes. Value semantics: copying copies the buffer.
class Tensor {
 public:
  /// Empty (rank-0, no elements until assigned).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  /// Matrix constructor: `rows` x `cols`, zero-initialized.
  Tensor(int rows, int cols) : Tensor(std::vector<int>{rows, cols}) {}

  static Tensor Scalar(float v);
  static Tensor Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor Full(std::vector<int> shape, float v);
  /// 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);
  /// 2-D tensor from row-major values; values.size() must equal rows*cols.
  static Tensor FromMatrix(int rows, int cols, const std::vector<float>& values);

  const std::vector<int>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  size_t size() const { return data_.size(); }

  /// Dimension `i`; CHECKs on out-of-range.
  int dim(int i) const {
    BIRNN_CHECK_GE(i, 0);
    BIRNN_CHECK_LT(i, rank());
    return shape_[static_cast<size_t>(i)];
  }

  /// Rows/cols accessors for rank-2 tensors.
  int rows() const { return dim(0); }
  int cols() const { return dim(1); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  /// Element access for rank-2 tensors.
  float& at(int r, int c) {
    return data_[static_cast<size_t>(r) * shape_[1] + static_cast<size_t>(c)];
  }
  float at(int r, int c) const {
    return data_[static_cast<size_t>(r) * shape_[1] + static_cast<size_t>(c)];
  }

  /// Scalar value of a single-element tensor.
  float scalar() const {
    BIRNN_CHECK_EQ(size(), 1u);
    return data_[0];
  }

  /// Reshapes to `shape` and zeroes all elements, reusing the existing
  /// heap buffer whenever capacity allows (no allocation on the training
  /// hot path once the first step has sized every tensor).
  void Resize(std::vector<int> shape);
  void Resize(int rows, int cols) { Resize(std::vector<int>{rows, cols}); }

  /// Reshapes to `shape` without clearing: element values are unspecified
  /// and the caller must overwrite all of them. Reuses capacity like
  /// Resize.
  void ResizeForOverwrite(std::vector<int> shape);
  void ResizeForOverwrite(int rows, int cols) {
    ResizeForOverwrite(std::vector<int>{rows, cols});
  }

  /// Sets every element to `v`.
  void Fill(float v);

  /// Sets every element to zero (keeps shape).
  void Zero() { Fill(0.0f); }

  /// In-place elementwise add; shapes must match.
  void Add(const Tensor& other);

  /// In-place scale by `s`.
  void Scale(float s);

  /// Returns a reshaped view-copy; total size must be preserved.
  Tensor Reshaped(std::vector<int> new_shape) const;

  /// Sum of all elements.
  float Sum() const;

  /// True if shapes and all elements are exactly equal.
  bool Equals(const Tensor& other) const;

  /// True if shapes match and elements differ by at most `tol`.
  bool AllClose(const Tensor& other, float tol = 1e-5f) const;

  /// Debug string, e.g. "Tensor[2x3]{1, 2, 3, ...}".
  std::string ToString(size_t max_elems = 8) const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape.
size_t ShapeSize(const std::vector<int>& shape);

}  // namespace birnn::nn

#endif  // BIRNN_NN_TENSOR_H_
