#ifndef BIRNN_NN_OPS_H_
#define BIRNN_NN_OPS_H_

#include <vector>

#include "nn/tensor.h"

namespace birnn::nn {

/// Low-level dense math kernels shared by the autograd graph (training) and
/// the forward-only prediction paths (inference). All functions CHECK shape
/// compatibility; `out` parameters are fully overwritten unless the name says
/// "Acc" (accumulate).

/// out = a(n,k) * b(k,m). `out` is resized/zeroed internally.
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a * b (accumulating matmul); `out` must already be (n,m).
void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a^T * b where a is (n,k), b is (n,m), out is (k,m).
void MatMulTransposeAAcc(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a * b^T where a is (n,m), b is (k,m), out is (n,k).
void MatMulTransposeBAcc(const Tensor& a, const Tensor& b, Tensor* out);

/// out = x(n,m) with bias(m) or bias(1,m) added to every row.
void AddBias(const Tensor& x, const Tensor& bias, Tensor* out);

/// out = tanh(x + bias), fused in one pass — the hot elementwise tail of
/// the vanilla RNN step (saves two full sweeps over the activations).
void AddBiasTanh(const Tensor& x, const Tensor& bias, Tensor* out);

/// Elementwise c = a + b (same shape).
void AddElem(const Tensor& a, const Tensor& b, Tensor* out);

/// Elementwise c = a - b.
void SubElem(const Tensor& a, const Tensor& b, Tensor* out);

/// Elementwise c = a * b.
void MulElem(const Tensor& a, const Tensor& b, Tensor* out);

/// out = tanh(x), elementwise.
void TanhElem(const Tensor& x, Tensor* out);

/// out = max(0, x).
void ReluElem(const Tensor& x, Tensor* out);

/// out = 1 / (1 + exp(-x)).
void SigmoidElem(const Tensor& x, Tensor* out);

/// Row-wise numerically stable softmax of logits (n,m).
void SoftmaxRows(const Tensor& logits, Tensor* out);

/// Concatenates matrices with equal row counts along columns.
void ConcatCols(const std::vector<const Tensor*>& parts, Tensor* out);

/// Copies columns [start, start+count) of x (n,m) into out (n,count).
void SliceCols(const Tensor& x, int start, int count, Tensor* out);

/// Gathers rows of `table` (V,E) by `ids` (values in [0,V)) into out (n,E).
void GatherRows(const Tensor& table, const std::vector<int>& ids, Tensor* out);

/// Scatter-adds each row of `grad` (n,E) into row ids[i] of `table_grad`.
void ScatterAddRows(const Tensor& grad, const std::vector<int>& ids,
                    Tensor* table_grad);

/// Column sums of x (n,m) into out (m).
void ColSum(const Tensor& x, Tensor* out);

/// Mean cross-entropy of softmax(logits) against integer labels; also
/// returns the softmax probabilities if `probs` is non-null.
float SoftmaxCrossEntropyLoss(const Tensor& logits,
                              const std::vector<int>& labels, Tensor* probs);

}  // namespace birnn::nn

#endif  // BIRNN_NN_OPS_H_
