#include "nn/optimizer.h"

#include <cmath>

namespace birnn::nn {

void Sgd::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    BIRNN_CHECK(p->grad.shape() == p->value.shape());
    for (size_t i = 0; i < p->value.size(); ++i) {
      p->value[i] -= lr_ * p->grad[i];
    }
  }
}

void RmsProp::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    BIRNN_CHECK(p->grad.shape() == p->value.shape());
    Tensor& cache = cache_[p];
    if (cache.shape() != p->value.shape()) {
      cache = Tensor(p->value.shape());
    }
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad[i];
      cache[i] = rho_ * cache[i] + (1.0f - rho_) * g * g;
      p->value[i] -= lr_ * g / (std::sqrt(cache[i]) + eps_);
    }
  }
}

std::vector<Tensor> RmsProp::ExportState(
    const std::vector<Parameter*>& params) const {
  std::vector<Tensor> state(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    auto it = cache_.find(params[i]);
    if (it != cache_.end()) state[i] = it->second;
  }
  return state;
}

void RmsProp::ImportState(const std::vector<Parameter*>& params,
                          const std::vector<Tensor>& state) {
  BIRNN_CHECK(state.size() == params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    if (state[i].size() == 0) continue;
    BIRNN_CHECK(state[i].shape() == params[i]->value.shape());
    cache_[params[i]] = state[i];
  }
}

void ZeroGrads(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->ZeroGrad();
}

size_t CountWeights(const std::vector<Parameter*>& params) {
  size_t n = 0;
  for (const Parameter* p : params) n += p->value.size();
  return n;
}

}  // namespace birnn::nn
