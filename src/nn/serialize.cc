#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

namespace birnn::nn {

namespace {
constexpr char kMagic[8] = {'B', 'R', 'N', 'N', 'C', 'K', 'P', 'T'};

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}
}  // namespace

std::vector<Tensor> SnapshotParams(const std::vector<Parameter*>& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const Parameter* p : params) out.push_back(p->value);
  return out;
}

void RestoreParams(const std::vector<Tensor>& snapshot,
                   const std::vector<Parameter*>& params) {
  BIRNN_CHECK_EQ(snapshot.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    BIRNN_CHECK(snapshot[i].shape() == params[i]->value.shape())
        << "snapshot shape mismatch for " << params[i]->name;
    params[i]->value = snapshot[i];
  }
}

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, static_cast<uint32_t>(params.size()));
  for (const Parameter* p : params) {
    WriteU32(out, static_cast<uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WriteU32(out, static_cast<uint32_t>(p->value.rank()));
    for (int d : p->value.shape()) {
      const int32_t dim = d;
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a BRNNCKPT file: " + path);
  }
  uint32_t count = 0;
  if (!ReadU32(in, &count)) return Status::IoError("truncated header");

  std::map<std::string, Tensor> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(in, &name_len)) return Status::IoError("truncated entry");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!ReadU32(in, &rank)) return Status::IoError("truncated entry");
    std::vector<int> shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      int32_t dim = 0;
      in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
      if (dim < 0) return Status::InvalidArgument("negative dimension");
      shape[d] = dim;
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated tensor data for " + name);
    loaded.emplace(std::move(name), std::move(t));
  }

  for (Parameter* p : params) {
    auto it = loaded.find(p->name);
    if (it == loaded.end()) {
      return Status::NotFound("checkpoint missing parameter: " + p->name);
    }
    if (it->second.shape() != p->value.shape()) {
      return Status::InvalidArgument("shape mismatch for " + p->name);
    }
    p->value = it->second;
  }
  return Status::OK();
}

}  // namespace birnn::nn
