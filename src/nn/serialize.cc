#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

namespace birnn::nn {

size_t DtypeSize(uint8_t dtype) {
  switch (dtype) {
    case kDtypeF32:
      return sizeof(float);
    case kDtypeI8:
      return 1;
    case kDtypeU16:
      return sizeof(uint16_t);
  }
  return 0;
}

namespace {
constexpr char kMagic[8] = {'B', 'R', 'N', 'N', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersionSentinel = 0xFFFFFFFFu;
constexpr uint8_t kFormatVersion = 1;
constexpr uint8_t kFormatVersionTyped = 2;

uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendBytes(std::string* out, const void* data, size_t n) {
  out->append(reinterpret_cast<const char*>(data), n);
}

/// Bounds-checked cursor over an in-memory checkpoint image. Every read
/// fails cleanly at the end of the buffer, so truncation can never turn
/// into an out-of-bounds access or a partially initialized tensor.
struct Reader {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool Read(void* out, size_t n) {
    if (n > size - pos) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  size_t remaining() const { return size - pos; }
};

/// Parses the entry section (u32 count + entries) starting at `r.pos` and
/// loads it into `params`, enforcing exact coverage: every parameter must
/// be present with a matching shape, and the file must not contain
/// duplicate or extra entries. When `typed` (format v2), each entry carries
/// a dtype byte; non-f32 entries — and f32 entries whose name matches no
/// parameter, such as the "__q8s/..." quantization scales — are routed to
/// `extras` instead of the parameter match. Drift is still caught: a
/// missing parameter errors here, and the model rejects unrecognized
/// extras when installing them.
Status ParseEntries(Reader* r, const std::vector<Parameter*>& params,
                    const std::string& path, bool typed,
                    std::vector<TypedEntry>* extras) {
  uint32_t count = 0;
  if (!r->ReadU32(&count)) return Status::IoError("truncated header: " + path);

  std::map<std::string, Tensor> loaded;
  std::map<std::string, TypedEntry> loaded_extras;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!r->ReadU32(&name_len)) return Status::IoError("truncated entry");
    if (name_len > r->remaining()) return Status::IoError("truncated entry");
    std::string name(name_len, '\0');
    if (!r->Read(name.data(), name_len)) return Status::IoError("truncated entry");
    uint8_t dtype = kDtypeF32;
    if (typed) {
      if (!r->Read(&dtype, sizeof(dtype))) {
        return Status::IoError("truncated entry");
      }
      if (DtypeSize(dtype) == 0) {
        return Status::InvalidArgument("unknown dtype " +
                                       std::to_string(dtype) + " for " + name);
      }
    }
    uint32_t rank = 0;
    if (!r->ReadU32(&rank)) return Status::IoError("truncated entry");
    if (rank > 8) return Status::InvalidArgument("implausible rank for " + name);
    std::vector<int> shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      int32_t dim = 0;
      if (!r->Read(&dim, sizeof(dim))) return Status::IoError("truncated entry");
      if (dim < 0) return Status::InvalidArgument("negative dimension");
      shape[d] = dim;
    }
    if (dtype != kDtypeF32) {
      TypedEntry entry;
      entry.dtype = dtype;
      entry.shape = shape;
      const size_t bytes = ShapeSize(shape) * DtypeSize(dtype);
      if (bytes > r->remaining()) {
        return Status::IoError("truncated tensor data for " + name);
      }
      entry.bytes.resize(bytes);
      if (!r->Read(entry.bytes.data(), bytes)) {
        return Status::IoError("truncated tensor data for " + name);
      }
      entry.name = name;
      if (extras == nullptr) {
        return Status::InvalidArgument(
            "checkpoint has typed (quantized) entries but the caller "
            "accepts only parameters: " + name);
      }
      if (!loaded_extras.emplace(std::move(name), std::move(entry)).second) {
        return Status::InvalidArgument("duplicate checkpoint entry");
      }
      continue;
    }
    Tensor t(shape);
    const size_t bytes = t.size() * sizeof(float);
    if (!r->Read(t.data(), bytes)) {
      return Status::IoError("truncated tensor data for " + name);
    }
    if (!loaded.emplace(std::move(name), std::move(t)).second) {
      return Status::InvalidArgument("duplicate checkpoint entry");
    }
  }
  if (r->remaining() > 0) {
    return Status::InvalidArgument("trailing bytes after last entry: " + path);
  }

  for (Parameter* p : params) {
    auto it = loaded.find(p->name);
    if (it == loaded.end()) {
      return Status::NotFound("checkpoint missing parameter: " + p->name);
    }
    if (it->second.shape() != p->value.shape()) {
      return Status::InvalidArgument("shape mismatch for " + p->name);
    }
    p->value = std::move(it->second);
    loaded.erase(it);
  }
  if (!loaded.empty() && typed) {
    // v2: unmatched f32 entries are sidecar blobs (quantization scales),
    // not parameter drift. Hand them to the caller with the other extras.
    if (extras == nullptr) {
      return Status::InvalidArgument(
          "checkpoint has typed (quantized) entries but the caller "
          "accepts only parameters: " + loaded.begin()->first);
    }
    for (auto& [name, tensor] : loaded) {
      TypedEntry entry;
      entry.name = name;
      entry.dtype = kDtypeF32;
      entry.shape = tensor.shape();
      entry.bytes.assign(
          reinterpret_cast<const char*>(tensor.data()),
          reinterpret_cast<const char*>(tensor.data()) +
              tensor.size() * sizeof(float));
      if (!loaded_extras.emplace(name, std::move(entry)).second) {
        return Status::InvalidArgument("duplicate checkpoint entry");
      }
    }
    loaded.clear();
  }
  if (!loaded.empty()) {
    std::ostringstream msg;
    msg << "checkpoint has " << loaded.size()
        << " extra entr" << (loaded.size() == 1 ? "y" : "ies")
        << " not matched by any parameter:";
    int shown = 0;
    for (const auto& [name, tensor] : loaded) {
      (void)tensor;
      if (shown++ == 4) {
        msg << " ...";
        break;
      }
      msg << ' ' << name;
    }
    return Status::InvalidArgument(msg.str());
  }
  if (extras != nullptr) {
    extras->clear();
    extras->reserve(loaded_extras.size());
    for (auto& [name, entry] : loaded_extras) {
      (void)name;
      extras->push_back(std::move(entry));
    }
  }
  return Status::OK();
}

/// Serializes one entry (v2 layout: name, dtype, shape, raw data).
void AppendTypedEntry(std::string* payload, const std::string& name,
                      uint8_t dtype, const std::vector<int>& shape,
                      const char* data, size_t bytes) {
  AppendU32(payload, static_cast<uint32_t>(name.size()));
  AppendBytes(payload, name.data(), name.size());
  payload->push_back(static_cast<char>(dtype));
  AppendU32(payload, static_cast<uint32_t>(shape.size()));
  for (int d : shape) {
    const int32_t dim = d;
    AppendBytes(payload, &dim, sizeof(dim));
  }
  AppendBytes(payload, data, bytes);
}

std::string HexU64(uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
  return out.str();
}

/// Frames a payload with the magic/sentinel/version header and trailing
/// FNV-1a checksum, shared by the v1 and v2 writers.
Status WriteCheckpoint(const std::string& payload, uint8_t version,
                       const std::string& path) {
  const uint64_t checksum = Fnv1a(payload.data(), payload.size());
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  const uint32_t sentinel = kVersionSentinel;
  out.write(reinterpret_cast<const char*>(&sentinel), sizeof(sentinel));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

std::vector<Tensor> SnapshotParams(const std::vector<Parameter*>& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const Parameter* p : params) out.push_back(p->value);
  return out;
}

void RestoreParams(const std::vector<Tensor>& snapshot,
                   const std::vector<Parameter*>& params) {
  BIRNN_CHECK_EQ(snapshot.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    BIRNN_CHECK(snapshot[i].shape() == params[i]->value.shape())
        << "snapshot shape mismatch for " << params[i]->name;
    params[i]->value = snapshot[i];
  }
}

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(params.size()));
  for (const Parameter* p : params) {
    AppendU32(&payload, static_cast<uint32_t>(p->name.size()));
    AppendBytes(&payload, p->name.data(), p->name.size());
    AppendU32(&payload, static_cast<uint32_t>(p->value.rank()));
    for (int d : p->value.shape()) {
      const int32_t dim = d;
      AppendBytes(&payload, &dim, sizeof(dim));
    }
    AppendBytes(&payload, p->value.data(), p->value.size() * sizeof(float));
  }
  return WriteCheckpoint(payload, kFormatVersion, path);
}

Status SaveParametersV2(const std::vector<Parameter*>& params,
                        const std::vector<TypedEntry>& extras,
                        const std::string& path) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(params.size() + extras.size()));
  for (const Parameter* p : params) {
    AppendTypedEntry(&payload, p->name, kDtypeF32, p->value.shape(),
                     reinterpret_cast<const char*>(p->value.data()),
                     p->value.size() * sizeof(float));
  }
  for (const TypedEntry& e : extras) {
    BIRNN_CHECK_EQ(e.bytes.size(), ShapeSize(e.shape) * DtypeSize(e.dtype))
        << "typed entry payload/shape mismatch for " << e.name;
    AppendTypedEntry(&payload, e.name, e.dtype, e.shape, e.bytes.data(),
                     e.bytes.size());
  }
  return WriteCheckpoint(payload, kFormatVersionTyped, path);
}

Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params) {
  return LoadParameters(path, params, nullptr);
}

Status LoadParameters(const std::string& path,
                      const std::vector<Parameter*>& params,
                      std::vector<TypedEntry>* extras) {
  if (extras != nullptr) extras->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in) return Status::IoError("read failed: " + path);
  const std::string image = std::move(buffer).str();

  Reader r{image.data(), image.size()};
  char magic[8];
  if (!r.Read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a BRNNCKPT file: " + path);
  }
  uint32_t first = 0;
  if (!r.ReadU32(&first)) return Status::IoError("truncated header: " + path);

  if (first != kVersionSentinel) {
    // v0: `first` is the entry count and there is no checksum. Rewind so
    // ParseEntries re-reads it as the count.
    r.pos -= sizeof(first);
    return ParseEntries(&r, params, path, /*typed=*/false, extras);
  }

  uint8_t version = 0;
  if (!r.Read(&version, sizeof(version))) {
    return Status::IoError("truncated header: " + path);
  }
  if (version != kFormatVersion && version != kFormatVersionTyped) {
    return Status::InvalidArgument("unsupported checkpoint format version " +
                                   std::to_string(version) + ": " + path);
  }
  if (r.remaining() < sizeof(uint64_t)) {
    return Status::IoError("truncated checkpoint (no checksum): " + path);
  }
  const size_t payload_size = r.remaining() - sizeof(uint64_t);
  uint64_t stored = 0;
  std::memcpy(&stored, image.data() + r.pos + payload_size, sizeof(stored));
  const uint64_t actual = Fnv1a(image.data() + r.pos, payload_size);
  if (stored != actual) {
    return Status::IoError(
        "checkpoint checksum mismatch (truncated or corrupted file): " +
        path + " expected FNV-1a " + HexU64(stored) + ", actual " +
        HexU64(actual));
  }
  Reader payload{image.data() + r.pos, payload_size};
  return ParseEntries(&payload, params, path,
                      /*typed=*/version == kFormatVersionTyped, extras);
}

}  // namespace birnn::nn
