#include "nn/graph.h"

#include <cmath>
#include <utility>

#include "nn/ops.h"

namespace birnn::nn {

void Graph::Reset() { live_ = 0; }

Graph::Var Graph::Input(Tensor value) {
  Var c = NewSlot();
  node(c).value = std::move(value);
  return c;
}

Graph::Var Graph::Param(Parameter* p) {
  BIRNN_CHECK(p != nullptr);
  Var v = NewSlot();
  node(v).value = p->value;  // copy-assign reuses the slot's buffer
  node(v).param = p;
  return v;
}

Graph::Var Graph::MatMul(Var a, Var b) {
  Var c = NewSlot();
  nn::MatMul(value(a), value(b), &node(c).value);
  node(c).backward = [this, a, b, c]() {
    // dA += dC * B^T ; dB += A^T * dC
    MatMulTransposeBAcc(nodes_[c].grad, nodes_[b].value, &nodes_[a].grad);
    MatMulTransposeAAcc(nodes_[a].value, nodes_[c].grad, &nodes_[b].grad);
  };
  return c;
}

Graph::Var Graph::Add(Var a, Var b) {
  Var c = NewSlot();
  AddElem(value(a), value(b), &node(c).value);
  node(c).backward = [this, a, b, c]() {
    nodes_[a].grad.Add(nodes_[c].grad);
    nodes_[b].grad.Add(nodes_[c].grad);
  };
  return c;
}

Graph::Var Graph::AddBias(Var x, Var bias) {
  Var c = NewSlot();
  nn::AddBias(value(x), value(bias), &node(c).value);
  node(c).backward = [this, x, bias, c]() {
    nodes_[x].grad.Add(nodes_[c].grad);
    // Column sums of dC accumulated straight into the bias gradient; the
    // bias may be stored as (m) or (1,m) — both are m contiguous floats.
    const Tensor& dy = nodes_[c].grad;
    Tensor& db = nodes_[bias].grad;
    const int n = dy.rows();
    const int m = dy.cols();
    BIRNN_CHECK_EQ(db.size(), static_cast<size_t>(m));
    float* __restrict pd = db.data();
    for (int i = 0; i < n; ++i) {
      const float* __restrict row = dy.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) pd[j] += row[j];
    }
  };
  return c;
}

Graph::Var Graph::Sub(Var a, Var b) {
  Var c = NewSlot();
  SubElem(value(a), value(b), &node(c).value);
  node(c).backward = [this, a, b, c]() {
    nodes_[a].grad.Add(nodes_[c].grad);
    const Tensor& dy = nodes_[c].grad;
    Tensor& db = nodes_[b].grad;
    for (size_t i = 0; i < dy.size(); ++i) db[i] -= dy[i];
  };
  return c;
}

Graph::Var Graph::Mul(Var a, Var b) {
  Var c = NewSlot();
  MulElem(value(a), value(b), &node(c).value);
  node(c).backward = [this, a, b, c]() {
    const Tensor& dy = nodes_[c].grad;
    const Tensor& av = nodes_[a].value;
    const Tensor& bv = nodes_[b].value;
    Tensor& da = nodes_[a].grad;
    Tensor& db = nodes_[b].grad;
    for (size_t i = 0; i < dy.size(); ++i) {
      da[i] += dy[i] * bv[i];
      db[i] += dy[i] * av[i];
    }
  };
  return c;
}

Graph::Var Graph::ScaleBy(Var a, float s) {
  Var c = NewSlot();
  node(c).value = value(a);
  node(c).value.Scale(s);
  node(c).backward = [this, a, c, s]() {
    const Tensor& dy = nodes_[c].grad;
    Tensor& da = nodes_[a].grad;
    for (size_t i = 0; i < dy.size(); ++i) da[i] += dy[i] * s;
  };
  return c;
}

Graph::Var Graph::Tanh(Var x) {
  Var c = NewSlot();
  TanhElem(value(x), &node(c).value);
  node(c).backward = [this, x, c]() {
    // d tanh = 1 - tanh^2
    const Tensor& y = nodes_[c].value;
    const Tensor& dy = nodes_[c].grad;
    Tensor& dx = nodes_[x].grad;
    for (size_t i = 0; i < y.size(); ++i) {
      dx[i] += dy[i] * (1.0f - y[i] * y[i]);
    }
  };
  return c;
}

Graph::Var Graph::Relu(Var x) {
  Var c = NewSlot();
  ReluElem(value(x), &node(c).value);
  node(c).backward = [this, x, c]() {
    const Tensor& xin = nodes_[x].value;
    const Tensor& dy = nodes_[c].grad;
    Tensor& dx = nodes_[x].grad;
    for (size_t i = 0; i < xin.size(); ++i) {
      if (xin[i] > 0.0f) dx[i] += dy[i];
    }
  };
  return c;
}

Graph::Var Graph::Sigmoid(Var x) {
  Var c = NewSlot();
  SigmoidElem(value(x), &node(c).value);
  node(c).backward = [this, x, c]() {
    const Tensor& y = nodes_[c].value;
    const Tensor& dy = nodes_[c].grad;
    Tensor& dx = nodes_[x].grad;
    for (size_t i = 0; i < y.size(); ++i) {
      dx[i] += dy[i] * y[i] * (1.0f - y[i]);
    }
  };
  return c;
}

Graph::Var Graph::RnnTanhStep(Var x, Var wx, Var h, Var wh, Var b) {
  Var c = NewSlot();
  // Pre-activation z = x wx + h wh staged in the aux buffer; the bias add
  // and tanh are fused into the final pass. Backward reuses the same buffer
  // for dz = dy * (1 - y^2).
  Tensor* z = Aux(c);
  nn::MatMul(value(x), value(wx), z);
  MatMulAcc(value(h), value(wh), z);
  AddBiasTanh(*z, value(b), &node(c).value);
  node(c).backward = [this, x, wx, h, wh, b, c]() {
    Node& nc = nodes_[c];
    const Tensor& y = nc.value;
    const Tensor& dy = nc.grad;
    Tensor& dz = *nc.aux;
    dz.ResizeForOverwrite(y.shape());
    const int n = y.rows();
    const int m = y.cols();
    Tensor& db = nodes_[b].grad;
    BIRNN_CHECK_EQ(db.size(), static_cast<size_t>(m));
    const float* __restrict py = y.data();
    const float* __restrict pdy = dy.data();
    float* __restrict pdz = dz.data();
    float* __restrict pdb = db.data();
    for (int i = 0; i < n; ++i) {
      const size_t off = static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) {
        const float yv = py[off + j];
        const float g = pdy[off + j] * (1.0f - yv * yv);
        pdz[off + j] = g;
        pdb[j] += g;
      }
    }
    MatMulTransposeBAcc(dz, nodes_[wx].value, &nodes_[x].grad);
    MatMulTransposeAAcc(nodes_[x].value, dz, &nodes_[wx].grad);
    MatMulTransposeBAcc(dz, nodes_[wh].value, &nodes_[h].grad);
    MatMulTransposeAAcc(nodes_[h].value, dz, &nodes_[wh].grad);
  };
  return c;
}

Graph::Var Graph::ConcatCols(const std::vector<Var>& parts) {
  Var c = NewSlot();
  std::vector<const Tensor*> tensors;
  tensors.reserve(parts.size());
  for (Var p : parts) tensors.push_back(&value(p));
  nn::ConcatCols(tensors, &node(c).value);
  std::vector<Var> saved = parts;
  node(c).backward = [this, saved, c]() {
    const Tensor& dy = nodes_[c].grad;
    const int n = dy.rows();
    const int total = dy.cols();
    int off = 0;
    for (Var p : saved) {
      Tensor& dp = nodes_[p].grad;
      const int m = dp.cols();
      for (int i = 0; i < n; ++i) {
        const float* src = dy.data() + static_cast<size_t>(i) * total + off;
        float* dst = dp.data() + static_cast<size_t>(i) * m;
        for (int j = 0; j < m; ++j) dst[j] += src[j];
      }
      off += m;
    }
    BIRNN_CHECK_EQ(off, total);
  };
  return c;
}

Graph::Var Graph::SliceCols(Var x, int start, int count) {
  Var c = NewSlot();
  nn::SliceCols(value(x), start, count, &node(c).value);
  node(c).backward = [this, x, c, start, count]() {
    const Tensor& dy = nodes_[c].grad;
    Tensor& dx = nodes_[x].grad;
    const int n = dy.rows();
    const int m = dx.cols();
    for (int i = 0; i < n; ++i) {
      const float* src = dy.data() + static_cast<size_t>(i) * count;
      float* dst = dx.data() + static_cast<size_t>(i) * m + start;
      for (int j = 0; j < count; ++j) dst[j] += src[j];
    }
  };
  return c;
}

Graph::Var Graph::Embedding(Var table, std::vector<int> ids) {
  Var c = NewSlot();
  GatherRows(value(table), ids, &node(c).value);
  node(c).backward = [this, table, ids = std::move(ids), c]() {
    ScatterAddRows(nodes_[c].grad, ids, &nodes_[table].grad);
  };
  return c;
}

Graph::Var Graph::BatchNormTrain(Var x, Var gamma, Var beta,
                                 Tensor* running_mean, Tensor* running_var,
                                 float momentum, float eps,
                                 Tensor* batch_mean_out,
                                 Tensor* batch_var_out) {
  const Tensor& xin = value(x);
  BIRNN_CHECK_EQ(xin.rank(), 2);
  const int n = xin.rows();
  const int m = xin.cols();
  BIRNN_CHECK_EQ(value(gamma).size(), static_cast<size_t>(m));
  BIRNN_CHECK_EQ(value(beta).size(), static_cast<size_t>(m));

  std::vector<float> mu(m, 0.0f);
  std::vector<float> var(m, 0.0f);
  for (int i = 0; i < n; ++i) {
    const float* row = xin.data() + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) mu[static_cast<size_t>(j)] += row[j];
  }
  for (int j = 0; j < m; ++j) mu[static_cast<size_t>(j)] /= static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    const float* row = xin.data() + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) {
      const float d = row[j] - mu[static_cast<size_t>(j)];
      var[static_cast<size_t>(j)] += d * d;
    }
  }
  for (int j = 0; j < m; ++j) var[static_cast<size_t>(j)] /= static_cast<float>(n);

  if (batch_mean_out != nullptr) {
    // Deferred mode: hand the batch statistics to the caller (data-parallel
    // shards apply the EMA update later, in fixed shard order).
    BIRNN_CHECK(batch_var_out != nullptr);
    batch_mean_out->ResizeForOverwrite(std::vector<int>{m});
    batch_var_out->ResizeForOverwrite(std::vector<int>{m});
    for (int j = 0; j < m; ++j) {
      (*batch_mean_out)[static_cast<size_t>(j)] = mu[static_cast<size_t>(j)];
      (*batch_var_out)[static_cast<size_t>(j)] = var[static_cast<size_t>(j)];
    }
  } else {
    // Update running statistics in-place.
    BIRNN_CHECK_EQ(running_mean->size(), static_cast<size_t>(m));
    BIRNN_CHECK_EQ(running_var->size(), static_cast<size_t>(m));
    for (int j = 0; j < m; ++j) {
      (*running_mean)[static_cast<size_t>(j)] =
          momentum * (*running_mean)[static_cast<size_t>(j)] +
          (1.0f - momentum) * mu[static_cast<size_t>(j)];
      (*running_var)[static_cast<size_t>(j)] =
          momentum * (*running_var)[static_cast<size_t>(j)] +
          (1.0f - momentum) * var[static_cast<size_t>(j)];
    }
  }

  Var c = NewSlot();
  // Saved state packed as (n+1, m): rows 0..n-1 hold xhat, row n holds
  // inv_std per feature (single aux slot per node).
  Tensor* aux = Aux(c);
  aux->ResizeForOverwrite(n + 1, m);
  for (int j = 0; j < m; ++j) {
    aux->at(n, j) = 1.0f / std::sqrt(var[static_cast<size_t>(j)] + eps);
  }
  Tensor& out = node(c).value;
  out.ResizeForOverwrite(n, m);
  const Tensor& g = value(gamma);
  const Tensor& b = value(beta);
  for (int i = 0; i < n; ++i) {
    const float* row = xin.data() + static_cast<size_t>(i) * m;
    float* orow = out.data() + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) {
      const size_t sj = static_cast<size_t>(j);
      const float xhat = (row[j] - mu[sj]) * aux->at(n, j);
      aux->at(i, j) = xhat;
      orow[j] = g[sj] * xhat + b[sj];
    }
  }

  node(c).backward = [this, x, gamma, beta, c, n, m]() {
    const Tensor& dy = nodes_[c].grad;
    const Tensor& aux_t = *nodes_[c].aux;
    const Tensor& g = nodes_[gamma].value;
    Tensor& dx = nodes_[x].grad;
    Tensor& dgamma = nodes_[gamma].grad;
    Tensor& dbeta = nodes_[beta].grad;

    std::vector<float> sum_dy(static_cast<size_t>(m), 0.0f);
    std::vector<float> sum_dy_xhat(static_cast<size_t>(m), 0.0f);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        const size_t sj = static_cast<size_t>(j);
        sum_dy[sj] += dy.at(i, j);
        sum_dy_xhat[sj] += dy.at(i, j) * aux_t.at(i, j);
      }
    }
    for (int j = 0; j < m; ++j) {
      const size_t sj = static_cast<size_t>(j);
      dgamma[sj] += sum_dy_xhat[sj];
      dbeta[sj] += sum_dy[sj];
    }
    const float inv_n = 1.0f / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        const size_t sj = static_cast<size_t>(j);
        const float inv_std_j = aux_t.at(n, j);
        const float term = static_cast<float>(n) * dy.at(i, j) - sum_dy[sj] -
                           aux_t.at(i, j) * sum_dy_xhat[sj];
        dx.at(i, j) += g[sj] * inv_std_j * inv_n * term;
      }
    }
  };
  return c;
}

Graph::Var Graph::BatchNormInfer(Var x, Var gamma, Var beta,
                                 const Tensor& running_mean,
                                 const Tensor& running_var, float eps) {
  const Tensor& xin = value(x);
  BIRNN_CHECK_EQ(xin.rank(), 2);
  const int n = xin.rows();
  const int m = xin.cols();
  BIRNN_CHECK_EQ(running_mean.size(), static_cast<size_t>(m));
  BIRNN_CHECK_EQ(running_var.size(), static_cast<size_t>(m));

  Var c = NewSlot();
  // y = gamma * (x - rm) * inv_std + beta; save xhat (n,m) + inv_std row.
  Tensor* aux = Aux(c);
  aux->ResizeForOverwrite(n + 1, m);
  Tensor& out = node(c).value;
  out.ResizeForOverwrite(n, m);
  const Tensor& g = value(gamma);
  const Tensor& b = value(beta);
  for (int j = 0; j < m; ++j) {
    aux->at(n, j) = 1.0f / std::sqrt(running_var[static_cast<size_t>(j)] + eps);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      const size_t sj = static_cast<size_t>(j);
      const float xhat = (xin.at(i, j) - running_mean[sj]) * aux->at(n, j);
      aux->at(i, j) = xhat;
      out.at(i, j) = g[sj] * xhat + b[sj];
    }
  }
  node(c).backward = [this, x, gamma, beta, c, n, m]() {
    const Tensor& dy = nodes_[c].grad;
    const Tensor& aux_t = *nodes_[c].aux;
    const Tensor& g = nodes_[gamma].value;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        const size_t sj = static_cast<size_t>(j);
        nodes_[x].grad.at(i, j) += dy.at(i, j) * g[sj] * aux_t.at(n, j);
        nodes_[gamma].grad[sj] += dy.at(i, j) * aux_t.at(i, j);
        nodes_[beta].grad[sj] += dy.at(i, j);
      }
    }
  };
  return c;
}

Graph::Var Graph::SoftmaxCrossEntropy(Var logits, std::vector<int> labels) {
  Var c = NewSlot();
  Tensor* probs = Aux(c);
  const float loss = SoftmaxCrossEntropyLoss(value(logits), labels, probs);
  node(c).value.ResizeForOverwrite(std::vector<int>{1});
  node(c).value[0] = loss;
  node(c).backward = [this, logits, labels = std::move(labels), c]() {
    const float dloss = nodes_[c].grad[0];
    const Tensor& p = *nodes_[c].aux;
    Tensor& dl = nodes_[logits].grad;
    const int n = p.rows();
    const int m = p.cols();
    const float scale = dloss / static_cast<float>(std::max(1, n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        const float onehot =
            (labels[static_cast<size_t>(i)] == j) ? 1.0f : 0.0f;
        dl.at(i, j) += scale * (p.at(i, j) - onehot);
      }
    }
  };
  return c;
}

const Tensor& Graph::Probs(Var loss) const {
  const Node& nd = nodes_[CheckVar(loss)];
  BIRNN_CHECK(nd.aux != nullptr) << "Probs() on a non-cross-entropy node";
  return *nd.aux;
}

void Graph::Backward(Var loss, float loss_seed, ParamGradMap* sink) {
  const size_t li = CheckVar(loss);
  BIRNN_CHECK_EQ(nodes_[li].value.size(), 1u)
      << "Backward requires a scalar loss";
  // Size and zero all gradients (buffer-reusing; no allocation once the
  // arena has warmed up).
  for (size_t i = 0; i < live_; ++i) {
    nodes_[i].grad.Resize(nodes_[i].value.shape());
  }
  nodes_[li].grad[0] = loss_seed;
  for (size_t i = live_; i-- > 0;) {
    if (nodes_[i].backward) nodes_[i].backward();
  }
  // Flush parameter gradients into the shared accumulators, or into the
  // caller's private sink for lock-free data-parallel shards.
  for (size_t i = 0; i < live_; ++i) {
    Node& nd = nodes_[i];
    if (nd.param == nullptr) continue;
    if (sink != nullptr) {
      Tensor& acc = (*sink)[nd.param];
      if (acc.shape() != nd.grad.shape()) acc.Resize(nd.grad.shape());
      acc.Add(nd.grad);
    } else {
      if (nd.param->grad.shape() != nd.grad.shape()) {
        nd.param->grad = Tensor(nd.grad.shape());
      }
      nd.param->grad.Add(nd.grad);
    }
  }
}

}  // namespace birnn::nn
