// Compiled with -ffast-math (see CMakeLists.txt): under __FAST_MATH__ glibc
// declares simd variants of tanhf/expf, so these loops vectorize into
// libmvec kernels instead of one scalar libm call per element. The hot
// tanh sweeps of the recurrent cells spend most of their time here.
#include "nn/vecmath.h"

#include <cmath>

namespace birnn::nn {

void TanhVec(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void SigmoidVec(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void ExpVec(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::exp(x[i]);
}

}  // namespace birnn::nn
