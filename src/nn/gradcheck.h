#ifndef BIRNN_NN_GRADCHECK_H_
#define BIRNN_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/parameter.h"
#include "util/rng.h"

namespace birnn::nn {

/// Result of comparing analytic parameter gradients against central finite
/// differences.
struct GradCheckResult {
  double max_abs_diff = 0.0;
  double max_rel_diff = 0.0;
  size_t checked_elements = 0;
  bool ok = false;
};

/// Verifies analytic gradients.
///
/// `loss_fn` must rebuild the computation from the *current* parameter
/// values and return the scalar loss. When `with_backward` is true it must
/// also run Backward so gradients land in `Parameter::grad` (which this
/// function zeroes beforehand).
///
/// Checks up to `max_elements_per_param` randomly chosen elements of each
/// parameter with perturbation `delta`. Gradients match when the relative
/// difference |a-n| / max(1, |a|+|n|) stays below `tol`.
GradCheckResult CheckParameterGradients(
    const std::vector<Parameter*>& params,
    const std::function<float(bool with_backward)>& loss_fn, Rng* rng,
    float delta = 1e-3f, float tol = 1e-2f,
    size_t max_elements_per_param = 16);

}  // namespace birnn::nn

#endif  // BIRNN_NN_GRADCHECK_H_
