#ifndef BIRNN_NN_LAYERS_H_
#define BIRNN_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/parameter.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace birnn::nn {

/// Character/attribute embedding table of shape (vocab, dim). Index 0 is the
/// padding/end indicator (the paper pads short sequences with index 0); it is
/// trained like any other row, matching the Keras default.
class Embedding {
 public:
  Embedding(std::string name, int vocab, int dim, Rng* rng);

  /// Creates the table node on `g` (call once per graph, reuse the Var).
  Graph::Var Bind(Graph* g) { return g->Param(&table_); }

  /// Forward-only lookup for inference.
  void LookupForward(const std::vector<int>& ids, Tensor* out) const;

  std::vector<Parameter*> Params() { return {&table_}; }
  int vocab() const { return table_.value.rows(); }
  int dim() const { return table_.value.cols(); }
  Parameter& table() { return table_; }

 private:
  Parameter table_;
};

/// Fully connected layer: y = act(x W + b).
class Dense {
 public:
  enum class Activation { kNone, kRelu, kTanh };

  Dense(std::string name, int input_dim, int output_dim, Activation act,
        Rng* rng);

  /// Handles to this layer's nodes on one graph.
  struct Bound {
    Graph* g;
    Graph::Var w;
    Graph::Var b;
    Activation act;
    Graph::Var Apply(Graph::Var x) const;
  };
  Bound Bind(Graph* g);

  /// Reusable intermediates for `ApplyForward`; keep one per thread and the
  /// layer stops allocating after the first batch.
  struct ForwardScratch {
    Tensor z;
    Tensor zb;
  };

  /// Forward-only application for inference.
  void ApplyForward(const Tensor& x, Tensor* out) const;

  /// Forward-only application writing intermediates into caller-owned
  /// scratch (bit-identical to the scratch-free overload).
  void ApplyForward(const Tensor& x, Tensor* out, ForwardScratch* scratch) const;

  std::vector<Parameter*> Params() { return {&w_, &b_}; }
  int input_dim() const { return w_.value.rows(); }
  int output_dim() const { return w_.value.cols(); }

 private:
  Parameter w_;
  Parameter b_;
  Activation act_;
};

/// Batch normalization over the feature axis with running statistics for
/// inference (Ioffe & Szegedy 2015), as used before the softmax in both
/// paper architectures.
class BatchNorm1d {
 public:
  BatchNorm1d(std::string name, int features, float momentum = 0.9f,
              float eps = 1e-5f);

  /// Training-mode application on a graph: uses batch statistics and
  /// updates the running estimates. `training=false` uses running stats.
  Graph::Var Apply(Graph* g, Graph::Var x, bool training);

  /// Training-mode application that captures the batch statistics into
  /// `mean_out`/`var_out` instead of updating the running estimates.
  /// Data-parallel shards use this so the EMA update can be replayed later
  /// in fixed shard order via `UpdateRunningStats`.
  Graph::Var ApplyTrainCaptured(Graph* g, Graph::Var x, Tensor* mean_out,
                                Tensor* var_out);

  /// Applies one EMA step with the given batch statistics:
  /// running = momentum * running + (1 - momentum) * batch.
  void UpdateRunningStats(const Tensor& batch_mean, const Tensor& batch_var);

  /// Forward-only inference using running statistics.
  void ApplyForward(const Tensor& x, Tensor* out) const;

  std::vector<Parameter*> Params() { return {&gamma_, &beta_}; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  /// Overwrites the running statistics (used by checkpoint restore).
  void SetRunningStats(Tensor mean, Tensor var);

 private:
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;
  float momentum_;
  float eps_;
};

/// Elman RNN cell with tanh activation (paper Eq. 1–2):
///   h_t = tanh(x_t Wx + h_{t-1} Wh + b).
class RnnCell {
 public:
  RnnCell(std::string name, int input_dim, int units, Rng* rng);

  struct Bound {
    Graph* g;
    Graph::Var wx;
    Graph::Var wh;
    Graph::Var bh;
    /// One recurrence step on the graph.
    Graph::Var Step(Graph::Var x, Graph::Var h_prev) const;
  };
  Bound Bind(Graph* g);

  /// Forward-only step for inference.
  void StepForward(const Tensor& x, const Tensor& h_prev, Tensor* h_out) const;

  std::vector<Parameter*> Params() { return {&wx_, &wh_, &bh_}; }
  int input_dim() const { return wx_.value.rows(); }
  int units() const { return wx_.value.cols(); }

 private:
  Parameter wx_;
  Parameter wh_;
  Parameter bh_;
};

/// A stack of RNN levels run in one or two directions over a sequence
/// (paper §4.3: "two-stacked bidirectional RNN"). Level l consumes the
/// hidden states of level l-1 at every time step (Fig. 2); the forward and
/// backward chains are independent stacks whose final top-level states are
/// concatenated (output dim = units * directions).
class StackedBiRnn {
 public:
  StackedBiRnn(std::string name, int input_dim, int units, int stacks,
               bool bidirectional, Rng* rng);

  /// Runs the stack over `steps` (one (batch, input_dim) Var per time step)
  /// and returns the concatenated final hidden state(s).
  Graph::Var Apply(Graph* g, const std::vector<Graph::Var>& steps, int batch);

  /// Forward-only version for inference.
  void ApplyForward(const std::vector<Tensor>& steps, Tensor* out) const;

  std::vector<Parameter*> Params();
  int output_dim() const { return units_ * (bidirectional_ ? 2 : 1); }
  int units() const { return units_; }
  int stacks() const { return stacks_; }
  bool bidirectional() const { return bidirectional_; }

 private:
  /// Runs one direction (ascending or descending t) and returns the final
  /// top-level hidden state Var.
  Graph::Var RunDirection(Graph* g, const std::vector<Graph::Var>& steps,
                          int batch, bool backward_direction,
                          const std::vector<RnnCell*>& cells);
  void RunDirectionForward(const std::vector<Tensor>& steps,
                           bool backward_direction,
                           const std::vector<const RnnCell*>& cells,
                           Tensor* out) const;

  int units_;
  int stacks_;
  bool bidirectional_;
  // cells_[dir][level]; dir 0 = forward, dir 1 = backward (if enabled).
  std::vector<std::vector<RnnCell>> cells_;
};

}  // namespace birnn::nn

#endif  // BIRNN_NN_LAYERS_H_
