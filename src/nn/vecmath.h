#ifndef BIRNN_NN_VECMATH_H_
#define BIRNN_NN_VECMATH_H_

#include <cstddef>

namespace birnn::nn {

/// Transcendental sweeps compiled in their own translation unit with
/// -ffast-math so GCC lowers them to libmvec SIMD kernels (_ZGV*_tanhf /
/// _ZGV*_expf). Everything else in the library keeps strict FP semantics.
/// In-place operation (y == x) is allowed.

/// y[i] = tanh(x[i])
void TanhVec(const float* x, float* y, size_t n);

/// y[i] = 1 / (1 + exp(-x[i]))
void SigmoidVec(const float* x, float* y, size_t n);

/// y[i] = exp(x[i])
void ExpVec(const float* x, float* y, size_t n);

}  // namespace birnn::nn

#endif  // BIRNN_NN_VECMATH_H_
