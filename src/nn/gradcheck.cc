#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"

namespace birnn::nn {

GradCheckResult CheckParameterGradients(
    const std::vector<Parameter*>& params,
    const std::function<float(bool with_backward)>& loss_fn, Rng* rng,
    float delta, float tol, size_t max_elements_per_param) {
  GradCheckResult result;
  result.ok = true;

  ZeroGrads(params);
  (void)loss_fn(/*with_backward=*/true);
  // Copy analytic gradients before we start perturbing values.
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (Parameter* p : params) analytic.push_back(p->grad);

  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    const size_t n = p->value.size();
    std::vector<size_t> elems;
    if (n <= max_elements_per_param) {
      for (size_t i = 0; i < n; ++i) elems.push_back(i);
    } else {
      elems = rng->SampleWithoutReplacement(n, max_elements_per_param);
    }
    for (size_t ei : elems) {
      const float original = p->value[ei];
      p->value[ei] = original + delta;
      const double loss_plus = loss_fn(false);
      p->value[ei] = original - delta;
      const double loss_minus = loss_fn(false);
      p->value[ei] = original;

      const double numeric = (loss_plus - loss_minus) / (2.0 * delta);
      const double a = analytic[pi][ei];
      const double abs_diff = std::fabs(a - numeric);
      const double rel_diff =
          abs_diff / std::max(1.0, std::fabs(a) + std::fabs(numeric));
      result.max_abs_diff = std::max(result.max_abs_diff, abs_diff);
      result.max_rel_diff = std::max(result.max_rel_diff, rel_diff);
      ++result.checked_elements;
      if (rel_diff > tol) result.ok = false;
    }
  }
  return result;
}

}  // namespace birnn::nn
