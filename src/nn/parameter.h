#ifndef BIRNN_NN_PARAMETER_H_
#define BIRNN_NN_PARAMETER_H_

#include <string>
#include <unordered_map>
#include <utility>

#include "nn/tensor.h"

namespace birnn::nn {

/// A trainable tensor together with its gradient accumulator. Layers own
/// their Parameters; optimizers and checkpoints reference them by pointer.
struct Parameter {
  Parameter() = default;
  Parameter(std::string name_in, Tensor value_in)
      : name(std::move(name_in)), value(std::move(value_in)) {
    grad = Tensor(value.shape());
  }

  /// Resets the gradient accumulator to zero (shape follows value).
  void ZeroGrad() {
    if (grad.shape() != value.shape()) {
      grad = Tensor(value.shape());
    } else {
      grad.Zero();
    }
  }

  std::string name;
  Tensor value;
  Tensor grad;
};

/// Per-shard gradient accumulator for data-parallel training: maps each
/// parameter to a private gradient tensor so shard backward passes never
/// touch the shared `Parameter::grad`. Tensors are lazily sized on first
/// accumulation and retained across steps (zeroed, not reallocated).
using ParamGradMap = std::unordered_map<Parameter*, Tensor>;

/// Zeroes every accumulator in `grads` (keeps buffers).
inline void ZeroParamGradMap(ParamGradMap* grads) {
  for (auto& [param, grad] : *grads) {
    (void)param;
    grad.Zero();
  }
}

}  // namespace birnn::nn

#endif  // BIRNN_NN_PARAMETER_H_
