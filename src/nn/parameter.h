#ifndef BIRNN_NN_PARAMETER_H_
#define BIRNN_NN_PARAMETER_H_

#include <string>
#include <utility>

#include "nn/tensor.h"

namespace birnn::nn {

/// A trainable tensor together with its gradient accumulator. Layers own
/// their Parameters; optimizers and checkpoints reference them by pointer.
struct Parameter {
  Parameter() = default;
  Parameter(std::string name_in, Tensor value_in)
      : name(std::move(name_in)), value(std::move(value_in)) {
    grad = Tensor(value.shape());
  }

  /// Resets the gradient accumulator to zero (shape follows value).
  void ZeroGrad() {
    if (grad.shape() != value.shape()) {
      grad = Tensor(value.shape());
    } else {
      grad.Zero();
    }
  }

  std::string name;
  Tensor value;
  Tensor grad;
};

}  // namespace birnn::nn

#endif  // BIRNN_NN_PARAMETER_H_
