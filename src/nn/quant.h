#ifndef BIRNN_NN_QUANT_H_
#define BIRNN_NN_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace birnn::nn {

/// Inference compute precision. Training always runs fp32; inference can
/// trade activation precision for SIMD width (see DESIGN.md §12):
///   kFp32 — the bit-exact reference path (identical to training forward).
///   kBf16 — weights and activations truncated to bfloat16 before each
///           multiply, fp32 accumulation. Halves weight bytes.
///   kInt8 — symmetric per-row-absmax weights + per-row on-the-fly
///           activation quantization, int32 accumulation, one combined
///           scale per output element. Quarter weight bytes, widest SIMD.
enum class Precision {
  kFp32,
  kBf16,
  kInt8,
};

const char* PrecisionName(Precision p);
StatusOr<Precision> ParsePrecision(const std::string& name);

/// A weight matrix quantized to symmetric per-row-absmax int8. The fp32
/// source `w` is (in, out) and used as x·w; storage here is TRANSPOSED to
/// (out, in) so each stored row is one output channel and "per-row absmax"
/// equals per-output-channel scaling: scales[j] = absmax(w[:,j]) / 127,
/// q[j][k] = rint(w[k][j] / scales[j]). That makes the combined dequant
/// factor of an output element separable — a_scale[i] * scales[j] — which
/// is what lets the GEMM accumulate in int32 with no per-k dequant.
///
/// `q` is the canonical (serialized) form; `packed` is a derived runtime
/// layout — k-pairs widened to int16 and interleaved per output column so
/// the inner loop maps onto pairwise multiply-add (vpmaddwd / vpdpwssd).
/// Rebuilt deterministically from `q` on load, never serialized.
struct QuantizedMatrix {
  int rows = 0;  ///< output channels (columns of the fp32 weight).
  int cols = 0;  ///< input features (rows of the fp32 weight).
  std::vector<int8_t> q;       ///< rows*cols, row-major (out, in).
  std::vector<float> scales;   ///< rows; absmax/127 per output channel.
  std::vector<int16_t> packed; ///< [ceil(cols/2)][rows][2], zero-padded k.

  bool empty() const { return q.empty(); }
  /// Serialized footprint: int8 payload + fp32 scales.
  size_t bytes() const { return q.size() + scales.size() * sizeof(float); }
  /// Rebuilds `packed` from `q` (used after deserialization).
  void RebuildPacked();
};

/// A weight matrix truncated to bfloat16 (top 16 bits of the IEEE-754
/// binary32 pattern; round-toward-zero). Keeps the fp32 (in, out) layout so
/// the GEMM runs the same i-k-j order as the fp32 kernel.
struct Bf16Matrix {
  int rows = 0;  ///< input features.
  int cols = 0;  ///< output channels.
  std::vector<uint16_t> q;  ///< rows*cols, row-major (in, out).

  bool empty() const { return q.empty(); }
  size_t bytes() const { return q.size() * sizeof(uint16_t); }
};

/// bfloat16 conversion primitives (pure truncation / bit extension).
uint16_t Bf16FromFloat(float v);
float FloatFromBf16(uint16_t v);

/// Quantizes `w` (in, out) to per-row-absmax int8 (transposed storage).
QuantizedMatrix QuantizeWeightInt8(const Tensor& w);

/// Reassembles a QuantizedMatrix from serialized parts (bundle load);
/// rebuilds the packed runtime layout.
QuantizedMatrix QuantizedMatrixFromParts(int rows, int cols,
                                         std::vector<int8_t> q,
                                         std::vector<float> scales);

/// Truncates `w` (in, out) to bfloat16.
Bf16Matrix QuantizeWeightBf16(const Tensor& w);

/// Per-thread scratch for the int8 kernels: quantized activation rows
/// (widened to int16 for the pairwise multiply-add) with their scales, and
/// the int32 accumulator tile. Reused across steps with no allocation once
/// sized.
struct QuantScratch {
  std::vector<int16_t> aq;    ///< n x cols_padded_even, quantized rows.
  std::vector<float> ascale;  ///< n, per-row activation scales.
  std::vector<int32_t> acc;   ///< n x out accumulators.
};

/// out(n, w.rows) = dequant( quantize_rows(x) · wᵀ ), overwriting `out`.
/// Each activation row is quantized on the fly (absmax/127, rint, the same
/// scheme as the weights); the int8·int8 products accumulate exactly in
/// int32 and the combined scale ascale[i]*w.scales[j] is applied once per
/// output element:  out[i][j] = float(acc[i][j]) * (ascale[i] * w.scales[j]).
/// Deterministic and batch-row independent: row i of `out` depends only on
/// row i of `x`, and the integer arithmetic is exact on every SIMD tier, so
/// results are bit-identical across scalar/AVX2/AVX-512 builds and any
/// batch composition.
void Int8MatMul(const Tensor& x, const QuantizedMatrix& w, Tensor* out,
                QuantScratch* scratch);

/// out += dequant(quantize_rows(x) · wᵀ); `out` must already be (n, w.rows).
void Int8MatMulAcc(const Tensor& x, const QuantizedMatrix& w, Tensor* out,
                   QuantScratch* scratch);

/// Fused quantized vanilla-RNN step: out = tanh(x·Wx + h·Wh + b) with both
/// GEMMs running the int8 path. Activations (x and h) are quantized on the
/// fly; each GEMM applies its combined scale once per output element; the
/// bias add and tanh run fused in one final pass (AddBiasTanh).
void Int8RnnTanhStep(const Tensor& x, const QuantizedMatrix& wx,
                     const Tensor& h, const QuantizedMatrix& wh,
                     const Tensor& b, Tensor* out, Tensor* z_scratch,
                     QuantScratch* scratch);

/// out(n, w.cols) = truncate(x) · w with fp32 accumulation: every product
/// is bf16(x[i][k]) * bf16(w[k][j]) — both operands truncated — added in
/// the same i-k-j order as the fp32 MatMul kernel. Overwrites `out`.
void Bf16MatMul(const Tensor& x, const Bf16Matrix& w, Tensor* out);

/// Accumulating variant; `out` must already be (n, w.cols).
void Bf16MatMulAcc(const Tensor& x, const Bf16Matrix& w, Tensor* out);

}  // namespace birnn::nn

#endif  // BIRNN_NN_QUANT_H_
