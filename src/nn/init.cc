#include "nn/init.h"

#include <cmath>
#include <vector>

namespace birnn::nn {

void GlorotUniform(Tensor* t, Rng* rng) {
  BIRNN_CHECK_EQ(t->rank(), 2);
  const float limit = std::sqrt(6.0f / static_cast<float>(t->rows() + t->cols()));
  UniformInit(t, limit, rng);
}

void UniformInit(Tensor* t, float scale, Rng* rng) {
  for (size_t i = 0; i < t->size(); ++i) {
    (*t)[i] = rng->UniformFloat(-scale, scale);
  }
}

void NormalInit(Tensor* t, float stddev, Rng* rng) {
  for (size_t i = 0; i < t->size(); ++i) {
    (*t)[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
}

void OrthogonalInit(Tensor* t, Rng* rng) {
  BIRNN_CHECK_EQ(t->rank(), 2);
  const int n = t->rows();
  const int m = t->cols();
  // Work on rows of an n x m Gaussian matrix; orthonormalize the rows if
  // n <= m, otherwise the columns (via the transposed problem).
  const bool transpose = n > m;
  const int r = transpose ? m : n;  // number of vectors
  const int d = transpose ? n : m;  // vector dimension
  std::vector<std::vector<float>> v(static_cast<size_t>(r),
                                    std::vector<float>(static_cast<size_t>(d)));
  for (auto& row : v) {
    for (auto& x : row) x = static_cast<float>(rng->Normal());
  }
  // Modified Gram–Schmidt.
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < i; ++j) {
      float dot = 0.0f;
      for (int k = 0; k < d; ++k) {
        dot += v[static_cast<size_t>(i)][static_cast<size_t>(k)] *
               v[static_cast<size_t>(j)][static_cast<size_t>(k)];
      }
      for (int k = 0; k < d; ++k) {
        v[static_cast<size_t>(i)][static_cast<size_t>(k)] -=
            dot * v[static_cast<size_t>(j)][static_cast<size_t>(k)];
      }
    }
    float norm = 0.0f;
    for (int k = 0; k < d; ++k) {
      const float x = v[static_cast<size_t>(i)][static_cast<size_t>(k)];
      norm += x * x;
    }
    norm = std::sqrt(norm);
    if (norm < 1e-8f) {
      // Degenerate draw; re-randomize this vector and retry once.
      for (int k = 0; k < d; ++k) {
        v[static_cast<size_t>(i)][static_cast<size_t>(k)] =
            static_cast<float>(rng->Normal());
      }
      --i;
      continue;
    }
    for (int k = 0; k < d; ++k) {
      v[static_cast<size_t>(i)][static_cast<size_t>(k)] /= norm;
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      t->at(i, j) = transpose ? v[static_cast<size_t>(j)][static_cast<size_t>(i)]
                              : v[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
  }
}

}  // namespace birnn::nn
