#include "nn/recurrent.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"
#include "nn/ops.h"
#include "util/string_util.h"

namespace birnn::nn {

const char* CellTypeName(CellType type) {
  switch (type) {
    case CellType::kVanilla:
      return "rnn";
    case CellType::kGru:
      return "gru";
    case CellType::kLstm:
      return "lstm";
  }
  return "?";
}

StatusOr<CellType> ParseCellType(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "rnn" || lower == "vanilla" || lower == "simple") {
    return CellType::kVanilla;
  }
  if (lower == "gru") return CellType::kGru;
  if (lower == "lstm") return CellType::kLstm;
  return Status::NotFound("unknown cell type: " + name);
}

namespace {
int GateCount(CellType type) {
  switch (type) {
    case CellType::kVanilla:
      return 1;
    case CellType::kGru:
      return 3;  // z | r | h~
    case CellType::kLstm:
      return 4;  // i | f | g | o
  }
  return 1;
}
}  // namespace

RecurrentCell::RecurrentCell(CellType type, std::string name, int input_dim,
                             int units, Rng* rng)
    : type_(type),
      input_dim_(input_dim),
      units_(units),
      wx_(name + "/wx", Tensor(input_dim, units * GateCount(type))),
      wh_(name + "/wh", Tensor(units, units * GateCount(type))),
      b_(name + "/b", Tensor(std::vector<int>{units * GateCount(type)})) {
  const int gates = GateCount(type);
  // Per-gate initialization: Glorot on each (input_dim, units) block of the
  // input kernel, orthogonal on each (units, units) block of the recurrent
  // kernel — the Keras defaults for all three families.
  for (int g = 0; g < gates; ++g) {
    Tensor block_x(input_dim, units);
    GlorotUniform(&block_x, rng);
    for (int i = 0; i < input_dim; ++i) {
      for (int j = 0; j < units; ++j) {
        wx_.value.at(i, g * units + j) = block_x.at(i, j);
      }
    }
    Tensor block_h(units, units);
    OrthogonalInit(&block_h, rng);
    for (int i = 0; i < units; ++i) {
      for (int j = 0; j < units; ++j) {
        wh_.value.at(i, g * units + j) = block_h.at(i, j);
      }
    }
  }
  if (type == CellType::kLstm) {
    // Unit forget-gate bias (gate block 1 in [i | f | g | o]).
    for (int j = 0; j < units; ++j) {
      b_.value[static_cast<size_t>(units + j)] = 1.0f;
    }
  }
}

RecurrentCell::Bound RecurrentCell::Bind(Graph* g) const {
  return Bound{this, g, g->Param(&wx_), g->Param(&wh_), g->Param(&b_)};
}

RecurrentState RecurrentCell::InitialState(Graph* g, int batch) const {
  RecurrentState state;
  state.h = g->Input(Tensor(batch, units_));
  if (type_ == CellType::kLstm) {
    state.c = g->Input(Tensor(batch, units_));
  }
  return state;
}

RecurrentTensors RecurrentCell::InitialTensors(int batch) const {
  RecurrentTensors state;
  state.h = Tensor(batch, units_);
  if (type_ == CellType::kLstm) state.c = Tensor(batch, units_);
  return state;
}

RecurrentState RecurrentCell::Bound::Step(Graph::Var x,
                                          const RecurrentState& prev) const {
  Graph* graph = g;
  const int u = cell->units();
  const int batch = graph->value(prev.h).rows();
  RecurrentState next;
  switch (cell->type()) {
    case CellType::kVanilla: {
      next.h = graph->RnnTanhStep(x, wx, prev.h, wh, b);
      return next;
    }
    case CellType::kGru: {
      // Reset-after GRU (Keras v2 / cuDNN layout): the reset gate scales
      // the recurrent projection, not the state.
      Graph::Var xg = graph->AddBias(graph->MatMul(x, wx), b);
      Graph::Var hg = graph->MatMul(prev.h, wh);
      Graph::Var z = graph->Sigmoid(graph->Add(graph->SliceCols(xg, 0, u),
                                               graph->SliceCols(hg, 0, u)));
      Graph::Var r = graph->Sigmoid(graph->Add(graph->SliceCols(xg, u, u),
                                               graph->SliceCols(hg, u, u)));
      Graph::Var h_cand = graph->Tanh(graph->Add(
          graph->SliceCols(xg, 2 * u, u),
          graph->Mul(r, graph->SliceCols(hg, 2 * u, u))));
      Graph::Var ones = graph->Input(Tensor::Full({batch, u}, 1.0f));
      next.h = graph->Add(graph->Mul(graph->Sub(ones, z), prev.h),
                          graph->Mul(z, h_cand));
      return next;
    }
    case CellType::kLstm: {
      Graph::Var gates = graph->AddBias(
          graph->Add(graph->MatMul(x, wx), graph->MatMul(prev.h, wh)), b);
      Graph::Var i = graph->Sigmoid(graph->SliceCols(gates, 0, u));
      Graph::Var f = graph->Sigmoid(graph->SliceCols(gates, u, u));
      Graph::Var g_cand = graph->Tanh(graph->SliceCols(gates, 2 * u, u));
      Graph::Var o = graph->Sigmoid(graph->SliceCols(gates, 3 * u, u));
      next.c = graph->Add(graph->Mul(f, prev.c), graph->Mul(i, g_cand));
      next.h = graph->Mul(o, graph->Tanh(next.c));
      return next;
    }
  }
  return next;
}

void RecurrentCell::StepForward(const Tensor& x, const RecurrentTensors& prev,
                                RecurrentTensors* out) const {
  StepScratch scratch;
  StepForward(x, prev, out, &scratch);
}

void RecurrentCell::StepForward(const Tensor& x, const RecurrentTensors& prev,
                                RecurrentTensors* out,
                                StepScratch* scratch) const {
  const int u = units_;
  const int batch = prev.h.rows();
  switch (type_) {
    case CellType::kVanilla: {
      Tensor& z = scratch->z1;
      MatMul(x, wx_.value, &z);
      MatMulAcc(prev.h, wh_.value, &z);
      AddBiasTanh(z, b_.value, &out->h);
      return;
    }
    case CellType::kGru: {
      // Bias is folded into the fused gate loop (no separate AddBias pass).
      Tensor& xg = scratch->z1;
      MatMul(x, wx_.value, &xg);
      Tensor& hg = scratch->z2;
      MatMul(prev.h, wh_.value, &hg);
      out->h.ResizeForOverwrite(batch, u);
      const float* bias = b_.value.data();
      for (int i = 0; i < batch; ++i) {
        for (int j = 0; j < u; ++j) {
          const float z = 1.0f / (1.0f + std::exp(-(xg.at(i, j) + bias[j] +
                                                    hg.at(i, j))));
          const float r =
              1.0f / (1.0f + std::exp(-(xg.at(i, u + j) + bias[u + j] +
                                        hg.at(i, u + j))));
          const float cand = std::tanh(xg.at(i, 2 * u + j) + bias[2 * u + j] +
                                       r * hg.at(i, 2 * u + j));
          out->h.at(i, j) = (1.0f - z) * prev.h.at(i, j) + z * cand;
        }
      }
      return;
    }
    case CellType::kLstm: {
      Tensor& gates = scratch->z1;
      MatMul(x, wx_.value, &gates);
      MatMulAcc(prev.h, wh_.value, &gates);
      out->h.ResizeForOverwrite(batch, u);
      out->c.ResizeForOverwrite(batch, u);
      const float* bias = b_.value.data();
      for (int i = 0; i < batch; ++i) {
        for (int j = 0; j < u; ++j) {
          const auto sigmoid = [](float v) {
            return 1.0f / (1.0f + std::exp(-v));
          };
          const float in_gate = sigmoid(gates.at(i, j) + bias[j]);
          const float forget = sigmoid(gates.at(i, u + j) + bias[u + j]);
          const float cand = std::tanh(gates.at(i, 2 * u + j) + bias[2 * u + j]);
          const float out_gate =
              sigmoid(gates.at(i, 3 * u + j) + bias[3 * u + j]);
          const float c_new = forget * prev.c.at(i, j) + in_gate * cand;
          out->c.at(i, j) = c_new;
          out->h.at(i, j) = out_gate * std::tanh(c_new);
        }
      }
      return;
    }
  }
}

std::vector<Parameter*> RecurrentCell::Params() const {
  return {&wx_, &wh_, &b_};
}

// ---------------------------------------------------------- StackedBiRecurrent

StackedBiRecurrent::StackedBiRecurrent(CellType type, std::string name,
                                       int input_dim, int units, int stacks,
                                       bool bidirectional, Rng* rng)
    : type_(type), units_(units), stacks_(stacks),
      bidirectional_(bidirectional) {
  BIRNN_CHECK_GE(stacks, 1);
  const int dirs = bidirectional ? 2 : 1;
  cells_.resize(static_cast<size_t>(dirs));
  for (int d = 0; d < dirs; ++d) {
    cells_[static_cast<size_t>(d)].reserve(static_cast<size_t>(stacks));
    for (int l = 0; l < stacks; ++l) {
      const int in_dim = (l == 0) ? input_dim : units;
      cells_[static_cast<size_t>(d)].emplace_back(
          type,
          name + "/dir" + std::to_string(d) + "/level" + std::to_string(l),
          in_dim, units, rng);
    }
  }
}

Graph::Var StackedBiRecurrent::RunDirection(
    Graph* g, const std::vector<Graph::Var>& steps, int batch,
    bool backward_direction,
    const std::vector<const RecurrentCell*>& cells) const {
  std::vector<RecurrentCell::Bound> bound;
  std::vector<RecurrentState> state;
  bound.reserve(cells.size());
  state.reserve(cells.size());
  for (const RecurrentCell* cell : cells) {
    bound.push_back(cell->Bind(g));
    state.push_back(cell->InitialState(g, batch));
  }
  const int t_count = static_cast<int>(steps.size());
  for (int i = 0; i < t_count; ++i) {
    const int t = backward_direction ? (t_count - 1 - i) : i;
    Graph::Var x = steps[static_cast<size_t>(t)];
    for (size_t l = 0; l < cells.size(); ++l) {
      state[l] = bound[l].Step(x, state[l]);
      x = state[l].h;
    }
  }
  return state.back().h;
}

Graph::Var StackedBiRecurrent::Apply(Graph* g,
                                     const std::vector<Graph::Var>& steps,
                                     int batch) const {
  BIRNN_CHECK(!steps.empty());
  std::vector<const RecurrentCell*> fwd;
  for (const auto& c : cells_[0]) fwd.push_back(&c);
  Graph::Var out_fwd = RunDirection(g, steps, batch, false, fwd);
  if (!bidirectional_) return out_fwd;
  std::vector<const RecurrentCell*> bwd;
  for (const auto& c : cells_[1]) bwd.push_back(&c);
  Graph::Var out_bwd = RunDirection(g, steps, batch, true, bwd);
  return g->ConcatCols({out_fwd, out_bwd});
}

namespace {
/// Fills every row of `dst` (batch x units) with row 0 of `src` (1 x units).
void BroadcastRow(const Tensor& src, int batch, Tensor* dst) {
  dst->ResizeForOverwrite(batch, src.cols());
  for (int r = 0; r < batch; ++r) {
    std::copy(src.data(), src.data() + src.cols(),
              dst->data() + static_cast<size_t>(r) * src.cols());
  }
}
}  // namespace

void StackedBiRecurrent::RunDirectionForward(
    const Tensor* steps, int t_count, bool backward_direction,
    const std::vector<const RecurrentCell*>& cells, const Tensor* tail_step,
    int tail_count, const std::vector<RecurrentTensors>* warm, Tensor* out,
    ForwardScratch* scratch) const {
  const int batch = steps[0].rows();
  std::vector<RecurrentTensors>& state = scratch->state;
  if (state.size() < cells.size()) state.resize(cells.size());
  for (size_t l = 0; l < cells.size(); ++l) {
    if (warm != nullptr) {
      // Warm start: the all-pad prefix state, identical for every row.
      BroadcastRow((*warm)[l].h, batch, &state[l].h);
      if (cells[l]->type() == CellType::kLstm) {
        BroadcastRow((*warm)[l].c, batch, &state[l].c);
      }
    } else {
      // Resize() zero-fills while reusing capacity — the initial state.
      state[l].h.Resize(batch, cells[l]->units());
      if (cells[l]->type() == CellType::kLstm) {
        state[l].c.Resize(batch, cells[l]->units());
      }
    }
  }
  RecurrentTensors& next = scratch->next;
  const int total = t_count + tail_count;
  for (int i = 0; i < total; ++i) {
    const Tensor* x;
    if (backward_direction) {
      x = &steps[t_count - 1 - i];
    } else {
      x = i < t_count ? &steps[i] : tail_step;
    }
    for (size_t l = 0; l < cells.size(); ++l) {
      cells[l]->StepForward(*x, state[l], &next, &scratch->step);
      // StepForward fully overwrites `next`, so swapping buffers instead of
      // copying is bit-identical.
      std::swap(state[l].h, next.h);
      if (cells[l]->type() == CellType::kLstm) std::swap(state[l].c, next.c);
      x = &state[l].h;
    }
  }
  *out = state.back().h;
}

void StackedBiRecurrent::ApplyForward(const std::vector<Tensor>& steps,
                                      Tensor* out) const {
  ForwardScratch scratch;
  ApplyForward(steps.data(), static_cast<int>(steps.size()), out, &scratch);
}

void StackedBiRecurrent::ApplyForward(const Tensor* steps, int t_count,
                                      Tensor* out,
                                      ForwardScratch* scratch) const {
  BIRNN_CHECK_GE(t_count, 1);
  std::vector<const RecurrentCell*> fwd;
  for (const auto& c : cells_[0]) fwd.push_back(&c);
  if (!bidirectional_) {
    RunDirectionForward(steps, t_count, false, fwd, nullptr, 0, nullptr, out,
                        scratch);
    return;
  }
  RunDirectionForward(steps, t_count, false, fwd, nullptr, 0, nullptr,
                      &scratch->out_fwd, scratch);
  std::vector<const RecurrentCell*> bwd;
  for (const auto& c : cells_[1]) bwd.push_back(&c);
  RunDirectionForward(steps, t_count, true, bwd, nullptr, 0, nullptr,
                      &scratch->out_bwd, scratch);
  ConcatCols({&scratch->out_fwd, &scratch->out_bwd}, out);
}

void StackedBiRecurrent::ComputeBackwardPadPrefix(
    const Tensor& pad_step, int max_steps, PadPrefixTrajectory* traj) const {
  traj->states.clear();
  if (!bidirectional_) return;
  const auto& cells = cells_[1];
  const int batch = pad_step.rows();

  std::vector<RecurrentTensors> state(cells.size());
  for (size_t l = 0; l < cells.size(); ++l) {
    state[l] = cells[l].InitialTensors(batch);
  }
  const auto record = [&]() {
    std::vector<RecurrentTensors> row(cells.size());
    for (size_t l = 0; l < cells.size(); ++l) {
      row[l].h = Tensor(1, cells[l].units());
      std::copy(state[l].h.data(), state[l].h.data() + cells[l].units(),
                row[l].h.data());
      if (cells[l].type() == CellType::kLstm) {
        row[l].c = Tensor(1, cells[l].units());
        std::copy(state[l].c.data(), state[l].c.data() + cells[l].units(),
                  row[l].c.data());
      }
    }
    traj->states.push_back(std::move(row));
  };

  record();  // k = 0: the zero initial state.
  RecurrentTensors next;
  StepScratch step;
  for (int k = 1; k <= max_steps; ++k) {
    const Tensor* x = &pad_step;
    for (size_t l = 0; l < cells.size(); ++l) {
      cells[l].StepForward(*x, state[l], &next, &step);
      std::swap(state[l].h, next.h);
      if (cells[l].type() == CellType::kLstm) std::swap(state[l].c, next.c);
      x = &state[l].h;
    }
    record();
  }
}

void StackedBiRecurrent::ApplyForwardBucketed(
    const Tensor* steps, int t_count, int t_total, const Tensor& pad_step,
    const PadPrefixTrajectory& traj, Tensor* out,
    ForwardScratch* scratch) const {
  BIRNN_CHECK_GE(t_count, 1);
  BIRNN_CHECK_GE(t_total, t_count);
  const int pad_count = t_total - t_count;
  std::vector<const RecurrentCell*> fwd;
  for (const auto& c : cells_[0]) fwd.push_back(&c);
  if (!bidirectional_) {
    RunDirectionForward(steps, t_count, false, fwd, &pad_step, pad_count,
                        nullptr, out, scratch);
    return;
  }
  RunDirectionForward(steps, t_count, false, fwd, &pad_step, pad_count,
                      nullptr, &scratch->out_fwd, scratch);
  BIRNN_CHECK_LE(pad_count, traj.max_steps());
  std::vector<const RecurrentCell*> bwd;
  for (const auto& c : cells_[1]) bwd.push_back(&c);
  RunDirectionForward(steps, t_count, true, bwd, nullptr, 0,
                      &traj.states[static_cast<size_t>(pad_count)],
                      &scratch->out_bwd, scratch);
  ConcatCols({&scratch->out_fwd, &scratch->out_bwd}, out);
}

std::vector<Parameter*> StackedBiRecurrent::Params() const {
  std::vector<Parameter*> out;
  for (const auto& dir : cells_) {
    for (const auto& cell : dir) {
      for (Parameter* p : cell.Params()) out.push_back(p);
    }
  }
  return out;
}

}  // namespace birnn::nn
