#include "nn/recurrent.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "nn/init.h"
#include "nn/ops.h"
#include "util/string_util.h"

namespace birnn::nn {

const char* CellTypeName(CellType type) {
  switch (type) {
    case CellType::kVanilla:
      return "rnn";
    case CellType::kGru:
      return "gru";
    case CellType::kLstm:
      return "lstm";
  }
  return "?";
}

StatusOr<CellType> ParseCellType(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "rnn" || lower == "vanilla" || lower == "simple") {
    return CellType::kVanilla;
  }
  if (lower == "gru") return CellType::kGru;
  if (lower == "lstm") return CellType::kLstm;
  return Status::NotFound("unknown cell type: " + name);
}

namespace {
int GateCount(CellType type) {
  switch (type) {
    case CellType::kVanilla:
      return 1;
    case CellType::kGru:
      return 3;  // z | r | h~
    case CellType::kLstm:
      return 4;  // i | f | g | o
  }
  return 1;
}
}  // namespace

int RecurrentCell::gate_count() const { return GateCount(type_); }

RecurrentCell::RecurrentCell(CellType type, std::string name, int input_dim,
                             int units, Rng* rng)
    : type_(type),
      input_dim_(input_dim),
      units_(units),
      wx_(name + "/wx", Tensor(input_dim, units * GateCount(type))),
      wh_(name + "/wh", Tensor(units, units * GateCount(type))),
      b_(name + "/b", Tensor(std::vector<int>{units * GateCount(type)})) {
  const int gates = GateCount(type);
  // Per-gate initialization: Glorot on each (input_dim, units) block of the
  // input kernel, orthogonal on each (units, units) block of the recurrent
  // kernel — the Keras defaults for all three families.
  for (int g = 0; g < gates; ++g) {
    Tensor block_x(input_dim, units);
    GlorotUniform(&block_x, rng);
    for (int i = 0; i < input_dim; ++i) {
      for (int j = 0; j < units; ++j) {
        wx_.value.at(i, g * units + j) = block_x.at(i, j);
      }
    }
    Tensor block_h(units, units);
    OrthogonalInit(&block_h, rng);
    for (int i = 0; i < units; ++i) {
      for (int j = 0; j < units; ++j) {
        wh_.value.at(i, g * units + j) = block_h.at(i, j);
      }
    }
  }
  if (type == CellType::kLstm) {
    // Unit forget-gate bias (gate block 1 in [i | f | g | o]).
    for (int j = 0; j < units; ++j) {
      b_.value[static_cast<size_t>(units + j)] = 1.0f;
    }
  }
}

RecurrentCell::Bound RecurrentCell::Bind(Graph* g) const {
  return Bound{this, g, g->Param(&wx_), g->Param(&wh_), g->Param(&b_)};
}

RecurrentState RecurrentCell::InitialState(Graph* g, int batch) const {
  RecurrentState state;
  state.h = g->Input(Tensor(batch, units_));
  if (type_ == CellType::kLstm) {
    state.c = g->Input(Tensor(batch, units_));
  }
  return state;
}

RecurrentTensors RecurrentCell::InitialTensors(int batch) const {
  RecurrentTensors state;
  state.h = Tensor(batch, units_);
  if (type_ == CellType::kLstm) state.c = Tensor(batch, units_);
  return state;
}

RecurrentState RecurrentCell::Bound::Step(Graph::Var x,
                                          const RecurrentState& prev) const {
  Graph* graph = g;
  const int u = cell->units();
  const int batch = graph->value(prev.h).rows();
  RecurrentState next;
  switch (cell->type()) {
    case CellType::kVanilla: {
      next.h = graph->RnnTanhStep(x, wx, prev.h, wh, b);
      return next;
    }
    case CellType::kGru: {
      // Reset-after GRU (Keras v2 / cuDNN layout): the reset gate scales
      // the recurrent projection, not the state.
      Graph::Var xg = graph->AddBias(graph->MatMul(x, wx), b);
      Graph::Var hg = graph->MatMul(prev.h, wh);
      Graph::Var z = graph->Sigmoid(graph->Add(graph->SliceCols(xg, 0, u),
                                               graph->SliceCols(hg, 0, u)));
      Graph::Var r = graph->Sigmoid(graph->Add(graph->SliceCols(xg, u, u),
                                               graph->SliceCols(hg, u, u)));
      Graph::Var h_cand = graph->Tanh(graph->Add(
          graph->SliceCols(xg, 2 * u, u),
          graph->Mul(r, graph->SliceCols(hg, 2 * u, u))));
      Graph::Var ones = graph->Input(Tensor::Full({batch, u}, 1.0f));
      next.h = graph->Add(graph->Mul(graph->Sub(ones, z), prev.h),
                          graph->Mul(z, h_cand));
      return next;
    }
    case CellType::kLstm: {
      Graph::Var gates = graph->AddBias(
          graph->Add(graph->MatMul(x, wx), graph->MatMul(prev.h, wh)), b);
      Graph::Var i = graph->Sigmoid(graph->SliceCols(gates, 0, u));
      Graph::Var f = graph->Sigmoid(graph->SliceCols(gates, u, u));
      Graph::Var g_cand = graph->Tanh(graph->SliceCols(gates, 2 * u, u));
      Graph::Var o = graph->Sigmoid(graph->SliceCols(gates, 3 * u, u));
      next.c = graph->Add(graph->Mul(f, prev.c), graph->Mul(i, g_cand));
      next.h = graph->Mul(o, graph->Tanh(next.c));
      return next;
    }
  }
  return next;
}

void RecurrentCell::PrepareQuantized(Precision p) const {
  switch (p) {
    case Precision::kFp32:
      return;
    case Precision::kInt8:
      if (quant_.wx_q8.empty()) {
        quant_.wx_q8 = QuantizeWeightInt8(wx_.value);
        quant_.wh_q8 = QuantizeWeightInt8(wh_.value);
      }
      return;
    case Precision::kBf16:
      if (quant_.wx_bf16.empty()) {
        quant_.wx_bf16 = QuantizeWeightBf16(wx_.value);
        quant_.wh_bf16 = QuantizeWeightBf16(wh_.value);
      }
      return;
  }
}

bool RecurrentCell::QuantizedReady(Precision p) const {
  switch (p) {
    case Precision::kFp32:
      return true;
    case Precision::kInt8:
      return !quant_.wx_q8.empty();
    case Precision::kBf16:
      return !quant_.wx_bf16.empty();
  }
  return false;
}

void RecurrentCell::InstallInt8(QuantizedMatrix wx, QuantizedMatrix wh) const {
  BIRNN_CHECK_EQ(wx.rows, wx_.value.cols());
  BIRNN_CHECK_EQ(wx.cols, wx_.value.rows());
  BIRNN_CHECK_EQ(wh.rows, wh_.value.cols());
  BIRNN_CHECK_EQ(wh.cols, wh_.value.rows());
  quant_.wx_q8 = std::move(wx);
  quant_.wh_q8 = std::move(wh);
}

void RecurrentCell::InstallBf16(Bf16Matrix wx, Bf16Matrix wh) const {
  BIRNN_CHECK_EQ(wx.rows, wx_.value.rows());
  BIRNN_CHECK_EQ(wx.cols, wx_.value.cols());
  BIRNN_CHECK_EQ(wh.rows, wh_.value.rows());
  BIRNN_CHECK_EQ(wh.cols, wh_.value.cols());
  quant_.wx_bf16 = std::move(wx);
  quant_.wh_bf16 = std::move(wh);
}

void RecurrentCell::ProjectInput(const Tensor& x, Tensor* out,
                                 StepScratch* scratch,
                                 Precision precision) const {
  switch (precision) {
    case Precision::kFp32:
      MatMul(x, wx_.value, out);
      return;
    case Precision::kInt8:
      Int8MatMul(x, quant_.wx_q8, out, &scratch->quant);
      return;
    case Precision::kBf16:
      Bf16MatMul(x, quant_.wx_bf16, out);
      return;
  }
}

void RecurrentCell::RecurrentProjection(const Tensor& h, bool accumulate,
                                        Tensor* out, StepScratch* scratch,
                                        Precision precision) const {
  switch (precision) {
    case Precision::kFp32:
      accumulate ? MatMulAcc(h, wh_.value, out) : MatMul(h, wh_.value, out);
      return;
    case Precision::kInt8:
      accumulate ? Int8MatMulAcc(h, quant_.wh_q8, out, &scratch->quant)
                 : Int8MatMul(h, quant_.wh_q8, out, &scratch->quant);
      return;
    case Precision::kBf16:
      accumulate ? Bf16MatMulAcc(h, quant_.wh_bf16, out)
                 : Bf16MatMul(h, quant_.wh_bf16, out);
      return;
  }
}

void RecurrentCell::GruGateTail(const Tensor& xg, const Tensor& hg,
                                const RecurrentTensors& prev,
                                RecurrentTensors* out) const {
  const int u = units_;
  const int batch = prev.h.rows();
  out->h.ResizeForOverwrite(batch, u);
  const float* bias = b_.value.data();
  for (int i = 0; i < batch; ++i) {
    for (int j = 0; j < u; ++j) {
      const float z = 1.0f / (1.0f + std::exp(-(xg.at(i, j) + bias[j] +
                                                hg.at(i, j))));
      const float r =
          1.0f / (1.0f + std::exp(-(xg.at(i, u + j) + bias[u + j] +
                                    hg.at(i, u + j))));
      const float cand = std::tanh(xg.at(i, 2 * u + j) + bias[2 * u + j] +
                                   r * hg.at(i, 2 * u + j));
      out->h.at(i, j) = (1.0f - z) * prev.h.at(i, j) + z * cand;
    }
  }
}

void RecurrentCell::LstmGateTail(const Tensor& gates,
                                 const RecurrentTensors& prev,
                                 RecurrentTensors* out) const {
  const int u = units_;
  const int batch = prev.h.rows();
  out->h.ResizeForOverwrite(batch, u);
  out->c.ResizeForOverwrite(batch, u);
  const float* bias = b_.value.data();
  for (int i = 0; i < batch; ++i) {
    for (int j = 0; j < u; ++j) {
      const auto sigmoid = [](float v) {
        return 1.0f / (1.0f + std::exp(-v));
      };
      const float in_gate = sigmoid(gates.at(i, j) + bias[j]);
      const float forget = sigmoid(gates.at(i, u + j) + bias[u + j]);
      const float cand = std::tanh(gates.at(i, 2 * u + j) + bias[2 * u + j]);
      const float out_gate =
          sigmoid(gates.at(i, 3 * u + j) + bias[3 * u + j]);
      const float c_new = forget * prev.c.at(i, j) + in_gate * cand;
      out->c.at(i, j) = c_new;
      out->h.at(i, j) = out_gate * std::tanh(c_new);
    }
  }
}

void RecurrentCell::StepForward(const Tensor& x, const RecurrentTensors& prev,
                                RecurrentTensors* out) const {
  StepScratch scratch;
  StepForward(x, prev, out, &scratch);
}

void RecurrentCell::StepForward(const Tensor& x, const RecurrentTensors& prev,
                                RecurrentTensors* out, StepScratch* scratch,
                                Precision precision) const {
  BIRNN_CHECK(QuantizedReady(precision))
      << "shadow weights not prepared for " << PrecisionName(precision);
  // Project the input, then run the recurrent projection + gate tail via
  // the shared pre-projected step so both entry points are one code path
  // (and therefore trivially bit-identical).
  ProjectInput(x, &scratch->z1, scratch, precision);
  StepForwardPre(prev, out, scratch, precision);
}

void RecurrentCell::StepForwardPre(const RecurrentTensors& prev,
                                   RecurrentTensors* out, StepScratch* scratch,
                                   Precision precision) const {
  switch (type_) {
    case CellType::kVanilla: {
      // z1 holds x·Wx; accumulate h·Wh then the fused bias+tanh pass —
      // for int8 this is the fused quantized RnnTanhStep shape: activations
      // quantized on the fly, one combined scale per output element.
      Tensor& z = scratch->z1;
      RecurrentProjection(prev.h, /*accumulate=*/true, &z, scratch, precision);
      AddBiasTanh(z, b_.value, &out->h);
      return;
    }
    case CellType::kGru: {
      // Bias is folded into the fused gate loop (no separate AddBias pass).
      Tensor& xg = scratch->z1;
      Tensor& hg = scratch->z2;
      RecurrentProjection(prev.h, /*accumulate=*/false, &hg, scratch,
                          precision);
      GruGateTail(xg, hg, prev, out);
      return;
    }
    case CellType::kLstm: {
      Tensor& gates = scratch->z1;
      RecurrentProjection(prev.h, /*accumulate=*/true, &gates, scratch,
                          precision);
      LstmGateTail(gates, prev, out);
      return;
    }
  }
}

std::vector<Parameter*> RecurrentCell::Params() const {
  return {&wx_, &wh_, &b_};
}

// ---------------------------------------------------------- StackedBiRecurrent

StackedBiRecurrent::StackedBiRecurrent(CellType type, std::string name,
                                       int input_dim, int units, int stacks,
                                       bool bidirectional, Rng* rng)
    : type_(type), units_(units), stacks_(stacks),
      bidirectional_(bidirectional) {
  BIRNN_CHECK_GE(stacks, 1);
  const int dirs = bidirectional ? 2 : 1;
  cells_.resize(static_cast<size_t>(dirs));
  for (int d = 0; d < dirs; ++d) {
    cells_[static_cast<size_t>(d)].reserve(static_cast<size_t>(stacks));
    for (int l = 0; l < stacks; ++l) {
      const int in_dim = (l == 0) ? input_dim : units;
      cells_[static_cast<size_t>(d)].emplace_back(
          type,
          name + "/dir" + std::to_string(d) + "/level" + std::to_string(l),
          in_dim, units, rng);
    }
  }
}

Graph::Var StackedBiRecurrent::RunDirection(
    Graph* g, const std::vector<Graph::Var>& steps, int batch,
    bool backward_direction,
    const std::vector<const RecurrentCell*>& cells) const {
  std::vector<RecurrentCell::Bound> bound;
  std::vector<RecurrentState> state;
  bound.reserve(cells.size());
  state.reserve(cells.size());
  for (const RecurrentCell* cell : cells) {
    bound.push_back(cell->Bind(g));
    state.push_back(cell->InitialState(g, batch));
  }
  const int t_count = static_cast<int>(steps.size());
  for (int i = 0; i < t_count; ++i) {
    const int t = backward_direction ? (t_count - 1 - i) : i;
    Graph::Var x = steps[static_cast<size_t>(t)];
    for (size_t l = 0; l < cells.size(); ++l) {
      state[l] = bound[l].Step(x, state[l]);
      x = state[l].h;
    }
  }
  return state.back().h;
}

Graph::Var StackedBiRecurrent::Apply(Graph* g,
                                     const std::vector<Graph::Var>& steps,
                                     int batch) const {
  BIRNN_CHECK(!steps.empty());
  std::vector<const RecurrentCell*> fwd;
  for (const auto& c : cells_[0]) fwd.push_back(&c);
  Graph::Var out_fwd = RunDirection(g, steps, batch, false, fwd);
  if (!bidirectional_) return out_fwd;
  std::vector<const RecurrentCell*> bwd;
  for (const auto& c : cells_[1]) bwd.push_back(&c);
  Graph::Var out_bwd = RunDirection(g, steps, batch, true, bwd);
  return g->ConcatCols({out_fwd, out_bwd});
}

namespace {
/// Fills every row of `dst` (batch x units) with row 0 of `src` (1 x units).
void BroadcastRow(const Tensor& src, int batch, Tensor* dst) {
  dst->ResizeForOverwrite(batch, src.cols());
  for (int r = 0; r < batch; ++r) {
    std::copy(src.data(), src.data() + src.cols(),
              dst->data() + static_cast<size_t>(r) * src.cols());
  }
}
}  // namespace

void StackedBiRecurrent::RunDirectionForward(
    const Tensor* steps, int t_count, bool backward_direction,
    const std::vector<const RecurrentCell*>& cells, const Tensor* tail_step,
    int tail_count, const std::vector<RecurrentTensors>* warm, Tensor* out,
    ForwardScratch* scratch, Precision precision) const {
  const int batch = steps[0].rows();
  const int total = t_count + tail_count;
  std::vector<RecurrentTensors>& state = scratch->state;
  if (state.size() < cells.size()) state.resize(cells.size());
  RecurrentTensors& next = scratch->next;

  // Stack every step's input batch in PROCESSING order: stacked row block p
  // is the input the recurrence consumes at its p-th step (forward: step p,
  // then the pad tail; backward: step t_count-1-p). One contiguous matrix
  // lets each level's input projection run as a single GEMM below.
  const int in0 = steps[0].cols();
  Tensor* seq_in = &scratch->seq_in;
  Tensor* seq_out = &scratch->seq_out;
  seq_in->ResizeForOverwrite(total * batch, in0);
  for (int p = 0; p < total; ++p) {
    const Tensor* src;
    if (backward_direction) {
      src = &steps[t_count - 1 - p];
    } else {
      src = p < t_count ? &steps[p] : tail_step;
    }
    BIRNN_CHECK_EQ(src->rows(), batch);
    std::copy(src->data(), src->data() + src->size(),
              seq_in->data() + static_cast<size_t>(p) * batch * in0);
  }

  for (size_t l = 0; l < cells.size(); ++l) {
    const RecurrentCell* cell = cells[l];
    BIRNN_CHECK(cell->QuantizedReady(precision))
        << "shadow weights not prepared for " << PrecisionName(precision);
    const int u = cell->units();
    // Time-step-batched input projection: all `total` step batches of this
    // level share one weights-load of Wx in a single GEMM. Bit-identical
    // to per-step projections because the GEMM kernels (fp32, int8, bf16
    // alike) compute each output row from its input row alone.
    cell->ProjectInput(*seq_in, &scratch->xz, &scratch->step, precision);
    const int zcols = scratch->xz.cols();

    if (warm != nullptr) {
      // Warm start: the all-pad prefix state, identical for every row.
      BroadcastRow((*warm)[l].h, batch, &state[l].h);
      if (cell->type() == CellType::kLstm) {
        BroadcastRow((*warm)[l].c, batch, &state[l].c);
      }
    } else {
      // Resize() zero-fills while reusing capacity — the initial state.
      state[l].h.Resize(batch, u);
      if (cell->type() == CellType::kLstm) state[l].c.Resize(batch, u);
    }

    const bool record = l + 1 < cells.size();
    if (record) seq_out->ResizeForOverwrite(total * batch, u);
    for (int p = 0; p < total; ++p) {
      // This step's slice of the batched projection becomes the step's
      // pre-activation buffer (consumed in place by StepForwardPre).
      scratch->step.z1.ResizeForOverwrite(batch, zcols);
      const float* src =
          scratch->xz.data() + static_cast<size_t>(p) * batch * zcols;
      std::copy(src, src + static_cast<size_t>(batch) * zcols,
                scratch->step.z1.data());
      cell->StepForwardPre(state[l], &next, &scratch->step, precision);
      // StepForwardPre fully overwrites `next`, so swapping buffers instead
      // of copying is bit-identical.
      std::swap(state[l].h, next.h);
      if (cell->type() == CellType::kLstm) std::swap(state[l].c, next.c);
      if (record) {
        std::copy(state[l].h.data(),
                  state[l].h.data() + static_cast<size_t>(batch) * u,
                  seq_out->data() + static_cast<size_t>(p) * batch * u);
      }
    }
    if (record) std::swap(seq_in, seq_out);
  }
  *out = state.back().h;
}

void StackedBiRecurrent::ApplyForward(const std::vector<Tensor>& steps,
                                      Tensor* out) const {
  ForwardScratch scratch;
  ApplyForward(steps.data(), static_cast<int>(steps.size()), out, &scratch);
}

void StackedBiRecurrent::ApplyForward(const Tensor* steps, int t_count,
                                      Tensor* out, ForwardScratch* scratch,
                                      Precision precision) const {
  BIRNN_CHECK_GE(t_count, 1);
  std::vector<const RecurrentCell*> fwd;
  for (const auto& c : cells_[0]) fwd.push_back(&c);
  if (!bidirectional_) {
    RunDirectionForward(steps, t_count, false, fwd, nullptr, 0, nullptr, out,
                        scratch, precision);
    return;
  }
  RunDirectionForward(steps, t_count, false, fwd, nullptr, 0, nullptr,
                      &scratch->out_fwd, scratch, precision);
  std::vector<const RecurrentCell*> bwd;
  for (const auto& c : cells_[1]) bwd.push_back(&c);
  RunDirectionForward(steps, t_count, true, bwd, nullptr, 0, nullptr,
                      &scratch->out_bwd, scratch, precision);
  ConcatCols({&scratch->out_fwd, &scratch->out_bwd}, out);
}

void StackedBiRecurrent::ComputeBackwardPadPrefix(
    const Tensor& pad_step, int max_steps, PadPrefixTrajectory* traj,
    Precision precision) const {
  traj->states.clear();
  if (!bidirectional_) return;
  const auto& cells = cells_[1];
  const int batch = pad_step.rows();

  std::vector<RecurrentTensors> state(cells.size());
  for (size_t l = 0; l < cells.size(); ++l) {
    state[l] = cells[l].InitialTensors(batch);
  }
  const auto record = [&]() {
    std::vector<RecurrentTensors> row(cells.size());
    for (size_t l = 0; l < cells.size(); ++l) {
      row[l].h = Tensor(1, cells[l].units());
      std::copy(state[l].h.data(), state[l].h.data() + cells[l].units(),
                row[l].h.data());
      if (cells[l].type() == CellType::kLstm) {
        row[l].c = Tensor(1, cells[l].units());
        std::copy(state[l].c.data(), state[l].c.data() + cells[l].units(),
                  row[l].c.data());
      }
    }
    traj->states.push_back(std::move(row));
  };

  record();  // k = 0: the zero initial state.
  RecurrentTensors next;
  StepScratch step;
  for (int k = 1; k <= max_steps; ++k) {
    const Tensor* x = &pad_step;
    for (size_t l = 0; l < cells.size(); ++l) {
      cells[l].StepForward(*x, state[l], &next, &step, precision);
      std::swap(state[l].h, next.h);
      if (cells[l].type() == CellType::kLstm) std::swap(state[l].c, next.c);
      x = &state[l].h;
    }
    record();
  }
}

void StackedBiRecurrent::ApplyForwardBucketed(
    const Tensor* steps, int t_count, int t_total, const Tensor& pad_step,
    const PadPrefixTrajectory& traj, Tensor* out, ForwardScratch* scratch,
    Precision precision) const {
  BIRNN_CHECK_GE(t_count, 1);
  BIRNN_CHECK_GE(t_total, t_count);
  const int pad_count = t_total - t_count;
  std::vector<const RecurrentCell*> fwd;
  for (const auto& c : cells_[0]) fwd.push_back(&c);
  if (!bidirectional_) {
    RunDirectionForward(steps, t_count, false, fwd, &pad_step, pad_count,
                        nullptr, out, scratch, precision);
    return;
  }
  RunDirectionForward(steps, t_count, false, fwd, &pad_step, pad_count,
                      nullptr, &scratch->out_fwd, scratch, precision);
  BIRNN_CHECK_LE(pad_count, traj.max_steps());
  std::vector<const RecurrentCell*> bwd;
  for (const auto& c : cells_[1]) bwd.push_back(&c);
  RunDirectionForward(steps, t_count, true, bwd, nullptr, 0,
                      &traj.states[static_cast<size_t>(pad_count)],
                      &scratch->out_bwd, scratch, precision);
  ConcatCols({&scratch->out_fwd, &scratch->out_bwd}, out);
}

void StackedBiRecurrent::PrepareQuantized(Precision p) const {
  for (const auto& dir : cells_) {
    for (const auto& cell : dir) cell.PrepareQuantized(p);
  }
}

bool StackedBiRecurrent::QuantizedReady(Precision p) const {
  for (const auto& dir : cells_) {
    for (const auto& cell : dir) {
      if (!cell.QuantizedReady(p)) return false;
    }
  }
  return true;
}

namespace {

void AppendInt8Entries(const std::string& param_name, const QuantizedMatrix& m,
                       std::vector<TypedEntry>* entries) {
  TypedEntry data;
  data.name = "__q8/" + param_name;
  data.dtype = kDtypeI8;
  data.shape = {m.rows, m.cols};
  data.bytes.assign(reinterpret_cast<const char*>(m.q.data()), m.q.size());
  entries->push_back(std::move(data));
  TypedEntry scales;
  scales.name = "__q8s/" + param_name;
  scales.dtype = kDtypeF32;
  scales.shape = {m.rows};
  scales.bytes.assign(reinterpret_cast<const char*>(m.scales.data()),
                      m.scales.size() * sizeof(float));
  entries->push_back(std::move(scales));
}

void AppendBf16Entry(const std::string& param_name, const Bf16Matrix& m,
                     std::vector<TypedEntry>* entries) {
  TypedEntry data;
  data.name = "__bf16/" + param_name;
  data.dtype = kDtypeU16;
  data.shape = {m.rows, m.cols};
  data.bytes.assign(reinterpret_cast<const char*>(m.q.data()),
                    m.q.size() * sizeof(uint16_t));
  entries->push_back(std::move(data));
}

/// Pulls "name" out of `entries` if present; returns nullopt-like signal
/// via the bool. The entry is consumed (erased).
bool TakeEntry(std::map<std::string, TypedEntry>* entries,
               const std::string& name, TypedEntry* out) {
  auto it = entries->find(name);
  if (it == entries->end()) return false;
  *out = std::move(it->second);
  entries->erase(it);
  return true;
}

StatusOr<QuantizedMatrix> Int8FromEntries(const TypedEntry& data,
                                          const TypedEntry& scales) {
  if (data.dtype != kDtypeI8 || data.shape.size() != 2) {
    return Status::InvalidArgument("malformed int8 entry " + data.name);
  }
  if (scales.dtype != kDtypeF32 || scales.shape.size() != 1 ||
      scales.shape[0] != data.shape[0]) {
    return Status::InvalidArgument("malformed int8 scales " + scales.name);
  }
  const int rows = data.shape[0];
  const int cols = data.shape[1];
  std::vector<int8_t> q(static_cast<size_t>(rows) * cols);
  std::memcpy(q.data(), data.bytes.data(), q.size());
  std::vector<float> s(static_cast<size_t>(rows));
  std::memcpy(s.data(), scales.bytes.data(), s.size() * sizeof(float));
  return QuantizedMatrixFromParts(rows, cols, std::move(q), std::move(s));
}

Bf16Matrix Bf16FromEntry(const TypedEntry& data) {
  Bf16Matrix m;
  m.rows = data.shape[0];
  m.cols = data.shape[1];
  m.q.resize(static_cast<size_t>(m.rows) * m.cols);
  std::memcpy(m.q.data(), data.bytes.data(), m.q.size() * sizeof(uint16_t));
  return m;
}

}  // namespace

void StackedBiRecurrent::ExportQuantized(
    std::vector<TypedEntry>* entries) const {
  PrepareQuantized(Precision::kInt8);
  PrepareQuantized(Precision::kBf16);
  for (const auto& dir : cells_) {
    for (const auto& cell : dir) {
      const auto& q = cell.quant();
      AppendInt8Entries(cell.wx_name(), q.wx_q8, entries);
      AppendInt8Entries(cell.wh_name(), q.wh_q8, entries);
      AppendBf16Entry(cell.wx_name(), q.wx_bf16, entries);
      AppendBf16Entry(cell.wh_name(), q.wh_bf16, entries);
    }
  }
}

Status StackedBiRecurrent::ImportQuantized(
    std::map<std::string, TypedEntry>* entries) const {
  for (const auto& dir : cells_) {
    for (const auto& cell : dir) {
      TypedEntry wx_q, wx_s, wh_q, wh_s;
      const bool has_wx = TakeEntry(entries, "__q8/" + cell.wx_name(), &wx_q);
      const bool has_wxs =
          TakeEntry(entries, "__q8s/" + cell.wx_name(), &wx_s);
      const bool has_wh = TakeEntry(entries, "__q8/" + cell.wh_name(), &wh_q);
      const bool has_whs =
          TakeEntry(entries, "__q8s/" + cell.wh_name(), &wh_s);
      if (has_wx != has_wxs || has_wx != has_wh || has_wh != has_whs) {
        return Status::InvalidArgument("incomplete int8 entry set for " +
                                       cell.wx_name());
      }
      if (has_wx) {
        auto wx = Int8FromEntries(wx_q, wx_s);
        if (!wx.ok()) return wx.status();
        auto wh = Int8FromEntries(wh_q, wh_s);
        if (!wh.ok()) return wh.status();
        if (wx->rows != cell.units() * cell.gate_count() ||
            wx->cols != cell.input_dim() ||
            wh->rows != cell.units() * cell.gate_count() ||
            wh->cols != cell.units()) {
          return Status::InvalidArgument("int8 shape mismatch for " +
                                         cell.wx_name());
        }
        cell.InstallInt8(std::move(*wx), std::move(*wh));
      }
      TypedEntry bx, bh;
      const bool has_bx = TakeEntry(entries, "__bf16/" + cell.wx_name(), &bx);
      const bool has_bh = TakeEntry(entries, "__bf16/" + cell.wh_name(), &bh);
      if (has_bx != has_bh) {
        return Status::InvalidArgument("incomplete bf16 entry set for " +
                                       cell.wx_name());
      }
      if (has_bx) {
        if (bx.dtype != kDtypeU16 || bx.shape.size() != 2 ||
            bh.dtype != kDtypeU16 || bh.shape.size() != 2 ||
            bx.shape[0] != cell.input_dim() ||
            bx.shape[1] != cell.units() * cell.gate_count() ||
            bh.shape[0] != cell.units() ||
            bh.shape[1] != cell.units() * cell.gate_count()) {
          return Status::InvalidArgument("bf16 shape mismatch for " +
                                         cell.wx_name());
        }
        cell.InstallBf16(Bf16FromEntry(bx), Bf16FromEntry(bh));
      }
    }
  }
  return Status::OK();
}

std::vector<Parameter*> StackedBiRecurrent::Params() const {
  std::vector<Parameter*> out;
  for (const auto& dir : cells_) {
    for (const auto& cell : dir) {
      for (Parameter* p : cell.Params()) out.push_back(p);
    }
  }
  return out;
}

}  // namespace birnn::nn
