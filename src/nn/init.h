#ifndef BIRNN_NN_INIT_H_
#define BIRNN_NN_INIT_H_

#include "nn/tensor.h"
#include "util/rng.h"

namespace birnn::nn {

/// Fills a (fan_in, fan_out) matrix with Glorot/Xavier-uniform values:
/// U(-limit, limit) with limit = sqrt(6 / (fan_in + fan_out)).
void GlorotUniform(Tensor* t, Rng* rng);

/// Fills with U(-scale, scale).
void UniformInit(Tensor* t, float scale, Rng* rng);

/// Fills with N(0, stddev).
void NormalInit(Tensor* t, float stddev, Rng* rng);

/// Fills a square-or-rectangular matrix with a (semi-)orthogonal matrix via
/// Gram–Schmidt on a random Gaussian matrix. Keras uses this for recurrent
/// kernels; it keeps repeated multiplication from exploding/vanishing.
void OrthogonalInit(Tensor* t, Rng* rng);

}  // namespace birnn::nn

#endif  // BIRNN_NN_INIT_H_
