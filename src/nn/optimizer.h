#ifndef BIRNN_NN_OPTIMIZER_H_
#define BIRNN_NN_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "nn/parameter.h"

namespace birnn::nn {

/// Gradient-descent optimizer interface. Implementations read
/// `Parameter::grad` and update `Parameter::value` in place.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step to all `params`, then the caller typically
  /// zeroes the gradients.
  virtual void Step(const std::vector<Parameter*>& params) = 0;
};

/// Plain SGD with optional gradient clipping (used in tests).
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr) : lr_(lr) {}
  void Step(const std::vector<Parameter*>& params) override;

 private:
  float lr_;
};

/// RMSprop — the optimizer the paper trains with (§5.2). Keras defaults:
///   cache = rho * cache + (1-rho) * grad^2
///   value -= lr * grad / (sqrt(cache) + eps)
class RmsProp : public Optimizer {
 public:
  explicit RmsProp(float lr = 1e-3f, float rho = 0.9f, float eps = 1e-7f)
      : lr_(lr), rho_(rho), eps_(eps) {}

  void Step(const std::vector<Parameter*>& params) override;

  /// Drops all accumulated squared-gradient state.
  void Reset() { cache_.clear(); }

  /// Squared-gradient cache in `params` order, for checkpoint/resume. A
  /// parameter with no accumulated state yet yields an empty tensor.
  std::vector<Tensor> ExportState(const std::vector<Parameter*>& params) const;

  /// Restores a cache previously captured by `ExportState` against the
  /// same parameter list (matched positionally). Empty tensors are
  /// skipped, so a fresh optimizer round-trips to a fresh optimizer.
  void ImportState(const std::vector<Parameter*>& params,
                   const std::vector<Tensor>& state);

 private:
  float lr_;
  float rho_;
  float eps_;
  std::unordered_map<Parameter*, Tensor> cache_;
};

/// Zeroes the gradient of every parameter.
void ZeroGrads(const std::vector<Parameter*>& params);

/// Total number of scalar weights across `params`.
size_t CountWeights(const std::vector<Parameter*>& params);

}  // namespace birnn::nn

#endif  // BIRNN_NN_OPTIMIZER_H_
