#ifndef BIRNN_SERVE_MEMO_H_
#define BIRNN_SERVE_MEMO_H_

#include <cstdint>
#include <vector>

#include "core/content_index.h"
#include "data/encoding.h"

namespace birnn::serve {

/// Cross-request verdict memo shared by every engine replica of one served
/// model. The inference engine already memoizes duplicate cells *within* a
/// sweep; this cache carries the same content key across sweeps, so a value
/// the service has answered once (a `state` column holds ~50 distinct
/// strings across millions of requests) is answered again without touching
/// the model.
///
/// Since PR 8 this is a thin serve-facing facade over the succinct
/// `core::ContentMemo` (content_index.h): blocked-bloom prefilter in front
/// of every probe, open-addressing flat tables over a varint-packed content
/// arena instead of a node-based hash map, and optional byte-budgeted
/// operation with spill-to-disk segments. The exactness story is unchanged:
/// a cell's p_error is a pure function of its content key (attribute id,
/// length_norm bit pattern, character sequence), hashes are confirmed
/// against the stored packed content, so collisions cannot cross-wire
/// verdicts, and an evicted entry merely recomputes bit-identically. The
/// cache must not outlive a weight change: it is owned by the MicroBatcher,
/// and a hot bundle reload builds a fresh batcher.
///
/// Thread safety: fully thread-safe; bloom negatives are answered lock-free
/// and everything else goes through 16 mutex-striped shards, so replica
/// dispatchers rarely contend.
class VerdictMemo {
 public:
  /// `capacity` bounds the total entry count (0 disables the cache) — the
  /// classic PR 7 constructor: unbudgeted, no spill, overflowing shards
  /// dropped whole (counted in `evictions`).
  explicit VerdictMemo(int64_t capacity)
      : memo_(MakeLegacyOptions(capacity)) {}

  /// Full control (byte budget, pre-size hint, spill directory).
  explicit VerdictMemo(const core::ContentMemoOptions& options)
      : memo_(options) {}

  VerdictMemo(const VerdictMemo&) = delete;
  VerdictMemo& operator=(const VerdictMemo&) = delete;

  /// Probes every cell of `ds`. On a hit, `(*p)[i]` receives the memoized
  /// p_error and `(*hit)[i]` is set to 1; misses leave their slots alone.
  /// Both vectors must already be sized to `ds.num_cells()`. Returns the
  /// hit count.
  int64_t Lookup(const data::EncodedDataset& ds, std::vector<float>* p,
                 std::vector<uint8_t>* hit) const {
    return memo_.Lookup(ds, p, hit);
  }

  /// Records cell `i` of `ds` -> `p_error`. Duplicate inserts of the same
  /// content are ignored (first value wins; all writers compute the same
  /// value anyway).
  void Insert(const data::EncodedDataset& ds, int64_t i, float p_error) {
    memo_.Insert(ds, i, p_error);
  }

  int64_t entries() const { return memo_.entries(); }
  int64_t evictions() const { return memo_.evictions(); }
  bool enabled() const { return memo_.enabled(); }

  /// The underlying succinct index, for engine integration
  /// (InferenceEngine::PredictProbsMemoized) and stats scraping.
  core::ContentMemo* content() { return &memo_; }
  const core::ContentMemo& content() const { return memo_; }

 private:
  static core::ContentMemoOptions MakeLegacyOptions(int64_t capacity) {
    core::ContentMemoOptions options;
    options.capacity = capacity > 0 ? capacity : 0;
    return options;
  }

  core::ContentMemo memo_;
};

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_MEMO_H_
