#ifndef BIRNN_SERVE_MEMO_H_
#define BIRNN_SERVE_MEMO_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/encoding.h"

namespace birnn::serve {

/// Cross-request verdict memo shared by every engine replica of one served
/// model. The inference engine already memoizes duplicate cells *within* a
/// sweep; this cache carries the same content key across sweeps, so a value
/// the service has answered once (a `state` column holds ~50 distinct
/// strings across millions of requests) is answered again without touching
/// the model.
///
/// Exactness: a cell's p_error is a pure function of its content key
/// (attribute id, length_norm bit pattern, character sequence) — the same
/// invariant that makes in-sweep memoization and micro-batch coalescing
/// bit-identical (core/inference.h). Keys are FNV-1a hashes confirmed
/// against the stored full content, so hash collisions cannot cross-wire
/// verdicts. The cache must not outlive a weight change: it is owned by
/// the MicroBatcher, and a hot bundle reload builds a fresh batcher.
///
/// Thread safety: fully thread-safe; 16 mutex-striped shards keep replica
/// dispatchers from contending. Capacity is bounded per shard — an
/// overflowing shard is cleared whole (counted in `evictions`), so memory
/// stays bounded under hostile unique-content floods.
class VerdictMemo {
 public:
  /// `capacity` bounds the total entry count (0 disables the cache).
  explicit VerdictMemo(int64_t capacity);

  VerdictMemo(const VerdictMemo&) = delete;
  VerdictMemo& operator=(const VerdictMemo&) = delete;

  /// Probes every cell of `ds`. On a hit, `(*p)[i]` receives the memoized
  /// p_error and `(*hit)[i]` is set to 1; misses leave their slots alone.
  /// Both vectors must already be sized to `ds.num_cells()`. Returns the
  /// hit count.
  int64_t Lookup(const data::EncodedDataset& ds, std::vector<float>* p,
                 std::vector<uint8_t>* hit) const;

  /// Records cell `i` of `ds` -> `p_error`. Duplicate inserts of the same
  /// content are ignored (first value wins; all writers compute the same
  /// value anyway).
  void Insert(const data::EncodedDataset& ds, int64_t i, float p_error);

  int64_t entries() const;
  int64_t evictions() const;
  bool enabled() const { return capacity_ > 0; }

 private:
  static constexpr int kShards = 16;

  struct Entry {
    uint32_t length_norm_bits = 0;
    int32_t attr = 0;
    float p_error = 0.0f;
    std::vector<int32_t> seq;  ///< effective-length character ids.
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<Entry>> map;
    int64_t entries = 0;
    int64_t evictions = 0;
  };

  static bool Matches(const Entry& e, const data::EncodedDataset& ds,
                      int64_t i);

  int64_t capacity_ = 0;
  int64_t shard_capacity_ = 0;
  Shard shards_[kShards];
};

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_MEMO_H_
