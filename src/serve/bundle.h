#ifndef BIRNN_SERVE_BUNDLE_H_
#define BIRNN_SERVE_BUNDLE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/model.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "util/status.h"

namespace birnn::serve {

/// One cell of an online detection request: the raw (dirty) value plus the
/// attribute it belongs to, either by index or by name (name wins when the
/// index is negative).
struct CellQuery {
  int attr = -1;
  std::string attr_name;
  std::string value;
};

/// Accounting of one AppendQueryCell call: what the frozen prepare pipeline
/// saw before encoding. Streaming sessions fold these into their live
/// column statistics (rolling max length, empty rate, OOV-char rate).
struct EncodedCellInfo {
  int prepared_len = 0;   ///< value length after trim + truncation.
  bool empty = false;     ///< prepared value has no content (incl. "NaN").
  int64_t oov_chars = 0;  ///< characters outside the train dictionary.
};

/// A detector reconstructed from a bundle: the trained model plus
/// everything needed to encode serving-time cells exactly as the training
/// frame's cells were encoded (dictionary, per-attribute length_norm
/// denominators, prepare transforms). Movable, not copyable; safe to share
/// read-only across threads once loaded.
class LoadedDetector {
 public:
  LoadedDetector() = default;
  LoadedDetector(LoadedDetector&&) = default;
  LoadedDetector& operator=(LoadedDetector&&) = default;

  const core::ModelConfig& config() const { return config_; }
  const core::ErrorDetectionModel& model() const { return *model_; }
  const std::vector<std::string>& attr_names() const { return attr_names_; }
  int n_attrs() const { return config_.n_attrs; }

  /// Index of a named attribute, or -1 if absent.
  int AttrIndex(const std::string& name) const;

  /// Distinct cell contents in the table this detector was trained on (0
  /// when the bundle predates the manifest key). The serve plane uses it to
  /// pre-size the cross-request verdict memo, so the first whole-table
  /// sweep never grows through rehashes.
  int64_t expected_unique_cells() const { return expected_unique_cells_; }

  /// core::DatasetContentFingerprint of the encoded training frame (0 when
  /// unknown): identifies *which* table the bundle was trained on.
  uint64_t content_fingerprint() const { return content_fingerprint_; }

  /// Frozen train-time statistics (bundle manifest v3). A detector carries
  /// them when it came from a current ErrorDetector run or a v3 bundle;
  /// streaming sessions require them (typed UNSUPPORTED_BUNDLE otherwise)
  /// so a delta's length_norm/encoding is provably the train-time one and
  /// drift alarms have baselines to diff against.
  bool stream_capable() const { return has_frozen_stats_; }
  /// data::CharIndex::Fingerprint of the train-time dictionary.
  uint64_t char_fingerprint() const { return chars_.Fingerprint(); }
  /// Longest value_x per attribute over the training frame — the frozen
  /// length_norm denominators.
  const std::vector<int32_t>& attr_max_value_len() const {
    return attr_max_value_len_;
  }
  /// Per-attribute empty-value rate of the prepared training frame (empty
  /// when !stream_capable()).
  const std::vector<float>& attr_empty_rate() const {
    return attr_empty_rate_;
  }
  /// Per-attribute predicted-error rate of the training table's
  /// whole-table sweep (empty when !stream_capable()).
  const std::vector<float>& attr_error_rate() const {
    return attr_error_rate_;
  }
  const data::PrepareOptions& prepare() const { return prepare_; }
  /// The frozen train-time character dictionary — a fine-tuned candidate
  /// bundle keeps it verbatim so encodings stay comparable across
  /// generations (adapt/controller.h).
  const data::CharIndex& chars() const { return chars_; }

  /// Prepares `ds` to receive AppendQueryCell cells (clears it and installs
  /// the detector's max_len / vocab / n_attrs shape).
  void InitQueryDataset(data::EncodedDataset* ds) const;

  /// Encodes one raw cell exactly as EncodeQueries does — the frozen
  /// prepare pipeline replayed on a single value — and appends it to `ds`
  /// (which must have been InitQueryDataset'd or previously appended to by
  /// this detector). `info`, when non-null, receives the prepared length,
  /// emptiness and OOV-character count the streaming statistics need.
  /// Fails on an out-of-range attribute index.
  Status AppendQueryCell(int attr, const std::string& value,
                         data::EncodedDataset* ds,
                         EncodedCellInfo* info = nullptr) const;

  /// Encodes raw query cells into an EncodedDataset ready for the
  /// inference engine, replicating the training-time pipeline bit-exactly:
  /// leading-whitespace trim, truncation to the training max value length,
  /// dictionary lookup (unseen characters map to the unknown index), and
  /// per-attribute length_norm with the training-frame denominator. A cell
  /// content that appeared in the training table therefore encodes to the
  /// identical model input, so served predictions match the offline sweep
  /// bit for bit. Fails on an unknown attribute name or out-of-range index.
  StatusOr<data::EncodedDataset> EncodeQueries(
      const std::vector<CellQuery>& cells) const;

 private:
  friend StatusOr<LoadedDetector> LoadDetectorBundle(const std::string& dir);
  friend StatusOr<LoadedDetector> MakeLoadedDetector(
      core::TrainedDetector trained);

  core::ModelConfig config_;
  std::unique_ptr<core::ErrorDetectionModel> model_;
  data::CharIndex chars_;
  std::vector<std::string> attr_names_;
  std::vector<int32_t> attr_max_value_len_;
  data::PrepareOptions prepare_;
  int64_t expected_unique_cells_ = 0;
  uint64_t content_fingerprint_ = 0;
  std::vector<float> attr_empty_rate_;
  std::vector<float> attr_error_rate_;
  bool has_frozen_stats_ = false;
};

/// Knobs for SaveDetectorBundle.
struct BundleSaveOptions {
  /// Ship pre-quantized int8 + bf16 shadow weights for the recurrent
  /// stacks inside weights.ckpt (checkpoint format v2, manifest version 2)
  /// so low-precision serving pays no quantization cost at load time.
  /// Off reproduces the v1 bundle byte layout exactly.
  bool include_quantized = true;
};

/// Writes a trained detector to `dir` (created if missing) as a two-file
/// bundle:
///   manifest.txt — model architecture + encoding state (dictionary index
///                  table, attribute names, length_norm denominators,
///                  prepare options), line-oriented text;
///   weights.ckpt — checkpoint of every model parameter plus the
///                  batch-norm running statistics as the pseudo entries
///                  "__bn/running_mean" / "__bn/running_var"; with
///                  `options.include_quantized`, also the pre-quantized
///                  "__q8/..." / "__q8s/..." / "__bf16/..." shadow weights
///                  (checkpoint format v2).
Status SaveDetectorBundle(const core::TrainedDetector& trained,
                          const std::string& dir,
                          const BundleSaveOptions& options = {});

/// Reconstructs a detector from a bundle directory without retraining.
/// Accepts v1-v3 bundles; quantized shadow weights in a v2+ bundle are
/// installed into the model, making int8/bf16 sweeps start instantly, and
/// a v3 bundle's frozen column statistics make the detector
/// stream_capable().
StatusOr<LoadedDetector> LoadDetectorBundle(const std::string& dir);

/// Builds a LoadedDetector directly from in-memory trained artifacts
/// (consumes the model). The no-disk path for in-process serving and tests.
StatusOr<LoadedDetector> MakeLoadedDetector(core::TrainedDetector trained);

/// Appends every cell of `src` to `dst` (shapes must match). The micro-
/// batcher's dataset coalescing primitive.
void AppendDataset(const data::EncodedDataset& src, data::EncodedDataset* dst);

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_BUNDLE_H_
