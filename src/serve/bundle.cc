#include "serve/bundle.h"

#include <sys/stat.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "nn/recurrent.h"
#include "nn/serialize.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace birnn::serve {

namespace {

constexpr char kManifestHeader[] = "birnn-detector-bundle";
constexpr int kBundleVersion = 1;
/// Version 2 = weights.ckpt may carry quantized shadow weights (checkpoint
/// format v2). The manifest text is otherwise identical to v1.
constexpr int kBundleVersionQuantized = 2;
/// Version 3 = manifest additionally carries frozen train-time column
/// statistics: a `char_fingerprint` line (dictionary integrity check) and
/// one `attr_stats` line per attribute (empty/error-rate drift baselines).
/// Streaming delta sessions require a v3 bundle; v1/v2 still load for
/// batch detection.
constexpr int kBundleVersionStream = 3;
constexpr char kBnMeanName[] = "__bn/running_mean";
constexpr char kBnVarName[] = "__bn/running_var";

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.txt";
}
std::string WeightsPath(const std::string& dir) {
  return dir + "/weights.ckpt";
}

/// Key/value view of the manifest: single-valued lines keyed by their first
/// token, plus the repeated `attr` lines collected separately.
struct Manifest {
  int version = 0;
  std::map<std::string, std::string> values;
  struct Attr {
    int index = 0;
    int32_t max_value_len = 0;
    std::string name;
  };
  std::vector<Attr> attrs;
  struct AttrStats {
    int index = 0;
    float empty_rate = 0.0f;
    float error_rate = 0.0f;
  };
  std::vector<AttrStats> attr_stats;

  StatusOr<std::string> Get(const std::string& key) const {
    auto it = values.find(key);
    if (it == values.end()) {
      return Status::InvalidArgument("manifest missing key: " + key);
    }
    return it->second;
  }
  StatusOr<int64_t> GetInt(const std::string& key) const {
    BIRNN_ASSIGN_OR_RETURN(std::string text, Get(key));
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("manifest key " + key +
                                     " is not an integer: " + text);
    }
    return static_cast<int64_t>(v);
  }
};

StatusOr<Manifest> ReadManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open manifest: " + path);
  Manifest m;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (first) {
      int version = -1;
      ls >> version;
      if (key != kManifestHeader ||
          (version != kBundleVersion && version != kBundleVersionQuantized &&
           version != kBundleVersionStream)) {
        return Status::InvalidArgument(
            "not a v" + std::to_string(kBundleVersion) + "-v" +
            std::to_string(kBundleVersionStream) +
            " detector bundle manifest: " + path);
      }
      m.version = version;
      first = false;
      continue;
    }
    if (key == "attr") {
      Manifest::Attr attr;
      ls >> attr.index >> attr.max_value_len;
      if (!ls) return Status::InvalidArgument("malformed attr line: " + line);
      std::getline(ls, attr.name);
      attr.name = TrimLeft(attr.name);
      m.attrs.push_back(std::move(attr));
      continue;
    }
    if (key == "attr_stats") {
      Manifest::AttrStats stats;
      ls >> stats.index >> stats.empty_rate >> stats.error_rate;
      if (!ls) {
        return Status::InvalidArgument("malformed attr_stats line: " + line);
      }
      m.attr_stats.push_back(stats);
      continue;
    }
    std::string rest;
    std::getline(ls, rest);
    m.values[key] = std::string(TrimLeft(rest));
  }
  if (first) return Status::InvalidArgument("empty manifest: " + path);
  return m;
}

}  // namespace

int LoadedDetector::AttrIndex(const std::string& name) const {
  for (size_t i = 0; i < attr_names_.size(); ++i) {
    if (attr_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void LoadedDetector::InitQueryDataset(data::EncodedDataset* ds) const {
  *ds = data::EncodedDataset();
  ds->max_len = config_.max_len;
  ds->vocab = config_.vocab;
  ds->n_attrs = config_.n_attrs;
}

Status LoadedDetector::AppendQueryCell(int attr, const std::string& raw,
                                       data::EncodedDataset* ds,
                                       EncodedCellInfo* info) const {
  if (attr < 0 || attr >= config_.n_attrs) {
    return Status::InvalidArgument("attribute index out of range: " +
                                   std::to_string(attr));
  }
  // The training-time prepare pipeline, replayed on one value: trim
  // leading whitespace, truncate to the training max value length, then
  // length_norm against the training frame's per-attribute maximum (the
  // same float division as data::PrepareData).
  std::string value = prepare_.trim_leading_whitespace ? TrimLeft(raw) : raw;
  if (static_cast<int>(value.size()) > prepare_.max_value_len) {
    value.resize(static_cast<size_t>(prepare_.max_value_len));
  }
  const int32_t mx = attr_max_value_len_[static_cast<size_t>(attr)];
  const float length_norm =
      mx == 0 ? 0.0f
              : static_cast<float>(value.size()) / static_cast<float>(mx);
  if (info != nullptr) {
    info->prepared_len = static_cast<int>(value.size());
    info->empty = value.empty() ||
                  (prepare_.treat_nan_as_empty &&
                   (value == "NaN" || value == "nan"));
  }
  // A novel value can exceed the training frame's global max_len (the
  // padded sequence width the network was built for); only its first
  // max_len characters can be represented.
  if (static_cast<int>(value.size()) > ds->max_len) {
    value.resize(static_cast<size_t>(ds->max_len));
  }
  int64_t oov = 0;
  const std::vector<int> ids = chars_.Encode(value, &oov);
  if (info != nullptr) info->oov_chars = oov;
  const size_t base = ds->seqs.size();
  ds->seqs.resize(base + static_cast<size_t>(ds->max_len), 0);
  for (size_t t = 0; t < ids.size(); ++t) ds->seqs[base + t] = ids[t];
  ds->attrs.push_back(attr);
  ds->length_norm.push_back(length_norm);
  ds->labels.push_back(0);
  ds->row_ids.push_back(static_cast<int64_t>(ds->attrs.size()) - 1);
  return Status::OK();
}

StatusOr<data::EncodedDataset> LoadedDetector::EncodeQueries(
    const std::vector<CellQuery>& cells) const {
  data::EncodedDataset ds;
  InitQueryDataset(&ds);
  ds.seqs.reserve(cells.size() * static_cast<size_t>(ds.max_len));
  ds.attrs.reserve(cells.size());
  ds.length_norm.reserve(cells.size());
  ds.labels.reserve(cells.size());
  ds.row_ids.reserve(cells.size());
  for (const CellQuery& q : cells) {
    int attr = q.attr;
    if (attr < 0 && !q.attr_name.empty()) attr = AttrIndex(q.attr_name);
    if (attr < 0 || attr >= config_.n_attrs) {
      return Status::InvalidArgument(
          q.attr_name.empty()
              ? "attribute index out of range: " + std::to_string(q.attr)
              : "unknown attribute: " + q.attr_name);
    }
    BIRNN_RETURN_IF_ERROR(AppendQueryCell(attr, q.value, &ds));
  }
  return ds;
}

Status SaveDetectorBundle(const core::TrainedDetector& trained,
                          const std::string& dir,
                          const BundleSaveOptions& options) {
  if (trained.model == nullptr) {
    return Status::InvalidArgument("TrainedDetector has no model");
  }
  const core::ModelConfig& config = trained.config;
  if (static_cast<int>(trained.attr_names.size()) != config.n_attrs ||
      static_cast<int>(trained.attr_max_value_len.size()) != config.n_attrs) {
    return Status::InvalidArgument(
        "attribute metadata does not match config.n_attrs");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create bundle dir " + dir + ": " +
                           std::strerror(errno));
  }

  if (trained.has_frozen_stats &&
      (static_cast<int>(trained.attr_empty_rate.size()) != config.n_attrs ||
       static_cast<int>(trained.attr_error_rate.size()) != config.n_attrs)) {
    return Status::InvalidArgument(
        "frozen column statistics do not match config.n_attrs");
  }

  std::ofstream out(ManifestPath(dir));
  if (!out) return Status::IoError("cannot write " + ManifestPath(dir));
  const int version = trained.has_frozen_stats
                          ? kBundleVersionStream
                          : (options.include_quantized ? kBundleVersionQuantized
                                                       : kBundleVersion);
  out << kManifestHeader << ' ' << version << '\n';
  out << "cell_type " << nn::CellTypeName(config.cell_type) << '\n';
  out << "vocab " << config.vocab << '\n';
  out << "max_len " << config.max_len << '\n';
  out << "n_attrs " << config.n_attrs << '\n';
  out << "char_emb_dim " << config.char_emb_dim << '\n';
  out << "units " << config.units << '\n';
  out << "stacks " << config.stacks << '\n';
  out << "bidirectional " << (config.bidirectional ? 1 : 0) << '\n';
  out << "enriched " << (config.enriched ? 1 : 0) << '\n';
  out << "use_attr_branch " << (config.use_attr_branch ? 1 : 0) << '\n';
  out << "use_length_branch " << (config.use_length_branch ? 1 : 0) << '\n';
  out << "attr_emb_dim " << config.attr_emb_dim << '\n';
  out << "attr_units " << config.attr_units << '\n';
  out << "length_dense_dim " << config.length_dense_dim << '\n';
  out << "hidden_dense_dim " << config.hidden_dense_dim << '\n';
  out << "seed " << config.seed << '\n';
  out << "prepare_max_value_len " << trained.prepare.max_value_len << '\n';
  out << "prepare_trim_leading_whitespace "
      << (trained.prepare.trim_leading_whitespace ? 1 : 0) << '\n';
  out << "prepare_treat_nan_as_empty "
      << (trained.prepare.treat_nan_as_empty ? 1 : 0) << '\n';
  // Optional memo pre-size hint + provenance (ReadManifest ignores unknown
  // keys, so old loaders skip these; omitted when the detector predates
  // them, keeping the historical byte layout for such bundles).
  if (trained.train_unique_cells > 0) {
    out << "train_unique_cells " << trained.train_unique_cells << '\n';
  }
  if (trained.content_fingerprint != 0) {
    out << "content_fingerprint " << trained.content_fingerprint << '\n';
  }
  out << "chars " << trained.chars.num_chars();
  for (const int idx : trained.chars.index_table()) out << ' ' << idx;
  out << '\n';
  for (int a = 0; a < config.n_attrs; ++a) {
    out << "attr " << a << ' '
        << trained.attr_max_value_len[static_cast<size_t>(a)] << ' '
        << trained.attr_names[static_cast<size_t>(a)] << '\n';
  }
  if (trained.has_frozen_stats) {
    // v3 frozen column statistics: the dictionary fingerprint ties the
    // `chars` line to the exact train-time index table (a corrupted or
    // hand-edited manifest fails fast instead of silently desyncing the
    // streaming encoder), and the per-attribute rates are the drift
    // baselines. %.9g round-trips any float exactly.
    out << "char_fingerprint " << trained.chars.Fingerprint() << '\n';
    char buf[96];
    for (int a = 0; a < config.n_attrs; ++a) {
      std::snprintf(buf, sizeof(buf), "attr_stats %d %.9g %.9g", a,
                    static_cast<double>(
                        trained.attr_empty_rate[static_cast<size_t>(a)]),
                    static_cast<double>(
                        trained.attr_error_rate[static_cast<size_t>(a)]));
      out << buf << '\n';
    }
  }
  if (!out) return Status::IoError("write failed: " + ManifestPath(dir));
  out.close();

  // Weights + batch-norm running statistics (which are state, not trainable
  // parameters, and therefore ride along as pseudo entries).
  std::vector<nn::Parameter*> params = trained.model->Params();
  core::ModelSnapshot snapshot = trained.model->Snapshot();
  nn::Parameter bn_mean(kBnMeanName, std::move(snapshot.bn_mean));
  nn::Parameter bn_var(kBnVarName, std::move(snapshot.bn_var));
  params.push_back(&bn_mean);
  params.push_back(&bn_var);
  if (!options.include_quantized) {
    return nn::SaveParameters(params, WeightsPath(dir));
  }
  // Quantize once at save time; every loader then installs the blobs
  // instead of re-deriving them.
  std::vector<nn::TypedEntry> extras;
  trained.model->ExportQuantized(&extras);
  return nn::SaveParametersV2(params, extras, WeightsPath(dir));
}

StatusOr<LoadedDetector> LoadDetectorBundle(const std::string& dir) {
  BIRNN_ASSIGN_OR_RETURN(Manifest m, ReadManifest(ManifestPath(dir)));

  core::ModelConfig config;
  BIRNN_ASSIGN_OR_RETURN(std::string cell_type, m.Get("cell_type"));
  BIRNN_ASSIGN_OR_RETURN(config.cell_type, nn::ParseCellType(cell_type));
  BIRNN_ASSIGN_OR_RETURN(int64_t vocab, m.GetInt("vocab"));
  BIRNN_ASSIGN_OR_RETURN(int64_t max_len, m.GetInt("max_len"));
  BIRNN_ASSIGN_OR_RETURN(int64_t n_attrs, m.GetInt("n_attrs"));
  BIRNN_ASSIGN_OR_RETURN(int64_t char_emb_dim, m.GetInt("char_emb_dim"));
  BIRNN_ASSIGN_OR_RETURN(int64_t units, m.GetInt("units"));
  BIRNN_ASSIGN_OR_RETURN(int64_t stacks, m.GetInt("stacks"));
  BIRNN_ASSIGN_OR_RETURN(int64_t bidirectional, m.GetInt("bidirectional"));
  BIRNN_ASSIGN_OR_RETURN(int64_t enriched, m.GetInt("enriched"));
  BIRNN_ASSIGN_OR_RETURN(int64_t use_attr, m.GetInt("use_attr_branch"));
  BIRNN_ASSIGN_OR_RETURN(int64_t use_length, m.GetInt("use_length_branch"));
  BIRNN_ASSIGN_OR_RETURN(int64_t attr_emb_dim, m.GetInt("attr_emb_dim"));
  BIRNN_ASSIGN_OR_RETURN(int64_t attr_units, m.GetInt("attr_units"));
  BIRNN_ASSIGN_OR_RETURN(int64_t length_dense, m.GetInt("length_dense_dim"));
  BIRNN_ASSIGN_OR_RETURN(int64_t hidden_dense, m.GetInt("hidden_dense_dim"));
  BIRNN_ASSIGN_OR_RETURN(int64_t seed, m.GetInt("seed"));
  config.vocab = static_cast<int>(vocab);
  config.max_len = static_cast<int>(max_len);
  config.n_attrs = static_cast<int>(n_attrs);
  config.char_emb_dim = static_cast<int>(char_emb_dim);
  config.units = static_cast<int>(units);
  config.stacks = static_cast<int>(stacks);
  config.bidirectional = bidirectional != 0;
  config.enriched = enriched != 0;
  config.use_attr_branch = use_attr != 0;
  config.use_length_branch = use_length != 0;
  config.attr_emb_dim = static_cast<int>(attr_emb_dim);
  config.attr_units = static_cast<int>(attr_units);
  config.length_dense_dim = static_cast<int>(length_dense);
  config.hidden_dense_dim = static_cast<int>(hidden_dense);
  config.seed = static_cast<uint64_t>(seed);
  BIRNN_RETURN_IF_ERROR(config.Validate());

  LoadedDetector det;
  det.config_ = config;

  BIRNN_ASSIGN_OR_RETURN(std::string chars_line, m.Get("chars"));
  {
    std::istringstream cs(chars_line);
    int num_chars = -1;
    cs >> num_chars;
    std::array<int, 256> table{};
    for (int c = 0; c < 256; ++c) cs >> table[static_cast<size_t>(c)];
    if (!cs) return Status::InvalidArgument("malformed chars line");
    BIRNN_ASSIGN_OR_RETURN(det.chars_,
                           data::CharIndex::FromIndexTable(table, num_chars));
    if (det.chars_.vocab_size() != config.vocab) {
      return Status::InvalidArgument("dictionary size does not match vocab");
    }
  }

  det.attr_names_.assign(static_cast<size_t>(config.n_attrs), "");
  det.attr_max_value_len_.assign(static_cast<size_t>(config.n_attrs), -1);
  for (const Manifest::Attr& attr : m.attrs) {
    if (attr.index < 0 || attr.index >= config.n_attrs ||
        attr.max_value_len < 0) {
      return Status::InvalidArgument("attr line out of range");
    }
    det.attr_names_[static_cast<size_t>(attr.index)] = attr.name;
    det.attr_max_value_len_[static_cast<size_t>(attr.index)] =
        attr.max_value_len;
  }
  for (const int32_t mx : det.attr_max_value_len_) {
    if (mx < 0) return Status::InvalidArgument("manifest missing attr line");
  }

  BIRNN_ASSIGN_OR_RETURN(int64_t max_value_len,
                         m.GetInt("prepare_max_value_len"));
  BIRNN_ASSIGN_OR_RETURN(int64_t trim,
                         m.GetInt("prepare_trim_leading_whitespace"));
  BIRNN_ASSIGN_OR_RETURN(int64_t nan_empty,
                         m.GetInt("prepare_treat_nan_as_empty"));
  det.prepare_.max_value_len = static_cast<int>(max_value_len);
  det.prepare_.trim_leading_whitespace = trim != 0;
  det.prepare_.treat_nan_as_empty = nan_empty != 0;

  // Optional keys (absent in pre-PR-8 bundles; both default to 0).
  if (m.values.count("train_unique_cells") > 0) {
    BIRNN_ASSIGN_OR_RETURN(int64_t unique_cells,
                           m.GetInt("train_unique_cells"));
    det.expected_unique_cells_ = std::max<int64_t>(0, unique_cells);
  }
  if (m.values.count("content_fingerprint") > 0) {
    const std::string& text = m.values.at("content_fingerprint");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      return Status::InvalidArgument(
          "manifest key content_fingerprint is not an integer: " + text);
    }
    det.content_fingerprint_ = static_cast<uint64_t>(v);
  }

  // v3: frozen column statistics. The dictionary fingerprint is verified
  // against the reconstructed CharIndex — a v3 bundle whose chars line no
  // longer matches its fingerprint is rejected rather than risking a
  // streaming encoder that disagrees with the train-time one.
  if (m.version >= kBundleVersionStream) {
    BIRNN_ASSIGN_OR_RETURN(std::string fp_text, m.Get("char_fingerprint"));
    errno = 0;
    char* end = nullptr;
    const unsigned long long fp = std::strtoull(fp_text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      return Status::InvalidArgument(
          "manifest key char_fingerprint is not an integer: " + fp_text);
    }
    if (static_cast<uint64_t>(fp) != det.chars_.Fingerprint()) {
      return Status::InvalidArgument(
          "char_fingerprint does not match the manifest dictionary");
    }
    det.attr_empty_rate_.assign(static_cast<size_t>(config.n_attrs), -1.0f);
    det.attr_error_rate_.assign(static_cast<size_t>(config.n_attrs), -1.0f);
    for (const Manifest::AttrStats& stats : m.attr_stats) {
      if (stats.index < 0 || stats.index >= config.n_attrs) {
        return Status::InvalidArgument("attr_stats line out of range");
      }
      det.attr_empty_rate_[static_cast<size_t>(stats.index)] =
          stats.empty_rate;
      det.attr_error_rate_[static_cast<size_t>(stats.index)] =
          stats.error_rate;
    }
    for (const float r : det.attr_empty_rate_) {
      if (r < 0.0f) {
        return Status::InvalidArgument("manifest missing attr_stats line");
      }
    }
    det.has_frozen_stats_ = true;
  }

  det.model_ = std::make_unique<core::ErrorDetectionModel>(config);
  std::vector<nn::Parameter*> params = det.model_->Params();
  nn::Parameter bn_mean(kBnMeanName,
                        nn::Tensor(std::vector<int>{config.hidden_dense_dim}));
  nn::Parameter bn_var(kBnVarName,
                       nn::Tensor(std::vector<int>{config.hidden_dense_dim}));
  params.push_back(&bn_mean);
  params.push_back(&bn_var);
  std::vector<nn::TypedEntry> extras;
  BIRNN_RETURN_IF_ERROR(
      nn::LoadParameters(WeightsPath(dir), params, &extras));
  det.model_->SetBatchNormStats(std::move(bn_mean.value),
                                std::move(bn_var.value));
  if (!extras.empty()) {
    BIRNN_RETURN_IF_ERROR(det.model_->ImportQuantized(std::move(extras)));
  }
  return det;
}

StatusOr<LoadedDetector> MakeLoadedDetector(core::TrainedDetector trained) {
  if (trained.model == nullptr) {
    return Status::InvalidArgument("TrainedDetector has no model");
  }
  if (static_cast<int>(trained.attr_names.size()) != trained.config.n_attrs ||
      static_cast<int>(trained.attr_max_value_len.size()) !=
          trained.config.n_attrs) {
    return Status::InvalidArgument(
        "attribute metadata does not match config.n_attrs");
  }
  LoadedDetector det;
  det.config_ = trained.config;
  det.model_ = std::move(trained.model);
  det.chars_ = trained.chars;
  det.attr_names_ = std::move(trained.attr_names);
  det.attr_max_value_len_ = std::move(trained.attr_max_value_len);
  det.prepare_ = trained.prepare;
  det.expected_unique_cells_ = std::max<int64_t>(0, trained.train_unique_cells);
  det.content_fingerprint_ = trained.content_fingerprint;
  if (trained.has_frozen_stats) {
    if (static_cast<int>(trained.attr_empty_rate.size()) !=
            trained.config.n_attrs ||
        static_cast<int>(trained.attr_error_rate.size()) !=
            trained.config.n_attrs) {
      return Status::InvalidArgument(
          "frozen column statistics do not match config.n_attrs");
    }
    det.attr_empty_rate_ = std::move(trained.attr_empty_rate);
    det.attr_error_rate_ = std::move(trained.attr_error_rate);
    det.has_frozen_stats_ = true;
  }
  return det;
}

void AppendDataset(const data::EncodedDataset& src, data::EncodedDataset* dst) {
  BIRNN_CHECK_EQ(src.max_len, dst->max_len);
  BIRNN_CHECK_EQ(src.n_attrs, dst->n_attrs);
  dst->seqs.insert(dst->seqs.end(), src.seqs.begin(), src.seqs.end());
  dst->attrs.insert(dst->attrs.end(), src.attrs.begin(), src.attrs.end());
  dst->length_norm.insert(dst->length_norm.end(), src.length_norm.begin(),
                          src.length_norm.end());
  dst->labels.insert(dst->labels.end(), src.labels.begin(), src.labels.end());
  dst->row_ids.insert(dst->row_ids.end(), src.row_ids.begin(),
                      src.row_ids.end());
}

}  // namespace birnn::serve
