#include "serve/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace birnn::serve {

namespace {

// epoll_event.data tags: the listener and the mailbox eventfd get small
// integer tags; connections carry their own pointer (heap addresses are
// never 0 or 1).
constexpr uint64_t kTagListen = 0;
constexpr uint64_t kTagEventFd = 1;

}  // namespace

/// All state of one connection. Owned by exactly one event loop and only
/// ever touched on that loop's thread (cross-thread responses detour
/// through the loop mailbox), so none of it needs atomics — except `fd`'s
/// lifetime, which ends strictly before the owning ConnRef leaves the
/// loop's tables.
class Reactor::Connection {
 public:
  /// One sequenced response waiting for its turn.
  struct Slot {
    std::string data;         ///< response line, no newline; may be empty.
    bool close_after = false;
  };

  int fd = -1;
  int loop_index = 0;

  std::string in;        ///< unframed input bytes.
  std::string out;       ///< flushed front-to-back from `out_off`.
  size_t out_off = 0;

  uint64_t next_assign = 0;   ///< seq handed to the next extracted line.
  uint64_t next_deliver = 0;  ///< seq whose response goes out next.
  std::map<uint64_t, Slot> ready;  ///< out-of-order completions parked here.

  uint32_t interest = 0;      ///< currently-armed epoll event mask.
  bool want_write = false;    ///< EPOLLOUT armed (short write pending).
  bool paused = false;        ///< EPOLLIN disarmed (backpressure/EOF/close).
  bool peer_eof = false;      ///< read() returned 0; still flushing answers.
  bool close_pending = false; ///< close once delivered + flushed.
  bool dead = false;          ///< destroyed; parked in the loop graveyard.

  /// Requests extracted but not yet answered into `out`.
  uint64_t outstanding() const { return next_assign - next_deliver; }
  size_t pending_out() const { return out.size() - out_off; }
  bool drained() const {
    return outstanding() == 0 && ready.empty() && pending_out() == 0;
  }
};

struct Reactor::Loop {
  int index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;

  /// Strong refs keyed by raw pointer — the pointer is what epoll hands
  /// back. Mutated only on the loop thread.
  std::unordered_map<Connection*, ConnRef> conns;
  /// Connections destroyed mid-batch; memory released at batch end so raw
  /// pointers inside the current epoll_event array stay valid.
  std::vector<ConnRef> graveyard;

  struct Mail {
    std::weak_ptr<Connection> conn;
    uint64_t seq = 0;
    std::string line;
    bool close_after = false;
  };
  std::mutex mail_mu;
  std::vector<Mail> mailbox;

  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline;
};

Reactor::Reactor(Handler* handler, ReactorOptions options)
    : handler_(handler), options_(std::move(options)) {
  options_.threads = std::max(1, options_.threads);
  options_.max_connections = std::max(1, options_.max_connections);
  options_.max_line_bytes = std::max(1024, options_.max_line_bytes);
  options_.max_output_backlog =
      std::max<size_t>(4096, options_.max_output_backlog);
  options_.drain_timeout_ms = std::max(0, options_.drain_timeout_ms);
}

Reactor::~Reactor() {
  Shutdown();
  for (auto& loop : loops_) {
    if (loop == nullptr) continue;
    if (loop->event_fd >= 0) ::close(loop->event_fd);
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
  }
}

Status Reactor::Start(int listen_fd) {
  if (started_) return Status::FailedPrecondition("reactor already started");
  listen_fd_ = listen_fd;
  const int fl = ::fcntl(listen_fd_, F_GETFL, 0);
  if (fl < 0 || ::fcntl(listen_fd_, F_SETFL, fl | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(listener): ") +
                            std::strerror(errno));
  }

  for (int i = 0; i < options_.threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->event_fd < 0) {
      return Status::Internal(std::string("epoll/eventfd: ") +
                              std::strerror(errno));
    }
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.u64 = kTagEventFd;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &wake) <
        0) {
      return Status::Internal(std::string("epoll_ctl(eventfd): ") +
                              std::strerror(errno));
    }
    epoll_event acc{};
    acc.events = EPOLLIN | EPOLLEXCLUSIVE;
    acc.data.u64 = kTagListen;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &acc) < 0) {
      // Pre-4.5 kernels: fall back to plain shared level-triggered wakeups
      // (thundering herd on accept, correctness unchanged).
      acc.events = EPOLLIN;
      if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &acc) < 0) {
        return Status::Internal(std::string("epoll_ctl(listener): ") +
                                std::strerror(errno));
      }
    }
    loops_.push_back(std::move(loop));
  }

  started_ = true;
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    raw->thread = std::thread([this, raw] { RunLoop(raw); });
  }
  return Status::OK();
}

void Reactor::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& loop : loops_) WakeLoop(loop.get());
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void Reactor::Respond(const ConnRef& conn, uint64_t seq, std::string line,
                      bool close_after) {
  if (conn == nullptr) return;
  Loop* loop = loops_[static_cast<size_t>(conn->loop_index)].get();
  {
    std::lock_guard<std::mutex> lock(loop->mail_mu);
    loop->mailbox.push_back(
        Loop::Mail{conn, seq, std::move(line), close_after});
  }
  WakeLoop(loop);
}

void Reactor::WakeLoop(Loop* loop) {
  const uint64_t one = 1;
  // The eventfd is nonblocking; a full counter still wakes the loop.
  [[maybe_unused]] const ssize_t n =
      ::write(loop->event_fd, &one, sizeof(one));
}

void Reactor::RunLoop(Loop* loop) {
  epoll_event events[128];
  for (;;) {
    // Entering drain: stop accepting, stop reading; what remains is
    // answering everything already admitted and flushing it out.
    if (!loop->draining && stopping_.load(std::memory_order_acquire)) {
      loop->draining = true;
      loop->drain_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.drain_timeout_ms);
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      for (auto& [ptr, ref] : loop->conns) {
        ptr->paused = true;
        UpdateInterest(loop, ptr);
      }
    }
    if (loop->draining) {
      std::vector<Connection*> done;
      for (auto& [ptr, ref] : loop->conns) {
        if (ptr->drained()) done.push_back(ptr);
      }
      const bool expired =
          std::chrono::steady_clock::now() >= loop->drain_deadline;
      if (expired) {
        for (auto& [ptr, ref] : loop->conns) {
          if (std::find(done.begin(), done.end(), ptr) == done.end()) {
            forced_closes_.Add(1);
          }
        }
        done.clear();
        for (auto& [ptr, ref] : loop->conns) done.push_back(ptr);
      }
      for (Connection* conn : done) DestroyConnection(loop, conn);
      loop->graveyard.clear();
      if (loop->conns.empty()) return;
    }

    const int timeout_ms = loop->draining ? 20 : -1;
    const int n = ::epoll_wait(loop->epoll_fd, events, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      BIRNN_LOG(Warning) << "reactor: epoll_wait: " << std::strerror(errno);
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kTagEventFd) {
        uint64_t count = 0;
        while (::read(loop->event_fd, &count, sizeof(count)) > 0) {
        }
        continue;
      }
      if (tag == kTagListen) {
        HandleAccept(loop);
        continue;
      }
      Connection* conn = static_cast<Connection*>(events[i].data.ptr);
      if (conn->dead) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        DestroyConnection(loop, conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        HandleWritable(loop, conn);
        if (conn->dead) continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(loop, conn);
    }
    DrainMailbox(loop);
    loop->graveyard.clear();
  }
}

void Reactor::HandleAccept(Loop* loop) {
  if (stopping_.load(std::memory_order_acquire)) return;
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // Transient per-connection failures (the peer aborted between SYN
      // and accept) must not kill the acceptor; fd exhaustion backs off
      // until a connection closes (level-triggered epoll re-reports the
      // pending queue).
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      return;  // EAGAIN (a sibling loop won the race), EMFILE/ENFILE, ...
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const int now = total_connections_.fetch_add(1, std::memory_order_relaxed)
                    + 1;
    if (now > options_.max_connections) {
      total_connections_.fetch_sub(1, std::memory_order_relaxed);
      overflow_closed_.Add(1);
      if (!options_.overload_line.empty()) {
        // Best-effort typed refusal; a full socket buffer just drops it.
        const std::string line = options_.overload_line + "\n";
        [[maybe_unused]] const ssize_t sent =
            ::write(fd, line.data(), line.size());
      }
      ::close(fd);
      continue;
    }

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->loop_index = loop->index;
    conn->interest = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      total_connections_.fetch_sub(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    accepted_.Add(1);
    connections_gauge_.Add(1);
    loop->conns.emplace(conn.get(), std::move(conn));
  }
}

void Reactor::HandleReadable(Loop* loop, Connection* conn) {
  char chunk[65536];
  // Bounded per event so one firehose connection cannot starve the loop;
  // level-triggered epoll re-reports leftovers immediately.
  size_t budget = 1 << 18;
  while (budget > 0 && !conn->paused && !conn->close_pending) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n > 0) {
      bytes_in_.Add(n);
      budget -= std::min<size_t>(budget, static_cast<size_t>(n));
      conn->in.append(chunk, static_cast<size_t>(n));
      ExtractLines(loop, conn);
      if (conn->dead) return;
      continue;
    }
    if (n == 0) {
      // Peer half-closed its write side. No further requests can arrive;
      // finish answering what is in flight, then close (a client that
      // pipelines everything and shutdown(SHUT_WR)s still gets every
      // response).
      conn->peer_eof = true;
      conn->paused = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    DestroyConnection(loop, conn);
    return;
  }
  if (conn->peer_eof && conn->drained()) {
    DestroyConnection(loop, conn);
    return;
  }
  UpdateInterest(loop, conn);
}

void Reactor::ExtractLines(Loop* loop, Connection* conn) {
  const ConnRef self = loop->conns.at(conn);
  size_t start = 0;
  for (;;) {
    const size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->in.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank keep-alive lines are fine
    const uint64_t seq = conn->next_assign++;
    handler_->OnLine(self, seq, std::move(line));
  }
  conn->in.erase(0, start);

  if (conn->in.size() > static_cast<size_t>(options_.max_line_bytes)) {
    // Same contract as the blocking server: answer the poison line with a
    // typed error and close, bounding per-connection memory.
    oversize_closed_.Add(1);
    conn->in.clear();
    conn->in.shrink_to_fit();
    conn->paused = true;
    const uint64_t seq = conn->next_assign++;
    conn->ready[seq] = Connection::Slot{options_.oversize_line, true};
    DeliverReady(loop, conn);
    FlushOut(loop, conn);
  }
}

void Reactor::DeliverReady(Loop* loop, Connection* conn) {
  (void)loop;
  while (!conn->ready.empty() &&
         conn->ready.begin()->first == conn->next_deliver) {
    Connection::Slot slot = std::move(conn->ready.begin()->second);
    conn->ready.erase(conn->ready.begin());
    ++conn->next_deliver;
    if (!slot.data.empty()) {
      conn->out.append(slot.data);
      conn->out.push_back('\n');
    }
    if (slot.close_after) {
      conn->close_pending = true;
      conn->paused = true;
    }
  }
  if (!conn->paused && conn->pending_out() > options_.max_output_backlog) {
    // The client is not reading its responses; stop reading its requests
    // until the backlog flushes below half.
    conn->paused = true;
    read_paused_.Add(1);
  }
}

void Reactor::FlushOut(Loop* loop, Connection* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_off,
                              conn->out.size() - conn->out_off);
    if (n >= 0) {
      bytes_out_.Add(n);
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      conn->want_write = true;
      UpdateInterest(loop, conn);
      return;
    }
    DestroyConnection(loop, conn);
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  conn->want_write = false;

  if (conn->close_pending && conn->ready.empty() &&
      conn->outstanding() == 0) {
    DestroyConnection(loop, conn);
    return;
  }
  if (conn->peer_eof && conn->drained()) {
    DestroyConnection(loop, conn);
    return;
  }
  if (conn->paused && !conn->close_pending && !conn->peer_eof &&
      !loop->draining &&
      conn->pending_out() < options_.max_output_backlog / 2) {
    conn->paused = false;
  }
  UpdateInterest(loop, conn);
}

void Reactor::HandleWritable(Loop* loop, Connection* conn) {
  FlushOut(loop, conn);
}

void Reactor::UpdateInterest(Loop* loop, Connection* conn) {
  if (conn->dead) return;
  const uint32_t events = (conn->paused ? 0u : static_cast<uint32_t>(EPOLLIN))
                          | (conn->want_write
                                 ? static_cast<uint32_t>(EPOLLOUT)
                                 : 0u);
  if (events == conn->interest) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = conn;
  if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->interest = events;
  }
}

void Reactor::DestroyConnection(Loop* loop, Connection* conn) {
  if (conn->dead) return;
  conn->dead = true;
  if (conn->fd >= 0) {
    ::close(conn->fd);  // also removes it from the epoll interest list
    conn->fd = -1;
  }
  const auto it = loop->conns.find(conn);
  if (it != loop->conns.end()) {
    // Park the strong ref until the current event batch finishes — raw
    // pointers in the in-flight epoll_event array must stay valid.
    loop->graveyard.push_back(std::move(it->second));
    loop->conns.erase(it);
  }
  connections_gauge_.Add(-1);
  total_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Reactor::DrainMailbox(Loop* loop) {
  std::vector<Loop::Mail> mails;
  {
    std::lock_guard<std::mutex> lock(loop->mail_mu);
    mails.swap(loop->mailbox);
  }
  for (Loop::Mail& mail : mails) {
    const ConnRef conn = mail.conn.lock();
    if (conn == nullptr || conn->dead) continue;
    conn->ready[mail.seq] =
        Connection::Slot{std::move(mail.line), mail.close_after};
    DeliverReady(loop, conn.get());
    FlushOut(loop, conn.get());
    if (!conn->dead) UpdateInterest(loop, conn.get());
  }
}

}  // namespace birnn::serve
