#include "serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>

#include "obs/registry.h"
#include "serve/json.h"

namespace birnn::serve {

StatusOr<Request> ParseRequest(const std::string& line) {
  BIRNN_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request request;
  request.id = doc.GetString("id");
  request.op = doc.GetString("op", "detect");
  request.model = doc.GetString("model");
  request.dir = doc.GetString("dir");
  if (request.op != "detect" && request.op != "ping" &&
      request.op != "models" && request.op != "stats" &&
      request.op != "quit" && request.op != "reload" &&
      request.op != "rollback" && request.op != "delta" &&
      request.op != "adapt") {
    return Status::InvalidArgument("unknown op: " + request.op);
  }
  if (request.op == "adapt") {
    const auto parse_labels = [&doc](const char* key,
                                     std::vector<AdaptLabel>* out,
                                     bool* present) -> Status {
      const JsonValue* labels = doc.Find(key);
      if (labels == nullptr) return Status::OK();
      if (present != nullptr) *present = true;
      if (!labels->is_array()) {
        return Status::InvalidArgument(std::string("\"") + key +
                                       "\" must be an array");
      }
      out->reserve(labels->items().size());
      for (const JsonValue& item : labels->items()) {
        if (!item.is_object()) {
          return Status::InvalidArgument("each label must be a JSON object");
        }
        AdaptLabel label;
        const JsonValue* row = item.Find("row");
        if (row == nullptr || !row->is_number() ||
            row->as_number() != std::floor(row->as_number())) {
          return Status::InvalidArgument("label needs an integer \"row\"");
        }
        label.row_id = static_cast<int64_t>(row->as_number());
        const JsonValue* attr = item.Find("attr");
        if (attr == nullptr || !attr->is_number()) {
          return Status::InvalidArgument("label needs a numeric \"attr\"");
        }
        const double idx = attr->as_number();
        if (idx != std::floor(idx) || idx < 0 || idx > 1e6) {
          return Status::InvalidArgument(
              "label \"attr\" index out of range");
        }
        label.attr = static_cast<int>(idx);
        const JsonValue* value = item.Find("label");
        if (value == nullptr || !value->is_number() ||
            (value->as_number() != 0 && value->as_number() != 1)) {
          return Status::InvalidArgument("label needs a 0/1 \"label\"");
        }
        label.label = static_cast<int>(value->as_number());
        out->push_back(label);
      }
      return Status::OK();
    };
    BIRNN_RETURN_IF_ERROR(
        parse_labels("labels", &request.labels, nullptr));
    BIRNN_RETURN_IF_ERROR(parse_labels("gate_labels", &request.gate_labels,
                                       &request.has_gate_labels));
    const JsonValue* bn_only = doc.Find("bn_only");
    if (bn_only != nullptr) {
      if (!bn_only->is_bool()) {
        return Status::InvalidArgument("\"bn_only\" must be a boolean");
      }
      request.adapt_bn_only = bn_only->as_bool() ? 1 : 0;
    }
    return request;
  }
  if (request.op == "delta") {
    const JsonValue* deltas = doc.Find("deltas");
    if (deltas == nullptr || !deltas->is_array()) {
      return Status::InvalidArgument(
          "delta request needs a \"deltas\" array");
    }
    request.deltas.reserve(deltas->items().size());
    for (const JsonValue& item : deltas->items()) {
      if (!item.is_object()) {
        return Status::InvalidArgument("each delta must be a JSON object");
      }
      stream::Delta delta;
      const std::string kind = item.GetString("kind");
      if (kind == "insert") {
        delta.kind = stream::DeltaKind::kInsert;
      } else if (kind == "update") {
        delta.kind = stream::DeltaKind::kUpdate;
      } else if (kind == "delete") {
        delta.kind = stream::DeltaKind::kDelete;
      } else {
        return Status::InvalidArgument(
            "delta \"kind\" must be insert, update or delete");
      }
      const JsonValue* row = item.Find("row");
      if (row == nullptr || !row->is_number() ||
          row->as_number() != std::floor(row->as_number())) {
        return Status::InvalidArgument("delta needs an integer \"row\"");
      }
      delta.row_id = static_cast<int64_t>(row->as_number());
      if (delta.kind == stream::DeltaKind::kInsert) {
        const JsonValue* values = item.Find("values");
        if (values == nullptr || !values->is_array()) {
          return Status::InvalidArgument(
              "insert delta needs a \"values\" array");
        }
        delta.values.reserve(values->items().size());
        for (const JsonValue& v : values->items()) {
          if (!v.is_string()) {
            return Status::InvalidArgument(
                "insert delta values must be strings");
          }
          delta.values.push_back(v.as_string());
        }
      } else if (delta.kind == stream::DeltaKind::kUpdate) {
        const JsonValue* attr = item.Find("attr");
        if (attr == nullptr || !attr->is_number()) {
          // CDC feeds address columns positionally, so delta attrs are
          // numeric only (unlike detect cells, which also take names).
          return Status::InvalidArgument(
              "update delta needs a numeric \"attr\"");
        }
        const double idx = attr->as_number();
        if (idx != std::floor(idx) || idx < 0 || idx > 1e6) {
          return Status::InvalidArgument(
              "update delta \"attr\" index out of range");
        }
        delta.attr = static_cast<int>(idx);
        const JsonValue* value = item.Find("value");
        if (value == nullptr || !value->is_string()) {
          return Status::InvalidArgument(
              "update delta needs a string \"value\"");
        }
        delta.value = value->as_string();
      }
      request.deltas.push_back(std::move(delta));
    }
    return request;
  }
  if (request.op != "detect") return request;

  const JsonValue* cells = doc.Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return Status::InvalidArgument("detect request needs a \"cells\" array");
  }
  request.cells.reserve(cells->items().size());
  for (const JsonValue& item : cells->items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("each cell must be a JSON object");
    }
    CellQuery cell;
    const JsonValue* attr = item.Find("attr");
    if (attr == nullptr) attr = item.Find("attr_name");
    if (attr == nullptr) {
      return Status::InvalidArgument("cell is missing \"attr\"");
    }
    if (attr->is_number()) {
      const double idx = attr->as_number();
      if (idx != std::floor(idx) || idx < 0 || idx > 1e6) {
        return Status::InvalidArgument("cell \"attr\" index out of range");
      }
      cell.attr = static_cast<int>(idx);
    } else if (attr->is_string()) {
      cell.attr_name = attr->as_string();
    } else {
      return Status::InvalidArgument(
          "cell \"attr\" must be a name or an index");
    }
    const JsonValue* value = item.Find("value");
    if (value == nullptr || !value->is_string()) {
      return Status::InvalidArgument("cell needs a string \"value\"");
    }
    cell.value = value->as_string();
    request.cells.push_back(std::move(cell));
  }
  return request;
}

std::string StatusCodeToProtocolString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kUnsupportedBundle: return "UNSUPPORTED_BUNDLE";
    default: return "UNKNOWN";
  }
}

namespace {

// Opens a response object and writes the echoed id + status. The id is
// rendered as JSON null when the request carried none (or never parsed).
void OpenResponse(const std::string& id, const std::string& status,
                  std::string* out) {
  out->append("{\"id\":");
  if (id.empty()) {
    out->append("null");
  } else {
    AppendJsonString(id, out);
  }
  out->append(",\"status\":");
  AppendJsonString(status, out);
}

// Full registry snapshot: {"counters":{...},"gauges":{...},"histograms":
// {name:{count,sum,p50,p95,p99,max}}}. Doubles use %.9g (compact, enough
// digits for latencies); field names are the raw metric paths.
void AppendRegistrySnapshot(std::string* out) {
  const auto fmt = [](double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  const std::vector<obs::MetricSnapshot> snapshot =
      obs::Registry::Get().Snapshot();
  out->append("{\"counters\":{");
  bool first = true;
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.type != obs::Metric::Type::kCounter) continue;
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(m.name, out);
    out->push_back(':');
    out->append(std::to_string(m.counter));
  }
  out->append("},\"gauges\":{");
  first = true;
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.type != obs::Metric::Type::kGauge) continue;
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(m.name, out);
    out->push_back(':');
    out->append(fmt(m.gauge));
  }
  out->append("},\"histograms\":{");
  first = true;
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.type != obs::Metric::Type::kHistogram) continue;
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(m.name, out);
    out->append(":{\"count\":");
    out->append(std::to_string(m.histogram.count));
    out->append(",\"sum\":");
    out->append(fmt(m.histogram.sum));
    out->append(",\"p50\":");
    out->append(fmt(m.histogram.Quantile(0.5)));
    out->append(",\"p95\":");
    out->append(fmt(m.histogram.Quantile(0.95)));
    out->append(",\"p99\":");
    out->append(fmt(m.histogram.Quantile(0.99)));
    out->append(",\"max\":");
    out->append(fmt(m.histogram.max));
    out->push_back('}');
  }
  out->append("}}");
}

}  // namespace

std::string OkDetectResponse(const std::string& id,
                             const std::vector<CellVerdict>& verdicts) {
  std::string out;
  out.reserve(64 + verdicts.size() * 40);
  OpenResponse(id, "OK", &out);
  out.append(",\"results\":[");
  for (size_t i = 0; i < verdicts.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append("{\"p_error\":");
    out.append(JsonFloat(verdicts[i].p_error));
    out.append(",\"error\":");
    out.append(verdicts[i].is_error ? "true" : "false");
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string ErrorResponse(const std::string& id, const Status& status) {
  std::string out;
  OpenResponse(id, StatusCodeToProtocolString(status.code()), &out);
  out.append(",\"message\":");
  AppendJsonString(status.message(), &out);
  out.push_back('}');
  return out;
}

std::string PongResponse(const std::string& id) {
  std::string out;
  OpenResponse(id, "OK", &out);
  out.append(",\"pong\":true}");
  return out;
}

std::string ModelsResponse(const std::string& id,
                           const std::vector<std::string>& names) {
  std::string out;
  OpenResponse(id, "OK", &out);
  out.append(",\"models\":[");
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(names[i], &out);
  }
  out.append("]}");
  return out;
}

std::string StatsResponse(const std::string& id, const std::string& model,
                          const BatcherStats& stats, int64_t generation,
                          const stream::SessionStats* stream_stats,
                          const AdaptLineage* adapt) {
  std::string out;
  OpenResponse(id, "OK", &out);
  out.append(",\"model\":");
  AppendJsonString(model, &out);
  char buf[960];
  std::snprintf(buf, sizeof(buf),
                ",\"generation\":%lld,"
                "\"requests\":%lld,\"cells\":%lld,\"shed_requests\":%lld,"
                "\"shed_cells\":%lld,\"rejected_requests\":%lld,"
                "\"batches\":%lld,\"max_batch_cells\":%lld,"
                "\"batch_seconds\":%.6f,"
                "\"memo_hits\":%lld,\"memo_entries\":%lld,"
                "\"memo_bytes\":%lld,\"memo_bloom_fp\":%lld,"
                "\"memo_spilled_segments\":%lld,\"memo_evictions\":%lld",
                static_cast<long long>(generation),
                static_cast<long long>(stats.requests),
                static_cast<long long>(stats.cells),
                static_cast<long long>(stats.shed_requests),
                static_cast<long long>(stats.shed_cells),
                static_cast<long long>(stats.rejected_requests),
                static_cast<long long>(stats.batches),
                static_cast<long long>(stats.max_batch_cells),
                stats.batch_seconds,
                static_cast<long long>(stats.memo_hits),
                static_cast<long long>(stats.memo_entries),
                static_cast<long long>(stats.memo_bytes),
                static_cast<long long>(stats.memo_bloom_fp),
                static_cast<long long>(stats.memo_spilled_segments),
                static_cast<long long>(stats.memo_evictions));
  out.append(buf);
  if (stream_stats != nullptr) {
    std::snprintf(buf, sizeof(buf),
                  ",\"deltas\":%lld,\"delta_inserts\":%lld,"
                  "\"delta_updates\":%lld,\"delta_deletes\":%lld,"
                  "\"delta_cells_scored\":%lld,\"delta_memo_hits\":%lld,"
                  "\"stream_rows\":%lld,\"drift_alarms\":%lld,"
                  "\"drift_resets\":%lld,\"reservoir_rows\":%lld,"
                  "\"stream_version\":%llu",
                  static_cast<long long>(stream_stats->deltas),
                  static_cast<long long>(stream_stats->inserts),
                  static_cast<long long>(stream_stats->updates),
                  static_cast<long long>(stream_stats->deletes),
                  static_cast<long long>(stream_stats->cells_scored),
                  static_cast<long long>(stream_stats->memo_hits),
                  static_cast<long long>(stream_stats->rows),
                  static_cast<long long>(stream_stats->drift_alarms),
                  static_cast<long long>(stream_stats->drift_resets),
                  static_cast<long long>(stream_stats->reservoir_rows),
                  static_cast<unsigned long long>(stream_stats->version));
    out.append(buf);
  }
  if (adapt != nullptr) {
    std::snprintf(buf, sizeof(buf),
                  ",\"adapt_attempts\":%lld,\"adapt_promotions\":%lld,"
                  "\"adapt_rejections\":%lld",
                  static_cast<long long>(adapt->attempts),
                  static_cast<long long>(adapt->promotions),
                  static_cast<long long>(adapt->rejections));
    out.append(buf);
  }
  // The batcher-level fields above stay for back-compat; the registry block
  // adds the process-wide view (every layer's counters/gauges/histograms).
  out.append(",\"registry\":");
  AppendRegistrySnapshot(&out);
  out.push_back('}');
  return out;
}

std::string DeltaResponse(const std::string& id, int64_t applied,
                          const std::vector<DeltaCellVerdict>& verdicts,
                          int64_t drift_alarms) {
  std::string out;
  out.reserve(96 + verdicts.size() * 72);
  OpenResponse(id, "OK", &out);
  out.append(",\"applied\":");
  out.append(std::to_string(applied));
  out.append(",\"verdicts\":[");
  for (size_t i = 0; i < verdicts.size(); ++i) {
    if (i > 0) out.push_back(',');
    const DeltaCellVerdict& v = verdicts[i];
    out.append("{\"row\":");
    out.append(std::to_string(v.row_id));
    out.append(",\"attr\":");
    out.append(std::to_string(v.attr));
    out.append(",\"p_error\":");
    out.append(JsonFloat(v.verdict.p_error));
    out.append(",\"error\":");
    out.append(v.verdict.is_error ? "true" : "false");
    out.append(",\"version\":");
    out.append(std::to_string(v.verdict.version));
    out.push_back('}');
  }
  out.append("],\"drift_alarms\":");
  out.append(std::to_string(drift_alarms));
  out.push_back('}');
  return out;
}

std::string ReloadResponse(const std::string& id, const std::string& model,
                           int64_t generation) {
  std::string out;
  OpenResponse(id, "OK", &out);
  out.append(",\"model\":");
  AppendJsonString(model, &out);
  out.append(",\"generation\":");
  out.append(std::to_string(generation));
  out.push_back('}');
  return out;
}

std::string AdaptResponse(const std::string& id, const std::string& model,
                          const AdaptResponseFields& fields) {
  std::string out;
  OpenResponse(id, "OK", &out);
  out.append(",\"model\":");
  AppendJsonString(model, &out);
  out.append(",\"outcome\":");
  AppendJsonString(fields.outcome, &out);
  out.append(",\"promoted\":");
  out.append(fields.promoted ? "true" : "false");
  out.append(",\"generation\":");
  out.append(std::to_string(fields.generation));
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                ",\"incumbent_f1\":%.9g,\"candidate_f1\":%.9g",
                fields.incumbent_f1, fields.candidate_f1);
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                ",\"train_cells\":%lld,\"validation_cells\":%lld,"
                "\"reservoir_rows\":%lld",
                static_cast<long long>(fields.train_cells),
                static_cast<long long>(fields.validation_cells),
                static_cast<long long>(fields.reservoir_rows));
  out.append(buf);
  out.append(",\"deterministic_eval\":");
  out.append(fields.deterministic_eval ? "true" : "false");
  out.append(",\"reason\":");
  AppendJsonString(fields.reason, &out);
  out.push_back('}');
  return out;
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool WriteResponseLine(int fd, const std::string& line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return SendAll(fd, framed.data(), framed.size());
}

}  // namespace birnn::serve
