#ifndef BIRNN_SERVE_REACTOR_H_
#define BIRNN_SERVE_REACTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/registry.h"
#include "util/status.h"

namespace birnn::serve {

/// Reactor tuning. The reactor itself is protocol-agnostic: it frames
/// newline-delimited request lines in and sequenced response lines out;
/// everything protocol-shaped (what an overload or oversize reply looks
/// like) is injected as pre-rendered lines.
struct ReactorOptions {
  /// Event-loop threads. Each runs its own epoll instance; the listening
  /// socket is registered in every loop with EPOLLEXCLUSIVE, so the kernel
  /// spreads accepts without a dedicated acceptor or thundering herds.
  int threads = 2;
  /// Admission cap on concurrently open connections (across all loops).
  /// Above it, an accepted socket gets `overload_line` written best-effort
  /// and is closed immediately — a typed refusal, not a hung SYN queue.
  int max_connections = 10000;
  /// A connection whose buffered input exceeds this without containing a
  /// newline is answered with `oversize_line` and closed (bounds per-
  /// connection memory against hostile input).
  int max_line_bytes = 1 << 20;
  /// Per-connection pending-output bound. Above it the reactor stops
  /// *reading* from that connection (its requests are what create output),
  /// resuming below half — classic writable-queue backpressure, so one
  /// slow-reading client can neither balloon memory nor stall the loop.
  size_t max_output_backlog = 4u << 20;
  /// On Shutdown(): how long to keep flushing responses for requests that
  /// were admitted before the drain began. Connections still unflushed at
  /// the deadline (peer stopped reading) are closed forcibly.
  int drain_timeout_ms = 5000;
  /// Pre-rendered response line (no newline) for over-cap accepts.
  std::string overload_line;
  /// Pre-rendered response line (no newline) for oversized request lines.
  std::string oversize_line;
};

/// Epoll-based multi-loop TCP reactor for the serve plane. Nonblocking
/// `accept4`/`read`/`write` on `threads` event loops; per-connection input
/// buffers with in-place line framing (no per-request allocation beyond the
/// line itself); a per-connection write queue flushed opportunistically and
/// by EPOLLOUT when the socket pushes back.
///
/// Responses are *sequenced*: each extracted line is assigned a
/// per-connection sequence number and handed to the Handler, which may
/// answer synchronously or from any other thread (the micro-batcher's
/// dispatcher); the reactor delivers responses strictly in request order
/// per connection, so pipelined clients observe exactly the blocking
/// server's ordering no matter how batches complete.
///
/// Thread model: every Connection is owned by exactly one loop thread; all
/// of its state is touched only there. Cross-thread Respond() goes through
/// the owning loop's mailbox (mutex + eventfd wake). Handler::OnLine runs
/// on the loop thread — keep it cheap (parse + enqueue); model compute
/// belongs in the batcher.
class Reactor {
 public:
  class Connection;
  /// Shared handle; callbacks hold weak refs, so a connection that dies
  /// mid-request simply drops its late responses.
  using ConnRef = std::shared_ptr<Connection>;

  class Handler {
   public:
    virtual ~Handler() = default;
    /// One complete request line (newline stripped, CR trimmed, never
    /// empty). Must eventually cause exactly one Respond(conn, seq, ...)
    /// — from this thread or any other.
    virtual void OnLine(const ConnRef& conn, uint64_t seq,
                        std::string line) = 0;
  };

  Reactor(Handler* handler, ReactorOptions options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Takes ownership of a bound, listening socket and starts the loops.
  Status Start(int listen_fd);

  /// Graceful drain: stop accepting, stop reading, flush every response
  /// for already-admitted requests (bounded by drain_timeout_ms), close
  /// everything, join the loops. Idempotent.
  void Shutdown();

  /// Queues `line` (newline appended by the reactor) as the response for
  /// request `seq` on `conn`. Thread-safe. An empty line sends no bytes
  /// but still advances the sequence (the protocol's "quit" answers
  /// nothing). `close_after` closes the connection once this and every
  /// earlier response has flushed.
  void Respond(const ConnRef& conn, uint64_t seq, std::string line,
               bool close_after = false);

  /// Currently open connections (tests / stats).
  int open_connections() const {
    return total_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Loop;

  void RunLoop(Loop* loop);
  void HandleAccept(Loop* loop);
  void HandleReadable(Loop* loop, Connection* conn);
  void HandleWritable(Loop* loop, Connection* conn);
  void ExtractLines(Loop* loop, Connection* conn);
  void DeliverReady(Loop* loop, Connection* conn);
  void FlushOut(Loop* loop, Connection* conn);
  void UpdateInterest(Loop* loop, Connection* conn);
  void DestroyConnection(Loop* loop, Connection* conn);
  void DrainMailbox(Loop* loop);
  void WakeLoop(Loop* loop);

  Handler* handler_;
  ReactorOptions options_;

  std::vector<std::unique_ptr<Loop>> loops_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<int> total_connections_{0};
  bool started_ = false;
  std::mutex shutdown_mutex_;

  obs::Gauge connections_gauge_{"serve/reactor/connections"};
  obs::Counter accepted_{"serve/reactor/accepted"};
  obs::Counter overflow_closed_{"serve/reactor/overflow_closed"};
  obs::Counter oversize_closed_{"serve/reactor/oversize_closed"};
  obs::Counter read_paused_{"serve/reactor/read_paused"};
  obs::Counter forced_closes_{"serve/reactor/forced_closes"};
  obs::Counter bytes_in_{"serve/reactor/bytes_in"};
  obs::Counter bytes_out_{"serve/reactor/bytes_out"};
};

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_REACTOR_H_
