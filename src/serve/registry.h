#ifndef BIRNN_SERVE_REGISTRY_H_
#define BIRNN_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/bundle.h"
#include "util/status.h"

namespace birnn::serve {

/// Thread-safe name -> detector map backing the server. Detectors are held
/// behind shared_ptr<const ...> so a request being served keeps its model
/// alive even if the name is replaced or unloaded mid-flight.
class ModelRegistry {
 public:
  /// Loads a bundle from disk under `name`. Replaces an existing entry of
  /// the same name (in-flight requests on the old detector finish on it).
  Status LoadBundle(const std::string& name, const std::string& dir);

  /// Registers an already-loaded detector (in-process serving, tests).
  Status Add(const std::string& name, LoadedDetector detector);

  /// Installs an already-shared detector under `name`, replacing any
  /// existing entry. The server's hot reload uses this to keep the
  /// registry in step with the serving swap.
  void Put(const std::string& name,
           std::shared_ptr<const LoadedDetector> detector);

  /// The detector registered under `name`, or null.
  std::shared_ptr<const LoadedDetector> Get(const std::string& name) const;

  /// Removes `name`; NotFound if absent.
  Status Unload(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  int size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const LoadedDetector>> models_;
};

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_REGISTRY_H_
