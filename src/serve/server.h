#ifndef BIRNN_SERVE_SERVER_H_
#define BIRNN_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adapt/controller.h"
#include "serve/batcher.h"
#include "serve/protocol.h"
#include "serve/reactor.h"
#include "serve/registry.h"
#include "stream/session.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace birnn::serve {

/// Transport for the serve plane.
enum class ServeMode {
  /// Epoll reactor (serve/reactor.h): a few event-loop threads multiplex
  /// thousands of nonblocking connections; detect requests flow through the
  /// micro-batcher asynchronously. The default.
  kReactor,
  /// The classic thread-per-connection blocking transport: one handler
  /// thread per active connection, synchronous reads and writes. Kept as
  /// the independently-simple baseline the reactor is byte-compared
  /// against (tests, soak bench).
  kBlocking,
};

struct ServerOptions {
  /// Bind address. Loopback by default — the service has no auth layer, so
  /// exposing it wider is an explicit decision.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one from port() after
  /// Start() (the tests and the CI smoke job rely on this).
  int port = 0;
  /// Transport (see ServeMode). Both speak the identical protocol and
  /// produce byte-identical responses.
  ServeMode mode = ServeMode::kReactor;
  /// kBlocking only: connection-handler threads; also the concurrent-
  /// connection bound (later connections queue in the pool until a handler
  /// frees up). Clamped to >= 1.
  int io_threads = 4;
  /// kReactor only: event-loop threads.
  int reactor_threads = 2;
  /// kReactor only: admission cap on concurrently open connections. Above
  /// it new sockets get a typed OVERLOADED line and an immediate close.
  int max_connections = 10000;
  /// kReactor only: per-connection pending-output bound; above it the
  /// reactor stops reading that connection until the backlog flushes
  /// (writable-queue backpressure).
  size_t max_output_backlog = 4u << 20;
  /// kReactor only: bound on the graceful drain in Shutdown().
  int drain_timeout_ms = 5000;
  /// Listen backlog for not-yet-accepted connections.
  int backlog = 64;
  /// A request line longer than this is answered with a typed error and
  /// kills its connection (bounds per-connection memory against hostile
  /// input).
  int max_line_bytes = 1 << 20;
  /// Micro-batching policy, applied to every hosted model. batcher.replicas
  /// engine replicas serve each model behind a shared verdict memo.
  BatcherOptions batcher;
  /// Streaming ("delta" op) policy, applied to every per-model table
  /// session. Sessions are created lazily on the first delta and reset by
  /// reload/rollback (a swapped-in bundle starts from an empty table).
  stream::SessionOptions stream_session;
  /// Adaptation ("adapt" op) policy: fine-tune schedule, reservoir
  /// thresholds and the promotion gate band. `adapt.candidate_dir` is
  /// ignored — the server derives a per-promotion directory from
  /// `adapt_bundle_dir` instead.
  adapt::ControllerOptions adapt;
  /// Where promoted candidate bundles are written (one subdirectory per
  /// promotion). Empty = a per-promotion directory under the system temp
  /// dir.
  std::string adapt_bundle_dir;
};

/// TCP server speaking the newline-delimited JSON protocol in
/// serve/protocol.h over either transport (ServeMode). Each hosted model is
/// served by a MicroBatcher (batcher.replicas engine replicas + shared
/// verdict memo), so concurrent connections coalesce into shared forward
/// batches.
///
/// Hot reload: ReloadModel() loads a new bundle, atomically swaps it in
/// (new requests go to the new model), drains the old one — every request
/// that acquired the old model gets its response handed to the transport —
/// then stops the old batcher. Zero in-flight requests are dropped.
/// RollbackModel() swaps back to the previously-served weights the same
/// way. Both are also reachable over the wire ("reload" / "rollback" ops).
///
/// Shutdown() drains gracefully in either mode: stop accepting, stop
/// reading, answer and flush everything already admitted, then stop the
/// batchers. No admitted request is dropped.
class Server : public Reactor::Handler {
 public:
  /// `registry` must outlive the server. Models present at Start() get a
  /// serving entry each; models added to the registry later are not served
  /// until the server is restarted (but ReloadModel updates both the
  /// serving entry and the registry).
  Server(ModelRegistry* registry, ServerOptions options = {});
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the transport. Fails on bind errors or an
  /// empty registry.
  Status Start();

  /// The bound port (resolves option port 0), or 0 before Start().
  int port() const { return port_; }

  /// Graceful drain, idempotent; also run by the destructor.
  void Shutdown();

  /// Handles one already-parsed request and returns the response line
  /// (without newline). Exposed for in-process use and tests — the
  /// blocking transport runs exactly this per line; the reactor runs it
  /// for every op except "detect" (which goes through the batcher
  /// asynchronously) and "quit".
  std::string HandleRequest(const Request& request);

  /// Loads the bundle at `dir` and hot-swaps it in under `name`: new
  /// requests see the new model immediately, in-flight requests finish on
  /// the old one, the old batcher is drained and stopped. Serialized per
  /// model; concurrent requests are never dropped.
  Status ReloadModel(const std::string& name, const std::string& dir);

  /// Swaps back to the weights served before the last ReloadModel /
  /// RollbackModel, with the same drain guarantees. FailedPrecondition if
  /// nothing was ever replaced.
  Status RollbackModel(const std::string& name);

  /// Bundle generation currently served under `name` (1 at Start(),
  /// incremented by every successful reload/rollback); 0 for unknown names.
  int64_t ModelGeneration(const std::string& name) const;

  /// Aggregated stats for one hosted model; NotFound for unknown names.
  StatusOr<BatcherStats> ModelStats(const std::string& name) const;

  /// Reactor::Handler — one framed request line. Public as an override;
  /// not part of the server's own API.
  void OnLine(const Reactor::ConnRef& conn, uint64_t seq,
              std::string line) override;

 private:
  /// One model's live serving state. Requests acquire the current
  /// ServingModel, use its batcher, and release it; a reload swaps
  /// `current` and waits for the old model's active count to hit zero
  /// before stopping its batcher — that wait is what makes reload
  /// drop-free.
  struct ServingModel {
    std::shared_ptr<const LoadedDetector> detector;
    std::unique_ptr<MicroBatcher> batcher;
    /// Lazily-created streaming table session for "delta" ops (requires a
    /// stream-capable bundle). Lives and dies with this ServingModel, so a
    /// reload/rollback swap implicitly resets the streamed table.
    std::mutex session_mu;  ///< guards session creation.
    std::unique_ptr<stream::TableSession> session;
    std::atomic<int64_t> active{0};
    std::mutex drain_mu;
    std::condition_variable drain_cv;
  };

  struct ModelEntry {
    std::string name;
    mutable std::mutex mu;  ///< guards current/previous/generation.
    std::shared_ptr<ServingModel> current;
    /// Weights served before the last swap; rollback target.
    std::shared_ptr<const LoadedDetector> previous;
    int64_t generation = 1;
    /// Adaptation lineage, mirrored into the `stats` response.
    AdaptLineage adapt;
    /// Serializes reload/rollback/shutdown-stop (held across load + swap +
    /// drain, so admin ops on one model never interleave).
    std::mutex admin_mu;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Applies a delta batch to the model's table session (creating it on
  /// first use) and renders the response line.
  std::string HandleDelta(const Request& request,
                          const std::shared_ptr<ServingModel>& sm);
  /// Runs one drift-adaptation attempt on the model's table session and,
  /// on a promoted candidate, hot-swaps the saved bundle in through the
  /// same drain path as reload (zero dropped in-flight requests).
  std::string HandleAdapt(const Request& request);
  ModelEntry* ResolveEntry(const std::string& model, std::string* resolved);
  std::shared_ptr<ServingModel> AcquireModel(const std::string& model,
                                             std::string* resolved);
  static void ReleaseModel(const std::shared_ptr<ServingModel>& sm);
  Status SwapIn(ModelEntry* entry, std::shared_ptr<ServingModel> next);

  ModelRegistry* registry_;
  ServerOptions options_;

  /// Key set fixed at Start() (lock-free lookups); entries are internally
  /// mutable for hot reload.
  std::map<std::string, std::unique_ptr<ModelEntry>> models_;

  int listen_fd_ = -1;
  int port_ = 0;

  // kReactor transport.
  std::unique_ptr<Reactor> reactor_;

  // kBlocking transport.
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::mutex shutdown_mutex_;  ///< serializes concurrent Shutdown() calls.
  std::set<int> open_connections_;
  bool shutting_down_ = false;
  bool started_ = false;
};

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_SERVER_H_
