#ifndef BIRNN_SERVE_SERVER_H_
#define BIRNN_SERVE_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "util/status.h"
#include "util/threadpool.h"

namespace birnn::serve {

struct ServerOptions {
  /// Bind address. Loopback by default — the service has no auth layer, so
  /// exposing it wider is an explicit decision.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one from port() after
  /// Start() (the tests and the CI smoke job rely on this).
  int port = 0;
  /// Connection-handler threads; also the concurrent-connection bound
  /// (later connections queue in the pool until a handler frees up).
  /// Clamped to >= 1 — inline execution would deadlock the accept loop.
  int io_threads = 4;
  /// Listen backlog for not-yet-accepted connections.
  int backlog = 64;
  /// A request line longer than this kills its connection (bounds per-
  /// connection memory against hostile input).
  int max_line_bytes = 1 << 20;
  /// Micro-batching policy, applied to every hosted model.
  BatcherOptions batcher;
};

/// Blocking-socket TCP server speaking the newline-delimited JSON protocol
/// in serve/protocol.h. One accept thread hands connections to a
/// util::ThreadPool of synchronous handlers; each detect request goes
/// through the hosted model's MicroBatcher, so concurrent connections
/// coalesce into shared forward batches.
///
/// Shutdown() drains gracefully: stop accepting, wake handlers blocked in
/// read (shutdown(SHUT_RD) on their sockets), wait for them to finish
/// writing answers for everything already admitted, then stop the batchers.
/// No admitted request is dropped.
class Server {
 public:
  /// `registry` must outlive the server. Models present at Start() get a
  /// batcher each; models added to the registry later are served one-off
  /// (no batching) until the server is restarted.
  Server(const ModelRegistry* registry, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept thread. Fails on bind errors or
  /// an empty registry.
  Status Start();

  /// The bound port (resolves option port 0), or 0 before Start().
  int port() const { return port_; }

  /// Graceful drain, idempotent; also run by the destructor.
  void Shutdown();

  /// Handles one already-parsed request and returns the response line
  /// (without newline). Exposed for in-process use and tests — this is
  /// exactly what a connection handler runs per line.
  std::string HandleRequest(const Request& request);

  /// Aggregated stats for one hosted model; NotFound for unknown names.
  StatusOr<BatcherStats> ModelStats(const std::string& name) const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  MicroBatcher* FindBatcher(const std::string& model, std::string* resolved);

  const ModelRegistry* registry_;
  ServerOptions options_;

  // Keeps each batcher's detector alive for the server's lifetime.
  std::map<std::string,
           std::pair<std::shared_ptr<const LoadedDetector>,
                     std::unique_ptr<MicroBatcher>>>
      batchers_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::mutex shutdown_mutex_;  ///< serializes concurrent Shutdown() calls.
  std::set<int> open_connections_;
  bool shutting_down_ = false;
  bool started_ = false;
};

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_SERVER_H_
