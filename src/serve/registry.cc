#include "serve/registry.h"

namespace birnn::serve {

Status ModelRegistry::LoadBundle(const std::string& name,
                                 const std::string& dir) {
  if (name.empty()) return Status::InvalidArgument("empty model name");
  BIRNN_ASSIGN_OR_RETURN(LoadedDetector detector, LoadDetectorBundle(dir));
  return Add(name, std::move(detector));
}

Status ModelRegistry::Add(const std::string& name, LoadedDetector detector) {
  if (name.empty()) return Status::InvalidArgument("empty model name");
  auto shared =
      std::make_shared<const LoadedDetector>(std::move(detector));
  std::lock_guard<std::mutex> lock(mutex_);
  models_[name] = std::move(shared);
  return Status::OK();
}

void ModelRegistry::Put(const std::string& name,
                        std::shared_ptr<const LoadedDetector> detector) {
  std::lock_guard<std::mutex> lock(mutex_);
  models_[name] = std::move(detector);
}

std::shared_ptr<const LoadedDetector> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::Unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("no model named " + name);
  }
  return Status::OK();
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, detector] : models_) {
    (void)detector;
    names.push_back(name);
  }
  return names;
}

int ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(models_.size());
}

}  // namespace birnn::serve
