#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "adapt/controller.h"
#include "obs/obs.h"
#include "serve/protocol.h"
#include "util/logging.h"

namespace birnn::serve {

Server::Server(ModelRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {
  options_.io_threads = std::max(1, options_.io_threads);
  options_.reactor_threads = std::max(1, options_.reactor_threads);
  options_.max_connections = std::max(1, options_.max_connections);
  options_.backlog = std::max(1, options_.backlog);
  options_.max_line_bytes = std::max(1024, options_.max_line_bytes);
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  const std::vector<std::string> names = registry_->Names();
  if (names.empty()) {
    return Status::FailedPrecondition("registry has no models to serve");
  }
  for (const std::string& name : names) {
    std::shared_ptr<const LoadedDetector> detector = registry_->Get(name);
    if (detector == nullptr) continue;  // unloaded between Names() and here
    auto entry = std::make_unique<ModelEntry>();
    entry->name = name;
    entry->current = std::make_shared<ServingModel>();
    entry->current->detector = std::move(detector);
    entry->current->batcher = std::make_unique<MicroBatcher>(
        *entry->current->detector, options_.batcher);
    models_.emplace(name, std::move(entry));
  }
  if (models_.empty()) {
    return Status::FailedPrecondition("registry has no models to serve");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind " + options_.host + ":" +
                            std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  if (options_.mode == ServeMode::kReactor) {
    ReactorOptions reactor_options;
    reactor_options.threads = options_.reactor_threads;
    reactor_options.max_connections = options_.max_connections;
    reactor_options.max_line_bytes = options_.max_line_bytes;
    reactor_options.max_output_backlog = options_.max_output_backlog;
    reactor_options.drain_timeout_ms = options_.drain_timeout_ms;
    reactor_options.overload_line =
        ErrorResponse("", Status::Overloaded("connection limit reached"));
    reactor_options.oversize_line =
        ErrorResponse("", Status::InvalidArgument("request line too long"));
    reactor_ = std::make_unique<Reactor>(this, reactor_options);
    const Status status = reactor_->Start(listen_fd_);
    if (!status.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      reactor_.reset();
      return status;
    }
    // The reactor owns the listener from here (closes it on Shutdown).
  } else {
    pool_ = std::make_unique<ThreadPool>(options_.io_threads);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }
  started_ = true;
  BIRNN_LOG(Info) << "serve: listening on " << options_.host << ":" << port_
                  << " (" << models_.size() << " model(s), "
                  << (options_.mode == ServeMode::kReactor
                          ? std::to_string(options_.reactor_threads) +
                                " reactor loop(s)"
                          : std::to_string(options_.io_threads) +
                                " io thread(s)")
                  << ", " << std::max(1, options_.batcher.replicas)
                  << " replica(s)/model)";
  return Status::OK();
}

void Server::Shutdown() {
  // Serialize concurrent Shutdown() calls; the loser waits for the full
  // drain instead of returning early.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || shutting_down_) return;
    shutting_down_ = true;
  }

  if (reactor_ != nullptr) {
    // Drain: stop accepting and reading, flush every response for already-
    // admitted requests (which waits out the batcher callbacks), close.
    reactor_->Shutdown();
    listen_fd_ = -1;  // the reactor closed it
  } else {
    // 1. Stop accepting: closing the listener makes accept() fail and the
    //    accept thread exit.
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (accept_thread_.joinable()) accept_thread_.join();

    // 2. Wake handlers blocked in read(): half-close every open connection
    //    so their next read returns EOF. Responses already being written
    //    still flush (write side stays open).
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const int fd : open_connections_) ::shutdown(fd, SHUT_RD);
    }

    // 3. Let every handler finish answering what it already read.
    if (pool_ != nullptr) pool_->Wait();
  }

  // 4. Drain the batchers: every admitted request is answered before Stop
  //    returns. Taking admin_mu first waits out any in-flight reload.
  for (auto& [name, entry] : models_) {
    std::lock_guard<std::mutex> admin(entry->admin_mu);
    std::shared_ptr<ServingModel> current;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      current = entry->current;
    }
    current->batcher->Stop();
  }
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // A connection that died between SYN and accept() is the peer's
      // failure, not the listener's — never let it kill the accept loop.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // fd/memory exhaustion: back off instead of spinning; pending
        // connections wait in the listen backlog.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listener closed — shutting down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutting_down_) {
        ::close(fd);
        return;
      }
      open_connections_.insert(fd);
    }
    OBS_COUNTER_ADD("serve/connections", 1);
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (buffer.size() > static_cast<size_t>(options_.max_line_bytes)) {
        WriteResponseLine(fd, ErrorResponse("", Status::InvalidArgument(
                                                    "request line too long")));
        break;
      }
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // peer closed, error, or drain half-close
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }

    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank keep-alive lines are fine

    StatusOr<Request> request = ParseRequest(line);
    std::string response;
    if (!request.ok()) {
      response = ErrorResponse("", request.status());
    } else if (request->op == "quit") {
      break;
    } else {
      response = HandleRequest(*request);
    }
    alive = WriteResponseLine(fd, response);
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  open_connections_.erase(fd);
}

void Server::OnLine(const Reactor::ConnRef& conn, uint64_t seq,
                    std::string line) {
  StatusOr<Request> request = ParseRequest(line);
  if (!request.ok()) {
    reactor_->Respond(conn, seq, ErrorResponse("", request.status()));
    return;
  }
  if (request->op == "quit") {
    // No response bytes; the empty line advances the sequence and the
    // close flag tears the connection down once earlier responses flush.
    reactor_->Respond(conn, seq, "", /*close_after=*/true);
    return;
  }
  if (request->op != "detect") {
    // ping/models/stats/reload/rollback are answered synchronously (reload
    // is a rare admin op; it briefly stalls this loop's connections but
    // drains through the batcher threads, so it cannot deadlock).
    reactor_->Respond(conn, seq, HandleRequest(*request));
    return;
  }

  // Async detect: acquire the model (pinning it across any concurrent
  // reload), enqueue into its batcher, answer from the batcher callback.
  OBS_SPAN("serve/request");
  OBS_COUNTER_ADD("serve/requests", 1);
  std::string resolved;
  std::shared_ptr<ServingModel> sm = AcquireModel(request->model, &resolved);
  if (sm == nullptr) {
    const std::string why =
        request->model.empty()
            ? "no \"model\" given and more than one model is hosted"
            : "unknown model: " + request->model;
    reactor_->Respond(conn, seq,
                      ErrorResponse(request->id, Status::NotFound(why)));
    return;
  }
  std::string id = request->id;
  sm->batcher->Submit(
      request->cells,
      [this, conn, seq, id = std::move(id), sm](
          const Status& status, const std::vector<CellVerdict>& verdicts) {
        std::string response = status.ok() ? OkDetectResponse(id, verdicts)
                                           : ErrorResponse(id, status);
        reactor_->Respond(conn, seq, std::move(response));
        // Release *after* Respond: once a reload's drain-wait returns, every
        // old-model response has been handed to the reactor.
        ReleaseModel(sm);
      });
}

Server::ModelEntry* Server::ResolveEntry(const std::string& model,
                                         std::string* resolved) {
  // models_ has a fixed key set after Start(), so lookups need no lock.
  if (model.empty()) {
    if (models_.size() != 1) return nullptr;
    *resolved = models_.begin()->first;
    return models_.begin()->second.get();
  }
  const auto it = models_.find(model);
  if (it == models_.end()) return nullptr;
  *resolved = it->first;
  return it->second.get();
}

std::shared_ptr<Server::ServingModel> Server::AcquireModel(
    const std::string& model, std::string* resolved) {
  ModelEntry* entry = ResolveEntry(model, resolved);
  if (entry == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(entry->mu);
  std::shared_ptr<ServingModel> sm = entry->current;
  sm->active.fetch_add(1, std::memory_order_acq_rel);
  return sm;
}

void Server::ReleaseModel(const std::shared_ptr<ServingModel>& sm) {
  if (sm->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last user out — a reload drain may be waiting on exactly this.
    { std::lock_guard<std::mutex> lock(sm->drain_mu); }
    sm->drain_cv.notify_all();
  }
}

Status Server::SwapIn(ModelEntry* entry, std::shared_ptr<ServingModel> next) {
  std::shared_ptr<ServingModel> old;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    old = std::move(entry->current);
    entry->current = next;
    entry->previous = old->detector;
    ++entry->generation;
  }
  // From here every new acquire sees the new model. Mirror it into the
  // registry so out-of-band Get() callers agree with the serve plane.
  registry_->Put(entry->name, next->detector);

  // Drain: wait until every request that acquired the old model has been
  // answered (responses handed to the transport), then stop its batcher.
  // active is monotonically nonincreasing now — old is unreachable.
  {
    std::unique_lock<std::mutex> lock(old->drain_mu);
    old->drain_cv.wait(lock, [&] {
      return old->active.load(std::memory_order_acquire) == 0;
    });
  }
  old->batcher->Stop();
  return Status::OK();
}

Status Server::ReloadModel(const std::string& name, const std::string& dir) {
  std::string resolved;
  ModelEntry* entry = ResolveEntry(name, &resolved);
  if (entry == nullptr) {
    return Status::NotFound(name.empty() ? "no single model to reload"
                                         : "unknown model: " + name);
  }
  std::lock_guard<std::mutex> admin(entry->admin_mu);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      return Status::FailedPrecondition("server shutting down");
    }
  }
  BIRNN_ASSIGN_OR_RETURN(LoadedDetector detector, LoadDetectorBundle(dir));
  auto next = std::make_shared<ServingModel>();
  next->detector =
      std::make_shared<const LoadedDetector>(std::move(detector));
  next->batcher =
      std::make_unique<MicroBatcher>(*next->detector, options_.batcher);
  BIRNN_RETURN_IF_ERROR(SwapIn(entry, std::move(next)));
  BIRNN_LOG(Info) << "serve: reloaded model \"" << resolved << "\" from "
                  << dir << " (generation " << ModelGeneration(resolved)
                  << ")";
  return Status::OK();
}

Status Server::RollbackModel(const std::string& name) {
  std::string resolved;
  ModelEntry* entry = ResolveEntry(name, &resolved);
  if (entry == nullptr) {
    return Status::NotFound(name.empty() ? "no single model to roll back"
                                         : "unknown model: " + name);
  }
  std::lock_guard<std::mutex> admin(entry->admin_mu);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      return Status::FailedPrecondition("server shutting down");
    }
  }
  std::shared_ptr<const LoadedDetector> previous;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    previous = entry->previous;
  }
  if (previous == nullptr) {
    return Status::FailedPrecondition(
        "no previously-served bundle to roll back to");
  }
  auto next = std::make_shared<ServingModel>();
  next->detector = std::move(previous);
  next->batcher =
      std::make_unique<MicroBatcher>(*next->detector, options_.batcher);
  BIRNN_RETURN_IF_ERROR(SwapIn(entry, std::move(next)));
  BIRNN_LOG(Info) << "serve: rolled back model \"" << resolved
                  << "\" (generation " << ModelGeneration(resolved) << ")";
  return Status::OK();
}

int64_t Server::ModelGeneration(const std::string& name) const {
  const auto it = models_.find(name);
  if (it == models_.end()) return 0;
  std::lock_guard<std::mutex> lock(it->second->mu);
  return it->second->generation;
}

std::string Server::HandleRequest(const Request& request) {
  OBS_SPAN("serve/request");
  OBS_COUNTER_ADD("serve/requests", 1);
  if (request.op == "ping") return PongResponse(request.id);
  if (request.op == "models") {
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const auto& [name, entry] : models_) names.push_back(name);
    return ModelsResponse(request.id, names);
  }

  std::string resolved;
  if (request.op == "reload" || request.op == "rollback") {
    if (request.op == "reload" && request.dir.empty()) {
      return ErrorResponse(
          request.id,
          Status::InvalidArgument("reload request needs a \"dir\""));
    }
    const Status status = request.op == "reload"
                              ? ReloadModel(request.model, request.dir)
                              : RollbackModel(request.model);
    if (!status.ok()) return ErrorResponse(request.id, status);
    ResolveEntry(request.model, &resolved);
    return ReloadResponse(request.id, resolved, ModelGeneration(resolved));
  }
  if (request.op == "adapt") return HandleAdapt(request);

  std::shared_ptr<ServingModel> sm = AcquireModel(request.model, &resolved);
  if (sm == nullptr) {
    const std::string why =
        request.model.empty()
            ? "no \"model\" given and more than one model is hosted"
            : "unknown model: " + request.model;
    return ErrorResponse(request.id, Status::NotFound(why));
  }

  std::string response;
  if (request.op == "stats") {
    // Include the table-session counters when the model has streamed.
    stream::SessionStats stream_stats;
    bool has_session = false;
    {
      std::lock_guard<std::mutex> session_lock(sm->session_mu);
      if (sm->session != nullptr) {
        stream_stats = sm->session->stats();
        has_session = true;
      }
    }
    int64_t generation = 0;
    AdaptLineage lineage;
    {
      ModelEntry* entry = ResolveEntry(request.model, &resolved);
      std::lock_guard<std::mutex> lock(entry->mu);
      generation = entry->generation;
      lineage = entry->adapt;
    }
    response = StatsResponse(request.id, resolved, sm->batcher->stats(),
                             generation,
                             has_session ? &stream_stats : nullptr, &lineage);
  } else if (request.op == "delta") {
    response = HandleDelta(request, sm);
  } else {
    std::vector<CellVerdict> verdicts;
    const Status status = sm->batcher->Detect(request.cells, &verdicts);
    response = status.ok() ? OkDetectResponse(request.id, verdicts)
                           : ErrorResponse(request.id, status);
  }
  ReleaseModel(sm);
  return response;
}

std::string Server::HandleDelta(const Request& request,
                                const std::shared_ptr<ServingModel>& sm) {
  OBS_SPAN("serve/delta");
  OBS_COUNTER_ADD("serve/deltas", static_cast<int64_t>(request.deltas.size()));
  stream::TableSession* session = nullptr;
  {
    std::lock_guard<std::mutex> session_lock(sm->session_mu);
    if (sm->session == nullptr) {
      auto created = stream::TableSession::Create(sm->detector,
                                                  options_.stream_session);
      if (!created.ok()) return ErrorResponse(request.id, created.status());
      sm->session = std::move(*created);
    }
    session = sm->session.get();
  }
  // The session is internally synchronized; deltas of one request apply in
  // order, interleaving atomically with other connections' deltas.
  std::vector<DeltaCellVerdict> verdicts;
  std::vector<std::pair<int, stream::CellVerdict>> affected;
  int64_t applied = 0;
  for (const stream::Delta& delta : request.deltas) {
    const Status status = session->Apply(delta, &affected);
    if (!status.ok()) {
      return ErrorResponse(
          request.id,
          Status(status.code(), status.message() + " (after " +
                                    std::to_string(applied) +
                                    " applied delta(s))"));
    }
    ++applied;
    for (const auto& [attr, verdict] : affected) {
      DeltaCellVerdict v;
      v.row_id = delta.row_id;
      v.attr = attr;
      v.verdict = verdict;
      verdicts.push_back(v);
    }
  }
  return DeltaResponse(request.id, applied, verdicts,
                       session->stats().drift_alarms);
}

namespace {

/// Wraps an "adapt" request's explicit label list into a LabelFn; cells
/// without an entry report -1 (fall back to their stored verdicts).
adapt::LabelFn MakeLabelOracle(const std::vector<AdaptLabel>& labels) {
  if (labels.empty()) return nullptr;
  auto map = std::make_shared<std::map<std::pair<int64_t, int>, int>>();
  for (const AdaptLabel& label : labels) {
    (*map)[{label.row_id, label.attr}] = label.label;
  }
  return [map](int64_t row_id, int attr) {
    const auto it = map->find({row_id, attr});
    return it == map->end() ? -1 : it->second;
  };
}

}  // namespace

std::string Server::HandleAdapt(const Request& request) {
  OBS_SPAN("serve/adapt");
  std::string resolved;
  ModelEntry* entry = ResolveEntry(request.model, &resolved);
  if (entry == nullptr) {
    const std::string why =
        request.model.empty()
            ? "no \"model\" given and more than one model is hosted"
            : "unknown model: " + request.model;
    return ErrorResponse(request.id, Status::NotFound(why));
  }
  // Adaptation is an admin op: admin_mu serializes it against
  // reload/rollback/shutdown and pins entry->current, so no refcount is
  // taken here — taking one would deadlock our own promotion drain.
  std::lock_guard<std::mutex> admin(entry->admin_mu);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      return ErrorResponse(request.id,
                           Status::FailedPrecondition("server shutting down"));
    }
  }
  std::shared_ptr<ServingModel> sm;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    sm = entry->current;
  }
  stream::TableSession* session = nullptr;
  {
    std::lock_guard<std::mutex> session_lock(sm->session_mu);
    session = sm->session.get();
  }
  if (session == nullptr) {
    return ErrorResponse(
        request.id, Status::FailedPrecondition(
                        "no table session: stream \"delta\" records first so "
                        "the reservoir has tuples to adapt on"));
  }

  adapt::ControllerOptions copts = options_.adapt;
  if (request.adapt_bn_only >= 0) copts.bn_only = request.adapt_bn_only != 0;
  // Candidate bundles land in a per-attempt directory so a promotion never
  // overwrites the bundle a previous generation was loaded from.
  static std::atomic<uint64_t> adapt_counter{0};
  const std::string attempt_tag =
      resolved + "-adapt-" + std::to_string(::getpid()) + "-" +
      std::to_string(adapt_counter.fetch_add(1) + 1);
  const std::filesystem::path base =
      options_.adapt_bundle_dir.empty()
          ? std::filesystem::temp_directory_path()
          : std::filesystem::path(options_.adapt_bundle_dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec) {
    return ErrorResponse(
        request.id, Status::Internal("cannot create adapt bundle dir " +
                                     base.string() + ": " + ec.message()));
  }
  copts.candidate_dir = (base / attempt_tag).string();

  adapt::Controller controller(sm->detector, copts);
  StatusOr<adapt::AdaptReport> report = controller.TriggerAdaptation(
      session, MakeLabelOracle(request.labels),
      request.has_gate_labels ? MakeLabelOracle(request.gate_labels)
                              : adapt::LabelFn());
  if (!report.ok()) return ErrorResponse(request.id, report.status());

  if (report->outcome == adapt::AdaptOutcome::kPromoted) {
    // Promote through the reload path: load the saved candidate bundle
    // back (so serving always runs exactly what was persisted) and swap it
    // in with the standard drain — zero dropped in-flight requests. The
    // fresh ServingModel starts with no table session: the streamed table
    // and its drift baselines re-arm under the new generation.
    StatusOr<LoadedDetector> loaded = LoadDetectorBundle(report->candidate_dir);
    if (!loaded.ok()) return ErrorResponse(request.id, loaded.status());
    auto next = std::make_shared<ServingModel>();
    next->detector =
        std::make_shared<const LoadedDetector>(std::move(*loaded));
    next->batcher =
        std::make_unique<MicroBatcher>(*next->detector, options_.batcher);
    const Status status = SwapIn(entry, std::move(next));
    if (!status.ok()) return ErrorResponse(request.id, status);
  }

  AdaptResponseFields fields;
  fields.outcome = adapt::AdaptOutcomeName(report->outcome);
  fields.promoted = report->outcome == adapt::AdaptOutcome::kPromoted;
  fields.incumbent_f1 = report->incumbent_f1;
  fields.candidate_f1 = report->candidate_f1;
  fields.train_cells = report->train_cells;
  fields.validation_cells = report->validation_cells;
  fields.reservoir_rows = report->reservoir_rows;
  fields.deterministic_eval = report->deterministic_eval;
  fields.reason = report->reason;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (report->outcome != adapt::AdaptOutcome::kSkipped) {
      ++entry->adapt.attempts;
    }
    if (report->outcome == adapt::AdaptOutcome::kPromoted) {
      ++entry->adapt.promotions;
    } else if (report->outcome == adapt::AdaptOutcome::kRejected) {
      ++entry->adapt.rejections;
    }
    fields.generation = entry->generation;
  }
  if (fields.promoted) {
    BIRNN_LOG(Info) << "serve: adapted model \"" << resolved
                    << "\" promoted (generation " << fields.generation
                    << ", F1 " << fields.incumbent_f1 << " -> "
                    << fields.candidate_f1 << ", bundle "
                    << report->candidate_dir << ")";
  }
  return AdaptResponse(request.id, resolved, fields);
}

StatusOr<BatcherStats> Server::ModelStats(const std::string& name) const {
  const auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("unknown model: " + name);
  }
  std::shared_ptr<ServingModel> sm;
  {
    std::lock_guard<std::mutex> lock(it->second->mu);
    sm = it->second->current;
  }
  return sm->batcher->stats();
}

}  // namespace birnn::serve
