#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/obs.h"
#include "serve/protocol.h"
#include "util/logging.h"

namespace birnn::serve {

namespace {

// write() until the whole buffer is out; false on a broken connection.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool WriteLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  return WriteAll(fd, framed.data(), framed.size());
}

}  // namespace

Server::Server(const ModelRegistry* registry, ServerOptions options)
    : registry_(registry), options_(options) {
  options_.io_threads = std::max(1, options_.io_threads);
  options_.backlog = std::max(1, options_.backlog);
  options_.max_line_bytes = std::max(1024, options_.max_line_bytes);
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  const std::vector<std::string> names = registry_->Names();
  if (names.empty()) {
    return Status::FailedPrecondition("registry has no models to serve");
  }
  for (const std::string& name : names) {
    std::shared_ptr<const LoadedDetector> detector = registry_->Get(name);
    if (detector == nullptr) continue;  // unloaded between Names() and here
    auto batcher =
        std::make_unique<MicroBatcher>(*detector, options_.batcher);
    batchers_.emplace(name,
                      std::make_pair(std::move(detector), std::move(batcher)));
  }
  if (batchers_.empty()) {
    return Status::FailedPrecondition("registry has no models to serve");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind " + options_.host + ":" +
                            std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  pool_ = std::make_unique<ThreadPool>(options_.io_threads);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  BIRNN_LOG(Info) << "serve: listening on " << options_.host << ":" << port_
                  << " (" << batchers_.size() << " model(s), "
                  << options_.io_threads << " io thread(s))";
  return Status::OK();
}

void Server::Shutdown() {
  // Serialize concurrent Shutdown() calls; the loser waits for the full
  // drain instead of returning early.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || shutting_down_) return;
    shutting_down_ = true;
  }

  // 1. Stop accepting: closing the listener makes accept() fail and the
  //    accept thread exit.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Wake handlers blocked in read(): half-close every open connection so
  //    their next read returns EOF. Responses already being written still
  //    flush (write side stays open).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : open_connections_) ::shutdown(fd, SHUT_RD);
  }

  // 3. Let every handler finish answering what it already read.
  if (pool_ != nullptr) pool_->Wait();

  // 4. Drain the batchers: every admitted request is answered before Stop
  //    returns.
  for (auto& [name, entry] : batchers_) entry.second->Stop();
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed — shutting down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutting_down_) {
        ::close(fd);
        return;
      }
      open_connections_.insert(fd);
    }
    OBS_COUNTER_ADD("serve/connections", 1);
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (buffer.size() > static_cast<size_t>(options_.max_line_bytes)) {
        WriteLine(fd, ErrorResponse(
                          "", Status::InvalidArgument("request line too long")));
        break;
      }
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // peer closed, error, or drain half-close
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }

    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank keep-alive lines are fine

    StatusOr<Request> request = ParseRequest(line);
    std::string response;
    if (!request.ok()) {
      response = ErrorResponse("", request.status());
    } else if (request->op == "quit") {
      break;
    } else {
      response = HandleRequest(*request);
    }
    alive = WriteLine(fd, response);
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mutex_);
  open_connections_.erase(fd);
}

MicroBatcher* Server::FindBatcher(const std::string& model,
                                  std::string* resolved) {
  // batchers_ is immutable after Start(), so reads need no lock.
  if (model.empty()) {
    if (batchers_.size() == 1) {
      *resolved = batchers_.begin()->first;
      return batchers_.begin()->second.second.get();
    }
    return nullptr;
  }
  const auto it = batchers_.find(model);
  if (it == batchers_.end()) return nullptr;
  *resolved = it->first;
  return it->second.second.get();
}

std::string Server::HandleRequest(const Request& request) {
  OBS_SPAN("serve/request");
  OBS_COUNTER_ADD("serve/requests", 1);
  if (request.op == "ping") return PongResponse(request.id);
  if (request.op == "models") {
    std::vector<std::string> names;
    names.reserve(batchers_.size());
    for (const auto& [name, entry] : batchers_) names.push_back(name);
    return ModelsResponse(request.id, names);
  }

  std::string resolved;
  MicroBatcher* batcher = FindBatcher(request.model, &resolved);
  if (batcher == nullptr) {
    const std::string why =
        request.model.empty()
            ? "no \"model\" given and more than one model is hosted"
            : "unknown model: " + request.model;
    return ErrorResponse(request.id, Status::NotFound(why));
  }

  if (request.op == "stats") {
    return StatsResponse(request.id, resolved, batcher->stats());
  }

  std::vector<CellVerdict> verdicts;
  const Status status = batcher->Detect(request.cells, &verdicts);
  if (!status.ok()) return ErrorResponse(request.id, status);
  return OkDetectResponse(request.id, verdicts);
}

StatusOr<BatcherStats> Server::ModelStats(const std::string& name) const {
  const auto it = batchers_.find(name);
  if (it == batchers_.end()) {
    return Status::NotFound("unknown model: " + name);
  }
  return it->second.second->stats();
}

}  // namespace birnn::serve
