#ifndef BIRNN_SERVE_BATCHER_H_
#define BIRNN_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/inference.h"
#include "obs/registry.h"
#include "serve/bundle.h"
#include "serve/memo.h"
#include "util/status.h"

namespace birnn::serve {

/// Dynamic micro-batching policy.
struct BatcherOptions {
  /// Dispatch as soon as this many cells are pending...
  int max_batch = 64;
  /// ...or once the oldest pending request has waited this long.
  int max_delay_us = 2000;
  /// Admission bound (in cells) on the pending queue. A request that would
  /// push the queue past this is shed immediately with OVERLOADED instead
  /// of queuing without bound; a request larger than the capacity can never
  /// be admitted.
  int queue_capacity = 1024;
  /// Length-bucketed inference for the coalesced batches (bit-identical
  /// either way; see core::InferenceOptions::bucketed).
  bool bucketed = false;
  /// Kernel precision for the served sweeps (see
  /// core::InferenceOptions::precision). Quantized shadow weights come
  /// free with a v2 bundle; otherwise the first batch prepares them.
  nn::Precision precision = nn::Precision::kFp32;
  /// Engine replicas: dispatcher threads pulling from the shared admission
  /// queue, each owning a private InferenceEngine over the same weights.
  /// One replica reproduces the classic single-dispatcher batcher; more
  /// replicas overlap forward batches on multicore hosts. Verdicts are
  /// bit-identical at any replica count (batch-composition independence,
  /// core/inference.h), though response *order* across concurrent requests
  /// is scheduling-dependent, as it already was.
  int replicas = 1;
  /// Entry bound of the cross-request verdict memo shared by the replicas
  /// (see serve/memo.h); 0 disables it. Exact — cached verdicts are a pure
  /// function of cell content under fixed weights.
  int64_t memo_capacity = 1 << 18;
  /// Byte budget of the shared memo (tables + packed content arena +
  /// bloom); 0 = bounded by `memo_capacity` alone. Overflowing shards are
  /// sealed — spilled to disk when `memo_spill_dir` is set, dropped
  /// otherwise — so resident memo memory never exceeds the budget.
  int64_t memo_budget_bytes = 0;
  /// Non-empty: sealed memo shards become checksummed on-disk segments
  /// under this directory (still probe-hits, ~zero resident cost) instead
  /// of being dropped. The directory is created on first spill; segment
  /// files are removed when the batcher dies.
  std::string memo_spill_dir;
};

/// Verdict for one queried cell.
struct CellVerdict {
  float p_error = 0.0f;
  bool is_error = false;
};

/// Snapshot of one batcher's lifetime accounting. Backed by obs metrics
/// owned by the batcher (`serve/batcher/*` on the global registry), so a
/// registry scrape sees the process-wide aggregate while stats() stays
/// exact per instance.
struct BatcherStats {
  int64_t requests = 0;        ///< admitted requests.
  int64_t cells = 0;           ///< admitted cells.
  int64_t shed_requests = 0;   ///< refused with OVERLOADED.
  int64_t shed_cells = 0;
  int64_t rejected_requests = 0;  ///< invalid (bad attribute) or post-stop.
  int64_t batches = 0;         ///< forward batches dispatched.
  int64_t max_batch_cells = 0; ///< largest coalesced batch.
  double batch_seconds = 0.0;  ///< wall clock inside the inference engine.
  int64_t memo_hits = 0;       ///< cells answered from the shared memo.
  int64_t memo_entries = 0;    ///< current shared-memo population.
  int64_t memo_bytes = 0;      ///< resident memo bytes (tables+arena+bloom).
  int64_t memo_bloom_fp = 0;   ///< bloom false positives (wasted probes).
  int64_t memo_spilled_segments = 0;  ///< live on-disk memo segments.
  int64_t memo_evictions = 0;  ///< shard seals that dropped entries.
};

/// Coalesces concurrent detection requests into padded batches through
/// core::InferenceEngine replicas. Each of `options.replicas` dispatcher
/// threads owns a private engine and pulls coalesced batches from the
/// shared admission queue; callers enqueue encoded cells and are answered
/// via callback once their batch completes. A shared VerdictMemo answers
/// repeated cell contents across requests without touching any engine.
///
/// Because the engine's forward path is batch-composition independent
/// (row-independent kernels, register-width row padding, content-keyed
/// memoization — see core/inference.h), the verdicts are bit-identical to
/// running each request alone, no matter how requests interleave or what
/// max_batch / max_delay_us window is configured. The batching changes
/// throughput, never answers.
///
/// Backpressure: the pending queue is bounded by `queue_capacity` cells;
/// requests beyond it are refused immediately with Status::Overloaded (the
/// callback runs inline on the submitting thread). Stop() admits nothing
/// new but answers every already-admitted request before returning.
class MicroBatcher {
 public:
  /// Answers one request: `verdicts` has one entry per submitted cell when
  /// `status` is OK, and is empty otherwise. Runs on the dispatcher thread
  /// (or inline on the submitting thread for shed/rejected requests); keep
  /// it cheap and never call back into the batcher from it.
  using ResultCallback =
      std::function<void(const Status& status,
                         const std::vector<CellVerdict>& verdicts)>;

  /// `detector` must outlive the batcher.
  MicroBatcher(const LoadedDetector& detector, BatcherOptions options = {});
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Encodes and enqueues one request. The callback always fires exactly
  /// once: OK with per-cell verdicts, InvalidArgument for an unresolvable
  /// attribute, Overloaded when shed, FailedPrecondition after Stop().
  void Submit(const std::vector<CellQuery>& cells, ResultCallback callback);

  /// Blocking convenience wrapper around Submit for synchronous callers
  /// (the server's connection handlers).
  Status Detect(const std::vector<CellQuery>& cells,
                std::vector<CellVerdict>* verdicts);

  /// Graceful drain: stops admitting, answers every admitted request, then
  /// joins the dispatcher. Idempotent; also run by the destructor.
  void Stop();

  BatcherStats stats() const;
  const BatcherOptions& options() const { return options_; }

 private:
  struct Pending {
    data::EncodedDataset encoded;
    ResultCallback callback;
    std::chrono::steady_clock::time_point arrival;
  };

  void DispatchLoop();

  const LoadedDetector& detector_;
  BatcherOptions options_;
  VerdictMemo memo_;

  mutable std::mutex mutex_;
  std::condition_variable wake_dispatcher_;
  std::deque<Pending> pending_;
  int64_t pending_cells_ = 0;
  bool stopping_ = false;

  // Per-instance metrics (also aggregated on registry scrapes). The
  // batch_cells_ histogram doubles as the batches/max_batch_cells source;
  // request_seconds_ is admission-to-response latency.
  obs::Counter requests_{"serve/batcher/requests"};
  obs::Counter cells_{"serve/batcher/cells"};
  obs::Counter shed_requests_{"serve/batcher/shed_requests"};
  obs::Counter shed_cells_{"serve/batcher/shed_cells"};
  obs::Counter rejected_requests_{"serve/batcher/rejected_requests"};
  obs::Histogram batch_cells_{"serve/batcher/batch_cells"};
  obs::Histogram batch_seconds_{"serve/batcher/batch_seconds"};
  obs::Histogram request_seconds_{"serve/batcher/request_seconds"};
  obs::Gauge queue_cells_{"serve/batcher/queue_cells"};
  obs::Counter memo_hits_{"serve/batcher/memo_hits"};

  std::mutex join_mutex_;  ///< serializes concurrent Stop() calls.
  std::vector<std::thread> dispatchers_;
};

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_BATCHER_H_
