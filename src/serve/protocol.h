#ifndef BIRNN_SERVE_PROTOCOL_H_
#define BIRNN_SERVE_PROTOCOL_H_

#include <string>
#include <vector>

#include "serve/batcher.h"
#include "serve/bundle.h"
#include "stream/session.h"
#include "util/status.h"

namespace birnn::serve {

/// The wire format is one JSON object per line in each direction.
///
/// Request:
///   {"id": "r1", "op": "detect", "model": "beers",
///    "cells": [{"attr": "city", "value": "Chicago"},
///              {"attr": 3, "value": "60614"}]}
///   - "op" defaults to "detect"; other ops: "ping", "models", "stats",
///     "quit" (asks the server to close this connection, no response),
///     "reload" (hot-swap the model from the bundle at "dir"), "rollback"
///     (swap back to the previously-served bundle), "delta" (stream CDC
///     records into the model's table session), "adapt" (fine-tune on the
///     session's reservoir and auto-promote through the reload path).
///   - "model" may be omitted when the server hosts exactly one model.
///   - "attr" is an attribute name (string) or index (number).
///   - "id" is echoed verbatim in the response (any string; optional).
///   - "dir" is the bundle directory for "reload"; ignored otherwise.
///
/// Delta request (op "delta"; requires a stream-capable v3 bundle, else the
/// response is a typed UNSUPPORTED_BUNDLE error):
///   {"op": "delta", "model": "beers", "deltas": [
///     {"kind": "insert", "row": 41, "values": ["Pale Ale", "Chicago"]},
///     {"kind": "update", "row": 41, "attr": 1, "value": "Evanston"},
///     {"kind": "delete", "row": 40}]}
///   - "kind" is "insert" (full tuple in "values", one string per
///     attribute), "update" (numeric "attr" + string "value") or "delete".
///   - "attr" is numeric for deltas: CDC feeds address columns by index.
///   - Deltas apply in order; the first failing delta aborts the rest and
///     the response reports the error (earlier deltas stay applied).
///   Response: {"id":..., "status":"OK", "applied":3, "verdicts":[
///     {"row":41, "attr":0, "p_error":0.93, "error":true, "version":7},
///     ...], "drift_alarms":0}
///   with one verdict per re-scored cell (the whole tuple for an insert,
///   one cell for an update, none for a delete).
///
/// Adapt request (op "adapt"; requires a live table session — stream some
/// deltas first so the reservoir has tuples to fine-tune on):
///   {"op": "adapt", "model": "beers",
///    "labels": [{"row": 41, "attr": 0, "label": 1}, ...],
///    "gate_labels": [...], "bn_only": false}
///   - "labels" (optional) supervises the fine-tune sample; cells without
///     an entry fall back to their stored verdicts (self-training).
///   - "gate_labels" (optional) supervises only the held-back validation
///     slice — a trusted label source for the promotion gate; defaults to
///     "labels".
///   - "bn_only" (optional) overrides the server's configured mode:
///     true = batch-norm recalibration only, no gradient steps.
///   Response: {"id":..., "status":"OK", "model":"beers",
///     "outcome":"promoted"|"rejected"|"skipped", "promoted":true,
///     "generation":2, "incumbent_f1":..., "candidate_f1":...,
///     "train_cells":..., "validation_cells":..., "reservoir_rows":...,
///     "deterministic_eval":true, "reason":""}
///   A promoted candidate is saved as a bundle and hot-swapped through the
///   reload path (zero dropped in-flight requests); "generation" is the
///   bundle generation now serving. A rejected candidate leaves serving
///   untouched.
///
/// Response:
///   {"id": "r1", "status": "OK",
///    "results": [{"p_error": 0.93204946, "error": true}, ...]}
///   {"id": "r2", "status": "OVERLOADED", "message": "admission queue full"}
///   - "status" is "OK" or a SCREAMING_SNAKE status code; non-OK responses
///     carry a "message" and no "results". p_error is printed with
///     max_digits10 so the float survives the wire bit-exactly.
/// One supervised cell of an "adapt" request.
struct AdaptLabel {
  int64_t row_id = 0;
  int attr = 0;
  int label = 0;  ///< 0 = clean, 1 = error.
};

struct Request {
  std::string id;
  std::string op = "detect";
  std::string model;
  std::string dir;  ///< bundle directory ("reload" only).
  std::vector<CellQuery> cells;
  std::vector<stream::Delta> deltas;  ///< "delta" only.
  std::vector<AdaptLabel> labels;       ///< "adapt" only (fine-tune).
  std::vector<AdaptLabel> gate_labels;  ///< "adapt" only (gate).
  bool has_gate_labels = false;  ///< "gate_labels" key present.
  int adapt_bn_only = -1;  ///< "adapt" only: -1 server default, else 0/1.
};

/// Parses one request line. A parse failure reports InvalidArgument; the
/// server answers it with a status line carrying a null id.
StatusOr<Request> ParseRequest(const std::string& line);

/// Protocol rendering of a status code: "OK", "OVERLOADED",
/// "INVALID_ARGUMENT", "NOT_FOUND", ...
std::string StatusCodeToProtocolString(StatusCode code);

/// Response lines (no trailing newline; the server appends it).
std::string OkDetectResponse(const std::string& id,
                             const std::vector<CellVerdict>& verdicts);
std::string ErrorResponse(const std::string& id, const Status& status);
std::string PongResponse(const std::string& id);
std::string ModelsResponse(const std::string& id,
                           const std::vector<std::string>& names);
/// Adaptation lineage counters for one served model, mirrored into the
/// `stats` response so operators can watch the promotion loop.
struct AdaptLineage {
  int64_t attempts = 0;
  int64_t promotions = 0;
  int64_t rejections = 0;
};

/// `stream_stats` (optional) appends the model's table-session counters
/// (deltas, re-scored cells, memo hits, drift alarms/resets, reservoir and
/// live rows); `adapt` (optional) appends the adaptation lineage.
std::string StatsResponse(const std::string& id, const std::string& model,
                          const BatcherStats& stats, int64_t generation = 0,
                          const stream::SessionStats* stream_stats = nullptr,
                          const AdaptLineage* adapt = nullptr);

/// One re-scored cell of a delta request.
struct DeltaCellVerdict {
  int64_t row_id = 0;
  int attr = 0;
  stream::CellVerdict verdict;
};

/// Acknowledges an applied delta batch: per-cell verdicts for every
/// re-scored cell plus the session's latched drift-alarm total.
std::string DeltaResponse(const std::string& id, int64_t applied,
                          const std::vector<DeltaCellVerdict>& verdicts,
                          int64_t drift_alarms);
/// Acknowledges a successful "reload" or "rollback": echoes the resolved
/// model name and the bundle generation now being served.
std::string ReloadResponse(const std::string& id, const std::string& model,
                           int64_t generation);

/// Acknowledges an "adapt" attempt. `outcome` is the
/// adapt::AdaptOutcomeName string; `generation` is the bundle generation
/// now serving (bumped by a promotion, unchanged otherwise).
struct AdaptResponseFields {
  std::string outcome;
  bool promoted = false;
  int64_t generation = 0;
  double incumbent_f1 = 0.0;
  double candidate_f1 = 0.0;
  int64_t train_cells = 0;
  int64_t validation_cells = 0;
  int64_t reservoir_rows = 0;
  bool deterministic_eval = false;
  std::string reason;
};
std::string AdaptResponse(const std::string& id, const std::string& model,
                          const AdaptResponseFields& fields);

/// write()s the whole buffer, retrying EINTR and short writes (a small
/// socket send buffer or a signal mid-write must never truncate a
/// response). False once the connection is broken.
bool SendAll(int fd, const char* data, size_t size);

/// SendAll of `line` + '\n' — one framed response on a blocking socket.
bool WriteResponseLine(int fd, const std::string& line);

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_PROTOCOL_H_
