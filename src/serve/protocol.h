#ifndef BIRNN_SERVE_PROTOCOL_H_
#define BIRNN_SERVE_PROTOCOL_H_

#include <string>
#include <vector>

#include "serve/batcher.h"
#include "serve/bundle.h"
#include "util/status.h"

namespace birnn::serve {

/// The wire format is one JSON object per line in each direction.
///
/// Request:
///   {"id": "r1", "op": "detect", "model": "beers",
///    "cells": [{"attr": "city", "value": "Chicago"},
///              {"attr": 3, "value": "60614"}]}
///   - "op" defaults to "detect"; other ops: "ping", "models", "stats",
///     "quit" (asks the server to close this connection, no response),
///     "reload" (hot-swap the model from the bundle at "dir"), "rollback"
///     (swap back to the previously-served bundle).
///   - "model" may be omitted when the server hosts exactly one model.
///   - "attr" is an attribute name (string) or index (number).
///   - "id" is echoed verbatim in the response (any string; optional).
///   - "dir" is the bundle directory for "reload"; ignored otherwise.
///
/// Response:
///   {"id": "r1", "status": "OK",
///    "results": [{"p_error": 0.93204946, "error": true}, ...]}
///   {"id": "r2", "status": "OVERLOADED", "message": "admission queue full"}
///   - "status" is "OK" or a SCREAMING_SNAKE status code; non-OK responses
///     carry a "message" and no "results". p_error is printed with
///     max_digits10 so the float survives the wire bit-exactly.
struct Request {
  std::string id;
  std::string op = "detect";
  std::string model;
  std::string dir;  ///< bundle directory ("reload" only).
  std::vector<CellQuery> cells;
};

/// Parses one request line. A parse failure reports InvalidArgument; the
/// server answers it with a status line carrying a null id.
StatusOr<Request> ParseRequest(const std::string& line);

/// Protocol rendering of a status code: "OK", "OVERLOADED",
/// "INVALID_ARGUMENT", "NOT_FOUND", ...
std::string StatusCodeToProtocolString(StatusCode code);

/// Response lines (no trailing newline; the server appends it).
std::string OkDetectResponse(const std::string& id,
                             const std::vector<CellVerdict>& verdicts);
std::string ErrorResponse(const std::string& id, const Status& status);
std::string PongResponse(const std::string& id);
std::string ModelsResponse(const std::string& id,
                           const std::vector<std::string>& names);
std::string StatsResponse(const std::string& id, const std::string& model,
                          const BatcherStats& stats,
                          int64_t generation = 0);
/// Acknowledges a successful "reload" or "rollback": echoes the resolved
/// model name and the bundle generation now being served.
std::string ReloadResponse(const std::string& id, const std::string& model,
                           int64_t generation);

/// write()s the whole buffer, retrying EINTR and short writes (a small
/// socket send buffer or a signal mid-write must never truncate a
/// response). False once the connection is broken.
bool SendAll(int fd, const char* data, size_t size);

/// SendAll of `line` + '\n' — one framed response on a blocking socket.
bool WriteResponseLine(int fd, const std::string& line);

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_PROTOCOL_H_
