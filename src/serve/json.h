#ifndef BIRNN_SERVE_JSON_H_
#define BIRNN_SERVE_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace birnn::serve {

/// Minimal JSON document model for the serve line protocol: objects,
/// arrays, strings (with \uXXXX escapes decoded as UTF-8), doubles, bools,
/// null. Parsing is strict RFC 8259 minus number edge pedantry; depth is
/// bounded so hostile input cannot blow the stack. This is deliberately a
/// tiny parser for one-line requests, not a general JSON library.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parses exactly one JSON value; trailing non-whitespace is an error.
  static StatusOr<JsonValue> Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience typed getters with defaults for optional members.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                       // arrays
  std::vector<std::pair<std::string, JsonValue>> members_;  // objects
};

/// Appends `s` to `out` as a quoted JSON string (escaping quotes,
/// backslashes and control characters).
void AppendJsonString(const std::string& s, std::string* out);

/// Renders a float with enough digits (max_digits10) that parsing the
/// decimal form recovers the exact bit pattern — the protocol's p_error
/// values survive the wire round trip.
std::string JsonFloat(float v);

}  // namespace birnn::serve

#endif  // BIRNN_SERVE_JSON_H_
