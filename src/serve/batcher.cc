#include "serve/batcher.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/obs.h"

namespace birnn::serve {

namespace {

core::InferenceOptions MakeEngineOptions(const BatcherOptions& options) {
  core::InferenceOptions engine_options;
  engine_options.eval_batch = std::max(1, options.max_batch);
  engine_options.threads = 0;  // the dispatcher thread runs the sweep
  engine_options.memoize = true;
  engine_options.bucketed = options.bucketed;
  engine_options.precision = options.precision;
  return engine_options;
}

core::ContentMemoOptions MakeMemoOptions(const LoadedDetector& detector,
                                         const BatcherOptions& options) {
  core::ContentMemoOptions memo_options;
  memo_options.capacity = std::max<int64_t>(0, options.memo_capacity);
  memo_options.budget_bytes = std::max<int64_t>(0, options.memo_budget_bytes);
  memo_options.spill = !options.memo_spill_dir.empty();
  memo_options.spill_dir = options.memo_spill_dir;
  // Pre-size from the bundle's training-table unique-cell count (when the
  // manifest carries it): serving the table the detector was trained on is
  // the common case, and starting at that population means the first sweep
  // never grows the tables through rehashes.
  memo_options.expected_entries =
      std::min<int64_t>(detector.expected_unique_cells(),
                        memo_options.capacity);
  return memo_options;
}

}  // namespace

MicroBatcher::MicroBatcher(const LoadedDetector& detector,
                           BatcherOptions options)
    : detector_(detector),
      options_(options),
      memo_(MakeMemoOptions(detector, options)) {
  options_.max_batch = std::max(1, options_.max_batch);
  options_.max_delay_us = std::max(0, options_.max_delay_us);
  options_.queue_capacity = std::max(1, options_.queue_capacity);
  options_.replicas = std::max(1, options_.replicas);
  dispatchers_.reserve(static_cast<size_t>(options_.replicas));
  for (int r = 0; r < options_.replicas; ++r) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Submit(const std::vector<CellQuery>& cells,
                          ResultCallback callback) {
  if (cells.empty()) {
    callback(Status::OK(), {});
    return;
  }
  StatusOr<data::EncodedDataset> encoded = detector_.EncodeQueries(cells);
  if (!encoded.ok()) {
    rejected_requests_.Add(1);
    callback(encoded.status(), {});
    return;
  }
  const int64_t n = encoded->num_cells();

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    lock.unlock();
    rejected_requests_.Add(1);
    callback(Status::FailedPrecondition("batcher stopped"), {});
    return;
  }
  if (pending_cells_ + n > options_.queue_capacity) {
    lock.unlock();
    shed_requests_.Add(1);
    shed_cells_.Add(n);
    callback(Status::Overloaded("admission queue full"), {});
    return;
  }
  // Count the admission before unlocking: once the dispatcher can see the
  // request, a client that receives its verdict and immediately asks for
  // stats must see it counted.
  requests_.Add(1);
  cells_.Add(n);
  queue_cells_.Add(static_cast<double>(n));
  pending_.push_back(Pending{std::move(*encoded), std::move(callback),
                             std::chrono::steady_clock::now()});
  pending_cells_ += n;
  lock.unlock();
  wake_dispatcher_.notify_all();
}

Status MicroBatcher::Detect(const std::vector<CellQuery>& cells,
                            std::vector<CellVerdict>* verdicts) {
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  Status result;
  Submit(cells, [&](const Status& status,
                    const std::vector<CellVerdict>& answer) {
    std::lock_guard<std::mutex> lock(done_mutex);
    result = status;
    *verdicts = answer;
    done = true;
    done_cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  return result;
}

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_dispatcher_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (std::thread& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
}

BatcherStats MicroBatcher::stats() const {
  BatcherStats stats;
  stats.requests = requests_.Value();
  stats.cells = cells_.Value();
  stats.shed_requests = shed_requests_.Value();
  stats.shed_cells = shed_cells_.Value();
  stats.rejected_requests = rejected_requests_.Value();
  const obs::HistogramData batch_cells = batch_cells_.Snapshot();
  stats.batches = batch_cells.count;
  stats.max_batch_cells = static_cast<int64_t>(std::llround(batch_cells.max));
  stats.batch_seconds = batch_seconds_.Snapshot().sum;
  stats.memo_hits = memo_hits_.Value();
  const core::ContentMemoStats memo = memo_.content().stats();
  stats.memo_entries = memo.entries;
  stats.memo_bytes = memo.bytes;
  stats.memo_bloom_fp = memo.bloom_fps;
  stats.memo_spilled_segments = memo.spilled_segments;
  stats.memo_evictions = memo.evictions;
  return stats;
}

void MicroBatcher::DispatchLoop() {
  // Each replica owns a private engine over the shared (const) weights:
  // engines hold scratch and stats, so they cannot be shared, but the
  // verdict memo can and is.
  core::InferenceEngine engine(detector_.model(), MakeEngineOptions(options_));

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_dispatcher_.wait(lock,
                          [this] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stopping_) return;  // drained
      continue;
    }

    // The batching window: wait for a full batch, the oldest request's
    // deadline, or shutdown — whichever comes first. During a drain there
    // is no window; everything admitted flushes immediately.
    if (!stopping_ && pending_cells_ < options_.max_batch) {
      const auto deadline =
          pending_.front().arrival +
          std::chrono::microseconds(options_.max_delay_us);
      wake_dispatcher_.wait_until(lock, deadline, [this] {
        return stopping_ || pending_cells_ >= options_.max_batch;
      });
      if (pending_.empty()) continue;  // a sibling replica took everything
    }

    // Coalesce whole requests up to max_batch cells. The first request is
    // always taken, so an oversized request still gets served (in one big
    // batch) rather than starving.
    std::vector<Pending> taken;
    int64_t batch_cells = 0;
    while (!pending_.empty()) {
      const int64_t n = pending_.front().encoded.num_cells();
      if (!taken.empty() && batch_cells + n > options_.max_batch) break;
      batch_cells += n;
      taken.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    pending_cells_ -= batch_cells;
    lock.unlock();
    queue_cells_.Add(static_cast<double>(-batch_cells));

    // One padded forward batch for everything taken. The engine memoizes
    // duplicate cell contents within the batch and pads rows to a register
    // multiple, so each cell's verdict is independent of its batch-mates.
    data::EncodedDataset* batch = &taken.front().encoded;
    data::EncodedDataset merged;
    if (taken.size() > 1) {
      merged = taken.front().encoded;
      for (size_t i = 1; i < taken.size(); ++i) {
        AppendDataset(taken[i].encoded, &merged);
      }
      batch = &merged;
    }

    // The shared memo answers cells the service has predicted before (any
    // replica, any earlier batch); only the leftovers touch the engine —
    // the lookup / miss-subset-sweep / insert cycle lives in
    // InferenceEngine::PredictProbsMemoized now, on top of the succinct
    // content index. Exact: per-cell outputs are batch-composition
    // independent, so serving the miss subset alone changes nothing.
    std::vector<float> probs;
    int64_t hits;
    double batch_seconds;
    {
      OBS_SPAN("serve/batch");
      hits = engine.PredictProbsMemoized(*batch, memo_.content(), &probs);
      // Zero when the batch was fully memo-served (no model work ran).
      batch_seconds = engine.stats().seconds;
    }
    if (hits > 0) memo_hits_.Add(hits);

    // Account the batch before delivering responses, so a client that
    // receives its verdict and immediately asks for stats sees it counted.
    batch_cells_.Record(static_cast<double>(batch_cells));
    batch_seconds_.Record(batch_seconds);

    size_t offset = 0;
    for (Pending& p : taken) {
      const size_t n = static_cast<size_t>(p.encoded.num_cells());
      std::vector<CellVerdict> verdicts(n);
      for (size_t i = 0; i < n; ++i) {
        const float prob = probs[offset + i];
        verdicts[i] = CellVerdict{prob, prob > 0.5f};
      }
      offset += n;
      request_seconds_.Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        p.arrival)
              .count());
      p.callback(Status::OK(), verdicts);
    }

    lock.lock();
  }
}

}  // namespace birnn::serve
