#include "serve/memo.h"

#include <algorithm>
#include <cstring>

namespace birnn::serve {

namespace {

uint32_t FloatBits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

VerdictMemo::VerdictMemo(int64_t capacity)
    : capacity_(std::max<int64_t>(0, capacity)),
      shard_capacity_(std::max<int64_t>(1, capacity_ / kShards)) {}

bool VerdictMemo::Matches(const Entry& e, const data::EncodedDataset& ds,
                          int64_t i) {
  if (e.attr != ds.attrs[static_cast<size_t>(i)]) return false;
  if (e.length_norm_bits != FloatBits(ds.length_norm[static_cast<size_t>(i)]))
    return false;
  const int len = ds.effective_len(i);
  if (static_cast<size_t>(len) != e.seq.size()) return false;
  const int32_t* row = ds.seqs.data() + static_cast<size_t>(i) * ds.max_len;
  return std::memcmp(e.seq.data(), row, sizeof(int32_t) * e.seq.size()) == 0;
}

int64_t VerdictMemo::Lookup(const data::EncodedDataset& ds,
                            std::vector<float>* p,
                            std::vector<uint8_t>* hit) const {
  if (capacity_ == 0) return 0;
  int64_t hits = 0;
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    const uint64_t key = ds.CellContentHash(i);
    const Shard& shard = shards_[key % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) continue;
    for (const Entry& e : it->second) {
      if (Matches(e, ds, i)) {
        (*p)[static_cast<size_t>(i)] = e.p_error;
        (*hit)[static_cast<size_t>(i)] = 1;
        ++hits;
        break;
      }
    }
  }
  return hits;
}

void VerdictMemo::Insert(const data::EncodedDataset& ds, int64_t i,
                         float p_error) {
  if (capacity_ == 0) return;
  const uint64_t key = ds.CellContentHash(i);
  Shard& shard = shards_[key % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  std::vector<Entry>& chain = shard.map[key];
  for (const Entry& e : chain) {
    if (Matches(e, ds, i)) return;  // already memoized
  }
  if (shard.entries >= shard_capacity_) {
    // Bounded memory beats retention: dump the shard and start over. Real
    // serving traffic re-fills the hot set within a few batches.
    shard.map.clear();
    shard.entries = 0;
    ++shard.evictions;
  }
  Entry e;
  e.attr = ds.attrs[static_cast<size_t>(i)];
  e.length_norm_bits = FloatBits(ds.length_norm[static_cast<size_t>(i)]);
  const int len = ds.effective_len(i);
  const int32_t* row = ds.seqs.data() + static_cast<size_t>(i) * ds.max_len;
  e.seq.assign(row, row + len);
  e.p_error = p_error;
  shard.map[key].push_back(std::move(e));
  ++shard.entries;
}

int64_t VerdictMemo::entries() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries;
  }
  return total;
}

int64_t VerdictMemo::evictions() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.evictions;
  }
  return total;
}

}  // namespace birnn::serve
