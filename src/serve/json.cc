#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace birnn::serve {

namespace {
constexpr int kMaxDepth = 32;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Run() {
    JsonValue v;
    BIRNN_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Status::InvalidArgument(std::string("expected '") + literal +
                                       "'");
      }
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Status::InvalidArgument("JSON nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        BIRNN_RETURN_IF_ERROR(Expect("true"));
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        BIRNN_RETURN_IF_ERROR(Expect("false"));
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        BIRNN_RETURN_IF_ERROR(Expect("null"));
        out->type_ = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      BIRNN_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Status::InvalidArgument("expected ':'");
      JsonValue value;
      BIRNN_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Status::InvalidArgument("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      BIRNN_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Status::InvalidArgument("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Status::InvalidArgument("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::InvalidArgument("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Status::InvalidArgument("bad \\u escape");
            }
            const char h = text_[pos_++];
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two separate 3-byte sequences — fine for this protocol).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("bad escape character");
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    (void)Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("expected JSON value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return Status::InvalidArgument("bad number: " + token);
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Run();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonFloat(float v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

}  // namespace birnn::serve
