#include "eval/runner.h"

#include <algorithm>

#include "eval/scheduler.h"

namespace birnn::eval {

// The three Run* entry points predate the scheduler and keep their serial
// semantics: one experiment, repetitions fanned out (or run inline) by a
// private Scheduler. Harness binaries that run many experiments should
// share one Scheduler across all of them instead.

RepeatedResult RunRepeatedDetector(const datagen::DatasetPair& pair,
                                   const RunnerOptions& options) {
  SchedulerOptions scheduler_options;
  scheduler_options.threads = options.harness_threads;
  scheduler_options.inner_threads = options.harness_inner_threads;
  scheduler_options.cache = options.cache;
  Scheduler scheduler(scheduler_options);
  const Scheduler::ExperimentId id = scheduler.SubmitDetector(pair, options);
  scheduler.RunAll();
  return scheduler.Take(id);
}

RepeatedResult RunRepeatedRaha(const datagen::DatasetPair& pair,
                               int repetitions, int n_label_tuples,
                               uint64_t base_seed) {
  Scheduler scheduler;
  const Scheduler::ExperimentId id =
      scheduler.SubmitRaha(pair, repetitions, n_label_tuples, base_seed);
  scheduler.RunAll();
  return scheduler.Take(id);
}

RepeatedResult RunRepeatedRotom(const datagen::DatasetPair& pair,
                                int repetitions, int n_label_cells, bool ssl,
                                uint64_t base_seed) {
  Scheduler scheduler;
  const Scheduler::ExperimentId id = scheduler.SubmitRotom(
      pair, repetitions, n_label_cells, ssl, base_seed);
  scheduler.RunAll();
  return scheduler.Take(id);
}

namespace {
std::vector<CurvePoint> AverageCurve(const RepeatedResult& result,
                                     bool use_test) {
  std::vector<CurvePoint> out;
  if (result.histories.empty()) return out;
  size_t epochs = 0;
  for (const auto& h : result.histories) epochs = std::max(epochs, h.size());
  for (size_t e = 0; e < epochs; ++e) {
    std::vector<double> values;
    for (const auto& h : result.histories) {
      if (e >= h.size()) continue;
      if (use_test) {
        if (h[e].has_test) values.push_back(h[e].test_accuracy);
      } else {
        values.push_back(h[e].train_accuracy);
      }
    }
    if (values.empty()) continue;
    CurvePoint p;
    p.epoch = static_cast<int>(e);
    p.mean = Mean(values);
    p.ci95 = ConfidenceInterval95(values);
    out.push_back(p);
  }
  return out;
}
}  // namespace

std::vector<CurvePoint> AverageTestAccuracyCurve(const RepeatedResult& result) {
  return AverageCurve(result, /*use_test=*/true);
}

std::vector<CurvePoint> AverageTrainAccuracyCurve(
    const RepeatedResult& result) {
  return AverageCurve(result, /*use_test=*/false);
}

}  // namespace birnn::eval
