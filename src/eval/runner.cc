#include "eval/runner.h"

#include "raha/detector.h"
#include "rotom/baseline.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace birnn::eval {

namespace {
void Summarize(RepeatedResult* result,
               const std::vector<double>& train_times) {
  std::vector<double> ps;
  std::vector<double> rs;
  std::vector<double> f1s;
  for (const Metrics& m : result->runs) {
    ps.push_back(m.precision);
    rs.push_back(m.recall);
    f1s.push_back(m.f1);
  }
  result->precision = birnn::Summarize(ps);
  result->recall = birnn::Summarize(rs);
  result->f1 = birnn::Summarize(f1s);
  result->train_seconds = birnn::Summarize(train_times);
}
}  // namespace

RepeatedResult RunRepeatedDetector(const datagen::DatasetPair& pair,
                                   const RunnerOptions& options) {
  RepeatedResult result;
  result.dataset = pair.name;

  std::vector<double> train_times;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    core::DetectorOptions detector_options = options.detector;
    detector_options.seed = options.base_seed + static_cast<uint64_t>(rep);
    core::ErrorDetector detector(detector_options);
    auto report_or = detector.Run(pair.dirty, pair.clean);
    if (!report_or.ok()) {
      BIRNN_LOG(Error) << "detector run failed on " << pair.name << ": "
                       << report_or.status().ToString();
      continue;
    }
    core::DetectionReport& report = *report_or;
    result.runs.push_back(report.test_metrics);
    result.histories.push_back(std::move(report.history.epochs));
    train_times.push_back(report.history.train_seconds);
    if (result.system.empty()) {
      result.system =
          detector_options.model == "etsb" ? "ETSB-RNN" : "TSB-RNN";
    }
  }
  Summarize(&result, train_times);
  return result;
}

RepeatedResult RunRepeatedRaha(const datagen::DatasetPair& pair,
                               int repetitions, int n_label_tuples,
                               uint64_t base_seed) {
  RepeatedResult result;
  result.dataset = pair.name;
  result.system = "Raha";

  // Truth labels in cell order.
  const int n_cols = pair.dirty.num_columns();
  std::vector<int32_t> truth(
      static_cast<size_t>(pair.dirty.num_rows()) * n_cols, 0);
  for (int r = 0; r < pair.dirty.num_rows(); ++r) {
    for (int c = 0; c < n_cols; ++c) {
      truth[static_cast<size_t>(r) * n_cols + static_cast<size_t>(c)] =
          pair.dirty.cell(r, c) != pair.clean.cell(r, c) ? 1 : 0;
    }
  }

  std::vector<double> train_times;
  for (int rep = 0; rep < repetitions; ++rep) {
    Rng rng(base_seed + static_cast<uint64_t>(rep));
    raha::RahaOptions options;
    options.n_label_tuples = n_label_tuples;
    raha::RahaDetector detector(options);
    Stopwatch timer;
    std::vector<int64_t> labeled;
    const raha::DetectionMask predicted =
        detector.DetectErrors(pair.dirty, pair.clean, &rng, &labeled);
    train_times.push_back(timer.ElapsedSeconds());

    // Evaluate on test cells only (tuples that were not labeled).
    std::vector<uint8_t> in_train(static_cast<size_t>(pair.dirty.num_rows()),
                                  0);
    for (int64_t r : labeled) in_train[static_cast<size_t>(r)] = 1;
    Confusion confusion;
    for (int r = 0; r < pair.dirty.num_rows(); ++r) {
      if (in_train[static_cast<size_t>(r)]) continue;
      for (int c = 0; c < n_cols; ++c) {
        const size_t i =
            static_cast<size_t>(r) * n_cols + static_cast<size_t>(c);
        confusion.Add(predicted[i], truth[i]);
      }
    }
    result.runs.push_back(Metrics::From(confusion));
  }
  Summarize(&result, train_times);
  return result;
}

RepeatedResult RunRepeatedRotom(const datagen::DatasetPair& pair,
                                int repetitions, int n_label_cells, bool ssl,
                                uint64_t base_seed) {
  RepeatedResult result;
  result.dataset = pair.name;
  result.system = ssl ? "Rotom+SSL" : "Rotom";

  std::vector<double> train_times;
  for (int rep = 0; rep < repetitions; ++rep) {
    rotom::RotomOptions options;
    options.n_label_cells = n_label_cells;
    options.ssl = ssl;
    options.seed = base_seed + static_cast<uint64_t>(rep);
    rotom::RotomBaseline baseline(options);
    Stopwatch timer;
    auto rotom_result = baseline.Detect(pair.dirty, pair.clean);
    if (!rotom_result.ok()) {
      BIRNN_LOG(Error) << "rotom run failed on " << pair.name << ": "
                       << rotom_result.status().ToString();
      continue;
    }
    train_times.push_back(timer.ElapsedSeconds());
    result.runs.push_back(rotom_result->test_metrics);
  }
  Summarize(&result, train_times);
  return result;
}

namespace {
std::vector<CurvePoint> AverageCurve(const RepeatedResult& result,
                                     bool use_test) {
  std::vector<CurvePoint> out;
  if (result.histories.empty()) return out;
  size_t epochs = 0;
  for (const auto& h : result.histories) epochs = std::max(epochs, h.size());
  for (size_t e = 0; e < epochs; ++e) {
    std::vector<double> values;
    for (const auto& h : result.histories) {
      if (e >= h.size()) continue;
      if (use_test) {
        if (h[e].has_test) values.push_back(h[e].test_accuracy);
      } else {
        values.push_back(h[e].train_accuracy);
      }
    }
    if (values.empty()) continue;
    CurvePoint p;
    p.epoch = static_cast<int>(e);
    p.mean = Mean(values);
    p.ci95 = ConfidenceInterval95(values);
    out.push_back(p);
  }
  return out;
}
}  // namespace

std::vector<CurvePoint> AverageTestAccuracyCurve(const RepeatedResult& result) {
  return AverageCurve(result, /*use_test=*/true);
}

std::vector<CurvePoint> AverageTrainAccuracyCurve(
    const RepeatedResult& result) {
  return AverageCurve(result, /*use_test=*/false);
}

}  // namespace birnn::eval
