#ifndef BIRNN_EVAL_CACHE_H_
#define BIRNN_EVAL_CACHE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/trainer.h"
#include "datagen/injector.h"
#include "eval/metrics.h"
#include "obs/registry.h"
#include "util/status.h"

namespace birnn::eval {

/// Version of the cached-artifact schema *and* of the numerics that produce
/// the artifacts. Bump whenever (a) the entry file format changes or (b) any
/// code change can alter the bits of a training/evaluation run (kernels,
/// shard partitioning, sampler logic, dataset generators, ...). A bump
/// invalidates every existing cache entry — warm runs silently fall back to
/// recomputation, never to stale numbers.
inline constexpr uint32_t kCacheSchemaVersion = 1;

/// Streaming 64-bit FNV-1a hasher — the cache's content-address function.
/// Deliberately boring: stable across platforms/runs, cheap, and already the
/// repo's content-key idiom (core::InferenceEngine, data::encoding).
class Fnv1a64 {
 public:
  void Add(std::string_view bytes) {
    for (const char c : bytes) {
      hash_ ^= static_cast<uint8_t>(c);
      hash_ *= kPrime;
    }
  }
  void AddU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFFu;
      hash_ *= kPrime;
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  static constexpr uint64_t kOffset = 1469598103934665603ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t hash_ = kOffset;
};

/// Content fingerprint of a table: headers, shape, and every cell, in row
/// order. Any edit to any cell changes the fingerprint.
uint64_t FingerprintTable(const data::Table& table);

/// Content fingerprint of a benchmark dataset pair: name + dirty + clean
/// tables. The injected-error metadata is implied by dirty vs clean and is
/// not hashed separately.
uint64_t FingerprintPair(const datagen::DatasetPair& pair);

/// The unit the harness caches: the complete outcome of one
/// (dataset, system, repetition) job.
struct JobOutcome {
  bool ok = false;  ///< false: the run failed (never cached).
  Metrics metrics;
  /// Per-epoch curves (empty unless the job tracked them).
  std::vector<core::EpochStats> history;
  /// Train/detect time measured *inside* the job on its own thread
  /// (wall-clock of the work, not of the harness).
  double train_seconds = 0.0;
  /// CPU time of the job thread (excludes inner pool workers).
  double train_cpu_seconds = 0.0;
  /// Set by the scheduler when the outcome came from the cache.
  bool from_cache = false;
};

/// Snapshot of one cache's observability counters (all monotonically
/// increasing). Backed by obs::Counter instances owned by the cache, so the
/// same numbers also land on the global obs registry under
/// `eval/cache/{hits,misses,stores,corrupt}` — per-instance reads stay
/// exact while scrapes see the process-wide aggregate.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t stores = 0;
  int64_t corrupt = 0;  ///< entries that failed to parse (recomputed).
};

/// Content-addressed on-disk store of `JobOutcome`s.
///
/// Key = FNV-1a over (schema version, dataset fingerprint, canonical job
/// config string); entry = one text file `<key-hex>.birnn` in the cache
/// directory, doubles serialized as hexfloats so a warm hit returns
/// bit-identical values. Lookups that hit a missing, truncated or corrupted
/// file simply miss (the caller recomputes and `Store` overwrites); stores
/// write to a temp file and rename, so a killed run never leaves a
/// half-written entry behind and cold runs resume where they stopped.
///
/// Thread-safe: Lookup/Store may be called concurrently (distinct jobs have
/// distinct keys; the stats counters are lock-free obs::Counters).
class ArtifactCache {
 public:
  /// `dir` empty resolves to $BIRNN_CACHE_DIR, falling back to
  /// ".birnn-cache". The directory is created on first Store.
  explicit ArtifactCache(std::string dir = "");

  /// The directory this cache reads/writes.
  const std::string& dir() const { return dir_; }

  /// Resolution helper (exposed for tests/docs): explicit dir > env > default.
  static std::string ResolveDir(const std::string& dir);

  /// Content address of one job.
  static uint64_t Key(uint64_t dataset_fingerprint,
                      const std::string& job_config,
                      uint32_t schema_version = kCacheSchemaVersion);

  /// True and fills `out` on a valid entry; false on miss or corruption.
  bool Lookup(uint64_t key, JobOutcome* out);

  /// Persists `outcome` under `key`. Failed jobs (`!outcome.ok`) are
  /// rejected with InvalidArgument — a transient failure must not poison
  /// warm runs.
  Status Store(uint64_t key, const JobOutcome& outcome);

  CacheStats stats() const;

 private:
  std::string EntryPath(uint64_t key) const;

  std::string dir_;
  obs::Counter hits_{"eval/cache/hits"};
  obs::Counter misses_{"eval/cache/misses"};
  obs::Counter stores_{"eval/cache/stores"};
  obs::Counter corrupt_{"eval/cache/corrupt"};
};

}  // namespace birnn::eval

#endif  // BIRNN_EVAL_CACHE_H_
