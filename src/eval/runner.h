#ifndef BIRNN_EVAL_RUNNER_H_
#define BIRNN_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "core/detector.h"
#include "datagen/datasets.h"
#include "eval/metrics.h"
#include "util/stats.h"

namespace birnn::eval {

class ArtifactCache;

/// Aggregated outcome of repeating one experiment `n` times with different
/// seeds (the paper repeats 10 times and reports AVG and S.D.).
struct RepeatedResult {
  std::string dataset;
  std::string system;  ///< "TSB-RNN", "ETSB-RNN", "Raha", ...
  Summary precision;
  Summary recall;
  Summary f1;
  /// Per-repetition train/detect time, measured *inside* each job on its
  /// own thread — meaningful even when repetitions overlap (Table 5).
  Summary train_seconds;
  /// Per-repetition CPU time of the job thread (excludes inner pool
  /// workers); immune to contention inflation under concurrency.
  Summary train_cpu_seconds;
  /// Wall clock of the harness run that produced this result (covers every
  /// experiment scheduled together, not just this one). Report this — never
  /// the sum of train_seconds — as "how long the harness took".
  double harness_wall_seconds = 0.0;
  /// Repetitions answered from the artifact cache instead of recomputed.
  int64_t cache_hits = 0;
  /// Raw per-repetition metrics, for downstream aggregation.
  std::vector<Metrics> runs;
  /// Per-epoch accuracy curves per repetition (empty unless tracked).
  std::vector<std::vector<core::EpochStats>> histories;
};

/// Options shared by the experiment harness binaries.
struct RunnerOptions {
  int repetitions = 10;
  uint64_t base_seed = 1000;
  core::DetectorOptions detector;

  /// Harness scheduling (eval::Scheduler). `harness_threads` fans the
  /// repetitions out over a thread pool (0 = the legacy serial loop; -1 =
  /// one worker per hardware thread); aggregates are bit-identical either
  /// way. `cache` (borrowed, may be null) answers repeated jobs from disk.
  int harness_threads = 0;
  int harness_inner_threads = -1;  ///< -1 = auto budget; see SchedulerOptions.
  ArtifactCache* cache = nullptr;
};

/// Runs the paper's neural detector `repetitions` times on a dataset pair,
/// re-generating nothing (same data, different model/sampler seeds), and
/// aggregates precision/recall/F1. A thin wrapper over eval::Scheduler —
/// multi-experiment harnesses should submit every experiment to one
/// Scheduler instead, so jobs from different datasets and systems share
/// the fan-out.
RepeatedResult RunRepeatedDetector(const datagen::DatasetPair& pair,
                                   const RunnerOptions& options);

/// Runs the Raha baseline `repetitions` times (different sampling seeds).
RepeatedResult RunRepeatedRaha(const datagen::DatasetPair& pair,
                               int repetitions, int n_label_tuples,
                               uint64_t base_seed);

/// Runs the Rotom-style augmentation baseline `repetitions` times.
/// `ssl` selects the self-training variant (Rotom+SSL in Table 3).
RepeatedResult RunRepeatedRotom(const datagen::DatasetPair& pair,
                                int repetitions, int n_label_cells, bool ssl,
                                uint64_t base_seed);

/// Mean epoch curve across repetitions: element e is the average of
/// `histories[*][e].test_accuracy` (or train_accuracy), together with its
/// 95% confidence half-width.
struct CurvePoint {
  int epoch = 0;
  double mean = 0.0;
  double ci95 = 0.0;
};
std::vector<CurvePoint> AverageTestAccuracyCurve(const RepeatedResult& result);
std::vector<CurvePoint> AverageTrainAccuracyCurve(const RepeatedResult& result);

}  // namespace birnn::eval

#endif  // BIRNN_EVAL_RUNNER_H_
