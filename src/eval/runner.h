#ifndef BIRNN_EVAL_RUNNER_H_
#define BIRNN_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "core/detector.h"
#include "datagen/datasets.h"
#include "eval/metrics.h"
#include "util/stats.h"

namespace birnn::eval {

/// Aggregated outcome of repeating one experiment `n` times with different
/// seeds (the paper repeats 10 times and reports AVG and S.D.).
struct RepeatedResult {
  std::string dataset;
  std::string system;  ///< "TSB-RNN", "ETSB-RNN", "Raha", ...
  Summary precision;
  Summary recall;
  Summary f1;
  Summary train_seconds;
  /// Raw per-repetition metrics, for downstream aggregation.
  std::vector<Metrics> runs;
  /// Per-epoch accuracy curves per repetition (empty unless tracked).
  std::vector<std::vector<core::EpochStats>> histories;
};

/// Options shared by the experiment harness binaries.
struct RunnerOptions {
  int repetitions = 10;
  uint64_t base_seed = 1000;
  core::DetectorOptions detector;
};

/// Runs the paper's neural detector `repetitions` times on a dataset pair,
/// re-generating nothing (same data, different model/sampler seeds), and
/// aggregates precision/recall/F1.
RepeatedResult RunRepeatedDetector(const datagen::DatasetPair& pair,
                                   const RunnerOptions& options);

/// Runs the Raha baseline `repetitions` times (different sampling seeds).
RepeatedResult RunRepeatedRaha(const datagen::DatasetPair& pair,
                               int repetitions, int n_label_tuples,
                               uint64_t base_seed);

/// Runs the Rotom-style augmentation baseline `repetitions` times.
/// `ssl` selects the self-training variant (Rotom+SSL in Table 3).
RepeatedResult RunRepeatedRotom(const datagen::DatasetPair& pair,
                                int repetitions, int n_label_cells, bool ssl,
                                uint64_t base_seed);

/// Mean epoch curve across repetitions: element e is the average of
/// `histories[*][e].test_accuracy` (or train_accuracy), together with its
/// 95% confidence half-width.
struct CurvePoint {
  int epoch = 0;
  double mean = 0.0;
  double ci95 = 0.0;
};
std::vector<CurvePoint> AverageTestAccuracyCurve(const RepeatedResult& result);
std::vector<CurvePoint> AverageTrainAccuracyCurve(const RepeatedResult& result);

}  // namespace birnn::eval

#endif  // BIRNN_EVAL_RUNNER_H_
