#include "eval/cache.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/obs.h"

namespace birnn::eval {

namespace {

/// Exact-round-trip rendering of a double: hexfloat, parsed back by strtod.
std::string HexDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool ParseHexDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

uint64_t FingerprintTable(const data::Table& table) {
  Fnv1a64 h;
  h.AddU64(static_cast<uint64_t>(table.num_rows()));
  h.AddU64(static_cast<uint64_t>(table.num_columns()));
  for (const std::string& name : table.column_names()) {
    h.Add(name);
    h.Add(std::string_view("\x1f", 1));  // unit separator: "ab","c" != "a","bc"
  }
  for (int r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      h.Add(table.cell(r, c));
      h.Add(std::string_view("\x1f", 1));
    }
  }
  return h.digest();
}

uint64_t FingerprintPair(const datagen::DatasetPair& pair) {
  Fnv1a64 h;
  h.Add(pair.name);
  h.AddU64(FingerprintTable(pair.dirty));
  h.AddU64(FingerprintTable(pair.clean));
  return h.digest();
}

ArtifactCache::ArtifactCache(std::string dir) : dir_(ResolveDir(dir)) {}

std::string ArtifactCache::ResolveDir(const std::string& dir) {
  if (!dir.empty()) return dir;
  const char* env = std::getenv("BIRNN_CACHE_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return ".birnn-cache";
}

uint64_t ArtifactCache::Key(uint64_t dataset_fingerprint,
                            const std::string& job_config,
                            uint32_t schema_version) {
  Fnv1a64 h;
  h.AddU64(schema_version);
  h.AddU64(dataset_fingerprint);
  h.Add(job_config);
  return h.digest();
}

std::string ArtifactCache::EntryPath(uint64_t key) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + buf + ".birnn";
}

bool ArtifactCache::Lookup(uint64_t key, JobOutcome* out) {
  OBS_SPAN("eval/cache_lookup");
  const auto miss = [this](bool corrupt) {
    misses_.Add(1);
    if (corrupt) corrupt_.Add(1);
    return false;
  };

  std::ifstream in(EntryPath(key));
  if (!in) return miss(false);

  JobOutcome outcome;
  std::string line;
  // Header: magic + schema + key echo (the file must describe itself).
  if (!std::getline(in, line) || line != "birnn-artifact v1") return miss(true);
  {
    std::istringstream ls;
    std::string tag;
    uint32_t schema = 0;
    if (!std::getline(in, line)) return miss(true);
    ls.str(line);
    if (!(ls >> tag >> schema) || tag != "schema" ||
        schema != kCacheSchemaVersion) {
      return miss(true);
    }
  }
  {
    std::istringstream ls;
    std::string tag, hex;
    if (!std::getline(in, line)) return miss(true);
    ls.str(line);
    if (!(ls >> tag >> hex) || tag != "key") return miss(true);
    char* end = nullptr;
    if (std::strtoull(hex.c_str(), &end, 16) != key || *end != '\0') {
      return miss(true);
    }
  }

  const auto read_double_line = [&](const char* want, double* v) {
    std::string tag, token;
    if (!std::getline(in, line)) return false;
    std::istringstream ls(line);
    if (!(ls >> tag >> token) || tag != want) return false;
    return ParseHexDouble(token, v);
  };

  if (!read_double_line("precision", &outcome.metrics.precision) ||
      !read_double_line("recall", &outcome.metrics.recall) ||
      !read_double_line("f1", &outcome.metrics.f1) ||
      !read_double_line("accuracy", &outcome.metrics.accuracy) ||
      !read_double_line("train_seconds", &outcome.train_seconds) ||
      !read_double_line("train_cpu_seconds", &outcome.train_cpu_seconds)) {
    return miss(true);
  }

  size_t n_epochs = 0;
  {
    std::string tag;
    if (!std::getline(in, line)) return miss(true);
    std::istringstream ls(line);
    if (!(ls >> tag >> n_epochs) || tag != "epochs" || n_epochs > 1000000) {
      return miss(true);
    }
  }
  outcome.history.reserve(n_epochs);
  for (size_t e = 0; e < n_epochs; ++e) {
    if (!std::getline(in, line)) return miss(true);
    std::istringstream ls(line);
    std::string tag, loss_tok, train_tok, test_tok;
    core::EpochStats stats;
    int has_test = 0;
    if (!(ls >> tag >> stats.epoch >> loss_tok >> train_tok >> test_tok >>
          has_test) ||
        tag != "e" || !ParseHexDouble(loss_tok, &stats.train_loss) ||
        !ParseHexDouble(train_tok, &stats.train_accuracy) ||
        !ParseHexDouble(test_tok, &stats.test_accuracy)) {
      return miss(true);
    }
    stats.has_test = has_test != 0;
    outcome.history.push_back(stats);
  }
  if (!std::getline(in, line) || line != "end") return miss(true);

  outcome.ok = true;
  outcome.from_cache = true;
  *out = std::move(outcome);
  hits_.Add(1);
  return true;
}

Status ArtifactCache::Store(uint64_t key, const JobOutcome& outcome) {
  OBS_SPAN("eval/cache_store");
  if (!outcome.ok) {
    return Status::InvalidArgument("refusing to cache a failed job");
  }
  // mkdir -p for a single-level dir; nested paths need existing parents.
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create cache dir " + dir_ + ": " +
                           std::strerror(errno));
  }

  const std::string path = EntryPath(key);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IoError("cannot write " + tmp);
    char keyhex[32];
    std::snprintf(keyhex, sizeof(keyhex), "%016llx",
                  static_cast<unsigned long long>(key));
    out << "birnn-artifact v1\n";
    out << "schema " << kCacheSchemaVersion << "\n";
    out << "key " << keyhex << "\n";
    out << "precision " << HexDouble(outcome.metrics.precision) << "\n";
    out << "recall " << HexDouble(outcome.metrics.recall) << "\n";
    out << "f1 " << HexDouble(outcome.metrics.f1) << "\n";
    out << "accuracy " << HexDouble(outcome.metrics.accuracy) << "\n";
    out << "train_seconds " << HexDouble(outcome.train_seconds) << "\n";
    out << "train_cpu_seconds " << HexDouble(outcome.train_cpu_seconds)
        << "\n";
    out << "epochs " << outcome.history.size() << "\n";
    for (const core::EpochStats& e : outcome.history) {
      out << "e " << e.epoch << " " << HexDouble(e.train_loss) << " "
          << HexDouble(e.train_accuracy) << " " << HexDouble(e.test_accuracy)
          << " " << (e.has_test ? 1 : 0) << "\n";
    }
    out << "end\n";
    if (!out) return Status::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " -> " + path);
  }
  stores_.Add(1);
  return Status::OK();
}

CacheStats ArtifactCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.Value();
  stats.misses = misses_.Value();
  stats.stores = stores_.Value();
  stats.corrupt = corrupt_.Value();
  return stats;
}

}  // namespace birnn::eval
