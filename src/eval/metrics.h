#ifndef BIRNN_EVAL_METRICS_H_
#define BIRNN_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace birnn::eval {

/// Binary confusion counts for error detection. The positive class is
/// "cell is erroneous" (label 1), matching the paper's P/R/F1 definitions.
struct Confusion {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  int64_t tn = 0;

  int64_t total() const { return tp + fp + fn + tn; }

  /// Adds one (prediction, truth) observation.
  void Add(int predicted, int truth) {
    if (predicted == 1 && truth == 1) {
      ++tp;
    } else if (predicted == 1 && truth == 0) {
      ++fp;
    } else if (predicted == 0 && truth == 1) {
      ++fn;
    } else {
      ++tn;
    }
  }

  /// tp / (tp + fp); 0 when nothing was predicted positive.
  double Precision() const;
  /// tp / (tp + fn); 0 when there are no positives.
  double Recall() const;
  /// Harmonic mean of precision and recall; 0 when both are 0.
  double F1() const;
  /// (tp + tn) / total.
  double Accuracy() const;
};

/// Builds a confusion matrix from parallel prediction/truth vectors.
Confusion Evaluate(const std::vector<uint8_t>& predicted,
                   const std::vector<int32_t>& truth);

/// Point metrics extracted from a confusion matrix.
struct Metrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;

  static Metrics From(const Confusion& c) {
    return Metrics{c.Precision(), c.Recall(), c.F1(), c.Accuracy()};
  }

  std::string ToString() const;
};

}  // namespace birnn::eval

#endif  // BIRNN_EVAL_METRICS_H_
