#ifndef BIRNN_EVAL_SCHEDULER_H_
#define BIRNN_EVAL_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "datagen/injector.h"
#include "eval/cache.h"
#include "eval/runner.h"

namespace birnn::eval {

/// How the scheduler splits the machine between the outer experiment
/// fan-out and each job's inner `train_threads`/`eval_threads` pools.
struct ThreadBudget {
  int outer = 0;  ///< jobs in flight (0 = run jobs inline on the caller).
  int inner = 0;  ///< worker threads *per job* for nested pools.
};

/// Budget rule: outer = min(requested, n_jobs); each in-flight job owns an
/// equal share of the hardware threads and spends (share - 1) on inner
/// workers (the job thread itself is the first member of its share), so
/// outer * (1 + inner) never exceeds the hardware. Thread counts never
/// change results (DESIGN.md §6/§7), so the budget is a pure performance
/// decision.
ThreadBudget ComputeThreadBudget(int hardware_threads, int requested_outer,
                                 int n_jobs);

/// Scheduler configuration.
struct SchedulerOptions {
  /// Outer workers for the job fan-out. 0 = serial (every job runs inline
  /// on the calling thread, in submission order — the legacy harness).
  /// -1 = one worker per hardware thread.
  int threads = 0;
  /// Inner `train_threads`/`eval_threads`/`feature_threads` forced on every
  /// job. -1 = automatic: keep the submitter's settings when serial, budget
  /// the hardware across in-flight jobs when scheduled.
  int inner_threads = -1;
  /// Borrowed result cache; null disables caching.
  ArtifactCache* cache = nullptr;
};

/// Harness-level accounting for one RunAll().
struct SchedulerStats {
  int64_t jobs = 0;        ///< jobs submitted.
  int64_t computed = 0;    ///< jobs that actually ran (cache miss).
  int64_t cache_hits = 0;  ///< jobs answered from the cache.
  int64_t failures = 0;    ///< jobs whose run failed (skipped in aggregates).
  double wall_seconds = 0.0;  ///< wall clock of RunAll().
  int outer_threads = 0;
  int inner_threads = 0;  ///< -1 when jobs kept their submitters' settings.
};

/// Job-graph executor for the experiment harness. The unit of work is one
/// (dataset, system, repetition) run; an *experiment* is the aggregate over
/// its repetitions — exactly what `RunRepeatedDetector` et al. return.
///
/// Determinism contract: job seeds derive from `base_seed + repetition`
/// (identical to the serial harness), every job writes its outcome into its
/// own repetition slot, and aggregation reads the slots in repetition order
/// after all jobs finish. Aggregated metrics are therefore bit-identical to
/// the serial path for every thread count and completion order. Inner
/// thread counts are excluded from cache keys for the same reason: they are
/// proven not to change the bits.
///
/// Usage: submit every experiment first, then RunAll() once, then Take()
/// the aggregated results. Submitted `DatasetPair`s are borrowed and must
/// outlive RunAll().
class Scheduler {
 public:
  using ExperimentId = size_t;

  explicit Scheduler(SchedulerOptions options = {});

  /// The paper's neural detector, repeated `options.repetitions` times
  /// (seeds base_seed + rep). Harness fields of `options` are ignored —
  /// this scheduler's own configuration governs.
  ExperimentId SubmitDetector(const datagen::DatasetPair& pair,
                              const RunnerOptions& options);

  /// The Raha baseline, repeated with sampling seeds base_seed + rep.
  ExperimentId SubmitRaha(const datagen::DatasetPair& pair, int repetitions,
                          int n_label_tuples, uint64_t base_seed);

  /// The Rotom-style baseline (ssl selects Rotom+SSL).
  ExperimentId SubmitRotom(const datagen::DatasetPair& pair, int repetitions,
                           int n_label_cells, bool ssl, uint64_t base_seed);

  /// Executes every pending job (cache lookups first), blocking until all
  /// finish. Call exactly once, after all submissions.
  void RunAll();

  /// Aggregated result of one experiment; valid after RunAll().
  RepeatedResult Take(ExperimentId id);

  const SchedulerStats& stats() const { return stats_; }

 private:
  struct Job {
    uint64_t cache_key = 0;
    /// Runs the repetition; `inner_threads` < 0 keeps submitter settings.
    std::function<JobOutcome(int inner_threads)> compute;
    JobOutcome outcome;
  };
  struct Experiment {
    std::string dataset;
    std::string system;
    std::vector<Job> jobs;  ///< index = repetition.
  };

  Experiment& NewExperiment(const datagen::DatasetPair& pair,
                            std::string system, int repetitions);

  SchedulerOptions options_;
  std::vector<Experiment> experiments_;
  SchedulerStats stats_;
  bool ran_ = false;
};

/// Canonical config strings hashed into cache keys (exposed for tests).
/// They cover every option that can change a run's bits and exclude the
/// thread counts, which cannot.
std::string DetectorJobConfig(const core::DetectorOptions& options);
std::string RahaJobConfig(int n_label_tuples, uint64_t seed);
std::string RotomJobConfig(int n_label_cells, bool ssl, uint64_t seed);

}  // namespace birnn::eval

#endif  // BIRNN_EVAL_SCHEDULER_H_
