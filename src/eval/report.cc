#include "eval/report.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace birnn::eval {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  BIRNN_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  print_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt2(double v) { return FormatFixed(v, 2); }

void AppendTable3Rows(const RepeatedResult& result, TableWriter* writer) {
  writer->AddRow({result.system, result.dataset, Fmt2(result.precision.mean),
                  Fmt2(result.recall.mean), Fmt2(result.f1.mean)});
  writer->AddRow({"  S.D.", "", Fmt2(result.precision.stddev),
                  Fmt2(result.recall.stddev), Fmt2(result.f1.stddev)});
}

void PrintCurve(const std::string& title,
                const std::vector<CurvePoint>& curve, std::ostream& out) {
  out << "# " << title << "\n";
  out << "# epoch  mean_accuracy  ci95\n";
  for (const CurvePoint& p : curve) {
    out << p.epoch << "\t" << FormatFixed(p.mean, 4) << "\t"
        << FormatFixed(p.ci95, 4) << "\n";
  }
}

}  // namespace birnn::eval
