#include "eval/metrics.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace birnn::eval {

double Confusion::Precision() const {
  const int64_t denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::Recall() const {
  const int64_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Confusion::Accuracy() const {
  const int64_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(n);
}

Confusion Evaluate(const std::vector<uint8_t>& predicted,
                   const std::vector<int32_t>& truth) {
  BIRNN_CHECK_EQ(predicted.size(), truth.size());
  Confusion c;
  for (size_t i = 0; i < predicted.size(); ++i) {
    c.Add(predicted[i], truth[i]);
  }
  return c;
}

std::string Metrics::ToString() const {
  return "P=" + FormatFixed(precision, 2) + " R=" + FormatFixed(recall, 2) +
         " F1=" + FormatFixed(f1, 2) + " Acc=" + FormatFixed(accuracy, 2);
}

}  // namespace birnn::eval
