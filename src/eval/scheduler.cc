#include "eval/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "obs/obs.h"
#include "raha/detector.h"
#include "rotom/baseline.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/threadpool.h"

namespace birnn::eval {

namespace {

/// Exact rendering for config-string floats (hexfloat: no rounding
/// ambiguity, so two configs hash equal iff their bits are equal).
std::string FmtExact(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

void Append(std::string* s, const char* key, const std::string& value) {
  *s += '|';
  *s += key;
  *s += '=';
  *s += value;
}
void Append(std::string* s, const char* key, int64_t value) {
  Append(s, key, std::to_string(value));
}
void Append(std::string* s, const char* key, uint64_t value) {
  Append(s, key, std::to_string(value));
}
void Append(std::string* s, const char* key, bool value) {
  Append(s, key, std::string(value ? "1" : "0"));
}
void Append(std::string* s, const char* key, double value) {
  Append(s, key, FmtExact(value));
}

/// Truth labels of a pair in cell order (row-major) — shared by every Raha
/// repetition of one experiment.
std::vector<int32_t> BuildTruth(const datagen::DatasetPair& pair) {
  const int n_cols = pair.dirty.num_columns();
  std::vector<int32_t> truth(
      static_cast<size_t>(pair.dirty.num_rows()) * n_cols, 0);
  for (int r = 0; r < pair.dirty.num_rows(); ++r) {
    for (int c = 0; c < n_cols; ++c) {
      truth[static_cast<size_t>(r) * n_cols + static_cast<size_t>(c)] =
          pair.dirty.cell(r, c) != pair.clean.cell(r, c) ? 1 : 0;
    }
  }
  return truth;
}

}  // namespace

ThreadBudget ComputeThreadBudget(int hardware_threads, int requested_outer,
                                 int n_jobs) {
  ThreadBudget budget;
  if (requested_outer <= 0 || n_jobs <= 0) return budget;  // serial
  budget.outer = std::min(requested_outer, n_jobs);
  const int share = std::max(1, hardware_threads / budget.outer);
  budget.inner = share - 1;
  return budget;
}

std::string DetectorJobConfig(const core::DetectorOptions& o) {
  // Every field that can change a run's bits. `train_threads`,
  // `eval_threads` and `bucketed_inference` are deliberately absent: the
  // repo's determinism contract (DESIGN.md §6/§7) proves they cannot.
  std::string s = "detector/v1";
  Append(&s, "model", o.model);
  Append(&s, "sampler", o.sampler);
  Append(&s, "tuples", static_cast<int64_t>(o.n_label_tuples));
  Append(&s, "units", static_cast<int64_t>(o.units));
  Append(&s, "stacks", static_cast<int64_t>(o.stacks));
  Append(&s, "bidir", o.bidirectional);
  Append(&s, "cell", o.cell_type);
  Append(&s, "emb", static_cast<int64_t>(o.char_emb_dim));
  Append(&s, "attr_branch", o.use_attr_branch);
  Append(&s, "len_branch", o.use_length_branch);
  Append(&s, "fd_ensemble", o.use_fd_ensemble);
  Append(&s, "prep_maxlen", static_cast<int64_t>(o.prepare.max_value_len));
  Append(&s, "prep_trim", o.prepare.trim_leading_whitespace);
  Append(&s, "prep_nan", o.prepare.treat_nan_as_empty);
  Append(&s, "epochs", static_cast<int64_t>(o.trainer.epochs));
  Append(&s, "lr", static_cast<double>(o.trainer.learning_rate));
  Append(&s, "rho", static_cast<double>(o.trainer.rmsprop_rho));
  Append(&s, "batch_frac", o.trainer.batch_fraction);
  Append(&s, "shuffle", o.trainer.shuffle);
  Append(&s, "trainer_seed", o.trainer.seed);
  Append(&s, "calibrate_bn", o.trainer.calibrate_batchnorm);
  Append(&s, "track_test", o.trainer.track_test_accuracy);
  Append(&s, "test_max_cells", o.trainer.test_eval_max_cells);
  Append(&s, "eval_batch", static_cast<int64_t>(o.trainer.eval_batch));
  Append(&s, "grad_shard", static_cast<int64_t>(o.trainer.grad_shard_cells));
  Append(&s, "seed", o.seed);
  return s;
}

std::string RahaJobConfig(int n_label_tuples, uint64_t seed) {
  std::string s = "raha/v1";
  Append(&s, "tuples", static_cast<int64_t>(n_label_tuples));
  Append(&s, "seed", seed);
  return s;
}

std::string RotomJobConfig(int n_label_cells, bool ssl, uint64_t seed) {
  std::string s = "rotom/v1";
  Append(&s, "cells", static_cast<int64_t>(n_label_cells));
  Append(&s, "ssl", ssl);
  Append(&s, "seed", seed);
  return s;
}

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {}

Scheduler::Experiment& Scheduler::NewExperiment(
    const datagen::DatasetPair& pair, std::string system, int repetitions) {
  BIRNN_CHECK(!ran_) << "submit before RunAll()";
  BIRNN_CHECK_GE(repetitions, 0);
  Experiment exp;
  exp.dataset = pair.name;
  exp.system = std::move(system);
  exp.jobs.resize(static_cast<size_t>(repetitions));
  experiments_.push_back(std::move(exp));
  return experiments_.back();
}

Scheduler::ExperimentId Scheduler::SubmitDetector(
    const datagen::DatasetPair& pair, const RunnerOptions& options) {
  Experiment& exp = NewExperiment(
      pair, options.detector.model == "etsb" ? "ETSB-RNN" : "TSB-RNN",
      options.repetitions);
  const uint64_t fingerprint = FingerprintPair(pair);
  const datagen::DatasetPair* pair_ptr = &pair;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    core::DetectorOptions det = options.detector;
    det.seed = options.base_seed + static_cast<uint64_t>(rep);
    Job& job = exp.jobs[static_cast<size_t>(rep)];
    job.cache_key = ArtifactCache::Key(fingerprint, DetectorJobConfig(det));
    job.compute = [pair_ptr, det](int inner_threads) {
      core::DetectorOptions local = det;
      if (inner_threads >= 0) {
        local.train_threads = inner_threads;
        local.eval_threads = inner_threads;
      }
      JobOutcome out;
      const double cpu0 = ThreadCpuSeconds();
      core::ErrorDetector detector(local);
      auto report_or = detector.Run(pair_ptr->dirty, pair_ptr->clean);
      out.train_cpu_seconds = ThreadCpuSeconds() - cpu0;
      if (!report_or.ok()) {
        BIRNN_LOG(Error) << "detector run failed on " << pair_ptr->name
                         << ": " << report_or.status().ToString();
        return out;
      }
      out.ok = true;
      out.metrics = report_or->test_metrics;
      out.history = std::move(report_or->history.epochs);
      out.train_seconds = report_or->history.train_seconds;
      return out;
    };
  }
  return experiments_.size() - 1;
}

Scheduler::ExperimentId Scheduler::SubmitRaha(const datagen::DatasetPair& pair,
                                              int repetitions,
                                              int n_label_tuples,
                                              uint64_t base_seed) {
  Experiment& exp = NewExperiment(pair, "Raha", repetitions);
  const uint64_t fingerprint = FingerprintPair(pair);
  const datagen::DatasetPair* pair_ptr = &pair;
  const auto truth =
      std::make_shared<const std::vector<int32_t>>(BuildTruth(pair));
  for (int rep = 0; rep < repetitions; ++rep) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(rep);
    Job& job = exp.jobs[static_cast<size_t>(rep)];
    job.cache_key = ArtifactCache::Key(
        fingerprint, RahaJobConfig(n_label_tuples, seed));
    job.compute = [pair_ptr, truth, n_label_tuples, seed](int inner_threads) {
      Rng rng(seed);
      raha::RahaOptions options;
      options.n_label_tuples = n_label_tuples;
      options.feature_threads = std::max(0, inner_threads);
      raha::RahaDetector detector(options);
      JobOutcome out;
      Stopwatch timer;
      const double cpu0 = ThreadCpuSeconds();
      std::vector<int64_t> labeled;
      const raha::DetectionMask predicted =
          detector.DetectErrors(pair_ptr->dirty, pair_ptr->clean, &rng,
                                &labeled);
      out.train_seconds = timer.ElapsedSeconds();
      out.train_cpu_seconds = ThreadCpuSeconds() - cpu0;

      // Evaluate on test cells only (tuples that were not labeled).
      const int n_cols = pair_ptr->dirty.num_columns();
      std::vector<uint8_t> in_train(
          static_cast<size_t>(pair_ptr->dirty.num_rows()), 0);
      for (int64_t r : labeled) in_train[static_cast<size_t>(r)] = 1;
      Confusion confusion;
      for (int r = 0; r < pair_ptr->dirty.num_rows(); ++r) {
        if (in_train[static_cast<size_t>(r)]) continue;
        for (int c = 0; c < n_cols; ++c) {
          const size_t i =
              static_cast<size_t>(r) * n_cols + static_cast<size_t>(c);
          confusion.Add(predicted[i], (*truth)[i]);
        }
      }
      out.metrics = Metrics::From(confusion);
      out.ok = true;
      return out;
    };
  }
  return experiments_.size() - 1;
}

Scheduler::ExperimentId Scheduler::SubmitRotom(
    const datagen::DatasetPair& pair, int repetitions, int n_label_cells,
    bool ssl, uint64_t base_seed) {
  Experiment& exp = NewExperiment(pair, ssl ? "Rotom+SSL" : "Rotom",
                                  repetitions);
  const uint64_t fingerprint = FingerprintPair(pair);
  const datagen::DatasetPair* pair_ptr = &pair;
  for (int rep = 0; rep < repetitions; ++rep) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(rep);
    Job& job = exp.jobs[static_cast<size_t>(rep)];
    job.cache_key = ArtifactCache::Key(
        fingerprint, RotomJobConfig(n_label_cells, ssl, seed));
    job.compute = [pair_ptr, n_label_cells, ssl, seed](int /*inner_threads*/) {
      rotom::RotomOptions options;
      options.n_label_cells = n_label_cells;
      options.ssl = ssl;
      options.seed = seed;
      rotom::RotomBaseline baseline(options);
      JobOutcome out;
      Stopwatch timer;
      const double cpu0 = ThreadCpuSeconds();
      auto result = baseline.Detect(pair_ptr->dirty, pair_ptr->clean);
      out.train_cpu_seconds = ThreadCpuSeconds() - cpu0;
      if (!result.ok()) {
        BIRNN_LOG(Error) << "rotom run failed on " << pair_ptr->name << ": "
                         << result.status().ToString();
        return out;
      }
      out.train_seconds = timer.ElapsedSeconds();
      out.metrics = result->test_metrics;
      out.ok = true;
      return out;
    };
  }
  return experiments_.size() - 1;
}

void Scheduler::RunAll() {
  BIRNN_CHECK(!ran_) << "RunAll() may only be called once";
  ran_ = true;
  OBS_SPAN("eval/run_all");
  Stopwatch timer;

  std::vector<Job*> jobs;
  for (Experiment& exp : experiments_) {
    for (Job& job : exp.jobs) jobs.push_back(&job);
  }
  stats_.jobs = static_cast<int64_t>(jobs.size());

  int requested = options_.threads;
  if (requested < 0) requested = HardwareConcurrency();
  const ThreadBudget budget = ComputeThreadBudget(
      HardwareConcurrency(), requested, static_cast<int>(jobs.size()));
  int inner = options_.inner_threads;
  if (inner < 0 && budget.outer > 0) inner = budget.inner;
  stats_.outer_threads = budget.outer;
  stats_.inner_threads = inner;

  ArtifactCache* cache = options_.cache;
  const auto run_job = [cache, inner](Job* job) {
    OBS_SPAN("eval/job");
    Stopwatch job_timer;
    if (cache != nullptr && cache->Lookup(job->cache_key, &job->outcome)) {
      OBS_HISTOGRAM_RECORD("eval/job_seconds", job_timer.ElapsedSeconds());
      return;
    }
    job->outcome = job->compute(inner);
    job->outcome.from_cache = false;
    if (cache != nullptr && job->outcome.ok) {
      const Status status = cache->Store(job->cache_key, job->outcome);
      if (!status.ok()) {
        BIRNN_LOG(Warning) << "cache store failed: " << status.ToString();
      }
    }
    OBS_HISTOGRAM_RECORD("eval/job_seconds", job_timer.ElapsedSeconds());
    OBS_HISTOGRAM_RECORD("eval/job_cpu_seconds",
                         job->outcome.train_cpu_seconds);
  };

  if (budget.outer == 0) {
    for (Job* job : jobs) run_job(job);
  } else {
    ThreadPool pool(budget.outer);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (Job* job : jobs) {
      tasks.push_back([&run_job, job] { run_job(job); });
    }
    pool.SubmitBulk(std::move(tasks));
    pool.Wait();
  }

  for (const Job* job : jobs) {
    if (!job->outcome.ok) {
      ++stats_.failures;
    } else if (job->outcome.from_cache) {
      ++stats_.cache_hits;
    } else {
      ++stats_.computed;
    }
  }
  stats_.wall_seconds = timer.ElapsedSeconds();
  OBS_COUNTER_ADD("eval/jobs", stats_.jobs);
  OBS_COUNTER_ADD("eval/computed", stats_.computed);
  OBS_COUNTER_ADD("eval/cache_hits", stats_.cache_hits);
  OBS_COUNTER_ADD("eval/failures", stats_.failures);
}

RepeatedResult Scheduler::Take(ExperimentId id) {
  BIRNN_CHECK(ran_) << "call RunAll() before Take()";
  BIRNN_CHECK_LT(id, experiments_.size());
  Experiment& exp = experiments_[id];

  RepeatedResult result;
  result.dataset = exp.dataset;
  result.system = exp.system;
  result.harness_wall_seconds = stats_.wall_seconds;

  std::vector<double> ps, rs, f1s, train_times, cpu_times;
  // Repetition order, exactly like the serial loop: failed repetitions are
  // skipped, successful ones aggregate in rep order — bit-identical to the
  // serial harness for every thread count and completion order.
  for (Job& job : exp.jobs) {
    if (!job.outcome.ok) continue;
    result.runs.push_back(job.outcome.metrics);
    result.histories.push_back(std::move(job.outcome.history));
    ps.push_back(job.outcome.metrics.precision);
    rs.push_back(job.outcome.metrics.recall);
    f1s.push_back(job.outcome.metrics.f1);
    train_times.push_back(job.outcome.train_seconds);
    cpu_times.push_back(job.outcome.train_cpu_seconds);
    if (job.outcome.from_cache) ++result.cache_hits;
  }
  result.precision = birnn::Summarize(ps);
  result.recall = birnn::Summarize(rs);
  result.f1 = birnn::Summarize(f1s);
  result.train_seconds = birnn::Summarize(train_times);
  result.train_cpu_seconds = birnn::Summarize(cpu_times);
  return result;
}

}  // namespace birnn::eval
