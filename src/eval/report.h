#ifndef BIRNN_EVAL_REPORT_H_
#define BIRNN_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "eval/runner.h"

namespace birnn::eval {

/// Markdown-ish table writer used by the bench binaries to print the
/// paper's tables.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment:
  ///   | Name  |  P   |  R   |
  ///   |-------|------|------|
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "0.85" / "0.03" formatting used throughout the paper's tables.
std::string Fmt2(double v);

/// Prints a RepeatedResult as one Table 3 row block (mean line + S.D. line).
void AppendTable3Rows(const RepeatedResult& result, TableWriter* writer);

/// Prints an epoch/accuracy series (Fig. 6/7) as aligned columns:
/// epoch, mean, ci95 — consumable by any plotting tool.
void PrintCurve(const std::string& title,
                const std::vector<CurvePoint>& curve, std::ostream& out);

}  // namespace birnn::eval

#endif  // BIRNN_EVAL_REPORT_H_
