#include "sampling/sampler.h"

#include <algorithm>
#include <unordered_set>

#include "raha/detector.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace birnn::sampling {

namespace {
int ClampObs(const data::CellFrame& frame, int n_obs) {
  return static_cast<int>(
      std::min<int64_t>(n_obs, frame.num_tuples()));
}
}  // namespace

StatusOr<std::vector<int64_t>> RandomSetSampler::Select(
    const data::CellFrame& frame, int n_obs, Rng* rng) {
  if (frame.num_tuples() == 0) {
    return Status::InvalidArgument("empty frame");
  }
  const int n = ClampObs(frame, n_obs);
  // ID_all <- unique(df['id_']); ids are dense 0..num_tuples-1 by
  // construction of the preparation step.
  const std::vector<size_t> picks = rng->SampleWithoutReplacement(
      static_cast<size_t>(frame.num_tuples()), static_cast<size_t>(n));
  std::vector<int64_t> out;
  out.reserve(picks.size());
  for (size_t p : picks) out.push_back(static_cast<int64_t>(p));
  return out;
}

StatusOr<std::vector<int64_t>> DiverSetSampler::Select(
    const data::CellFrame& frame, int n_obs, Rng* rng) {
  if (frame.num_tuples() == 0) {
    return Status::InvalidArgument("empty frame");
  }
  const int n = ClampObs(frame, n_obs);
  const int64_t n_tuples = frame.num_tuples();
  const int n_attrs = frame.num_attrs();

  // df_rest bookkeeping: a cell is "live" while its concat value has not
  // been covered by a previously selected tuple.
  std::vector<uint8_t> cell_live(frame.cells().size(), 1);
  std::vector<int> unseen_attr(static_cast<size_t>(n_tuples), 0);
  std::vector<int> empty_count(static_cast<size_t>(n_tuples), 0);
  for (const auto& cell : frame.cells()) {
    unseen_attr[static_cast<size_t>(cell.row_id)]++;
    if (cell.empty) empty_count[static_cast<size_t>(cell.row_id)]++;
  }

  std::vector<uint8_t> chosen(static_cast<size_t>(n_tuples), 0);
  std::unordered_set<std::string> seen_concats;
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));

  for (int pick = 0; pick < n; ++pick) {
    // candidateID: max #unseenAttr, then max #empty, then random.
    int best_unseen = -1;
    int best_empty = -1;
    std::vector<int64_t> candidates;
    for (int64_t id = 0; id < n_tuples; ++id) {
      if (chosen[static_cast<size_t>(id)]) continue;
      const int u = unseen_attr[static_cast<size_t>(id)];
      const int e = empty_count[static_cast<size_t>(id)];
      if (u > best_unseen || (u == best_unseen && e > best_empty)) {
        best_unseen = u;
        best_empty = e;
        candidates.clear();
        candidates.push_back(id);
      } else if (u == best_unseen && e == best_empty) {
        candidates.push_back(id);
      }
    }
    if (candidates.empty()) break;
    const int64_t sampled_id =
        candidates[rng->UniformInt(candidates.size())];
    chosen[static_cast<size_t>(sampled_id)] = 1;
    out.push_back(sampled_id);

    // seenAttr: every concat value of the selected tuple (from the full
    // frame, not just the live cells).
    bool added_any = false;
    for (int a = 0; a < n_attrs; ++a) {
      if (seen_concats.insert(frame.cell(sampled_id, a).concat).second) {
        added_any = true;
      }
    }
    if (!added_any) continue;

    // df_rest <- df[concat not in seenAttr]: kill covered cells and update
    // the per-tuple counters.
    for (size_t i = 0; i < frame.cells().size(); ++i) {
      if (!cell_live[i]) continue;
      const data::CellRecord& cell = frame.cells()[i];
      if (seen_concats.count(cell.concat) == 0) continue;
      cell_live[i] = 0;
      unseen_attr[static_cast<size_t>(cell.row_id)]--;
      if (cell.empty) empty_count[static_cast<size_t>(cell.row_id)]--;
    }
  }
  return out;
}

StatusOr<std::vector<int64_t>> RahaSetSampler::Select(
    const data::CellFrame& frame, int n_obs, Rng* rng) {
  if (frame.num_tuples() == 0) {
    return Status::InvalidArgument("empty frame");
  }
  const int n = ClampObs(frame, n_obs);

  // Rebuild the wide dirty table for the strategy zoo.
  data::Table dirty(frame.attr_names());
  for (int64_t r = 0; r < frame.num_tuples(); ++r) {
    std::vector<std::string> row;
    row.reserve(static_cast<size_t>(frame.num_attrs()));
    for (int a = 0; a < frame.num_attrs(); ++a) {
      row.push_back(frame.cell(r, a).value);
    }
    BIRNN_RETURN_IF_ERROR(dirty.AppendRow(std::move(row)));
  }

  raha::RahaOptions options;
  options.n_label_tuples = n;
  raha::RahaDetector detector(options);
  detector.Analyze(dirty);
  return detector.SampleTuples(n, rng);
}

StatusOr<std::unique_ptr<TrainsetSampler>> MakeSampler(
    const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "randomset" || lower == "random") {
    return std::unique_ptr<TrainsetSampler>(new RandomSetSampler());
  }
  if (lower == "diverset" || lower == "diverse") {
    return std::unique_ptr<TrainsetSampler>(new DiverSetSampler());
  }
  if (lower == "rahaset" || lower == "raha") {
    return std::unique_ptr<TrainsetSampler>(new RahaSetSampler());
  }
  return Status::NotFound("unknown sampler: " + name);
}

}  // namespace birnn::sampling
