#ifndef BIRNN_SAMPLING_SAMPLER_H_
#define BIRNN_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/prepare.h"
#include "util/rng.h"
#include "util/status.h"

namespace birnn::sampling {

/// Selects which tuples the user should label for training (paper §4.2).
/// Implementations return tuple ids ('id_') from the long-format frame.
class TrainsetSampler {
 public:
  virtual ~TrainsetSampler() = default;

  virtual std::string name() const = 0;

  /// Selects `n_obs` distinct tuple ids from `frame` (clamped to the number
  /// of tuples). Only value_x-derived information may be used — never the
  /// labels (the user has not labeled anything yet).
  virtual StatusOr<std::vector<int64_t>> Select(const data::CellFrame& frame,
                                                int n_obs, Rng* rng) = 0;
};

/// Algorithm 1 — RandomSet: uniform sample of tuple ids.
class RandomSetSampler : public TrainsetSampler {
 public:
  std::string name() const override { return "RandomSet"; }
  StatusOr<std::vector<int64_t>> Select(const data::CellFrame& frame,
                                        int n_obs, Rng* rng) override;
};

/// Algorithm 3 — DiverSet: greedily picks the tuple with the most
/// attribute values not seen in previously picked tuples; ties broken by
/// the most empty values, then randomly. After each pick, every cell whose
/// 'concat' value was covered is removed from consideration.
class DiverSetSampler : public TrainsetSampler {
 public:
  std::string name() const override { return "DiverSet"; }
  StatusOr<std::vector<int64_t>> Select(const data::CellFrame& frame,
                                        int n_obs, Rng* rng) override;
};

/// Algorithm 2 — RahaSet: delegates to the Raha reimplementation's
/// cluster-aware sampling (strategies -> feature vectors -> clustering ->
/// cluster-coverage-maximizing tuple picks).
class RahaSetSampler : public TrainsetSampler {
 public:
  std::string name() const override { return "RahaSet"; }
  StatusOr<std::vector<int64_t>> Select(const data::CellFrame& frame,
                                        int n_obs, Rng* rng) override;
};

/// Factory by name ("randomset" | "diverset" | "rahaset", case-insensitive).
StatusOr<std::unique_ptr<TrainsetSampler>> MakeSampler(
    const std::string& name);

}  // namespace birnn::sampling

#endif  // BIRNN_SAMPLING_SAMPLER_H_
