#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace birnn {

namespace {
bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::string TrimLeft(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && IsSpaceChar(s[i])) ++i;
  return std::string(s.substr(i));
}

std::string TrimRight(std::string_view s) {
  size_t n = s.size();
  while (n > 0 && IsSpaceChar(s[n - 1])) --n;
  return std::string(s.substr(0, n));
}

std::string Trim(std::string_view s) { return TrimRight(TrimLeft(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool ParseDouble(std::string_view s, double* out) {
  std::string t = Trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  // strtod handles "1e3", "-.5", "inf"; we reject inf/nan spellings below.
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return false;
  // Reject textual inf/nan — data values like "nan" must not parse as numbers.
  for (char c : t) {
    if (std::isalpha(static_cast<unsigned char>(c)) && c != 'e' && c != 'E') {
      return false;
    }
  }
  *out = v;
  return true;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

}  // namespace birnn
