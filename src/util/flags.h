#ifndef BIRNN_UTIL_FLAGS_H_
#define BIRNN_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace birnn {

/// Minimal command-line flag parser for the bench/example binaries.
///
///   FlagSet flags;
///   flags.AddInt("reps", 3, "number of repetitions");
///   flags.AddBool("paper-fidelity", false, "use the paper's full settings");
///   Status st = flags.Parse(argc, argv);
///   int reps = flags.GetInt("reps");
///
/// Accepts `--name=value`, `--name value`, and bare `--bool-name`.
class FlagSet {
 public:
  void AddInt(const std::string& name, int default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses argv; unknown flags produce InvalidArgument. `--help` sets
  /// help_requested() and returns OK.
  Status Parse(int argc, char** argv);

  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool help_requested() const { return help_requested_; }

  /// Renders a usage string listing all flags with defaults and help text.
  std::string Usage(const std::string& program) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    int int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  Status SetFromString(Flag* flag, const std::string& value);
  const Flag* Find(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace birnn

#endif  // BIRNN_UTIL_FLAGS_H_
