#ifndef BIRNN_UTIL_RNG_H_
#define BIRNN_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace birnn {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All experiments in this repo are reproducible from a single
/// 64-bit seed. Not thread-safe; each worker owns its own Rng.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire-style) to avoid modulo bias.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal via Box–Muller.
  double Normal();
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks one element uniformly.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    BIRNN_CHECK(!v.empty());
    return v[UniformInt(v.size())];
  }

  /// Samples `k` distinct indices uniformly from [0, n) (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace birnn

#endif  // BIRNN_UTIL_RNG_H_
