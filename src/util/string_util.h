#ifndef BIRNN_UTIL_STRING_UTIL_H_
#define BIRNN_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace birnn {

/// Removes leading whitespace (space, tab, CR, LF).
std::string TrimLeft(std::string_view s);

/// Removes trailing whitespace.
std::string TrimRight(std::string_view s);

/// Removes leading and trailing whitespace.
std::string Trim(std::string_view s);

/// Splits on `sep`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character is an ASCII digit (and s is non-empty).
bool IsAllDigits(std::string_view s);

/// Parses a double, accepting surrounding whitespace. Returns false on any
/// trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Levenshtein edit distance; O(|a|*|b|).
size_t EditDistance(std::string_view a, std::string_view b);

/// Formats a double with `digits` fixed decimals ("0.85").
std::string FormatFixed(double value, int digits);

}  // namespace birnn

#endif  // BIRNN_UTIL_STRING_UTIL_H_
