#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace birnn {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

namespace {
double SumSquaredDeviations(const std::vector<double>& xs, double mean) {
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    ss += d * d;
  }
  return ss;
}
}  // namespace

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  return std::sqrt(SumSquaredDeviations(xs, m) /
                   static_cast<double>(xs.size() - 1));
}

double PopulationStdDev(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double m = Mean(xs);
  return std::sqrt(SumSquaredDeviations(xs, m) /
                   static_cast<double>(xs.size()));
}

double ConfidenceInterval95(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  return 1.96 * SampleStdDev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  s.mean = Mean(xs);
  s.stddev = SampleStdDev(xs);
  s.ci95 = ConfidenceInterval95(xs);
  s.min = Min(xs);
  s.max = Max(xs);
  return s;
}

}  // namespace birnn
