#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace birnn {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  has_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  BIRNN_CHECK_GT(bound, 0u);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  BIRNN_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; guard against log(0).
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  BIRNN_CHECK_LE(k, n);
  // Partial Fisher–Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace birnn
