#include "util/logging.h"

namespace birnn {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= static_cast<int>(g_log_level)) {
    std::cerr << stream_.str() << std::endl;
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace birnn
