#include "util/status.h"

namespace birnn {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kUnsupportedBundle:
      return "UnsupportedBundle";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace birnn
