#ifndef BIRNN_UTIL_LOGGING_H_
#define BIRNN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace birnn {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo. Not thread-safe to mutate concurrently with logging.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink. Flushes one line to stderr on destruction.
/// Use via the BIRNN_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but calls std::abort() after flushing.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define BIRNN_LOG(level)                                                \
  ::birnn::internal_logging::LogMessage(::birnn::LogLevel::k##level,    \
                                        __FILE__, __LINE__)             \
      .stream()

/// Internal invariant check: logs and aborts on failure. For programmer
/// errors only — recoverable conditions must go through Status.
#define BIRNN_CHECK(cond)                                                  \
  if (!(cond))                                                             \
  ::birnn::internal_logging::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define BIRNN_CHECK_EQ(a, b) BIRNN_CHECK((a) == (b))
#define BIRNN_CHECK_NE(a, b) BIRNN_CHECK((a) != (b))
#define BIRNN_CHECK_LT(a, b) BIRNN_CHECK((a) < (b))
#define BIRNN_CHECK_LE(a, b) BIRNN_CHECK((a) <= (b))
#define BIRNN_CHECK_GT(a, b) BIRNN_CHECK((a) > (b))
#define BIRNN_CHECK_GE(a, b) BIRNN_CHECK((a) >= (b))

}  // namespace birnn

#endif  // BIRNN_UTIL_LOGGING_H_
