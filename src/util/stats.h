#ifndef BIRNN_UTIL_STATS_H_
#define BIRNN_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace birnn {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double SampleStdDev(const std::vector<double>& xs);

/// Population standard deviation (n denominator); 0 for empty input.
double PopulationStdDev(const std::vector<double>& xs);

/// Half-width of the 95% normal-approximation confidence interval for the
/// mean: 1.96 * s / sqrt(n). 0 for n < 2.
double ConfidenceInterval95(const std::vector<double>& xs);

/// Minimum / maximum; 0 for empty input.
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Summary of a repeated measurement.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // sample std-dev
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
  size_t n = 0;
};

/// Computes all summary statistics in one pass over `xs`.
Summary Summarize(const std::vector<double>& xs);

}  // namespace birnn

#endif  // BIRNN_UTIL_STATS_H_
