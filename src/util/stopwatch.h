#ifndef BIRNN_UTIL_STOPWATCH_H_
#define BIRNN_UTIL_STOPWATCH_H_

#include <chrono>

namespace birnn {

/// Monotonic wall-clock timer. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace birnn

#endif  // BIRNN_UTIL_STOPWATCH_H_
