#ifndef BIRNN_UTIL_STOPWATCH_H_
#define BIRNN_UTIL_STOPWATCH_H_

#include <chrono>
#include <ctime>

namespace birnn {

/// Monotonic wall-clock timer. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU seconds consumed by the *calling thread* so far (POSIX
/// CLOCK_THREAD_CPUTIME_ID; 0.0 where unavailable). Unlike wall clock this
/// is meaningful when experiment jobs overlap: contention inflates a job's
/// wall time but not its thread CPU time. Inner-pool worker time is not
/// attributed to the submitting thread.
inline double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
#else
  return 0.0;
#endif
}

}  // namespace birnn

#endif  // BIRNN_UTIL_STOPWATCH_H_
