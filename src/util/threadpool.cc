#include "util/threadpool.h"

#include "util/logging.h"

namespace birnn {

int HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  BIRNN_CHECK_GE(threads, 0);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // inline mode
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::SubmitBulk(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (auto& task : tasks) task();  // inline mode, in submission order
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& task : tasks) queue_.push_back(std::move(task));
  }
  if (tasks.size() == 1) {
    task_available_.notify_one();
  } else {
    task_available_.notify_all();
  }
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (workers_.empty()) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunk to limit queue overhead: ~4 chunks per worker.
  const int64_t chunks =
      std::min<int64_t>(n, static_cast<int64_t>(workers_.size()) * 4);
  if (chunks <= 0) return;
  const int64_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(chunks));
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t begin = c * per_chunk;
    const int64_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    tasks.push_back([begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) fn(i);
    });
  }
  SubmitBulk(std::move(tasks));
  Wait();
}

}  // namespace birnn
