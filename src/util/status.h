#ifndef BIRNN_UTIL_STATUS_H_
#define BIRNN_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace birnn {

/// Error codes used across the library. Mirrors the RocksDB/Abseil convention:
/// functions that can fail return a `Status` (or `StatusOr<T>`), never throw.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  /// Load-shedding signal: the request was refused because an admission
  /// queue is full (serve::MicroBatcher backpressure). Retryable.
  kOverloaded,
  /// The operation needs bundle metadata this bundle does not carry (e.g.
  /// streaming delta ops against a pre-v3 bundle without frozen column
  /// statistics). Not retryable: re-save the bundle from a current
  /// detector run.
  kUnsupportedBundle,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. Cheap to copy in the OK case
/// (no allocation); carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status UnsupportedBundle(std::string msg) {
    return Status(StatusCode::kUnsupportedBundle, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of a
/// non-OK StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: `return my_table;` works in a StatusOr function.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates a non-OK status to the caller: `BIRNN_RETURN_IF_ERROR(DoX());`
#define BIRNN_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::birnn::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Unwraps a StatusOr into `lhs`, propagating errors:
/// `BIRNN_ASSIGN_OR_RETURN(auto table, ReadCsv(path));`
#define BIRNN_ASSIGN_OR_RETURN(lhs, expr)                     \
  BIRNN_ASSIGN_OR_RETURN_IMPL_(                               \
      BIRNN_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define BIRNN_STATUS_CONCAT_INNER_(a, b) a##b
#define BIRNN_STATUS_CONCAT_(a, b) BIRNN_STATUS_CONCAT_INNER_(a, b)
#define BIRNN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace birnn

#endif  // BIRNN_UTIL_STATUS_H_
