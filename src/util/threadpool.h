#ifndef BIRNN_UTIL_THREADPOOL_H_
#define BIRNN_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace birnn {

/// Number of hardware threads, with a floor of 1 (hardware_concurrency()
/// may report 0). The experiment scheduler budgets its outer/inner
/// parallelism against this.
int HardwareConcurrency();

/// Fixed-size worker pool for embarrassingly parallel work (batch
/// inference, per-dataset experiment fan-out). Tasks are plain
/// `std::function<void()>`; `Wait()` blocks until the queue drains and all
/// workers are idle. Destruction waits for outstanding tasks.
///
/// With `threads == 0` the pool runs tasks inline on the calling thread
/// (deterministic, zero overhead) — the default on single-core machines.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Enqueues a batch of tasks with a single lock acquisition and one
  /// broadcast wakeup, instead of one mutex round-trip per task. In inline
  /// mode (`threads == 0`) the tasks run immediately, in order.
  void SubmitBulk(std::vector<std::function<void()>> tasks);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(i)` for i in [0, n), distributing across the pool, and waits.
  /// `fn` must be safe to call concurrently for distinct i.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace birnn

#endif  // BIRNN_UTIL_THREADPOOL_H_
