#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace birnn {

void FlagSet::AddInt(const std::string& name, int default_value,
                     const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::AddDouble(const std::string& name, double default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::AddString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::AddBool(const std::string& name, bool default_value,
                      const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

Status FlagSet::SetFromString(Flag* flag, const std::string& value) {
  switch (flag->type) {
    case Type::kInt: {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size() || value.empty()) {
        return Status::InvalidArgument("expected integer, got '" + value +
                                       "'");
      }
      flag->int_value = static_cast<int>(v);
      return Status::OK();
    }
    case Type::kDouble: {
      double v = 0.0;
      if (!ParseDouble(value, &v)) {
        return Status::InvalidArgument("expected number, got '" + value + "'");
      }
      flag->double_value = v;
      return Status::OK();
    }
    case Type::kString:
      flag->string_value = value;
      return Status::OK();
    case Type::kBool: {
      const std::string lower = ToLower(value);
      if (lower == "true" || lower == "1" || lower == "yes") {
        flag->bool_value = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument("expected bool, got '" + value + "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    Flag* flag = &it->second;
    if (!has_value) {
      if (flag->type == Type::kBool) {
        flag->bool_value = true;  // bare --flag means true
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      value = argv[++i];
    }
    Status st = SetFromString(flag, value);
    if (!st.ok()) {
      return Status::InvalidArgument("--" + name + ": " + st.message());
    }
  }
  return Status::OK();
}

const FlagSet::Flag* FlagSet::Find(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  BIRNN_CHECK(it != flags_.end()) << "undefined flag --" << name;
  BIRNN_CHECK(it->second.type == type) << "flag --" << name << " type mismatch";
  return &it->second;
}

int FlagSet::GetInt(const std::string& name) const {
  return Find(name, Type::kInt)->int_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  return Find(name, Type::kDouble)->double_value;
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return Find(name, Type::kString)->string_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  return Find(name, Type::kBool)->bool_value;
}

std::string FlagSet::Usage(const std::string& program) const {
  std::ostringstream out;
  out << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (";
    switch (flag.type) {
      case Type::kInt:
        out << "int, default " << flag.int_value;
        break;
      case Type::kDouble:
        out << "double, default " << flag.double_value;
        break;
      case Type::kString:
        out << "string, default \"" << flag.string_value << "\"";
        break;
      case Type::kBool:
        out << "bool, default " << (flag.bool_value ? "true" : "false");
        break;
    }
    out << ") — " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace birnn
