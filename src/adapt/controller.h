#ifndef BIRNN_ADAPT_CONTROLLER_H_
#define BIRNN_ADAPT_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "serve/bundle.h"
#include "stream/session.h"
#include "util/status.h"

namespace birnn::adapt {

/// Supervision oracle for adaptation: the caller's label (0 = clean,
/// 1 = error) for a reservoir cell, or a negative value when the caller
/// has no opinion — the controller then falls back to the cell's own
/// stored verdict (self-training pseudo-label).
using LabelFn = std::function<int(int64_t row_id, int attr)>;

struct ControllerOptions {
  /// Fewest reservoir tuples worth fine-tuning on; below this the trigger
  /// is skipped (never rejected — nothing was attempted).
  int64_t min_reservoir_rows = 16;

  /// Fraction of reservoir tuples held back as the promotion-gate
  /// validation slice. The split is by tuple (never by cell) so no tuple
  /// contributes to both sides, and the slice is chosen by a seeded
  /// shuffle — deterministic for a given reservoir + seed.
  double validation_fraction = 0.25;

  /// Replication factor for training cells of drifted attributes (the
  /// session's latched alarms say which). 1 disables the bias. The
  /// validation slice is never replicated.
  int drift_boost = 3;

  /// Warm fine-tune schedule: a short Fit from the incumbent's weights at
  /// a reduced learning rate (offline training defaults are 120 epochs at
  /// 1e-3).
  int fine_tune_epochs = 8;
  float learning_rate = 5e-4f;

  /// Skip gradient steps entirely and only recalibrate the batch-norm
  /// running statistics on the fine-tune sample
  /// (core::CalibrateBatchNormMemoized) — the cheapest adaptation tier.
  bool bn_only = false;

  /// Promotion gate: the candidate's F1 on the validation slice must be
  /// at least `incumbent_f1 - f1_band`. 0 demands beat-or-match exactly.
  double f1_band = 0.02;

  uint64_t seed = 99;
  int train_threads = 0;
  int eval_batch = 256;

  /// When non-empty, a promoted candidate is also saved here as a full
  /// detector bundle (manifest v3, re-quantized shadow weights) — the
  /// directory the serve plane hands to its hot-reload path.
  std::string candidate_dir;

  /// Template for the remaining Trainer knobs (batch fraction, rho,
  /// gradient sharding...). epochs / learning_rate / seed / threads /
  /// restore_best are overridden by the fields above.
  core::TrainerOptions trainer;
};

enum class AdaptOutcome {
  kPromoted = 0,  ///< candidate passed the gate and is now current.
  kRejected = 1,  ///< candidate failed the gate; incumbent untouched.
  kSkipped = 2,   ///< nothing attempted (no alarm / reservoir too small).
};

const char* AdaptOutcomeName(AdaptOutcome outcome);

/// What one adaptation attempt did — returned to the caller and mirrored
/// into obs counters / serve `stats`.
struct AdaptReport {
  AdaptOutcome outcome = AdaptOutcome::kSkipped;
  std::string reason;               ///< human-readable skip/reject cause.
  std::vector<int> drifted_attrs;   ///< attrs with latched alarms.
  int64_t reservoir_rows = 0;
  int64_t train_cells = 0;          ///< incl. drift-boost replicas.
  int64_t validation_cells = 0;
  double incumbent_f1 = 0.0;        ///< on the validation slice.
  double candidate_f1 = 0.0;
  bool bn_only = false;
  /// The candidate's validation sweep was run twice through fresh engines
  /// and produced byte-identical verdicts (a gate requirement: a
  /// non-reproducible evaluation proves nothing).
  bool deterministic_eval = false;
  double fine_tune_seconds = 0.0;
  int64_t generation = 0;           ///< promotions so far (lineage).
  std::string candidate_dir;        ///< bundle location when saved.
};

/// Turns drift alarms into safely-promoted model updates. The controller
/// holds the incumbent detector; on trigger it snapshots the session's
/// reservoir, biases the fine-tune sample toward the drifted attributes,
/// warm fine-tunes a clone of the incumbent (frozen encoding: same
/// dictionary, length_norm denominators and prepare transforms, so
/// encodings stay comparable across generations), and only promotes the
/// candidate if it beats-or-matches the incumbent on a held-back
/// validation slice under a bit-exact-reproducible evaluation. A rejected
/// candidate is discarded — the incumbent keeps serving untouched.
///
/// Thread-safe; concurrent triggers serialize.
class Controller {
 public:
  explicit Controller(std::shared_ptr<const serve::LoadedDetector> incumbent,
                      ControllerOptions options = {});

  /// True when the session has at least one latched drift alarm.
  bool ShouldAdapt(const stream::TableSession& session) const;

  /// Runs one adaptation attempt against the session's reservoir.
  /// `labels` supervises the fine-tune sample; `gate_labels` (when set)
  /// supervises only the validation slice — a trusted label source that
  /// lets the gate reject a candidate fine-tuned on poisoned or weak
  /// supervision. Unset oracles fall back per cell to the reservoir's
  /// stored verdicts. On kPromoted the candidate replaces `current()`,
  /// the session's drift alarms are reset (the trigger is consumed and
  /// the live windows re-arm), and the bundle is saved to
  /// `options.candidate_dir` when configured. Statuses are reserved for
  /// infrastructure failures (bundle IO); a gate failure is a normal
  /// kRejected report.
  StatusOr<AdaptReport> TriggerAdaptation(stream::TableSession* session,
                                          const LabelFn& labels = nullptr,
                                          const LabelFn& gate_labels = nullptr);

  /// TriggerAdaptation if ShouldAdapt; a kSkipped report otherwise.
  StatusOr<AdaptReport> MaybeAdapt(stream::TableSession* session,
                                   const LabelFn& labels = nullptr,
                                   const LabelFn& gate_labels = nullptr);

  /// The detector to serve with: the most recently promoted candidate, or
  /// the construction-time incumbent while no promotion happened yet.
  std::shared_ptr<const serve::LoadedDetector> current() const;

  /// Lineage counters (also exported as obs counters `adapt.*`).
  int64_t attempts() const;
  int64_t promotions() const;
  int64_t rejections() const;

  const ControllerOptions& options() const { return options_; }

 private:
  StatusOr<AdaptReport> TriggerLocked(stream::TableSession* session,
                                      const LabelFn& labels,
                                      const LabelFn& gate_labels);

  ControllerOptions options_;

  mutable std::mutex mu_;
  std::shared_ptr<const serve::LoadedDetector> current_;
  int64_t attempts_ = 0;
  int64_t promotions_ = 0;
  int64_t rejections_ = 0;
};

}  // namespace birnn::adapt

#endif  // BIRNN_ADAPT_CONTROLLER_H_
