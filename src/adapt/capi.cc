/// extern "C" shim for the birnn_adapt_* surface of include/birnn_c.h:
/// one-shot drift-triggered adaptation driven from an embedded host
/// (database UDF, FFI binding) — see adapt/controller.h for the policy.

#include <memory>
#include <string>
#include <utility>

#include "adapt/controller.h"
#include "birnn_c.h"
#include "stream/capi_internal.h"

using birnn::capi::Fail;
using birnn::capi::FromStatus;
using birnn::capi::Guarded;

namespace {

birnn::adapt::LabelFn WrapLabelFn(birnn_adapt_label_fn fn, void* ctx) {
  if (fn == nullptr) return nullptr;
  return [fn, ctx](int64_t row_id, int attr) -> int {
    return static_cast<int>(fn(ctx, row_id, static_cast<int32_t>(attr)));
  };
}

}  // namespace

extern "C" {

void birnn_adapt_options_init(birnn_adapt_options* options) {
  if (options == nullptr) return;
  const birnn::adapt::ControllerOptions defaults;
  options->min_reservoir_rows = defaults.min_reservoir_rows;
  options->validation_fraction = defaults.validation_fraction;
  options->drift_boost = defaults.drift_boost;
  options->fine_tune_epochs = defaults.fine_tune_epochs;
  options->learning_rate = defaults.learning_rate;
  options->bn_only = defaults.bn_only ? 1 : 0;
  options->f1_band = defaults.f1_band;
  options->seed = defaults.seed;
  options->train_threads = defaults.train_threads;
  options->candidate_dir = nullptr;
}

birnn_status birnn_adapt_run(const birnn_detector* incumbent,
                             birnn_session* session,
                             const birnn_adapt_options* options,
                             birnn_adapt_label_fn labels, void* labels_ctx,
                             birnn_adapt_label_fn gate_labels,
                             void* gate_labels_ctx,
                             birnn_adapt_result* result,
                             birnn_detector** promoted) {
  return Guarded([&]() -> birnn_status {
    if (promoted != nullptr) *promoted = nullptr;
    if (result != nullptr) *result = birnn_adapt_result{};
    if (incumbent == nullptr || incumbent->impl == nullptr) {
      return Fail(BIRNN_INVALID_ARGUMENT, "incumbent is NULL");
    }
    if (session == nullptr || session->impl == nullptr) {
      return Fail(BIRNN_INVALID_ARGUMENT, "session is NULL");
    }
    birnn::adapt::ControllerOptions opts;
    if (options != nullptr) {
      opts.min_reservoir_rows = options->min_reservoir_rows;
      opts.validation_fraction = options->validation_fraction;
      opts.drift_boost = options->drift_boost;
      opts.fine_tune_epochs = options->fine_tune_epochs;
      opts.learning_rate = options->learning_rate;
      opts.bn_only = options->bn_only != 0;
      opts.f1_band = options->f1_band;
      opts.seed = options->seed;
      opts.train_threads = options->train_threads;
      if (options->candidate_dir != nullptr) {
        opts.candidate_dir = options->candidate_dir;
      }
    }
    birnn::adapt::Controller controller(incumbent->impl, std::move(opts));
    auto report = controller.TriggerAdaptation(
        session->impl.get(), WrapLabelFn(labels, labels_ctx),
        WrapLabelFn(gate_labels, gate_labels_ctx));
    if (!report.ok()) return FromStatus(report.status());
    if (result != nullptr) {
      result->outcome = static_cast<int32_t>(report->outcome);
      result->incumbent_f1 = report->incumbent_f1;
      result->candidate_f1 = report->candidate_f1;
      result->reservoir_rows = report->reservoir_rows;
      result->train_cells = report->train_cells;
      result->validation_cells = report->validation_cells;
      result->deterministic_eval = report->deterministic_eval ? 1 : 0;
    }
    if (report->outcome == birnn::adapt::AdaptOutcome::kPromoted &&
        promoted != nullptr) {
      auto* handle = new birnn_detector;
      handle->impl = controller.current();
      *promoted = handle;
    }
    return BIRNN_OK;
  });
}

}  // extern "C"
