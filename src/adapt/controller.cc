#include "adapt/controller.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "core/content_index.h"
#include "core/inference.h"
#include "eval/metrics.h"
#include "obs/obs.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/threadpool.h"

namespace birnn::adapt {

const char* AdaptOutcomeName(AdaptOutcome outcome) {
  switch (outcome) {
    case AdaptOutcome::kPromoted:
      return "promoted";
    case AdaptOutcome::kRejected:
      return "rejected";
    case AdaptOutcome::kSkipped:
      return "skipped";
  }
  return "unknown";
}

Controller::Controller(std::shared_ptr<const serve::LoadedDetector> incumbent,
                       ControllerOptions options)
    : options_(std::move(options)), current_(std::move(incumbent)) {
  BIRNN_CHECK(current_ != nullptr);
}

bool Controller::ShouldAdapt(const stream::TableSession& session) const {
  return !session.drift_alarms().empty();
}

std::shared_ptr<const serve::LoadedDetector> Controller::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

int64_t Controller::attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attempts_;
}

int64_t Controller::promotions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return promotions_;
}

int64_t Controller::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

StatusOr<AdaptReport> Controller::MaybeAdapt(stream::TableSession* session,
                                             const LabelFn& labels,
                                             const LabelFn& gate_labels) {
  if (session == nullptr) {
    return Status::InvalidArgument("MaybeAdapt needs a session");
  }
  if (!ShouldAdapt(*session)) {
    std::lock_guard<std::mutex> lock(mu_);
    AdaptReport report;
    report.outcome = AdaptOutcome::kSkipped;
    report.reason = "no drift alarms latched";
    report.reservoir_rows = session->stats().reservoir_rows;
    report.generation = promotions_;
    return report;
  }
  return TriggerAdaptation(session, labels, gate_labels);
}

StatusOr<AdaptReport> Controller::TriggerAdaptation(
    stream::TableSession* session, const LabelFn& labels,
    const LabelFn& gate_labels) {
  if (session == nullptr) {
    return Status::InvalidArgument("TriggerAdaptation needs a session");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return TriggerLocked(session, labels, gate_labels);
}

StatusOr<AdaptReport> Controller::TriggerLocked(stream::TableSession* session,
                                                const LabelFn& labels,
                                                const LabelFn& gate_labels) {
  OBS_SPAN("adapt.trigger");
  AdaptReport report;
  report.bn_only = options_.bn_only;
  report.generation = promotions_;
  report.drifted_attrs = session->DriftedAttrs();

  const std::vector<stream::ReservoirRow> reservoir =
      session->ReservoirSnapshot();
  report.reservoir_rows = static_cast<int64_t>(reservoir.size());
  const int64_t min_rows = std::max<int64_t>(2, options_.min_reservoir_rows);
  if (report.reservoir_rows < min_rows) {
    report.outcome = AdaptOutcome::kSkipped;
    report.reason = "reservoir holds " + std::to_string(report.reservoir_rows) +
                    " tuples, need " + std::to_string(min_rows);
    return report;
  }

  ++attempts_;
  OBS_COUNTER_ADD("adapt.attempts", 1);
  const serve::LoadedDetector& incumbent = *current_;
  const int n_attrs = incumbent.n_attrs();

  // Per-cell supervision: the oracle's 0/1 answer when it has one, the
  // reservoir's stored verdict otherwise.
  const auto label_of = [](const stream::ReservoirRow& row, int attr,
                           const LabelFn& oracle) -> int32_t {
    if (oracle) {
      const int l = oracle(row.row_id, attr);
      if (l == 0 || l == 1) return l;
    }
    return row.verdicts[static_cast<size_t>(attr)] != 0 ? 1 : 0;
  };
  const LabelFn& gate_oracle = gate_labels ? gate_labels : labels;

  // Held-back validation slice: a seeded shuffle of tuple positions, split
  // by tuple so no tuple feeds both the fine-tune and its own gate.
  std::vector<size_t> order(reservoir.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(options_.seed ^ 0xADA57ULL);
  rng.Shuffle(&order);
  const int64_t val_rows = std::min<int64_t>(
      report.reservoir_rows - 1,
      std::max<int64_t>(1, std::llround(options_.validation_fraction *
                                        static_cast<double>(
                                            report.reservoir_rows))));

  data::EncodedDataset val;
  incumbent.InitQueryDataset(&val);
  std::vector<int32_t> val_truth;
  for (int64_t i = 0; i < val_rows; ++i) {
    const stream::ReservoirRow& row = reservoir[order[static_cast<size_t>(i)]];
    for (int a = 0; a < n_attrs; ++a) {
      serve::EncodedCellInfo info;
      BIRNN_RETURN_IF_ERROR(incumbent.AppendQueryCell(
          a, row.values[static_cast<size_t>(a)], &val, &info));
      const int32_t truth = label_of(row, a, gate_oracle);
      val.labels.back() = truth;
      val_truth.push_back(truth);
    }
  }

  // Fine-tune sample, biased toward the drifted attributes: their cells
  // are replicated `drift_boost` times (deterministic replication — no
  // resampling noise), everything else appears once.
  const std::set<int> drifted(report.drifted_attrs.begin(),
                              report.drifted_attrs.end());
  const int boost = std::max(1, options_.drift_boost);
  data::EncodedDataset train;
  incumbent.InitQueryDataset(&train);
  for (int64_t i = val_rows; i < report.reservoir_rows; ++i) {
    const stream::ReservoirRow& row = reservoir[order[static_cast<size_t>(i)]];
    for (int a = 0; a < n_attrs; ++a) {
      const int32_t label = label_of(row, a, labels);
      const int copies = drifted.count(a) > 0 ? boost : 1;
      for (int c = 0; c < copies; ++c) {
        serve::EncodedCellInfo info;
        BIRNN_RETURN_IF_ERROR(incumbent.AppendQueryCell(
            a, row.values[static_cast<size_t>(a)], &train, &info));
        train.labels.back() = label;
      }
    }
  }
  report.train_cells = train.num_cells();
  report.validation_cells = val.num_cells();

  // Candidate = a clone of the incumbent's weights, warm fine-tuned. The
  // encoding stays frozen (same dictionary / length_norm denominators /
  // prepare transforms), so candidate and incumbent see identical inputs.
  auto model = std::make_unique<core::ErrorDetectionModel>(incumbent.config());
  model->Restore(incumbent.model().Snapshot());

  core::InferenceOptions eval_opts;
  eval_opts.eval_batch = options_.eval_batch;

  Stopwatch fine_tune_timer;
  if (options_.bn_only) {
    ThreadPool pool(std::max(0, options_.train_threads));
    core::CalibrateBatchNormMemoized(model.get(), train, eval_opts, &pool);
  } else {
    core::TrainerOptions t = options_.trainer;
    t.epochs = options_.fine_tune_epochs;
    t.start_epoch = 0;
    t.learning_rate = options_.learning_rate;
    t.seed = options_.seed;
    t.train_threads = options_.train_threads;
    t.eval_batch = options_.eval_batch;
    t.calibrate_batchnorm = true;
    t.track_test_accuracy = false;
    // The gate judges the candidate exactly as fine-tuned; restoring an
    // earlier epoch would make it judge weights nobody would serve.
    t.restore_best = false;
    core::Trainer(t).Fit(model.get(), train);
  }
  report.fine_tune_seconds = fine_tune_timer.ElapsedSeconds();

  // Promotion gate. The candidate sweep runs twice through independent
  // engines and must agree byte for byte — a non-reproducible evaluation
  // proves nothing about the candidate.
  std::vector<uint8_t> pred_incumbent;
  std::vector<uint8_t> pred_candidate;
  std::vector<uint8_t> pred_candidate_again;
  {
    core::InferenceEngine engine(incumbent.model(), eval_opts);
    engine.Predict(val, &pred_incumbent);
  }
  {
    core::InferenceEngine engine(*model, eval_opts);
    engine.Predict(val, &pred_candidate);
  }
  {
    core::InferenceEngine engine(*model, eval_opts);
    engine.Predict(val, &pred_candidate_again);
  }
  report.deterministic_eval = pred_candidate == pred_candidate_again;
  report.incumbent_f1 = eval::Evaluate(pred_incumbent, val_truth).F1();
  report.candidate_f1 = eval::Evaluate(pred_candidate, val_truth).F1();

  const bool gate_ok =
      report.deterministic_eval &&
      report.candidate_f1 + options_.f1_band >= report.incumbent_f1;
  if (!gate_ok) {
    ++rejections_;
    OBS_COUNTER_ADD("adapt.rejections", 1);
    report.outcome = AdaptOutcome::kRejected;
    if (!report.deterministic_eval) {
      report.reason = "candidate evaluation was not bit-reproducible";
    } else {
      report.reason = "candidate F1 " + std::to_string(report.candidate_f1) +
                      " below incumbent " +
                      std::to_string(report.incumbent_f1) + " - band " +
                      std::to_string(options_.f1_band);
    }
    return report;
  }

  // Refresh the frozen column statistics over the full (unreplicated)
  // reservoir under the candidate's weights — the next generation's drift
  // baselines, computed exactly like the offline detector export.
  data::EncodedDataset all;
  incumbent.InitQueryDataset(&all);
  std::vector<int64_t> attr_cells(static_cast<size_t>(n_attrs), 0);
  std::vector<int64_t> attr_empties(static_cast<size_t>(n_attrs), 0);
  for (const stream::ReservoirRow& row : reservoir) {
    for (int a = 0; a < n_attrs; ++a) {
      serve::EncodedCellInfo info;
      BIRNN_RETURN_IF_ERROR(incumbent.AppendQueryCell(
          a, row.values[static_cast<size_t>(a)], &all, &info));
      ++attr_cells[static_cast<size_t>(a)];
      if (info.empty) ++attr_empties[static_cast<size_t>(a)];
    }
  }
  std::vector<uint8_t> pred_all;
  core::InferenceEngine sweep(*model, eval_opts);
  sweep.Predict(all, &pred_all);
  std::vector<int64_t> attr_errors(static_cast<size_t>(n_attrs), 0);
  for (int64_t i = 0; i < all.num_cells(); ++i) {
    if (pred_all[static_cast<size_t>(i)] != 0) {
      ++attr_errors[static_cast<size_t>(all.attrs[static_cast<size_t>(i)])];
    }
  }

  core::TrainedDetector candidate;
  candidate.config = incumbent.config();
  candidate.chars = incumbent.chars();
  candidate.attr_names = incumbent.attr_names();
  candidate.attr_max_value_len = incumbent.attr_max_value_len();
  candidate.prepare = incumbent.prepare();
  candidate.train_unique_cells = sweep.stats().unique_cells;
  candidate.content_fingerprint = core::DatasetContentFingerprint(all);
  candidate.attr_empty_rate.assign(static_cast<size_t>(n_attrs), 0.0f);
  candidate.attr_error_rate.assign(static_cast<size_t>(n_attrs), 0.0f);
  for (int a = 0; a < n_attrs; ++a) {
    const size_t s = static_cast<size_t>(a);
    if (attr_cells[s] > 0) {
      candidate.attr_empty_rate[s] = static_cast<float>(attr_empties[s]) /
                                     static_cast<float>(attr_cells[s]);
      candidate.attr_error_rate[s] = static_cast<float>(attr_errors[s]) /
                                     static_cast<float>(attr_cells[s]);
    }
  }
  candidate.has_frozen_stats = true;
  candidate.model = std::move(model);

  if (!options_.candidate_dir.empty()) {
    BIRNN_RETURN_IF_ERROR(
        serve::SaveDetectorBundle(candidate, options_.candidate_dir));
    report.candidate_dir = options_.candidate_dir;
  }
  BIRNN_ASSIGN_OR_RETURN(serve::LoadedDetector loaded,
                         serve::MakeLoadedDetector(std::move(candidate)));
  current_ =
      std::make_shared<const serve::LoadedDetector>(std::move(loaded));

  ++promotions_;
  OBS_COUNTER_ADD("adapt.promotions", 1);
  OBS_GAUGE_SET("adapt.generation", promotions_);
  // Consume the trigger: the stream is judged fresh from here on.
  session->ResetDriftAlarms();
  report.outcome = AdaptOutcome::kPromoted;
  report.generation = promotions_;
  return report;
}

}  // namespace birnn::adapt
