#ifndef BIRNN_REPAIR_CORRECTOR_H_
#define BIRNN_REPAIR_CORRECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/table.h"

namespace birnn::repair {

/// A proposed correction for one flagged cell. Produced by the repair
/// engines; `source` names the engine, `confidence` orders competing
/// suggestions for the same cell.
struct RepairSuggestion {
  int64_t row = 0;
  int attr = 0;
  std::string original;
  std::string repaired;
  double confidence = 0.0;
  std::string source;
};

/// One repair heuristic. Engines receive the dirty table and the detector's
/// per-cell error mask (row-major, rows*cols) and append suggestions for
/// cells they can fix. This is the paper's §6 future work: coupling the
/// BiRNN *detector* with Baran/HoloClean-style *correction*.
class RepairEngine {
 public:
  virtual ~RepairEngine() = default;
  virtual std::string name() const = 0;
  virtual void Propose(const data::Table& dirty,
                       const std::vector<uint8_t>& error_mask,
                       std::vector<RepairSuggestion>* out) const = 0;
};

/// Inverts formatting-issue corruptions: strips unit suffixes (" oz", "%"),
/// removes thousands separators, drops a prepended date before a clock
/// time, strips a superfluous trailing ".0" in integer columns, and
/// restores leading zeros to the column's dominant width.
class FormatNormalizerEngine : public RepairEngine {
 public:
  std::string name() const override { return "format_normalizer"; }
  void Propose(const data::Table& dirty,
               const std::vector<uint8_t>& error_mask,
               std::vector<RepairSuggestion>* out) const override;
};

/// Baran-style value model: replaces a flagged value with the most frequent
/// column value within `max_edit_distance` edits (fixes typos like
/// 'Birmingxam' -> 'Birmingham').
class DictionaryCorrectorEngine : public RepairEngine {
 public:
  explicit DictionaryCorrectorEngine(int max_edit_distance = 2,
                                     int min_support = 3)
      : max_edit_distance_(max_edit_distance), min_support_(min_support) {}
  std::string name() const override { return "dictionary"; }
  void Propose(const data::Table& dirty,
               const std::vector<uint8_t>& error_mask,
               std::vector<RepairSuggestion>* out) const override;

 private:
  int max_edit_distance_;
  int min_support_;
};

/// Functional-dependency corrector: for approximate FDs lhs -> rhs, a
/// flagged rhs cell is repaired to the dominant rhs value of its lhs group
/// (fixes violated attribute dependencies).
class FdCorrectorEngine : public RepairEngine {
 public:
  explicit FdCorrectorEngine(double min_support = 0.85,
                             double min_dominance = 0.66)
      : min_support_(min_support), min_dominance_(min_dominance) {}
  std::string name() const override { return "fd_corrector"; }
  void Propose(const data::Table& dirty,
               const std::vector<uint8_t>& error_mask,
               std::vector<RepairSuggestion>* out) const override;

 private:
  double min_support_;
  double min_dominance_;
};

/// Duplicate-record corrector: rows sharing the inferred key column vote on
/// every other attribute; flagged minority cells take the majority value
/// (fixes the Flights source-disagreement errors of §5.5).
class DuplicateCorrectorEngine : public RepairEngine {
 public:
  std::string name() const override { return "duplicate_corrector"; }
  void Propose(const data::Table& dirty,
               const std::vector<uint8_t>& error_mask,
               std::vector<RepairSuggestion>* out) const override;
};

/// Missing-value imputer: flagged empty/NaN cells in low-cardinality
/// columns take the column's dominant value when it is dominant enough.
class MissingValueImputerEngine : public RepairEngine {
 public:
  explicit MissingValueImputerEngine(double min_dominance = 0.5)
      : min_dominance_(min_dominance) {}
  std::string name() const override { return "missing_imputer"; }
  void Propose(const data::Table& dirty,
               const std::vector<uint8_t>& error_mask,
               std::vector<RepairSuggestion>* out) const override;

 private:
  double min_dominance_;
};

/// Orchestrates the engines: collects all suggestions, keeps the
/// highest-confidence one per cell, and applies them.
class Repairer {
 public:
  /// Builds a repairer with the default engine set (all of the above).
  Repairer();
  /// Custom engine set (takes ownership).
  explicit Repairer(std::vector<std::unique_ptr<RepairEngine>> engines);

  /// Best suggestion per flagged cell, sorted by (row, attr).
  std::vector<RepairSuggestion> Repair(
      const data::Table& dirty, const std::vector<uint8_t>& error_mask) const;

  /// Returns a copy of `dirty` with the suggestions applied.
  data::Table Apply(const data::Table& dirty,
                    const std::vector<RepairSuggestion>& suggestions) const;

 private:
  std::vector<std::unique_ptr<RepairEngine>> engines_;
};

/// Repair quality against ground truth (cells where dirty != clean):
///   correct_repairs / proposed  (precision)
///   correct_repairs / erroneous (recall)
/// plus the table-level fraction of erroneous cells fully fixed.
struct RepairMetrics {
  int64_t proposed = 0;
  int64_t correct = 0;
  int64_t erroneous_cells = 0;
  double Precision() const {
    return proposed == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(proposed);
  }
  double Recall() const {
    return erroneous_cells == 0 ? 0.0
                                : static_cast<double>(correct) /
                                      static_cast<double>(erroneous_cells);
  }
};

RepairMetrics EvaluateRepairs(const data::Table& dirty,
                              const data::Table& clean,
                              const std::vector<RepairSuggestion>& suggestions);

}  // namespace birnn::repair

#endif  // BIRNN_REPAIR_CORRECTOR_H_
