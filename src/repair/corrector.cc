#include "repair/corrector.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <unordered_map>

#include "raha/strategy.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace birnn::repair {

namespace {

size_t CellIndex(const data::Table& t, int row, int col) {
  return static_cast<size_t>(row) * t.num_columns() + static_cast<size_t>(col);
}

bool IsMissing(const std::string& v) {
  return v.empty() || v == "NaN" || v == "nan";
}

void Suggest(std::vector<RepairSuggestion>* out, int64_t row, int attr,
             const std::string& original, std::string repaired,
             double confidence, const std::string& source) {
  if (repaired == original) return;
  RepairSuggestion s;
  s.row = row;
  s.attr = attr;
  s.original = original;
  s.repaired = std::move(repaired);
  s.confidence = confidence;
  s.source = source;
  out->push_back(std::move(s));
}

}  // namespace

// ---------------------------------------------------- FormatNormalizerEngine

namespace {

/// Strips a known unit suffix; empty result means "no change".
std::string StripUnitSuffix(const std::string& v) {
  static constexpr const char* kSuffixes[] = {" oz", "%", " min", " kg",
                                              " cm"};
  for (const char* suffix : kSuffixes) {
    if (EndsWith(v, suffix) && v.size() > std::string(suffix).size()) {
      std::string head = v.substr(0, v.size() - std::string(suffix).size());
      double parsed = 0.0;
      if (ParseDouble(head, &parsed)) return head;
    }
  }
  return v;
}

std::string StripThousandsSeparators(const std::string& v) {
  if (v.find(',') == std::string::npos) return v;
  std::string out;
  for (char c : v) {
    if (c != ',') out += c;
  }
  double parsed = 0.0;
  return ParseDouble(out, &parsed) ? out : v;
}

/// "12/02/2011 6:55 a.m." -> "6:55 a.m.".
std::string StripDatePrefix(const std::string& v) {
  if (v.size() < 12) return v;
  // Match NN/NN/NNNN<space>.
  const auto digit = [&v](size_t i) {
    return std::isdigit(static_cast<unsigned char>(v[i])) != 0;
  };
  if (digit(0) && digit(1) && v[2] == '/' && digit(3) && digit(4) &&
      v[5] == '/' && digit(6) && digit(7) && digit(8) && digit(9) &&
      v[10] == ' ') {
    return v.substr(11);
  }
  return v;
}

}  // namespace

void FormatNormalizerEngine::Propose(const data::Table& dirty,
                                     const std::vector<uint8_t>& error_mask,
                                     std::vector<RepairSuggestion>* out) const {
  const int n = dirty.num_rows();
  const int m = dirty.num_columns();

  // Column statistics for the ".0" and leading-zero rules.
  std::vector<int> int_count(static_cast<size_t>(m), 0);
  std::vector<int> numeric_count(static_cast<size_t>(m), 0);
  std::vector<std::unordered_map<size_t, int>> width_counts(
      static_cast<size_t>(m));
  for (int c = 0; c < m; ++c) {
    for (int r = 0; r < n; ++r) {
      const std::string& v = dirty.cell(r, c);
      if (IsMissing(v)) continue;
      double parsed = 0.0;
      if (ParseDouble(v, &parsed)) {
        numeric_count[static_cast<size_t>(c)]++;
        if (v.find('.') == std::string::npos) {
          int_count[static_cast<size_t>(c)]++;
        }
      }
      if (IsAllDigits(v)) width_counts[static_cast<size_t>(c)][v.size()]++;
    }
  }

  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < m; ++c) {
      if (!error_mask[CellIndex(dirty, r, c)]) continue;
      const std::string& v = dirty.cell(r, c);
      if (IsMissing(v)) continue;

      std::string fixed = StripUnitSuffix(v);
      if (fixed != v) {
        Suggest(out, r, c, v, fixed, 0.9, name());
        continue;
      }
      fixed = StripThousandsSeparators(v);
      if (fixed != v) {
        Suggest(out, r, c, v, fixed, 0.9, name());
        continue;
      }
      fixed = StripDatePrefix(v);
      if (fixed != v) {
        Suggest(out, r, c, v, fixed, 0.85, name());
        continue;
      }
      // Trailing ".0" in an integer-dominated numeric column.
      const size_t sc = static_cast<size_t>(c);
      if (EndsWith(v, ".0") && numeric_count[sc] > 0 &&
          int_count[sc] * 2 > numeric_count[sc]) {
        Suggest(out, r, c, v, v.substr(0, v.size() - 2), 0.7, name());
        continue;
      }
      // Restore leading zeros to the dominant all-digits width.
      if (IsAllDigits(v) && !width_counts[sc].empty()) {
        size_t dominant_width = 0;
        int best = 0;
        for (const auto& [width, count] : width_counts[sc]) {
          if (count > best) {
            best = count;
            dominant_width = width;
          }
        }
        if (dominant_width > v.size() &&
            best * 2 > static_cast<int>(n)) {
          Suggest(out, r, c, v,
                  std::string(dominant_width - v.size(), '0') + v, 0.6,
                  name());
        }
      }
    }
  }
}

// -------------------------------------------------- DictionaryCorrectorEngine

void DictionaryCorrectorEngine::Propose(
    const data::Table& dirty, const std::vector<uint8_t>& error_mask,
    std::vector<RepairSuggestion>* out) const {
  const int n = dirty.num_rows();
  const int m = dirty.num_columns();
  for (int c = 0; c < m; ++c) {
    std::unordered_map<std::string, int> counts;
    for (int r = 0; r < n; ++r) counts[dirty.cell(r, c)]++;
    if (static_cast<double>(counts.size()) / std::max(1, n) > 0.7) {
      continue;  // near-unique column; a dictionary carries no signal
    }
    std::vector<std::pair<std::string, int>> frequent;
    for (const auto& [v, cnt] : counts) {
      if (cnt >= min_support_ && !IsMissing(v)) frequent.emplace_back(v, cnt);
    }
    if (frequent.empty()) continue;

    for (int r = 0; r < n; ++r) {
      if (!error_mask[CellIndex(dirty, r, c)]) continue;
      const std::string& v = dirty.cell(r, c);
      if (IsMissing(v)) continue;
      const std::string* best = nullptr;
      int best_count = 0;
      size_t best_distance = static_cast<size_t>(max_edit_distance_) + 1;
      for (const auto& [candidate, cnt] : frequent) {
        if (candidate == v) continue;
        if (std::abs(static_cast<int>(candidate.size()) -
                     static_cast<int>(v.size())) > max_edit_distance_) {
          continue;
        }
        const size_t d = EditDistance(v, candidate);
        if (d < best_distance || (d == best_distance && cnt > best_count)) {
          best_distance = d;
          best_count = cnt;
          best = &candidate;
        }
      }
      if (best != nullptr &&
          best_distance <= static_cast<size_t>(max_edit_distance_)) {
        const double confidence =
            0.8 - 0.2 * static_cast<double>(best_distance - 1);
        Suggest(out, r, c, v, *best, confidence, name());
      }
    }
  }
}

// --------------------------------------------------------- FdCorrectorEngine

void FdCorrectorEngine::Propose(const data::Table& dirty,
                                const std::vector<uint8_t>& error_mask,
                                std::vector<RepairSuggestion>* out) const {
  const int n = dirty.num_rows();
  const int m = dirty.num_columns();
  if (n < 4) return;
  for (int lhs = 0; lhs < m; ++lhs) {
    std::unordered_map<std::string, std::vector<int>> groups;
    for (int r = 0; r < n; ++r) groups[dirty.cell(r, lhs)].push_back(r);
    int64_t grouped_rows = 0;
    for (const auto& [key, rows] : groups) {
      if (rows.size() >= 2) grouped_rows += static_cast<int64_t>(rows.size());
    }
    if (grouped_rows < n / 2) continue;

    for (int rhs = 0; rhs < m; ++rhs) {
      if (rhs == lhs) continue;
      int64_t agree = 0;
      int64_t considered = 0;
      struct GroupFix {
        const std::vector<int>* rows;
        std::string dominant;
        double dominance;
      };
      std::vector<GroupFix> fixes;
      for (const auto& [key, rows] : groups) {
        if (rows.size() < 2) continue;
        std::unordered_map<std::string, int> counts;
        for (int r : rows) counts[dirty.cell(r, rhs)]++;
        const std::string* best = nullptr;
        int best_count = 0;
        for (const auto& [v, cnt] : counts) {
          if (cnt > best_count) {
            best_count = cnt;
            best = &v;
          }
        }
        agree += best_count;
        considered += static_cast<int64_t>(rows.size());
        fixes.push_back({&rows, *best,
                         static_cast<double>(best_count) /
                             static_cast<double>(rows.size())});
      }
      if (considered == 0) continue;
      const double support =
          static_cast<double>(agree) / static_cast<double>(considered);
      if (support < min_support_) continue;
      for (const GroupFix& fix : fixes) {
        if (fix.dominance < min_dominance_) continue;
        for (int r : *fix.rows) {
          if (!error_mask[CellIndex(dirty, r, rhs)]) continue;
          if (dirty.cell(r, rhs) == fix.dominant) continue;
          Suggest(out, r, rhs, dirty.cell(r, rhs), fix.dominant,
                  0.5 + 0.4 * fix.dominance, name());
        }
      }
    }
  }
}

// -------------------------------------------------- DuplicateCorrectorEngine

void DuplicateCorrectorEngine::Propose(
    const data::Table& dirty, const std::vector<uint8_t>& error_mask,
    std::vector<RepairSuggestion>* out) const {
  const int key_col = raha::KeyDuplicateStrategy::InferKeyColumn(dirty);
  if (key_col < 0) return;
  const int n = dirty.num_rows();
  const int m = dirty.num_columns();
  std::unordered_map<std::string, std::vector<int>> groups;
  for (int r = 0; r < n; ++r) groups[dirty.cell(r, key_col)].push_back(r);
  for (const auto& [key, rows] : groups) {
    if (rows.size() < 2) continue;
    for (int c = 0; c < m; ++c) {
      if (c == key_col) continue;
      std::unordered_map<std::string, int> counts;
      for (int r : rows) counts[dirty.cell(r, c)]++;
      if (counts.size() == 1) continue;
      const std::string* best = nullptr;
      int best_count = 0;
      for (const auto& [v, cnt] : counts) {
        if (cnt > best_count) {
          best_count = cnt;
          best = &v;
        }
      }
      if (best_count * 2 <= static_cast<int>(rows.size())) continue;
      for (int r : rows) {
        if (!error_mask[CellIndex(dirty, r, c)]) continue;
        if (dirty.cell(r, c) == *best) continue;
        Suggest(out, r, c, dirty.cell(r, c), *best,
                0.5 + 0.45 * static_cast<double>(best_count) /
                          static_cast<double>(rows.size()),
                name());
      }
    }
  }
}

// ------------------------------------------------- MissingValueImputerEngine

void MissingValueImputerEngine::Propose(
    const data::Table& dirty, const std::vector<uint8_t>& error_mask,
    std::vector<RepairSuggestion>* out) const {
  const int n = dirty.num_rows();
  const int m = dirty.num_columns();
  for (int c = 0; c < m; ++c) {
    std::unordered_map<std::string, int> counts;
    int non_missing = 0;
    for (int r = 0; r < n; ++r) {
      const std::string& v = dirty.cell(r, c);
      if (IsMissing(v)) continue;
      counts[v]++;
      ++non_missing;
    }
    if (non_missing == 0) continue;
    const std::string* best = nullptr;
    int best_count = 0;
    for (const auto& [v, cnt] : counts) {
      if (cnt > best_count) {
        best_count = cnt;
        best = &v;
      }
    }
    const double dominance =
        static_cast<double>(best_count) / static_cast<double>(non_missing);
    if (best == nullptr || dominance < min_dominance_) continue;
    for (int r = 0; r < n; ++r) {
      if (!error_mask[CellIndex(dirty, r, c)]) continue;
      if (!IsMissing(dirty.cell(r, c))) continue;
      Suggest(out, r, c, dirty.cell(r, c), *best, 0.3 + 0.4 * dominance,
              name());
    }
  }
}

// ------------------------------------------------------------------ Repairer

Repairer::Repairer() {
  engines_.push_back(std::make_unique<FormatNormalizerEngine>());
  engines_.push_back(std::make_unique<DictionaryCorrectorEngine>());
  engines_.push_back(std::make_unique<FdCorrectorEngine>());
  engines_.push_back(std::make_unique<DuplicateCorrectorEngine>());
  engines_.push_back(std::make_unique<MissingValueImputerEngine>());
}

Repairer::Repairer(std::vector<std::unique_ptr<RepairEngine>> engines)
    : engines_(std::move(engines)) {}

std::vector<RepairSuggestion> Repairer::Repair(
    const data::Table& dirty, const std::vector<uint8_t>& error_mask) const {
  BIRNN_CHECK_EQ(error_mask.size(),
                 static_cast<size_t>(dirty.num_rows()) * dirty.num_columns());
  std::vector<RepairSuggestion> all;
  for (const auto& engine : engines_) {
    engine->Propose(dirty, error_mask, &all);
  }
  // Keep the highest-confidence suggestion per cell.
  std::map<std::pair<int64_t, int>, RepairSuggestion> best;
  for (auto& suggestion : all) {
    const auto key = std::make_pair(suggestion.row, suggestion.attr);
    auto it = best.find(key);
    if (it == best.end() || suggestion.confidence > it->second.confidence) {
      best[key] = std::move(suggestion);
    }
  }
  std::vector<RepairSuggestion> out;
  out.reserve(best.size());
  for (auto& [key, suggestion] : best) out.push_back(std::move(suggestion));
  return out;
}

data::Table Repairer::Apply(
    const data::Table& dirty,
    const std::vector<RepairSuggestion>& suggestions) const {
  data::Table repaired = dirty;
  for (const RepairSuggestion& s : suggestions) {
    repaired.set_cell(static_cast<int>(s.row), s.attr, s.repaired);
  }
  return repaired;
}

RepairMetrics EvaluateRepairs(
    const data::Table& dirty, const data::Table& clean,
    const std::vector<RepairSuggestion>& suggestions) {
  RepairMetrics metrics;
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      if (dirty.cell(r, c) != clean.cell(r, c)) ++metrics.erroneous_cells;
    }
  }
  for (const RepairSuggestion& s : suggestions) {
    ++metrics.proposed;
    if (s.repaired == clean.cell(static_cast<int>(s.row), s.attr)) {
      ++metrics.correct;
    }
  }
  return metrics;
}

}  // namespace birnn::repair
