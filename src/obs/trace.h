#ifndef BIRNN_OBS_TRACE_H_
#define BIRNN_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace birnn::obs {

/// One completed span. `name` must be a string literal (or otherwise outlive
/// the process) — spans store the pointer, never copy the text, so the write
/// path stays allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  int64_t ts_ns = 0;   ///< Begin time, ns since the process trace anchor.
  int64_t dur_ns = 0;  ///< Duration in ns.
};

/// Per-thread bounded span ring. Each thread writes only its own ring; the
/// ring's mutex is therefore uncontended on the hot path and exists solely
/// so exporters can read a consistent view without data races.
class TraceRing {
 public:
  static constexpr size_t kCapacity = 8192;

  void Push(const TraceEvent& event);

  /// Events in arrival order (oldest first). Drops are reflected in
  /// dropped().
  std::vector<TraceEvent> Drain() const;
  int64_t dropped() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  size_t next_ = 0;         ///< Overwrite cursor once the ring is full.
  int64_t dropped_ = 0;     ///< Events overwritten so far.
};

/// Process-wide trace collector: hands each thread its own ring (kept alive
/// by shared_ptr after thread exit) and exports everything recorded so far.
class Tracing {
 public:
  static Tracing& Get();

  /// The calling thread's ring plus its stable sequential tid.
  TraceRing* ThreadRing(int* tid);

  /// Chrome trace_event JSON ("X" complete events, one tid per thread),
  /// loadable in chrome://tracing or https://ui.perfetto.dev.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Total spans recorded (sum over rings, not counting overwritten ones)
  /// and total overwritten.
  int64_t EventCount() const;
  int64_t DroppedCount() const;

  /// Empties every ring (tids are retained). For tests and benchmarks.
  void Clear();

 private:
  Tracing() = default;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<TraceRing>> rings_;
};

/// Nanoseconds since the process trace anchor (a static steady_clock origin
/// captured on first use).
int64_t TraceNowNs();

/// RAII span: records one TraceEvent into the calling thread's ring on
/// destruction. Checks obs::Enabled() once, at construction; a span that
/// started disabled stays muted even if tracing is re-enabled mid-flight.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;  ///< nullptr when muted.
  int64_t begin_ns_ = 0;
};

}  // namespace birnn::obs

#endif  // BIRNN_OBS_TRACE_H_
