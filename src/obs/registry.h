#ifndef BIRNN_OBS_REGISTRY_H_
#define BIRNN_OBS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace birnn::obs {

/// Writers are striped: each thread hashes to one of `kStripes`
/// cache-line-separated cells, so concurrent updates from up to 16 threads
/// never contend on a cache line and more threads contend only pairwise.
/// Reads (scrapes) sum the stripes — they are rare and may be momentarily
/// inconsistent across metrics, which is fine for monitoring.
inline constexpr int kStripes = 16;

/// Fixed exponential bucket layout shared by every histogram: bucket `i`
/// holds values in (2^(i-22), 2^(i-21)], i.e. upper bounds from 2^-21
/// (~0.5 us when recording seconds) through 2^13 (8192), with the last
/// bucket catching everything above. One layout serves both latency
/// histograms (seconds) and size histograms (cells per batch) — percentile
/// estimates are exact to within one power of two and are clamped to the
/// observed [min, max].
inline constexpr int kHistogramBuckets = 36;

/// Upper bound of bucket `i` (+inf for the last bucket).
double BucketUpperBound(int i);

/// Bucket index for value `v` (values <= 0 land in bucket 0).
int BucketIndex(double v);

class Registry;
struct MetricSnapshot;

/// Base of every metric: construction registers the object with the global
/// Registry under `name`; destruction unregisters it and folds the final
/// value into the registry's retained aggregates, so process-wide totals
/// survive component teardown (a scrape after a served model unloads still
/// shows its request counts). Metrics with the same name aggregate on
/// scrape (sum for counters/gauges, merge for histograms), so per-instance
/// metrics — e.g. one MicroBatcher per served model — can share a family
/// name while their owners read their own handles for instance-local
/// accounting.
class Metric {
 public:
  enum class Type { kCounter, kGauge, kHistogram };

  Metric(std::string name, Type type);
  virtual ~Metric();

  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  const std::string& name() const { return name_; }
  Type type() const { return type_; }

 protected:
  /// Derived destructors call this with their final aggregate — the base
  /// destructor runs after the derived object is gone and can no longer
  /// read it. Unregisters and retains in one step; idempotent.
  void Retire(const MetricSnapshot& final_snapshot);

 private:
  std::string name_;
  Type type_;
  bool retired_ = false;
};

/// Monotonic counter. Add() is wait-free: one relaxed fetch_add on the
/// calling thread's stripe.
class Counter : public Metric {
 public:
  explicit Counter(std::string name);
  ~Counter() override;

  void Add(int64_t delta = 1);

  /// Aggregate over all stripes (relaxed; exact once writers quiesce).
  int64_t Value() const;

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// Instantaneous value (queue depth, in-flight work). Not striped: sets and
/// deltas target one atomic, which is the only way "current value" stays
/// meaningful across threads.
class Gauge : public Metric {
 public:
  explicit Gauge(std::string name);
  /// Retains the final value — balanced gauges (queue depth) should be
  /// back at zero by the time their owner dies.
  ~Gauge() override;

  void Set(double v);
  void Add(double delta);
  /// Monotonic high-water mark update.
  void KeepMax(double v);
  double Value() const;

 private:
  std::atomic<double> v_{0.0};
};

/// Aggregated view of one histogram (or of several merged same-name
/// histograms).
struct HistogramData {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty.
  double max = 0.0;  ///< 0 when empty.
  std::array<int64_t, kHistogramBuckets> buckets{};

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  /// Percentile estimate for q in [0, 1]: the upper bound of the bucket
  /// holding the q-th sample, clamped to [min, max]. 0 when empty; exact
  /// for a single sample; monotone in q.
  double Quantile(double q) const;

  void Merge(const HistogramData& other);
};

/// Fixed-bucket histogram with striped writers. Record() is two relaxed
/// fetch_adds plus a CAS-max — no locks anywhere on the write path.
class Histogram : public Metric {
 public:
  explicit Histogram(std::string name);
  ~Histogram() override;

  void Record(double v);
  HistogramData Snapshot() const;

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::array<Stripe, kStripes> stripes_;
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// One scraped metric, already aggregated across same-name instances.
struct MetricSnapshot {
  std::string name;
  Metric::Type type = Metric::Type::kCounter;
  int64_t counter = 0;
  double gauge = 0.0;
  HistogramData histogram;
};

/// Global directory of live metrics. Components either own their metric
/// objects (per-instance accounting that also lands on the registry) or go
/// through the OBS_* macros in obs/obs.h, which lazily create
/// process-lifetime metrics per call site.
class Registry {
 public:
  static Registry& Get();

  /// Aggregated snapshot of every live metric, grouped by (name, type) and
  /// sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Prometheus-style text exposition: counters and gauges as single
  /// samples, histograms as summaries (quantile 0.5/0.95/0.99 plus _sum and
  /// _count). Names are sanitized to [a-zA-Z0-9_] and prefixed "birnn_".
  std::string TextExposition() const;

 private:
  friend class Metric;
  Registry() = default;
  void Register(Metric* metric);
  void Unregister(Metric* metric);
  /// Unregister + fold the metric's final aggregate into `retained_` so
  /// scrapes after the owner's teardown still see its totals.
  void UnregisterAndRetain(Metric* metric, const MetricSnapshot& final_value);

  mutable std::mutex mutex_;
  std::vector<Metric*> metrics_;
  /// (name, type) -> aggregate of every dead same-name metric.
  std::map<std::pair<std::string, int>, MetricSnapshot> retained_;
};

/// Runtime kill switch for the OBS_* macro sites (and spans). Direct metric
/// API calls — e.g. a MicroBatcher bumping its own counters — always
/// record, so component stats stay correct when ambient instrumentation is
/// muted. Defaults to enabled.
void SetEnabled(bool enabled);
bool Enabled();

/// Prometheus-style sample name for a metric path: "serve/batcher/cells"
/// -> "birnn_serve_batcher_cells".
std::string SanitizeMetricName(const std::string& name);

namespace internal {

/// Per-call-site metric factories for the OBS_* macros: the returned object
/// is intentionally leaked so it outlives every static destructor that
/// might still record into it.
Counter& LeakyCounter(const char* name);
Gauge& LeakyGauge(const char* name);
Histogram& LeakyHistogram(const char* name);

/// Stable stripe index of the calling thread.
int ThreadStripe();

}  // namespace internal
}  // namespace birnn::obs

#endif  // BIRNN_OBS_REGISTRY_H_
