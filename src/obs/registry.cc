#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

namespace birnn::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Lock-free CAS helpers; std::atomic<double>::fetch_add is C++20 but not
/// universally lowered well, and CAS loops are portable and TSAN-clean.
void AtomicAddDouble(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (cur < v &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (cur > v &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string FormatSample(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

double BucketUpperBound(int i) {
  if (i >= kHistogramBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, i - 21);
}

int BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // also catches NaN
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  // v <= 2^(exp-1) exactly when the mantissa is 0.5.
  const int i = mantissa == 0.5 ? exp + 20 : exp + 21;
  return std::clamp(i, 0, kHistogramBuckets - 1);
}

// --------------------------------------------------------------- lifecycle

Metric::Metric(std::string name, Type type)
    : name_(std::move(name)), type_(type) {
  Registry::Get().Register(this);
}

Metric::~Metric() {
  // Normally the derived destructor has already Retire()d with its final
  // value; this is the fallback for a metric that dies mid-construction.
  if (!retired_) Registry::Get().Unregister(this);
}

void Metric::Retire(const MetricSnapshot& final_snapshot) {
  if (retired_) return;
  retired_ = true;
  Registry::Get().UnregisterAndRetain(this, final_snapshot);
}

// ----------------------------------------------------------------- Counter

Counter::Counter(std::string name)
    : Metric(std::move(name), Type::kCounter) {}

Counter::~Counter() {
  MetricSnapshot final_value;
  final_value.name = name();
  final_value.type = type();
  final_value.counter = Value();
  Retire(final_value);
}

void Counter::Add(int64_t delta) {
  cells_[static_cast<size_t>(internal::ThreadStripe())].v.fetch_add(
      delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

// ------------------------------------------------------------------- Gauge

Gauge::Gauge(std::string name) : Metric(std::move(name), Type::kGauge) {}

Gauge::~Gauge() {
  MetricSnapshot final_value;
  final_value.name = name();
  final_value.type = type();
  final_value.gauge = Value();
  Retire(final_value);
}

void Gauge::Set(double v) { v_.store(v, std::memory_order_relaxed); }

void Gauge::Add(double delta) { AtomicAddDouble(&v_, delta); }

void Gauge::KeepMax(double v) { AtomicMaxDouble(&v_, v); }

double Gauge::Value() const { return v_.load(std::memory_order_relaxed); }

// --------------------------------------------------------------- Histogram

Histogram::Histogram(std::string name)
    : Metric(std::move(name), Type::kHistogram),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

Histogram::~Histogram() {
  MetricSnapshot final_value;
  final_value.name = name();
  final_value.type = type();
  final_value.histogram = Snapshot();
  Retire(final_value);
}

void Histogram::Record(double v) {
  Stripe& stripe = stripes_[static_cast<size_t>(internal::ThreadStripe())];
  stripe.buckets[static_cast<size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&stripe.sum, v);
  AtomicMinDouble(&min_, v);
  AtomicMaxDouble(&max_, v);
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  for (const Stripe& stripe : stripes_) {
    for (int i = 0; i < kHistogramBuckets; ++i) {
      data.buckets[static_cast<size_t>(i)] +=
          stripe.buckets[static_cast<size_t>(i)].load(
              std::memory_order_relaxed);
    }
    data.count += stripe.count.load(std::memory_order_relaxed);
    data.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  if (data.count > 0) {
    data.min = min_.load(std::memory_order_relaxed);
    data.max = max_.load(std::memory_order_relaxed);
  }
  return data;
}

double HistogramData::Quantile(double q) const {
  if (count <= 0) return 0.0;
  const double rank = std::clamp(q, 0.0, 1.0) * static_cast<double>(count);
  int64_t cumulative = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[static_cast<size_t>(i)];
    if (cumulative > 0 && static_cast<double>(cumulative) >= rank) {
      return std::clamp(BucketUpperBound(i), min, max);
    }
  }
  return max;
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count <= 0) return;
  if (count <= 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    buckets[static_cast<size_t>(i)] += other.buckets[static_cast<size_t>(i)];
  }
}

// ---------------------------------------------------------------- Registry

Registry& Registry::Get() {
  static Registry* registry = new Registry();  // leaked: outlives statics
  return *registry;
}

void Registry::Register(Metric* metric) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.push_back(metric);
}

void Registry::Unregister(Metric* metric) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.erase(std::remove(metrics_.begin(), metrics_.end(), metric),
                 metrics_.end());
}

void Registry::UnregisterAndRetain(Metric* metric,
                                   const MetricSnapshot& final_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.erase(std::remove(metrics_.begin(), metrics_.end(), metric),
                 metrics_.end());
  const auto key =
      std::make_pair(metric->name(), static_cast<int>(metric->type()));
  MetricSnapshot& slot = retained_[key];
  slot.name = metric->name();
  slot.type = metric->type();
  slot.counter += final_value.counter;
  slot.gauge += final_value.gauge;
  slot.histogram.Merge(final_value.histogram);
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::map<std::pair<std::string, int>, MetricSnapshot> merged;
  std::lock_guard<std::mutex> lock(mutex_);
  merged = retained_;
  for (const Metric* metric : metrics_) {
    const auto key =
        std::make_pair(metric->name(), static_cast<int>(metric->type()));
    MetricSnapshot& slot = merged[key];
    slot.name = metric->name();
    slot.type = metric->type();
    switch (metric->type()) {
      case Metric::Type::kCounter:
        slot.counter += static_cast<const Counter*>(metric)->Value();
        break;
      case Metric::Type::kGauge:
        slot.gauge += static_cast<const Gauge*>(metric)->Value();
        break;
      case Metric::Type::kHistogram:
        slot.histogram.Merge(
            static_cast<const Histogram*>(metric)->Snapshot());
        break;
    }
  }
  std::vector<MetricSnapshot> out;
  out.reserve(merged.size());
  for (auto& [key, snapshot] : merged) out.push_back(std::move(snapshot));
  return out;
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out = "birnn_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string Registry::TextExposition() const {
  std::string out;
  for (const MetricSnapshot& m : Snapshot()) {
    const std::string sample = SanitizeMetricName(m.name);
    switch (m.type) {
      case Metric::Type::kCounter:
        out += "# TYPE " + sample + " counter\n";
        out += sample + " " + std::to_string(m.counter) + "\n";
        break;
      case Metric::Type::kGauge:
        out += "# TYPE " + sample + " gauge\n";
        out += sample + " " + FormatSample(m.gauge) + "\n";
        break;
      case Metric::Type::kHistogram:
        out += "# TYPE " + sample + " summary\n";
        out += sample + "{quantile=\"0.5\"} " +
               FormatSample(m.histogram.Quantile(0.5)) + "\n";
        out += sample + "{quantile=\"0.95\"} " +
               FormatSample(m.histogram.Quantile(0.95)) + "\n";
        out += sample + "{quantile=\"0.99\"} " +
               FormatSample(m.histogram.Quantile(0.99)) + "\n";
        out += sample + "_sum " + FormatSample(m.histogram.sum) + "\n";
        out += sample + "_count " + std::to_string(m.histogram.count) + "\n";
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------- internal

namespace internal {

int ThreadStripe() {
  static std::atomic<uint32_t> next{0};
  thread_local const int stripe = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(kStripes));
  return stripe;
}

Counter& LeakyCounter(const char* name) { return *new Counter(name); }
Gauge& LeakyGauge(const char* name) { return *new Gauge(name); }
Histogram& LeakyHistogram(const char* name) { return *new Histogram(name); }

}  // namespace internal
}  // namespace birnn::obs
