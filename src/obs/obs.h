#ifndef BIRNN_OBS_OBS_H_
#define BIRNN_OBS_OBS_H_

/// Ambient instrumentation macros. Each OBS_* macro lazily creates one
/// process-lifetime metric per call site (thread-safe static init) and
/// checks the runtime obs::Enabled() switch before recording. With
/// BIRNN_OBS_ENABLED=0 (the BIRNN_OBS=OFF CMake option) every macro
/// compiles to nothing — arguments are unevaluated — while the direct
/// metric API in registry.h keeps working, so component-owned stats
/// (MicroBatcher, ArtifactCache) are unaffected by the build flavor.

#include "obs/registry.h"
#include "obs/trace.h"

#ifndef BIRNN_OBS_ENABLED
#define BIRNN_OBS_ENABLED 1
#endif

#define BIRNN_OBS_CONCAT_INNER_(a, b) a##b
#define BIRNN_OBS_CONCAT_(a, b) BIRNN_OBS_CONCAT_INNER_(a, b)

#if BIRNN_OBS_ENABLED

/// Scoped trace span; `name` must be a string literal. Records a Chrome
/// trace_event "X" slice into the calling thread's ring buffer.
#define OBS_SPAN(name)                                        \
  ::birnn::obs::ScopedSpan BIRNN_OBS_CONCAT_(_obs_span_,      \
                                             __COUNTER__) {   \
    name                                                      \
  }

#define OBS_COUNTER_ADD(name, delta)                                     \
  do {                                                                   \
    if (::birnn::obs::Enabled()) {                                       \
      static ::birnn::obs::Counter& _obs_metric =                        \
          ::birnn::obs::internal::LeakyCounter(name);                    \
      _obs_metric.Add(delta);                                            \
    }                                                                    \
  } while (0)

#define OBS_GAUGE_SET(name, value)                                       \
  do {                                                                   \
    if (::birnn::obs::Enabled()) {                                       \
      static ::birnn::obs::Gauge& _obs_metric =                          \
          ::birnn::obs::internal::LeakyGauge(name);                      \
      _obs_metric.Set(value);                                            \
    }                                                                    \
  } while (0)

#define OBS_GAUGE_ADD(name, delta)                                       \
  do {                                                                   \
    if (::birnn::obs::Enabled()) {                                       \
      static ::birnn::obs::Gauge& _obs_metric =                          \
          ::birnn::obs::internal::LeakyGauge(name);                      \
      _obs_metric.Add(delta);                                            \
    }                                                                    \
  } while (0)

#define OBS_HISTOGRAM_RECORD(name, value)                                \
  do {                                                                   \
    if (::birnn::obs::Enabled()) {                                       \
      static ::birnn::obs::Histogram& _obs_metric =                      \
          ::birnn::obs::internal::LeakyHistogram(name);                  \
      _obs_metric.Record(value);                                         \
    }                                                                    \
  } while (0)

#else  // !BIRNN_OBS_ENABLED

// sizeof keeps the operands syntactically checked but unevaluated, so the
// OFF build costs nothing at runtime and still catches typos at compile
// time (no unused-variable warnings under -Wall -Wextra either).
#define OBS_SPAN(name)                 \
  do {                                 \
    (void)sizeof(name);                \
  } while (0)
#define OBS_COUNTER_ADD(name, delta)   \
  do {                                 \
    (void)sizeof(name);                \
    (void)sizeof(delta);               \
  } while (0)
#define OBS_GAUGE_SET(name, value)     \
  do {                                 \
    (void)sizeof(name);                \
    (void)sizeof(value);               \
  } while (0)
#define OBS_GAUGE_ADD(name, delta)     \
  do {                                 \
    (void)sizeof(name);                \
    (void)sizeof(delta);               \
  } while (0)
#define OBS_HISTOGRAM_RECORD(name, value) \
  do {                                    \
    (void)sizeof(name);                   \
    (void)sizeof(value);                  \
  } while (0)

#endif  // BIRNN_OBS_ENABLED

#endif  // BIRNN_OBS_OBS_H_
