#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/registry.h"

namespace birnn::obs {

// ---------------------------------------------------------------- TraceRing

void TraceRing::Push(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() < kCapacity) {
    events_.push_back(event);
    return;
  }
  events_[next_] = event;
  next_ = (next_ + 1) % kCapacity;
  ++dropped_;
}

std::vector<TraceEvent> TraceRing::Drain() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  // Once the ring wraps, `next_` points at the oldest surviving event.
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(next_ + i) % events_.size()]);
  }
  return out;
}

int64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  next_ = 0;
  dropped_ = 0;
}

// ------------------------------------------------------------------ Tracing

Tracing& Tracing::Get() {
  static Tracing* tracing = new Tracing();  // leaked: outlives statics
  return *tracing;
}

TraceRing* Tracing::ThreadRing(int* tid) {
  struct ThreadSlot {
    std::shared_ptr<TraceRing> ring;
    int tid = 0;
  };
  thread_local ThreadSlot slot = [] {
    ThreadSlot s;
    s.ring = std::make_shared<TraceRing>();
    Tracing& tracing = Get();
    std::lock_guard<std::mutex> lock(tracing.mutex_);
    s.tid = static_cast<int>(tracing.rings_.size());
    tracing.rings_.push_back(s.ring);
    return s;
  }();
  if (tid != nullptr) *tid = slot.tid;
  return slot.ring.get();
}

std::string Tracing::ChromeTraceJson() const {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (size_t tid = 0; tid < rings.size(); ++tid) {
    for (const TraceEvent& e : rings[tid]->Drain()) {
      // Chrome's trace_event format takes microseconds as doubles; keep
      // sub-microsecond resolution with fractional values.
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%zu,"
                    "\"ts\":%.3f,\"dur\":%.3f}",
                    first ? "" : ",", e.name, tid,
                    static_cast<double>(e.ts_ns) / 1000.0,
                    static_cast<double>(e.dur_ns) / 1000.0);
      out += buf;
      first = false;
    }
  }
  out += "]}";
  return out;
}

Status Tracing::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open trace file: " + path);
  }
  file << ChromeTraceJson();
  file.flush();
  if (!file) {
    return Status::IoError("failed writing trace file: " + path);
  }
  return Status::OK();
}

int64_t Tracing::EventCount() const {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  int64_t total = 0;
  for (const auto& ring : rings) {
    total += static_cast<int64_t>(ring->Drain().size());
  }
  return total;
}

int64_t Tracing::DroppedCount() const {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  int64_t total = 0;
  for (const auto& ring : rings) total += ring->dropped();
  return total;
}

void Tracing::Clear() {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) ring->Clear();
}

int64_t TraceNowNs() {
  static const auto anchor = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - anchor)
      .count();
}

// --------------------------------------------------------------- ScopedSpan

ScopedSpan::ScopedSpan(const char* name)
    : name_(Enabled() ? name : nullptr) {
  if (name_ != nullptr) begin_ns_ = TraceNowNs();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const int64_t end_ns = TraceNowNs();
  Tracing::Get().ThreadRing(nullptr)->Push(
      TraceEvent{name_, begin_ns_, end_ns - begin_ns_});
}

}  // namespace birnn::obs
