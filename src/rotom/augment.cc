#include "rotom/augment.h"

#include <cctype>
#include <sstream>

#include "util/string_util.h"

namespace birnn::rotom {

const std::vector<AugmentOp>& AllAugmentOps() {
  static const auto& ops = *new std::vector<AugmentOp>{
      AugmentOp::kCharSwap,     AugmentOp::kCharDrop,
      AugmentOp::kCharDup,      AugmentOp::kCharNoise,
      AugmentOp::kTokenShuffle, AugmentOp::kDigitJitter,
      AugmentOp::kCaseFlip,
  };
  return ops;
}

const char* AugmentOpName(AugmentOp op) {
  switch (op) {
    case AugmentOp::kCharSwap:
      return "char_swap";
    case AugmentOp::kCharDrop:
      return "char_drop";
    case AugmentOp::kCharDup:
      return "char_dup";
    case AugmentOp::kCharNoise:
      return "char_noise";
    case AugmentOp::kTokenShuffle:
      return "token_shuffle";
    case AugmentOp::kDigitJitter:
      return "digit_jitter";
    case AugmentOp::kCaseFlip:
      return "case_flip";
  }
  return "?";
}

std::string ApplyAugment(AugmentOp op, const std::string& value, Rng* rng) {
  if (value.empty()) return value;
  std::string out = value;
  switch (op) {
    case AugmentOp::kCharSwap: {
      if (out.size() < 2) return out;
      const size_t pos = rng->UniformInt(out.size() - 1);
      std::swap(out[pos], out[pos + 1]);
      return out;
    }
    case AugmentOp::kCharDrop: {
      const size_t pos = rng->UniformInt(out.size());
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
      return out;
    }
    case AugmentOp::kCharDup: {
      const size_t pos = rng->UniformInt(out.size());
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), out[pos]);
      return out;
    }
    case AugmentOp::kCharNoise: {
      static constexpr char kNoise[] =
          "abcdefghijklmnopqrstuvwxyz0123456789.-";
      const size_t pos = rng->UniformInt(out.size());
      out[pos] = kNoise[rng->UniformInt(sizeof(kNoise) - 1)];
      return out;
    }
    case AugmentOp::kTokenShuffle: {
      std::vector<std::string> tokens = Split(out, ' ');
      if (tokens.size() < 2) return out;
      rng->Shuffle(&tokens);
      return Join(tokens, " ");
    }
    case AugmentOp::kDigitJitter: {
      std::vector<size_t> digits;
      for (size_t i = 0; i < out.size(); ++i) {
        if (std::isdigit(static_cast<unsigned char>(out[i]))) {
          digits.push_back(i);
        }
      }
      if (digits.empty()) return out;
      const size_t pos = digits[rng->UniformInt(digits.size())];
      out[pos] = static_cast<char>('0' + rng->UniformInt(10));
      return out;
    }
    case AugmentOp::kCaseFlip: {
      std::vector<size_t> letters;
      for (size_t i = 0; i < out.size(); ++i) {
        if (std::isalpha(static_cast<unsigned char>(out[i]))) {
          letters.push_back(i);
        }
      }
      if (letters.empty()) return out;
      const size_t pos = letters[rng->UniformInt(letters.size())];
      const auto c = static_cast<unsigned char>(out[pos]);
      out[pos] = std::isupper(c) ? static_cast<char>(std::tolower(c))
                                 : static_cast<char>(std::toupper(c));
      return out;
    }
  }
  return out;
}

std::string PolicyName(const AugmentPolicy& policy) {
  std::string out;
  for (size_t i = 0; i < policy.size(); ++i) {
    if (i > 0) out += "+";
    out += AugmentOpName(policy[i]);
  }
  return out.empty() ? "identity" : out;
}

std::string ApplyPolicy(const AugmentPolicy& policy, const std::string& value,
                        Rng* rng) {
  std::string out = value;
  for (AugmentOp op : policy) out = ApplyAugment(op, out, rng);
  return out;
}

std::vector<AugmentPolicy> CandidatePolicies() {
  std::vector<AugmentPolicy> out;
  const auto& ops = AllAugmentOps();
  for (AugmentOp a : ops) out.push_back({a});
  for (AugmentOp a : ops) {
    for (AugmentOp b : ops) {
      if (a != b) out.push_back({a, b});
    }
  }
  return out;
}

}  // namespace birnn::rotom
