#include "rotom/baseline.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace birnn::rotom {

namespace {

/// FNV-1a hash for feature bucketing.
uint32_t Fnv1a(const char* data, size_t len, uint32_t seed) {
  uint32_t h = 2166136261u ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 16777619u;
  }
  return h;
}

/// Sparse hashed char 1-/2-gram features of "attr<sep>value", plus a
/// length bucket. Returned as bucket indices (with repeats = counts).
void Featurize(int attr, const std::string& value, int dim,
               std::vector<int>* buckets) {
  buckets->clear();
  const std::string tagged = std::to_string(attr) + '\x1F' + value;
  for (size_t i = 0; i < tagged.size(); ++i) {
    buckets->push_back(static_cast<int>(
        Fnv1a(tagged.data() + i, 1, 0x1u) % static_cast<uint32_t>(dim)));
    if (i + 1 < tagged.size()) {
      buckets->push_back(static_cast<int>(
          Fnv1a(tagged.data() + i, 2, 0x2u) % static_cast<uint32_t>(dim)));
    }
  }
  // Length bucket (log scale) and attribute id bucket.
  const int len_bucket = static_cast<int>(
      std::min(15.0, std::log2(static_cast<double>(value.size()) + 1.0)));
  const std::string len_key = "L" + std::to_string(len_bucket);
  buckets->push_back(static_cast<int>(
      Fnv1a(len_key.data(), len_key.size(), 0x3u) %
      static_cast<uint32_t>(dim)));
}

/// L2-regularized logistic regression on hashed features, trained with
/// full-batch gradient descent and class weighting (errors are rare).
class LogisticModel {
 public:
  explicit LogisticModel(int dim) : w_(static_cast<size_t>(dim) + 1, 0.0f) {}

  struct Example {
    std::vector<int> buckets;
    int label = 0;
    float weight = 1.0f;
  };

  void Train(const std::vector<Example>& examples, int iterations, float lr) {
    if (examples.empty()) return;
    std::vector<float> grad(w_.size());
    for (int it = 0; it < iterations; ++it) {
      std::fill(grad.begin(), grad.end(), 0.0f);
      for (const Example& ex : examples) {
        const float p = Predict(ex.buckets);
        const float err = (p - static_cast<float>(ex.label)) * ex.weight;
        for (int b : ex.buckets) grad[static_cast<size_t>(b)] += err;
        grad[w_.size() - 1] += err;  // bias
      }
      const float scale = lr / static_cast<float>(examples.size());
      const float decay = 1e-4f * lr;
      for (size_t i = 0; i < w_.size(); ++i) {
        w_[i] -= scale * grad[i] + decay * w_[i];
      }
    }
  }

  float Predict(const std::vector<int>& buckets) const {
    float z = w_[w_.size() - 1];
    for (int b : buckets) z += w_[static_cast<size_t>(b)];
    return 1.0f / (1.0f + std::exp(-z));
  }

 private:
  std::vector<float> w_;
};

enum class AugmentMode { kPreserve, kSynthesize };

struct PolicyCandidate {
  AugmentPolicy policy;
  AugmentMode mode = AugmentMode::kPreserve;
};

}  // namespace

RotomBaseline::RotomBaseline(RotomOptions options) : options_(options) {}

StatusOr<RotomResult> RotomBaseline::Detect(const data::Table& dirty,
                                            const data::Table& clean) {
  BIRNN_ASSIGN_OR_RETURN(data::CellFrame frame,
                         data::PrepareData(dirty, clean));
  const int64_t n_cells = frame.num_cells();
  if (n_cells == 0) return Status::InvalidArgument("empty dataset");

  Rng rng(options_.seed);
  const int n_label = static_cast<int>(
      std::min<int64_t>(options_.n_label_cells, n_cells));

  // Sample labeled cells uniformly (Rotom labels cells, not tuples).
  std::vector<size_t> picks = rng.SampleWithoutReplacement(
      static_cast<size_t>(n_cells), static_cast<size_t>(n_label));
  std::unordered_set<int64_t> labeled_set(picks.begin(), picks.end());

  // Featurize everything once.
  std::vector<std::vector<int>> features(static_cast<size_t>(n_cells));
  for (int64_t i = 0; i < n_cells; ++i) {
    const data::CellRecord& cell = frame.cells()[static_cast<size_t>(i)];
    Featurize(cell.attr, cell.value, options_.feature_dim,
              &features[static_cast<size_t>(i)]);
  }

  // Split labeled cells 75/25 into policy-train and policy-validation.
  std::vector<int64_t> labeled(picks.begin(), picks.end());
  rng.Shuffle(&labeled);
  const size_t val_start = labeled.size() - labeled.size() / 4;
  std::vector<int64_t> train_cells(labeled.begin(),
                                   labeled.begin() + static_cast<std::ptrdiff_t>(val_start));
  std::vector<int64_t> val_cells(labeled.begin() + static_cast<std::ptrdiff_t>(val_start),
                                 labeled.end());

  const double error_rate = std::max(0.01, frame.ErrorRate());
  const float pos_weight = static_cast<float>(
      std::min(20.0, (1.0 - error_rate) / error_rate));

  auto build_examples = [&](const std::vector<int64_t>& cells,
                            const PolicyCandidate* candidate,
                            Rng* aug_rng) {
    std::vector<LogisticModel::Example> examples;
    for (int64_t i : cells) {
      const data::CellRecord& cell = frame.cells()[static_cast<size_t>(i)];
      LogisticModel::Example ex;
      ex.buckets = features[static_cast<size_t>(i)];
      ex.label = cell.label;
      ex.weight = cell.label == 1 ? pos_weight : 1.0f;
      examples.push_back(std::move(ex));
      if (candidate == nullptr) continue;
      for (int a = 0; a < options_.augments_per_example; ++a) {
        if (candidate->mode == AugmentMode::kPreserve) {
          // Label-preserving: jitter the value, keep the label.
          const std::string aug =
              ApplyPolicy(candidate->policy, cell.value, aug_rng);
          LogisticModel::Example aex;
          Featurize(cell.attr, aug, options_.feature_dim, &aex.buckets);
          aex.label = cell.label;
          aex.weight = ex.weight * 0.5f;
          examples.push_back(std::move(aex));
        } else if (cell.label == 0) {
          // Error synthesis: corrupt a clean value into a new positive.
          const std::string aug =
              ApplyPolicy(candidate->policy, cell.value, aug_rng);
          if (aug == cell.value) continue;
          LogisticModel::Example aex;
          Featurize(cell.attr, aug, options_.feature_dim, &aex.buckets);
          aex.label = 1;
          aex.weight = pos_weight * 0.5f;
          examples.push_back(std::move(aex));
        }
      }
    }
    return examples;
  };

  auto validation_f1 = [&](const LogisticModel& model) {
    eval::Confusion confusion;
    for (int64_t i : val_cells) {
      const int pred =
          model.Predict(features[static_cast<size_t>(i)]) > 0.5f ? 1 : 0;
      confusion.Add(pred, frame.cells()[static_cast<size_t>(i)].label);
    }
    // F1 when positives exist in validation; accuracy otherwise.
    return (confusion.tp + confusion.fn) > 0 ? confusion.F1()
                                             : confusion.Accuracy();
  };

  // Policy search: identity + every candidate in both modes, scored on the
  // held-out labeled quarter.
  PolicyCandidate best_candidate;  // identity/preserve == "no augmentation"
  best_candidate.policy = {};
  double best_score = -1.0;
  {
    Rng aug_rng(options_.seed ^ 0xA06ULL);
    LogisticModel model(options_.feature_dim);
    model.Train(build_examples(train_cells, nullptr, &aug_rng),
                options_.train_iterations, options_.learning_rate);
    best_score = validation_f1(model);
  }
  for (const AugmentPolicy& policy : CandidatePolicies()) {
    for (AugmentMode mode : {AugmentMode::kPreserve, AugmentMode::kSynthesize}) {
      PolicyCandidate candidate{policy, mode};
      Rng aug_rng(options_.seed ^ 0xA06ULL);
      LogisticModel model(options_.feature_dim);
      model.Train(build_examples(train_cells, &candidate, &aug_rng),
                  options_.train_iterations, options_.learning_rate);
      const double score = validation_f1(model);
      if (score > best_score) {
        best_score = score;
        best_candidate = candidate;
      }
    }
  }

  // Final model: all labeled cells + augmentation under the winning policy.
  Rng aug_rng(options_.seed ^ 0xF17A1ULL);
  LogisticModel final_model(options_.feature_dim);
  const PolicyCandidate* chosen =
      best_candidate.policy.empty() ? nullptr : &best_candidate;
  std::vector<LogisticModel::Example> final_examples =
      build_examples(labeled, chosen, &aug_rng);
  final_model.Train(final_examples, options_.train_iterations,
                    options_.learning_rate);

  // Optional self-training round (Rotom+SSL).
  if (options_.ssl) {
    struct Pseudo {
      int64_t cell;
      float confidence;
      int label;
    };
    std::vector<Pseudo> pseudo;
    for (int64_t i = 0; i < n_cells; ++i) {
      if (labeled_set.count(i) > 0) continue;
      const float p = final_model.Predict(features[static_cast<size_t>(i)]);
      const int label = p > 0.5f ? 1 : 0;
      const float confidence = label == 1 ? p : 1.0f - p;
      if (confidence >= options_.ssl_confidence) {
        pseudo.push_back({i, confidence, label});
      }
    }
    std::sort(pseudo.begin(), pseudo.end(),
              [](const Pseudo& a, const Pseudo& b) {
                return a.confidence > b.confidence;
              });
    if (pseudo.size() > static_cast<size_t>(options_.ssl_pseudo_labels)) {
      pseudo.resize(static_cast<size_t>(options_.ssl_pseudo_labels));
    }
    for (const Pseudo& p : pseudo) {
      LogisticModel::Example ex;
      ex.buckets = features[static_cast<size_t>(p.cell)];
      ex.label = p.label;
      ex.weight = (p.label == 1 ? pos_weight : 1.0f) * 0.3f;
      final_examples.push_back(std::move(ex));
    }
    final_model = LogisticModel(options_.feature_dim);
    final_model.Train(final_examples, options_.train_iterations,
                      options_.learning_rate);
  }

  // Predict every cell; evaluate on the unlabeled ones.
  RotomResult result;
  result.chosen_policy =
      PolicyName(best_candidate.policy) +
      (best_candidate.policy.empty()
           ? ""
           : (best_candidate.mode == AugmentMode::kPreserve ? "/preserve"
                                                            : "/synthesize"));
  result.labeled_cells = labeled;
  result.predicted.resize(static_cast<size_t>(n_cells));
  eval::Confusion confusion;
  for (int64_t i = 0; i < n_cells; ++i) {
    const int pred =
        final_model.Predict(features[static_cast<size_t>(i)]) > 0.5f ? 1 : 0;
    result.predicted[static_cast<size_t>(i)] = static_cast<uint8_t>(pred);
    if (labeled_set.count(i) == 0) {
      confusion.Add(pred, frame.cells()[static_cast<size_t>(i)].label);
    }
  }
  result.test_confusion = confusion;
  result.test_metrics = eval::Metrics::From(confusion);
  return result;
}

}  // namespace birnn::rotom
