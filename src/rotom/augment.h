#ifndef BIRNN_ROTOM_AUGMENT_H_
#define BIRNN_ROTOM_AUGMENT_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace birnn::rotom {

/// Cell-level data augmentation operators — the operator inventory of our
/// Rotom-style baseline (Miao et al., SIGMOD'21 formulate augmentation as
/// seq2seq with meta-learned operator combination; we keep the operator
/// zoo and replace meta-learning with held-out policy scoring, see
/// DESIGN.md).
enum class AugmentOp {
  kCharSwap,      ///< transpose two adjacent characters.
  kCharDrop,      ///< delete one character.
  kCharDup,       ///< duplicate one character.
  kCharNoise,     ///< replace one character with random noise.
  kTokenShuffle,  ///< shuffle whitespace-separated tokens.
  kDigitJitter,   ///< replace one digit with another digit.
  kCaseFlip,      ///< flip the case of one letter.
};

/// All operators, for policy enumeration.
const std::vector<AugmentOp>& AllAugmentOps();

/// Stable operator name ("char_swap").
const char* AugmentOpName(AugmentOp op);

/// Applies one operator. May return the input unchanged when the operator
/// does not apply (e.g. kDigitJitter on a value without digits).
std::string ApplyAugment(AugmentOp op, const std::string& value, Rng* rng);

/// A policy is an operator sequence applied left to right.
using AugmentPolicy = std::vector<AugmentOp>;

/// Human-readable policy name ("char_swap+digit_jitter").
std::string PolicyName(const AugmentPolicy& policy);

/// Applies every operator of `policy` in order.
std::string ApplyPolicy(const AugmentPolicy& policy, const std::string& value,
                        Rng* rng);

/// The candidate policies our baseline scores: every single operator and
/// every ordered pair of distinct operators.
std::vector<AugmentPolicy> CandidatePolicies();

}  // namespace birnn::rotom

#endif  // BIRNN_ROTOM_AUGMENT_H_
