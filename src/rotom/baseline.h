#ifndef BIRNN_ROTOM_BASELINE_H_
#define BIRNN_ROTOM_BASELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/prepare.h"
#include "data/table.h"
#include "eval/metrics.h"
#include "rotom/augment.h"
#include "util/status.h"

namespace birnn::rotom {

/// Configuration of the Rotom-style augmentation baseline.
struct RotomOptions {
  /// Labeled-cell budget. Rotom reports results with 200 labeled cells on
  /// the cleaning benchmarks, which is what Table 3 compares against.
  int n_label_cells = 200;
  /// Augmented copies generated per labeled example under the chosen
  /// policy.
  int augments_per_example = 3;
  /// Self-training variant (Rotom+SSL): add confident pseudo-labels from
  /// the unlabeled pool and retrain.
  bool ssl = false;
  int ssl_pseudo_labels = 1000;
  float ssl_confidence = 0.9f;

  /// Hashed character n-gram feature dimension of the cell classifier.
  int feature_dim = 512;
  int train_iterations = 250;
  float learning_rate = 0.5f;
  uint64_t seed = 5;
};

/// Outcome of one Rotom-style run.
struct RotomResult {
  std::vector<uint8_t> predicted;     ///< per cell, frame order.
  std::vector<int64_t> labeled_cells; ///< cell indices used for training.
  std::string chosen_policy;          ///< winning augmentation policy.
  eval::Metrics test_metrics;         ///< on cells outside the label set.
  eval::Confusion test_confusion;
};

/// Meta-learned-augmentation baseline, CPU-sized: hashed n-gram logistic
/// cell classifier + operator-policy search scored on a held-out quarter of
/// the labeled cells (standing in for Rotom's meta-learning; DESIGN.md
/// documents the substitution). Policies are evaluated in two modes:
/// label-preserving augmentation of labeled examples, and error synthesis
/// (corrupting clean examples into new positives).
class RotomBaseline {
 public:
  explicit RotomBaseline(RotomOptions options = {});

  /// Full pipeline against ground truth (experiment mode).
  StatusOr<RotomResult> Detect(const data::Table& dirty,
                               const data::Table& clean);

 private:
  RotomOptions options_;
};

}  // namespace birnn::rotom

#endif  // BIRNN_ROTOM_BASELINE_H_
