/// Shared internals of the C ABI shims (stream/capi.cc, adapt/capi.cc):
/// the opaque handle definitions and the Status -> status-code plumbing.
/// Not installed — include/birnn_c.h is the public surface.

#ifndef BIRNN_STREAM_CAPI_INTERNAL_H_
#define BIRNN_STREAM_CAPI_INTERNAL_H_

#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "birnn_c.h"
#include "serve/bundle.h"
#include "stream/session.h"
#include "util/status.h"

struct birnn_detector {
  std::shared_ptr<const birnn::serve::LoadedDetector> impl;
};

struct birnn_session {
  std::unique_ptr<birnn::stream::TableSession> impl;
};

namespace birnn::capi {

/// One message slot per thread, shared by every shim TU (inline variable:
/// a single entity program-wide), so birnn_last_error() reports the most
/// recent failure regardless of which shim produced it.
inline thread_local std::string g_last_error;

inline birnn_status MapCode(birnn::StatusCode code) {
  using birnn::StatusCode;
  switch (code) {
    case StatusCode::kOk:
      return BIRNN_OK;
    case StatusCode::kInvalidArgument:
      return BIRNN_INVALID_ARGUMENT;
    case StatusCode::kNotFound:
      return BIRNN_NOT_FOUND;
    case StatusCode::kOutOfRange:
      return BIRNN_OUT_OF_RANGE;
    case StatusCode::kFailedPrecondition:
      return BIRNN_FAILED_PRECONDITION;
    case StatusCode::kInternal:
      return BIRNN_INTERNAL;
    case StatusCode::kUnimplemented:
      return BIRNN_UNIMPLEMENTED;
    case StatusCode::kIoError:
      return BIRNN_IO_ERROR;
    case StatusCode::kOverloaded:
      return BIRNN_OVERLOADED;
    case StatusCode::kUnsupportedBundle:
      return BIRNN_UNSUPPORTED_BUNDLE;
  }
  return BIRNN_INTERNAL;
}

inline birnn_status Fail(birnn_status code, std::string message) {
  g_last_error = std::move(message);
  return code;
}

inline birnn_status FromStatus(const birnn::Status& status) {
  if (status.ok()) return BIRNN_OK;
  return Fail(MapCode(status.code()), status.message());
}

/// Runs `fn` (returning birnn_status) under a catch-all: C++ exceptions
/// become BIRNN_INTERNAL instead of unwinding into the C caller.
template <typename Fn>
birnn_status Guarded(Fn&& fn) noexcept {
  try {
    return fn();
  } catch (const std::exception& e) {
    return Fail(BIRNN_INTERNAL,
                std::string("internal exception: ") + e.what());
  } catch (...) {
    return Fail(BIRNN_INTERNAL, "internal exception");
  }
}

}  // namespace birnn::capi

#endif  // BIRNN_STREAM_CAPI_INTERNAL_H_
