#ifndef BIRNN_STREAM_SESSION_H_
#define BIRNN_STREAM_SESSION_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/content_index.h"
#include "core/inference.h"
#include "serve/bundle.h"
#include "util/status.h"

namespace birnn::stream {

/// One CDC record against a streamed table. Inserts carry a full tuple
/// (one value per attribute), updates a single cell, deletes just the
/// tuple id — the three shapes a change-data-capture feed produces.
enum class DeltaKind { kInsert, kUpdate, kDelete };

struct Delta {
  DeltaKind kind = DeltaKind::kInsert;
  int64_t row_id = 0;
  /// kUpdate: which cell changed.
  int attr = -1;
  /// kUpdate: the new raw value.
  std::string value;
  /// kInsert: the full tuple, one raw value per attribute.
  std::vector<std::string> values;
};

/// The detector's answer for one materialized cell. `version` is the
/// session-wide delta sequence number that produced it — monotonically
/// increasing, so a reader holding a verdict can tell whether a later
/// delta superseded it.
struct CellVerdict {
  bool is_error = false;
  float p_error = 0.0f;
  uint64_t version = 0;
};

/// Which live statistic diverged from its frozen train-time baseline.
enum class DriftKind {
  kMaxLen = 0,    ///< prepared lengths outgrew the train-time maximum.
  kOovRate = 1,   ///< characters outside the train dictionary.
  kEmptyRate = 2, ///< empty-value rate moved away from the frozen rate.
  kErrorRate = 3, ///< error-verdict rate moved away from the frozen rate.
};

const char* DriftKindName(DriftKind kind);

/// A latched drift alarm: attribute `attr`'s live statistic crossed its
/// threshold relative to the frozen baseline. Fires once per (attr, kind)
/// for the session's lifetime.
struct DriftAlarm {
  int attr = 0;
  DriftKind kind = DriftKind::kMaxLen;
  /// The frozen train-time baseline (max length, 0, empty rate, error rate
  /// respectively per kind).
  float frozen = 0.0f;
  /// The live statistic at the moment the alarm latched.
  float live = 0.0f;
};

/// Drift-detection thresholds. Alarms only arm once an attribute has seen
/// `min_cells` streamed cells: rates over a handful of deltas are noise.
struct DriftOptions {
  int64_t min_cells = 256;
  /// kMaxLen fires when a prepared value's length exceeds the frozen
  /// per-attribute maximum by this factor.
  float max_len_growth = 1.5f;
  /// kOovRate fires when the live OOV-character fraction exceeds this (the
  /// frozen baseline is exactly 0: the train dictionary covers the
  /// training table by construction).
  float oov_rate_threshold = 0.01f;
  /// kEmptyRate / kErrorRate fire when |live - frozen| exceeds these.
  float empty_rate_delta = 0.10f;
  float error_rate_delta = 0.10f;
};

struct SessionOptions {
  core::InferenceOptions inference;
  core::ContentMemoOptions memo;
  DriftOptions drift;
  /// Most-recently-touched tuples kept for drift-triggered adaptation
  /// (adapt/controller.h): inserts and updates capture the tuple's current
  /// values + verdicts, deletes drop it, and the least recently touched
  /// tuple is evicted past this capacity. 0 disables the reservoir.
  int64_t reservoir_capacity = 4096;
};

/// One tuple snapshot in the adaptation reservoir: the values as last
/// ingested and the detector's verdict flags for them (the pseudo-labels a
/// fine-tune falls back to when no human label is available).
struct ReservoirRow {
  int64_t row_id = 0;
  std::vector<std::string> values;
  std::vector<uint8_t> verdicts;  ///< is_error flag per attribute.
};

/// Rolling per-attribute ingest statistics, diffed against the bundle's
/// frozen baselines for drift detection.
struct LiveAttrStats {
  int64_t cells = 0;       ///< streamed cells scored for this attribute.
  int64_t empties = 0;     ///< of which prepared to empty.
  int64_t error_verdicts = 0;
  int64_t chars = 0;       ///< prepared characters seen.
  int64_t oov_chars = 0;   ///< of which outside the train dictionary.
  int32_t max_prepared_len = 0;
};

/// Session-level accounting, exported through the serve plane's `stats` op
/// and asserted on by tests (re-scoring minimality is observable here).
struct SessionStats {
  int64_t deltas = 0;
  int64_t inserts = 0;
  int64_t updates = 0;
  int64_t deletes = 0;
  /// Cells re-encoded and pushed through the (memoized) engine. An update
  /// adds exactly 1, an insert exactly n_attrs, a delete exactly 0 — the
  /// incremental contract.
  int64_t cells_scored = 0;
  /// Of `cells_scored`, how many the cross-delta content memo answered
  /// without touching the model.
  int64_t memo_hits = 0;
  int64_t rows = 0;          ///< live materialized tuples.
  int64_t drift_alarms = 0;  ///< alarms currently latched.
  int64_t drift_resets = 0;  ///< ResetDriftAlarms calls so far.
  int64_t reservoir_rows = 0;  ///< tuples held in the adaptation reservoir.
  uint64_t version = 0;      ///< last applied delta's sequence number.
};

/// CDC-style streaming detection against one loaded detector bundle: apply
/// insert/update/delete deltas, and only the affected cells are re-encoded
/// (bit-identically to offline preparation, via the bundle's frozen column
/// statistics) and re-scored through a memoized inference engine. Per-cell
/// verdicts are kept in a versioned store; live ingest statistics are
/// diffed against the frozen train-time baselines to latch drift alarms.
///
/// Thread-safe: all public methods may be called concurrently. Requires a
/// stream_capable() (manifest v3) bundle — Create fails with
/// UNSUPPORTED_BUNDLE otherwise.
class TableSession {
 public:
  /// `detector` must be stream_capable(); it is shared (and kept alive) by
  /// the session.
  static StatusOr<std::unique_ptr<TableSession>> Create(
      std::shared_ptr<const serve::LoadedDetector> detector,
      SessionOptions options = {});

  TableSession(const TableSession&) = delete;
  TableSession& operator=(const TableSession&) = delete;

  /// Applies one delta: the affected cells (the whole tuple for an insert,
  /// one cell for an update, none for a delete) are re-encoded and
  /// re-scored, their verdicts stored under the delta's new version.
  /// Inserting an existing row_id or updating/deleting a missing one
  /// fails without mutating state. When `affected` is non-null it receives
  /// the (attr, verdict) pairs the delta produced, in attribute order.
  Status Apply(const Delta& delta,
               std::vector<std::pair<int, CellVerdict>>* affected = nullptr);

  /// Convenience wrappers around Apply.
  Status Insert(int64_t row_id, std::vector<std::string> values,
                std::vector<std::pair<int, CellVerdict>>* affected = nullptr);
  Status Update(int64_t row_id, int attr, std::string value,
                std::vector<std::pair<int, CellVerdict>>* affected = nullptr);
  Status Delete(int64_t row_id);

  /// Latest verdict for a materialized cell; NotFound for an absent row.
  StatusOr<CellVerdict> GetVerdict(int64_t row_id, int attr) const;

  /// Stored verdicts over the materialized table, tuple-major
  /// (rows ascending by row_id, attributes in order) — the layout of a
  /// batch DetectionReport::predicted when row_ids are 0..n-1. Replaying a
  /// table as inserts and calling this must byte-match the offline report.
  std::vector<uint8_t> MaterializedVerdicts() const;

  /// Re-detects the whole materialized table from scratch through the
  /// batch path (one EncodeQueries + engine sweep, no memo), in
  /// MaterializedVerdicts order. The equivalence oracle: incremental
  /// verdicts must equal this bit for bit.
  StatusOr<std::vector<uint8_t>> DetectAll();

  /// Alarms latched so far (order of first firing).
  std::vector<DriftAlarm> drift_alarms() const;

  /// Distinct attributes with at least one latched alarm, ascending — the
  /// signal the adapt controller biases its fine-tune sample toward.
  std::vector<int> DriftedAttrs() const;

  /// Re-arms drift detection: drops every latched alarm AND restarts the
  /// live per-attribute statistics windows, so the next `min_cells`
  /// streamed cells are judged fresh (against whatever baselines the
  /// serving bundle carries — after a promotion that is the new bundle's).
  /// Returns the number of alarms cleared.
  int64_t ResetDriftAlarms();

  /// The adaptation reservoir, least → most recently touched.
  std::vector<ReservoirRow> ReservoirSnapshot() const;

  SessionStats stats() const;
  LiveAttrStats live_attr_stats(int attr) const;

  int n_attrs() const { return detector_->n_attrs(); }
  const serve::LoadedDetector& detector() const { return *detector_; }

 private:
  TableSession(std::shared_ptr<const serve::LoadedDetector> detector,
               SessionOptions options);

  struct RowState {
    std::vector<std::string> values;
    std::vector<CellVerdict> verdicts;
  };

  /// Encodes and scores `cells` (attr, raw value) for one tuple under
  /// `version`, writing verdicts into `row` and updating live statistics.
  /// Caller holds mu_.
  Status ScoreCellsLocked(const std::vector<std::pair<int, std::string>>& cells,
                          uint64_t version, RowState* row,
                          std::vector<std::pair<int, CellVerdict>>* affected);

  /// Re-evaluates drift for `attr` against the frozen baselines, latching
  /// new alarms. Caller holds mu_.
  void CheckDriftLocked(int attr);
  void LatchAlarmLocked(int attr, DriftKind kind, float frozen, float live);

  /// Captures (or refreshes) `row_id`'s tuple in the reservoir, evicting
  /// the least recently touched tuple past capacity. Caller holds mu_.
  void TouchReservoirLocked(int64_t row_id, const RowState& row);

  std::shared_ptr<const serve::LoadedDetector> detector_;
  SessionOptions options_;

  mutable std::mutex mu_;
  core::InferenceEngine engine_;
  core::ContentMemo memo_;
  /// Ordered so MaterializedVerdicts walks rows ascending by row_id.
  std::map<int64_t, RowState> rows_;
  uint64_t version_ = 0;
  SessionStats stats_;
  std::vector<LiveAttrStats> live_;
  /// Latched (attr * 4 + kind) alarm flags + the alarms in firing order.
  std::vector<uint8_t> alarm_latched_;
  std::vector<DriftAlarm> alarms_;
  /// Adaptation reservoir: least → most recently touched tuple snapshots,
  /// with an id index for in-place refresh and delete.
  std::list<ReservoirRow> reservoir_;
  std::unordered_map<int64_t, std::list<ReservoirRow>::iterator>
      reservoir_index_;
};

}  // namespace birnn::stream

#endif  // BIRNN_STREAM_SESSION_H_
