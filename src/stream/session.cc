#include "stream/session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/obs.h"

namespace birnn::stream {

const char* DriftKindName(DriftKind kind) {
  switch (kind) {
    case DriftKind::kMaxLen:
      return "max_len";
    case DriftKind::kOovRate:
      return "oov_rate";
    case DriftKind::kEmptyRate:
      return "empty_rate";
    case DriftKind::kErrorRate:
      return "error_rate";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<TableSession>> TableSession::Create(
    std::shared_ptr<const serve::LoadedDetector> detector,
    SessionOptions options) {
  if (detector == nullptr) {
    return Status::InvalidArgument("TableSession needs a detector");
  }
  if (!detector->stream_capable()) {
    return Status::UnsupportedBundle(
        "bundle carries no frozen column statistics (manifest v3): "
        "re-save it from a current detector run to stream deltas");
  }
  // Pre-size the verdict memo for the table the detector was trained on
  // unless the caller chose a hint themselves.
  if (options.memo.expected_entries == 0) {
    options.memo.expected_entries = detector->expected_unique_cells();
  }
  return std::unique_ptr<TableSession>(
      new TableSession(std::move(detector), std::move(options)));
}

TableSession::TableSession(
    std::shared_ptr<const serve::LoadedDetector> detector,
    SessionOptions options)
    : detector_(std::move(detector)),
      options_(std::move(options)),
      engine_(detector_->model(), options_.inference),
      memo_(options_.memo) {
  const size_t n = static_cast<size_t>(detector_->n_attrs());
  live_.assign(n, LiveAttrStats{});
  alarm_latched_.assign(n * 4, 0);
}

Status TableSession::Apply(
    const Delta& delta, std::vector<std::pair<int, CellVerdict>>* affected) {
  if (affected != nullptr) affected->clear();
  std::lock_guard<std::mutex> lock(mu_);
  const int n = detector_->n_attrs();
  switch (delta.kind) {
    case DeltaKind::kInsert: {
      if (static_cast<int>(delta.values.size()) != n) {
        return Status::InvalidArgument(
            "insert carries " + std::to_string(delta.values.size()) +
            " values for " + std::to_string(n) + " attributes");
      }
      if (rows_.count(delta.row_id) > 0) {
        return Status::FailedPrecondition(
            "row already exists: " + std::to_string(delta.row_id));
      }
      RowState row;
      row.values = delta.values;
      row.verdicts.assign(static_cast<size_t>(n), CellVerdict{});
      std::vector<std::pair<int, std::string>> cells;
      cells.reserve(static_cast<size_t>(n));
      for (int a = 0; a < n; ++a) {
        cells.emplace_back(a, delta.values[static_cast<size_t>(a)]);
      }
      BIRNN_RETURN_IF_ERROR(
          ScoreCellsLocked(cells, version_ + 1, &row, affected));
      ++version_;
      auto [row_it, inserted] = rows_.emplace(delta.row_id, std::move(row));
      (void)inserted;
      TouchReservoirLocked(delta.row_id, row_it->second);
      ++stats_.deltas;
      ++stats_.inserts;
      stats_.rows = static_cast<int64_t>(rows_.size());
      stats_.version = version_;
      for (int a = 0; a < n; ++a) CheckDriftLocked(a);
      OBS_COUNTER_ADD("stream.deltas", 1);
      return Status::OK();
    }
    case DeltaKind::kUpdate: {
      if (delta.attr < 0 || delta.attr >= n) {
        return Status::InvalidArgument("attribute index out of range: " +
                                       std::to_string(delta.attr));
      }
      auto it = rows_.find(delta.row_id);
      if (it == rows_.end()) {
        return Status::NotFound("no such row: " +
                                std::to_string(delta.row_id));
      }
      BIRNN_RETURN_IF_ERROR(ScoreCellsLocked({{delta.attr, delta.value}},
                                             version_ + 1, &it->second,
                                             affected));
      ++version_;
      it->second.values[static_cast<size_t>(delta.attr)] = delta.value;
      TouchReservoirLocked(delta.row_id, it->second);
      ++stats_.deltas;
      ++stats_.updates;
      stats_.version = version_;
      CheckDriftLocked(delta.attr);
      OBS_COUNTER_ADD("stream.deltas", 1);
      return Status::OK();
    }
    case DeltaKind::kDelete: {
      auto it = rows_.find(delta.row_id);
      if (it == rows_.end()) {
        return Status::NotFound("no such row: " +
                                std::to_string(delta.row_id));
      }
      rows_.erase(it);
      auto res_it = reservoir_index_.find(delta.row_id);
      if (res_it != reservoir_index_.end()) {
        reservoir_.erase(res_it->second);
        reservoir_index_.erase(res_it);
        stats_.reservoir_rows = static_cast<int64_t>(reservoir_.size());
      }
      ++version_;
      ++stats_.deltas;
      ++stats_.deletes;
      stats_.rows = static_cast<int64_t>(rows_.size());
      stats_.version = version_;
      OBS_COUNTER_ADD("stream.deltas", 1);
      return Status::OK();
    }
  }
  return Status::Internal("unknown delta kind");
}

Status TableSession::Insert(
    int64_t row_id, std::vector<std::string> values,
    std::vector<std::pair<int, CellVerdict>>* affected) {
  Delta d;
  d.kind = DeltaKind::kInsert;
  d.row_id = row_id;
  d.values = std::move(values);
  return Apply(d, affected);
}

Status TableSession::Update(
    int64_t row_id, int attr, std::string value,
    std::vector<std::pair<int, CellVerdict>>* affected) {
  Delta d;
  d.kind = DeltaKind::kUpdate;
  d.row_id = row_id;
  d.attr = attr;
  d.value = std::move(value);
  return Apply(d, affected);
}

Status TableSession::Delete(int64_t row_id) {
  Delta d;
  d.kind = DeltaKind::kDelete;
  d.row_id = row_id;
  return Apply(d);
}

Status TableSession::ScoreCellsLocked(
    const std::vector<std::pair<int, std::string>>& cells, uint64_t version,
    RowState* row, std::vector<std::pair<int, CellVerdict>>* affected) {
  OBS_SPAN("stream.score_cells");
  data::EncodedDataset ds;
  detector_->InitQueryDataset(&ds);
  std::vector<serve::EncodedCellInfo> infos(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    BIRNN_RETURN_IF_ERROR(detector_->AppendQueryCell(
        cells[i].first, cells[i].second, &ds, &infos[i]));
  }
  std::vector<float> p;
  const int64_t hits = engine_.PredictProbsMemoized(ds, &memo_, &p);
  stats_.cells_scored += ds.num_cells();
  stats_.memo_hits += hits;
  OBS_COUNTER_ADD("stream.cells_scored", ds.num_cells());
  OBS_COUNTER_ADD("stream.memo_hits", hits);
  for (size_t i = 0; i < cells.size(); ++i) {
    const int attr = cells[i].first;
    CellVerdict v;
    v.p_error = p[i];
    v.is_error = p[i] > 0.5f;
    v.version = version;
    row->verdicts[static_cast<size_t>(attr)] = v;
    if (affected != nullptr) affected->emplace_back(attr, v);
    LiveAttrStats& s = live_[static_cast<size_t>(attr)];
    ++s.cells;
    if (infos[i].empty) ++s.empties;
    if (v.is_error) ++s.error_verdicts;
    s.chars += infos[i].prepared_len;
    s.oov_chars += infos[i].oov_chars;
    s.max_prepared_len = std::max(s.max_prepared_len,
                                  static_cast<int32_t>(infos[i].prepared_len));
  }
  return Status::OK();
}

void TableSession::CheckDriftLocked(int attr) {
  const LiveAttrStats& s = live_[static_cast<size_t>(attr)];
  if (s.cells < options_.drift.min_cells) return;
  const DriftOptions& d = options_.drift;
  const int32_t frozen_max =
      detector_->attr_max_value_len()[static_cast<size_t>(attr)];
  if (frozen_max > 0 &&
      static_cast<float>(s.max_prepared_len) >
          static_cast<float>(frozen_max) * d.max_len_growth) {
    LatchAlarmLocked(attr, DriftKind::kMaxLen,
                     static_cast<float>(frozen_max),
                     static_cast<float>(s.max_prepared_len));
  }
  if (s.chars > 0) {
    const float oov =
        static_cast<float>(s.oov_chars) / static_cast<float>(s.chars);
    // The frozen baseline is exactly 0: the train dictionary covers every
    // character of the training table by construction.
    if (oov > d.oov_rate_threshold) {
      LatchAlarmLocked(attr, DriftKind::kOovRate, 0.0f, oov);
    }
  }
  const float empty =
      static_cast<float>(s.empties) / static_cast<float>(s.cells);
  const float frozen_empty =
      detector_->attr_empty_rate()[static_cast<size_t>(attr)];
  if (std::fabs(empty - frozen_empty) > d.empty_rate_delta) {
    LatchAlarmLocked(attr, DriftKind::kEmptyRate, frozen_empty, empty);
  }
  const float error =
      static_cast<float>(s.error_verdicts) / static_cast<float>(s.cells);
  const float frozen_error =
      detector_->attr_error_rate()[static_cast<size_t>(attr)];
  if (std::fabs(error - frozen_error) > d.error_rate_delta) {
    LatchAlarmLocked(attr, DriftKind::kErrorRate, frozen_error, error);
  }
}

void TableSession::LatchAlarmLocked(int attr, DriftKind kind, float frozen,
                                    float live) {
  const size_t slot =
      static_cast<size_t>(attr) * 4 + static_cast<size_t>(kind);
  if (alarm_latched_[slot] != 0) return;
  alarm_latched_[slot] = 1;
  DriftAlarm alarm;
  alarm.attr = attr;
  alarm.kind = kind;
  alarm.frozen = frozen;
  alarm.live = live;
  alarms_.push_back(alarm);
  ++stats_.drift_alarms;
  OBS_COUNTER_ADD("stream.drift_alarms", 1);
}

StatusOr<CellVerdict> TableSession::GetVerdict(int64_t row_id,
                                               int attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (attr < 0 || attr >= detector_->n_attrs()) {
    return Status::InvalidArgument("attribute index out of range: " +
                                   std::to_string(attr));
  }
  auto it = rows_.find(row_id);
  if (it == rows_.end()) {
    return Status::NotFound("no such row: " + std::to_string(row_id));
  }
  return it->second.verdicts[static_cast<size_t>(attr)];
}

std::vector<uint8_t> TableSession::MaterializedVerdicts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t> out;
  out.reserve(rows_.size() * static_cast<size_t>(detector_->n_attrs()));
  for (const auto& [row_id, row] : rows_) {
    (void)row_id;
    for (const CellVerdict& v : row.verdicts) {
      out.push_back(v.is_error ? 1 : 0);
    }
  }
  return out;
}

StatusOr<std::vector<uint8_t>> TableSession::DetectAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<serve::CellQuery> queries;
  queries.reserve(rows_.size() * static_cast<size_t>(detector_->n_attrs()));
  for (const auto& [row_id, row] : rows_) {
    (void)row_id;
    for (int a = 0; a < detector_->n_attrs(); ++a) {
      serve::CellQuery q;
      q.attr = a;
      q.value = row.values[static_cast<size_t>(a)];
      queries.push_back(std::move(q));
    }
  }
  BIRNN_ASSIGN_OR_RETURN(data::EncodedDataset ds,
                         detector_->EncodeQueries(queries));
  std::vector<uint8_t> labels;
  engine_.Predict(ds, &labels);
  return labels;
}

void TableSession::TouchReservoirLocked(int64_t row_id, const RowState& row) {
  if (options_.reservoir_capacity <= 0) return;
  ReservoirRow snap;
  snap.row_id = row_id;
  snap.values = row.values;
  snap.verdicts.reserve(row.verdicts.size());
  for (const CellVerdict& v : row.verdicts) {
    snap.verdicts.push_back(v.is_error ? 1 : 0);
  }
  auto it = reservoir_index_.find(row_id);
  if (it != reservoir_index_.end()) {
    *it->second = std::move(snap);
    // Refresh recency: move the tuple to the most-recent end.
    reservoir_.splice(reservoir_.end(), reservoir_, it->second);
  } else {
    reservoir_.push_back(std::move(snap));
    reservoir_index_[row_id] = std::prev(reservoir_.end());
    while (static_cast<int64_t>(reservoir_.size()) >
           options_.reservoir_capacity) {
      reservoir_index_.erase(reservoir_.front().row_id);
      reservoir_.pop_front();
    }
  }
  stats_.reservoir_rows = static_cast<int64_t>(reservoir_.size());
}

std::vector<DriftAlarm> TableSession::drift_alarms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alarms_;
}

std::vector<int> TableSession::DriftedAttrs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> attrs;
  for (const DriftAlarm& a : alarms_) {
    if (std::find(attrs.begin(), attrs.end(), a.attr) == attrs.end()) {
      attrs.push_back(a.attr);
    }
  }
  std::sort(attrs.begin(), attrs.end());
  return attrs;
}

int64_t TableSession::ResetDriftAlarms() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t cleared = static_cast<int64_t>(alarms_.size());
  alarms_.clear();
  std::fill(alarm_latched_.begin(), alarm_latched_.end(), 0);
  // Restart the live windows too: the whole point of a reset is to judge
  // the stream fresh (e.g. against a newly promoted bundle's baselines),
  // not to re-fire instantly on the pre-reset tail.
  live_.assign(live_.size(), LiveAttrStats{});
  stats_.drift_alarms = 0;
  ++stats_.drift_resets;
  OBS_COUNTER_ADD("stream.drift_resets", 1);
  return cleared;
}

std::vector<ReservoirRow> TableSession::ReservoirSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ReservoirRow>(reservoir_.begin(), reservoir_.end());
}

SessionStats TableSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

LiveAttrStats TableSession::live_attr_stats(int attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (attr < 0 || attr >= detector_->n_attrs()) return LiveAttrStats{};
  return live_[static_cast<size_t>(attr)];
}

}  // namespace birnn::stream
