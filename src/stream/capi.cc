/// extern "C" shim behind include/birnn_c.h: opaque handles over
/// serve::LoadedDetector and stream::TableSession, Status -> status-code
/// mapping, and a catch-all so no exception (bad_alloc included) ever
/// crosses the C boundary.

#include "birnn_c.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/bundle.h"
#include "stream/capi_internal.h"
#include "stream/session.h"
#include "util/status.h"

using birnn::capi::Fail;
using birnn::capi::FromStatus;
using birnn::capi::Guarded;

extern "C" {

const char* birnn_last_error(void) {
  return birnn::capi::g_last_error.c_str();
}

birnn_status birnn_detector_load(const char* bundle_dir,
                                 birnn_detector** out) {
  return Guarded([&]() -> birnn_status {
    if (out == nullptr) return Fail(BIRNN_INVALID_ARGUMENT, "out is NULL");
    *out = nullptr;
    if (bundle_dir == nullptr) {
      return Fail(BIRNN_INVALID_ARGUMENT, "bundle_dir is NULL");
    }
    auto loaded = birnn::serve::LoadDetectorBundle(bundle_dir);
    if (!loaded.ok()) return FromStatus(loaded.status());
    auto* handle = new birnn_detector;
    handle->impl = std::make_shared<const birnn::serve::LoadedDetector>(
        std::move(*loaded));
    *out = handle;
    return BIRNN_OK;
  });
}

void birnn_detector_free(birnn_detector* detector) { delete detector; }

int32_t birnn_detector_n_attrs(const birnn_detector* detector) {
  if (detector == nullptr || detector->impl == nullptr) return -1;
  return detector->impl->n_attrs();
}

int32_t birnn_detector_stream_capable(const birnn_detector* detector) {
  if (detector == nullptr || detector->impl == nullptr) return 0;
  return detector->impl->stream_capable() ? 1 : 0;
}

birnn_status birnn_session_create(const birnn_detector* detector,
                                  birnn_session** out) {
  return Guarded([&]() -> birnn_status {
    if (out == nullptr) return Fail(BIRNN_INVALID_ARGUMENT, "out is NULL");
    *out = nullptr;
    if (detector == nullptr || detector->impl == nullptr) {
      return Fail(BIRNN_INVALID_ARGUMENT, "detector is NULL");
    }
    auto session = birnn::stream::TableSession::Create(detector->impl);
    if (!session.ok()) return FromStatus(session.status());
    auto* handle = new birnn_session;
    handle->impl = std::move(*session);
    *out = handle;
    return BIRNN_OK;
  });
}

void birnn_session_free(birnn_session* session) { delete session; }

birnn_status birnn_session_insert(birnn_session* session, int64_t row_id,
                                  const char* const* values,
                                  int32_t n_values) {
  return Guarded([&]() -> birnn_status {
    if (session == nullptr || session->impl == nullptr) {
      return Fail(BIRNN_INVALID_ARGUMENT, "session is NULL");
    }
    if (values == nullptr && n_values > 0) {
      return Fail(BIRNN_INVALID_ARGUMENT, "values is NULL");
    }
    std::vector<std::string> tuple;
    tuple.reserve(static_cast<size_t>(n_values > 0 ? n_values : 0));
    for (int32_t i = 0; i < n_values; ++i) {
      if (values[i] == nullptr) {
        return Fail(BIRNN_INVALID_ARGUMENT,
                    "values[" + std::to_string(i) + "] is NULL");
      }
      tuple.emplace_back(values[i]);
    }
    return FromStatus(session->impl->Insert(row_id, std::move(tuple)));
  });
}

birnn_status birnn_session_update(birnn_session* session, int64_t row_id,
                                  int32_t attr, const char* value) {
  return Guarded([&]() -> birnn_status {
    if (session == nullptr || session->impl == nullptr) {
      return Fail(BIRNN_INVALID_ARGUMENT, "session is NULL");
    }
    if (value == nullptr) {
      return Fail(BIRNN_INVALID_ARGUMENT, "value is NULL");
    }
    return FromStatus(
        session->impl->Update(row_id, attr, std::string(value)));
  });
}

birnn_status birnn_session_delete_row(birnn_session* session,
                                      int64_t row_id) {
  return Guarded([&]() -> birnn_status {
    if (session == nullptr || session->impl == nullptr) {
      return Fail(BIRNN_INVALID_ARGUMENT, "session is NULL");
    }
    return FromStatus(session->impl->Delete(row_id));
  });
}

birnn_status birnn_session_verdict(const birnn_session* session,
                                   int64_t row_id, int32_t attr,
                                   birnn_verdict* out) {
  return Guarded([&]() -> birnn_status {
    if (session == nullptr || session->impl == nullptr) {
      return Fail(BIRNN_INVALID_ARGUMENT, "session is NULL");
    }
    if (out == nullptr) return Fail(BIRNN_INVALID_ARGUMENT, "out is NULL");
    auto verdict = session->impl->GetVerdict(row_id, attr);
    if (!verdict.ok()) return FromStatus(verdict.status());
    out->is_error = verdict->is_error ? 1 : 0;
    out->p_error = verdict->p_error;
    out->version = verdict->version;
    return BIRNN_OK;
  });
}

int64_t birnn_session_num_rows(const birnn_session* session) {
  if (session == nullptr || session->impl == nullptr) return -1;
  return session->impl->stats().rows;
}

int64_t birnn_session_drift_alarms(const birnn_session* session) {
  if (session == nullptr || session->impl == nullptr) return -1;
  return session->impl->stats().drift_alarms;
}

int64_t birnn_session_reset_drift_alarms(birnn_session* session) {
  if (session == nullptr || session->impl == nullptr) return -1;
  return session->impl->ResetDriftAlarms();
}

int64_t birnn_session_reservoir_rows(const birnn_session* session) {
  if (session == nullptr || session->impl == nullptr) return -1;
  return session->impl->stats().reservoir_rows;
}

}  // extern "C"
