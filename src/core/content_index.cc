#include "core/content_index.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/stopwatch.h"

namespace birnn::core {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;
constexpr char kSegmentMagic[8] = {'B', 'R', 'N', 'M', 'E', 'M', 'O', '1'};
constexpr int64_t kSlotBytes = 16;  // hash(8) + p_error(4) + key_off(4).

uint64_t FnvMix(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void PutVarint(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Decodes a varint at `p` (bounded by `end`); returns bytes consumed, 0 on
/// truncation/overflow.
size_t GetVarint(const uint8_t* p, const uint8_t* end, uint32_t* v) {
  uint32_t out = 0;
  int shift = 0;
  for (size_t i = 0; i < 5 && p + i < end; ++i) {
    out |= static_cast<uint32_t>(p[i] & 0x7F) << shift;
    if ((p[i] & 0x80) == 0) {
      *v = out;
      return i + 1;
    }
    shift += 7;
  }
  return 0;
}

uint64_t NextPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Lemire multiply-shift: maps a 64-bit hash uniformly onto [0, slots)
/// without requiring a power-of-two table. The shard-selection bits are the
/// low 4; the multiply is dominated by the high hash bits, so slot indices
/// stay independent of sharding.
uint64_t SlotFor(uint64_t hash, uint64_t slots) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(hash) * slots) >> 64);
}

/// Bytes per in-memory table slot (hash tag + arena position).
constexpr int64_t kTableSlotBytes = 8;

uint32_t HashTag(uint64_t hash) { return static_cast<uint32_t>(hash >> 32); }

bool PReadAll(int fd, void* buf, size_t n, int64_t off) {
  auto* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    ssize_t r = ::pread(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    p += r;
    n -= static_cast<size_t>(r);
    off += r;
  }
  return true;
}

void PutU64(uint64_t v, std::string* out) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

}  // namespace

// ---------------------------------------------------------------------------
// Packed cell keys
// ---------------------------------------------------------------------------

void AppendPackedCellKey(const data::EncodedDataset& ds, int64_t i,
                         std::vector<uint8_t>* out) {
  PutVarint(static_cast<uint32_t>(ds.attrs[i]), out);
  uint32_t ln_bits;
  std::memcpy(&ln_bits, &ds.length_norm[i], 4);
  out->push_back(static_cast<uint8_t>(ln_bits));
  out->push_back(static_cast<uint8_t>(ln_bits >> 8));
  out->push_back(static_cast<uint8_t>(ln_bits >> 16));
  out->push_back(static_cast<uint8_t>(ln_bits >> 24));
  const int len = ds.effective_len(i);
  PutVarint(static_cast<uint32_t>(len), out);
  const int32_t* seq = ds.seqs.data() + static_cast<size_t>(i) * ds.max_len;
  for (int t = 0; t < len; ++t) {
    PutVarint(static_cast<uint32_t>(seq[t]), out);
  }
}

bool PackedKeyMatchesCell(const uint8_t* key, size_t key_len,
                          const data::EncodedDataset& ds, int64_t i) {
  // Re-encoding the probe cell costs the same O(len) as the content hash did
  // and keeps the compare a canonical byte memcmp; callers batch-reuse the
  // scratch buffer, so there is no per-probe allocation in steady state.
  thread_local std::vector<uint8_t> scratch;
  scratch.clear();
  AppendPackedCellKey(ds, i, &scratch);
  return scratch.size() == key_len &&
         std::memcmp(scratch.data(), key, key_len) == 0;
}

namespace {

/// Field-by-field compare of a stored packed key against cell `i`, with no
/// probe-key materialization: decodes the stored bytes in place and
/// early-outs on the first mismatching field. Because the codec is
/// canonical this is equivalent to packing cell `i` and memcmp-ing, but the
/// all-hit serve path never writes a scratch buffer per probe.
bool StoredKeyMatchesCell(const uint8_t* key, size_t key_len,
                          const data::EncodedDataset& ds, int64_t i) {
  const uint8_t* p = key;
  const uint8_t* end = key + key_len;
  uint32_t attr;
  size_t n = GetVarint(p, end, &attr);
  if (n == 0 || attr != static_cast<uint32_t>(ds.attrs[i])) return false;
  p += n;
  if (p + 4 > end) return false;
  uint32_t cell_ln;
  std::memcpy(&cell_ln, &ds.length_norm[i], 4);
  const uint32_t stored_ln = static_cast<uint32_t>(p[0]) |
                             static_cast<uint32_t>(p[1]) << 8 |
                             static_cast<uint32_t>(p[2]) << 16 |
                             static_cast<uint32_t>(p[3]) << 24;
  if (stored_ln != cell_ln) return false;
  p += 4;
  uint32_t len;
  n = GetVarint(p, end, &len);
  if (n == 0 || len != static_cast<uint32_t>(ds.effective_len(i))) {
    return false;
  }
  p += n;
  const int32_t* seq = ds.seqs.data() + static_cast<size_t>(i) * ds.max_len;
  if (static_cast<size_t>(end - p) == len) {
    // Exactly one stored byte per char means every id varint is single-byte
    // (ids < 128 — every dictionary under the default vocab). The compare
    // collapses to a widening byte loop the compiler can vectorize.
    for (uint32_t t = 0; t < len; ++t) {
      if (static_cast<uint32_t>(p[t]) != static_cast<uint32_t>(seq[t])) {
        return false;
      }
    }
    return true;
  }
  for (uint32_t t = 0; t < len; ++t) {
    uint32_t c;
    n = GetVarint(p, end, &c);
    if (n == 0 || c != static_cast<uint32_t>(seq[t])) return false;
    p += n;
  }
  return p == end;
}

}  // namespace

uint64_t PackedKeyContentHash(const uint8_t* key, size_t key_len) {
  const uint8_t* p = key;
  const uint8_t* end = key + key_len;
  uint64_t h = kFnvOffset;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xFFu;
      h *= kFnvPrime;
    }
  };
  uint32_t attr;
  size_t n = GetVarint(p, end, &attr);
  if (n == 0) return 0;
  p += n;
  mix(attr);
  if (p + 4 > end) return 0;
  const uint32_t ln_bits = static_cast<uint32_t>(p[0]) |
                           static_cast<uint32_t>(p[1]) << 8 |
                           static_cast<uint32_t>(p[2]) << 16 |
                           static_cast<uint32_t>(p[3]) << 24;
  p += 4;
  mix(ln_bits);
  uint32_t len;
  n = GetVarint(p, end, &len);
  if (n == 0) return 0;
  p += n;
  mix(len);
  for (uint32_t t = 0; t < len; ++t) {
    uint32_t c;
    n = GetVarint(p, end, &c);
    if (n == 0) return 0;
    p += n;
    mix(c);
  }
  return h;
}

uint64_t DatasetContentFingerprint(const data::EncodedDataset& ds) {
  uint64_t h = kFnvOffset;
  const uint64_t shape[4] = {static_cast<uint64_t>(ds.num_cells()),
                             static_cast<uint64_t>(ds.max_len),
                             static_cast<uint64_t>(ds.vocab),
                             static_cast<uint64_t>(ds.n_attrs)};
  h = FnvMix(h, shape, sizeof(shape));
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    const uint64_t ch = ds.CellContentHash(i);
    h = FnvMix(h, &ch, 8);
  }
  return h;
}

// ---------------------------------------------------------------------------
// BlockedBloom
// ---------------------------------------------------------------------------

void BlockedBloom::Reset(int64_t expected_keys, double bits_per_key) {
  if (expected_keys <= 0 || bits_per_key <= 0.0) {
    blocks_.reset();
    num_blocks_ = 0;
    return;
  }
  const double total_bits = static_cast<double>(expected_keys) * bits_per_key;
  num_blocks_ = NextPow2(
      static_cast<uint64_t>(std::max(1.0, std::ceil(total_bits / 512.0))));
  blocks_ = std::make_unique<Block[]>(num_blocks_);
  for (uint64_t b = 0; b < num_blocks_; ++b) {
    for (auto& w : blocks_[b].words) w.store(0, std::memory_order_relaxed);
  }
  // k = ln2 * bits/key is the optimum for a classic bloom, but on the
  // all-hit serve path every probe is paid in full, and for a blocked
  // filter the within-block collisions flatten the FP curve past ~4 probes
  // anyway. Cap low: at 10 bits/key, k=4 holds ~1% FP while nearly halving
  // the hit-path probe cost vs the classic k=7.
  num_probes_ = static_cast<int>(std::lround(bits_per_key * 0.69));
  num_probes_ = std::max(1, std::min(num_probes_, 4));
}

void BlockedBloom::Add(uint64_t hash) {
  if (num_blocks_ == 0) return;
  Block& block = blocks_[(hash >> 32) & (num_blocks_ - 1)];
  uint32_t h = static_cast<uint32_t>(hash);
  const uint32_t delta = (h >> 17) | (h << 15) | 1;  // odd => full cycle.
  for (int k = 0; k < num_probes_; ++k) {
    const uint32_t bit = h & 511;
    block.words[bit >> 6].fetch_or(1ULL << (bit & 63),
                                   std::memory_order_relaxed);
    h += delta;
  }
}

bool BlockedBloom::MayContain(uint64_t hash) const {
  if (num_blocks_ == 0) return true;
  const Block& block = blocks_[(hash >> 32) & (num_blocks_ - 1)];
  uint32_t h = static_cast<uint32_t>(hash);
  const uint32_t delta = (h >> 17) | (h << 15) | 1;
  for (int k = 0; k < num_probes_; ++k) {
    const uint32_t bit = h & 511;
    if ((block.words[bit >> 6].load(std::memory_order_relaxed) &
         (1ULL << (bit & 63))) == 0) {
      return false;
    }
    h += delta;
  }
  return true;
}

// ---------------------------------------------------------------------------
// SpillSegment
// ---------------------------------------------------------------------------

SpillSegment::~SpillSegment() {
  if (fd_ >= 0) ::close(fd_);
}

SpillSegment::SpillSegment(SpillSegment&& other) noexcept
    : fd_(other.fd_),
      count_(other.count_),
      blob_offset_(other.blob_offset_),
      blob_size_(other.blob_size_),
      path_(std::move(other.path_)) {
  other.fd_ = -1;
}

SpillSegment& SpillSegment::operator=(SpillSegment&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    count_ = other.count_;
    blob_offset_ = other.blob_offset_;
    blob_size_ = other.blob_size_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Status SpillSegment::Write(const std::string& path,
                           std::vector<SpillRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const SpillRecord& a, const SpillRecord& b) {
              return a.hash < b.hash;
            });

  std::string body;
  body.reserve(32 + records.size() * (kSlotBytes + 16));
  body.append(kSegmentMagic, 8);
  PutU64(static_cast<uint64_t>(records.size()), &body);

  std::vector<uint8_t> blob;
  std::vector<uint32_t> offsets;
  offsets.reserve(records.size());
  for (const SpillRecord& r : records) {
    offsets.push_back(static_cast<uint32_t>(blob.size()));
    PutVarint(static_cast<uint32_t>(r.key.size()), &blob);
    blob.insert(blob.end(), r.key.begin(), r.key.end());
  }
  PutU64(static_cast<uint64_t>(blob.size()), &body);
  for (size_t i = 0; i < records.size(); ++i) {
    PutU64(records[i].hash, &body);
    char slot[8];
    std::memcpy(slot, &records[i].p_error, 4);
    std::memcpy(slot + 4, &offsets[i], 4);
    body.append(slot, 8);
  }
  body.append(reinterpret_cast<const char*>(blob.data()), blob.size());
  const uint64_t checksum = FnvMix(kFnvOffset, body.data(), body.size());
  PutU64(checksum, &body);

  // Atomic publish: a crashed or failed write can never leave a partial
  // segment under the final name (same discipline as checkpoint v1 and the
  // eval artifact cache).
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create spill segment " + tmp);
  }
  const bool written =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!written || !closed) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to spill segment " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot publish spill segment " + path);
  }
  return Status::OK();
}

StatusOr<SpillSegment> SpillSegment::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open spill segment " + path);
  }
  SpillSegment seg;
  seg.fd_ = fd;
  seg.path_ = path;

  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 32 + 8) {
    return Status::IoError("spill segment truncated: " + path);
  }
  const int64_t file_size = static_cast<int64_t>(st.st_size);

  char header[24];
  if (!PReadAll(fd, header, sizeof(header), 0)) {
    return Status::IoError("spill segment unreadable: " + path);
  }
  if (std::memcmp(header, kSegmentMagic, 8) != 0) {
    return Status::IoError("spill segment bad magic: " + path);
  }
  uint64_t count, blob_size;
  std::memcpy(&count, header + 8, 8);
  std::memcpy(&blob_size, header + 16, 8);
  const int64_t expect =
      24 + static_cast<int64_t>(count) * kSlotBytes +
      static_cast<int64_t>(blob_size) + 8;
  if (count > (1ULL << 40) || expect != file_size) {
    return Status::IoError("spill segment shape mismatch: " + path);
  }
  seg.count_ = static_cast<int64_t>(count);
  seg.blob_offset_ = 24 + seg.count_ * kSlotBytes;
  seg.blob_size_ = static_cast<int64_t>(blob_size);

  // Streaming checksum: the segment is validated once at open without ever
  // being resident; Find() afterwards trusts the file.
  uint64_t h = kFnvOffset;
  char buf[1 << 16];
  int64_t off = 0;
  const int64_t body_size = file_size - 8;
  while (off < body_size) {
    const size_t n = static_cast<size_t>(
        std::min<int64_t>(body_size - off, static_cast<int64_t>(sizeof(buf))));
    if (!PReadAll(fd, buf, n, off)) {
      return Status::IoError("spill segment unreadable: " + path);
    }
    h = FnvMix(h, buf, n);
    off += static_cast<int64_t>(n);
  }
  uint64_t stored;
  if (!PReadAll(fd, &stored, 8, body_size) || stored != h) {
    return Status::IoError("spill segment checksum mismatch: " + path);
  }
  return seg;
}

bool SpillSegment::ReadSlot(int64_t index, uint64_t* hash, float* p_error,
                            uint32_t* key_off) const {
  char slot[kSlotBytes];
  if (!PReadAll(fd_, slot, sizeof(slot), 24 + index * kSlotBytes)) {
    return false;
  }
  std::memcpy(hash, slot, 8);
  std::memcpy(p_error, slot + 8, 4);
  std::memcpy(key_off, slot + 12, 4);
  return true;
}

bool SpillSegment::Find(uint64_t hash, const uint8_t* key, size_t key_len,
                        float* p_error) const {
  if (fd_ < 0 || count_ == 0) return false;
  // lower_bound over the sorted slot array.
  int64_t lo = 0, hi = count_;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    uint64_t h;
    float p;
    uint32_t off;
    if (!ReadSlot(mid, &h, &p, &off)) return false;
    if (h < hash) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // Scan the (almost always length-1) equal-hash run, confirming exactly.
  std::vector<uint8_t> stored(key_len + 5);
  for (int64_t i = lo; i < count_; ++i) {
    uint64_t h;
    float p;
    uint32_t off;
    if (!ReadSlot(i, &h, &p, &off)) return false;
    if (h != hash) break;
    const int64_t key_pos = blob_offset_ + static_cast<int64_t>(off);
    const size_t want = std::min<size_t>(
        stored.size(),
        static_cast<size_t>(blob_offset_ + blob_size_ - key_pos));
    if (want == 0 || !PReadAll(fd_, stored.data(), want, key_pos)) continue;
    uint32_t stored_len;
    const size_t vn =
        GetVarint(stored.data(), stored.data() + want, &stored_len);
    if (vn == 0 || stored_len != key_len || vn + key_len > want) continue;
    if (std::memcmp(stored.data() + vn, key, key_len) == 0) {
      *p_error = p;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// ContentMemo
// ---------------------------------------------------------------------------

ContentMemo::ContentMemo(ContentMemoOptions options)
    : options_(std::move(options)) {
  shard_capacity_ = std::max<int64_t>(1, options_.capacity / kShards);
  if (options_.capacity <= 0) shard_capacity_ = 0;
  if (enabled()) {
    // Bloom sized for the expected population; without a hint, for the
    // capacity bound capped at 16M keys (~20 MB at 10 bits/key) so an
    // "unbounded" memo doesn't buy a gigabyte filter. An undersized bloom
    // only raises the (counted) false-positive rate.
    int64_t bloom_keys = options_.expected_entries > 0
                             ? options_.expected_entries
                             : std::min<int64_t>(options_.capacity, 1 << 20);
    bloom_keys = std::min<int64_t>(bloom_keys, int64_t{1} << 24);
    if (options_.budget_bytes > 0 && options_.bloom_bits_per_key > 0) {
      while (bloom_keys > 1024 &&
             static_cast<double>(bloom_keys) * options_.bloom_bits_per_key >
                 static_cast<double>(options_.budget_bytes)) {
        bloom_keys /= 2;  // keep the filter <= 1/8 of the byte budget.
      }
    }
    bloom_.Reset(bloom_keys, options_.bloom_bits_per_key);
  }
  if (options_.budget_bytes > 0) {
    const int64_t after_bloom =
        std::max<int64_t>(options_.budget_bytes - bloom_.bytes(), kShards);
    shard_budget_ = std::max<int64_t>(1, after_bloom / kShards);
  }
  bytes_.store(bloom_.bytes(), std::memory_order_relaxed);
  bytes_gauge_.Set(static_cast<double>(bloom_.bytes()));
  if (options_.expected_entries > 0 && enabled()) {
    const int64_t per_shard = options_.expected_entries / kShards + 1;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      InitTable(&shard, per_shard);
      UpdateShardBytes(&shard);
    }
  }
}

ContentMemo::~ContentMemo() {
  // Segments are owned scratch, not durable artifacts: close then unlink.
  for (auto& shard : shards_) shard.segments.clear();
  std::lock_guard<std::mutex> lock(spill_mu_);
  for (const std::string& path : spilled_paths_) std::remove(path.c_str());
}

void ContentMemo::InitTable(Shard* shard, int64_t expected_entries) {
  // Flat open addressing wants slack: size for 0.8 load exactly at the
  // expected population (Lemire mapping frees us from power-of-two
  // rounding), floor 64 slots so tiny memos stay tiny.
  uint64_t slots = static_cast<uint64_t>(
      std::max<int64_t>(64, expected_entries + expected_entries / 4));
  if (shard_budget_ > 0) {
    // Never allocate a table that alone exceeds the shard's byte budget.
    while (slots > 64 &&
           static_cast<int64_t>(slots) * kTableSlotBytes > shard_budget_ / 2) {
      slots /= 2;
    }
  }
  std::vector<uint32_t>(slots, 0).swap(shard->tag);
  std::vector<uint32_t>(slots, kEmptySlot).swap(shard->pos);
  shard->slots = slots;
  shard->entries = 0;
  // Swap, not clear(): a sealed shard must actually release its arena
  // capacity or the byte budget would never be regained.
  std::vector<uint8_t>().swap(shard->arena);
}

int64_t ContentMemo::ShardResidentBytes(const Shard& shard) const {
  return static_cast<int64_t>(shard.tag.capacity()) * 4 +
         static_cast<int64_t>(shard.pos.capacity()) * 4 +
         static_cast<int64_t>(shard.arena.capacity());
}

void ContentMemo::UpdateShardBytes(Shard* shard) {
  const int64_t now = ShardResidentBytes(*shard);
  const int64_t delta = now - shard->resident;
  shard->resident = now;
  if (delta != 0) {
    const int64_t total =
        bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
    bytes_gauge_.Set(static_cast<double>(total));
  }
}

bool ContentMemo::ProbeLocked(const Shard& shard, uint64_t hash,
                              const uint8_t* key, size_t key_len,
                              float* p_error, bool* from_segment) const {
  *from_segment = false;
  if (shard.slots != 0) {
    const uint32_t tag = HashTag(hash);
    uint64_t slot = SlotFor(hash, shard.slots);
    while (shard.pos[slot] != kEmptySlot) {
      if (shard.tag[slot] == tag) {
        const uint8_t* rec = shard.arena.data() + shard.pos[slot];
        const uint8_t* end = shard.arena.data() + shard.arena.size();
        uint32_t stored_len;
        const size_t vn = GetVarint(rec, end, &stored_len);
        if (vn != 0 && stored_len == key_len &&
            rec + vn + key_len + 4 <= end &&
            std::memcmp(rec + vn, key, key_len) == 0) {
          std::memcpy(p_error, rec + vn + key_len, 4);
          return true;
        }
      }
      if (++slot == shard.slots) slot = 0;
    }
  }
  for (auto it = shard.segments.rbegin(); it != shard.segments.rend(); ++it) {
    if (it->Find(hash, key, key_len, p_error)) {
      *from_segment = true;
      return true;
    }
  }
  return false;
}

bool ContentMemo::ProbeCellLocked(const Shard& shard, uint64_t hash,
                                  const data::EncodedDataset& ds, int64_t i,
                                  std::vector<uint8_t>* scratch, float* p_error,
                                  bool* from_segment) const {
  *from_segment = false;
  if (shard.slots != 0) {
    const uint32_t tag = HashTag(hash);
    uint64_t slot = SlotFor(hash, shard.slots);
    while (shard.pos[slot] != kEmptySlot) {
      if (shard.tag[slot] == tag) {
        const uint8_t* rec = shard.arena.data() + shard.pos[slot];
        const uint8_t* end = shard.arena.data() + shard.arena.size();
        uint32_t stored_len;
        const size_t vn = GetVarint(rec, end, &stored_len);
        if (vn != 0 && rec + vn + stored_len + 4 <= end &&
            StoredKeyMatchesCell(rec + vn, stored_len, ds, i)) {
          std::memcpy(p_error, rec + vn + stored_len, 4);
          return true;
        }
      }
      if (++slot == shard.slots) slot = 0;
    }
  }
  if (!shard.segments.empty()) {
    // Segment binary search needs the canonical key bytes; this path only
    // runs once spill has happened, so the packing cost stays off the
    // resident fast path.
    scratch->clear();
    AppendPackedCellKey(ds, i, scratch);
    for (auto it = shard.segments.rbegin(); it != shard.segments.rend();
         ++it) {
      if (it->Find(hash, scratch->data(), scratch->size(), p_error)) {
        *from_segment = true;
        return true;
      }
    }
  }
  return false;
}

int64_t ContentMemo::Lookup(const data::EncodedDataset& ds,
                            std::vector<float>* p,
                            std::vector<uint8_t>* hit) const {
  if (!enabled() || ds.num_cells() == 0) return 0;
  Stopwatch timer;
  const int64_t n = ds.num_cells();
  int64_t hits = 0;
  int64_t bloom_negatives = 0;
  std::vector<uint8_t> key;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t h = ds.CellContentHash(i);
    // Lock-free fast path: a bloom negative proves the content was never
    // inserted, so the shard mutex is never touched for first-seen cells.
    if (!bloom_.MayContain(h)) {
      ++bloom_negatives;
      continue;
    }
    const Shard& shard = shards_[ShardIndex(h)];
    std::lock_guard<std::mutex> lock(shard.mu);
    float p_error;
    bool from_segment;
    if (ProbeCellLocked(shard, h, ds, i, &key, &p_error, &from_segment)) {
      (*p)[i] = p_error;
      (*hit)[i] = 1;
      shard.hits += 1;
      if (from_segment) shard.spill_hits += 1;
      ++hits;
    } else {
      shard.bloom_fps += 1;
      bloom_fp_counter_.Add(1);
    }
  }
  lookups_.fetch_add(n, std::memory_order_relaxed);
  bloom_negatives_.fetch_add(bloom_negatives, std::memory_order_relaxed);
  const double seconds = timer.ElapsedSeconds();
  probe_ns_.fetch_add(static_cast<int64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
  probe_ns_hist_.Record(seconds * 1e9 / static_cast<double>(n));
  return hits;
}

void ContentMemo::SealShard(Shard* shard, int shard_index) {
  if (options_.spill && !options_.spill_dir.empty() && shard->entries > 0) {
    std::vector<SpillRecord> records;
    records.reserve(shard->entries);
    for (uint64_t slot = 0; slot < shard->slots; ++slot) {
      if (shard->pos[slot] == kEmptySlot) continue;
      SpillRecord r;
      const uint8_t* rec = shard->arena.data() + shard->pos[slot];
      const uint8_t* end = shard->arena.data() + shard->arena.size();
      uint32_t key_len = 0;
      const size_t vn = GetVarint(rec, end, &key_len);
      r.key.assign(rec + vn, rec + vn + key_len);
      std::memcpy(&r.p_error, rec + vn + key_len, 4);
      r.hash = PackedKeyContentHash(r.key.data(), r.key.size());
      records.push_back(std::move(r));
    }
    ::mkdir(options_.spill_dir.c_str(), 0755);  // best effort, EEXIST fine.
    const std::string path = options_.spill_dir + "/memo-shard" +
                             std::to_string(shard_index) + "-" +
                             std::to_string(shard->seals) + ".seg";
    Status st = SpillSegment::Write(path, std::move(records));
    if (st.ok()) {
      auto opened = SpillSegment::Open(path);
      if (opened.ok()) {
        shard->segments.push_back(std::move(opened).value());
        shard->spilled_entries += shard->entries;
        spilled_segments_counter_.Add(1);
        {
          std::lock_guard<std::mutex> lock(spill_mu_);
          spilled_paths_.push_back(path);
        }
      } else {
        std::remove(path.c_str());
        st = opened.status();
      }
    }
    if (!st.ok()) {
      // Spill failed (disk full, bad dir, corrupt write): degrade to plain
      // eviction — still correct, the dropped content just recomputes.
      shard->spill_failures += 1;
      shard->evictions += 1;
      shard->evicted_entries += shard->entries;
      evictions_counter_.Add(1);
    }
  } else if (shard->entries > 0) {
    shard->evictions += 1;
    shard->evicted_entries += shard->entries;
    evictions_counter_.Add(1);
  }
  shard->seals += 1;
  InitTable(shard, std::max<int64_t>(shard->entries, 1024));
  // Note: the bloom is intentionally never rebuilt. Spilled entries remain
  // findable (bits still valid); evicted entries leave stale bits that can
  // only cause counted false positives, never a wrong answer.
}

void ContentMemo::Insert(const data::EncodedDataset& ds, int64_t i,
                         float p_error) {
  if (!enabled()) return;
  const uint64_t h = ds.CellContentHash(i);
  std::vector<uint8_t> key;
  AppendPackedCellKey(ds, i, &key);

  Shard& shard = shards_[ShardIndex(h)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.slots == 0) {
    // Lazy start: small even when capacity is huge — GrowTable doubles as
    // the population actually arrives.
    InitTable(&shard, std::min<int64_t>(shard_capacity_ / 4, 4096));
  }

  float existing;
  bool from_segment;
  if (ProbeLocked(shard, h, key.data(), key.size(), &existing,
                  &from_segment)) {
    return;  // first value wins (all writers agree anyway).
  }

  // Seal when the shard hits its entry bound, when this insert would push
  // its resident bytes past the configured budget share (projecting the
  // arena/table doublings the insert would trigger), or when the arena
  // nears the uint32 position ceiling.
  const int64_t arena_add =
      static_cast<int64_t>(key.size()) + 9;  // varint prefix + p_error bytes.
  // Arena growth step: ~12.5% (min 4 KiB) when unbounded, but never more
  // than a quarter of the shard's byte share when budgeted — a fixed floor
  // would overshoot tight budgets by 16 x 4 KiB before the first seal.
  int64_t arena_step = std::max<int64_t>(
      arena_add,
      std::max<int64_t>(static_cast<int64_t>(shard.arena.capacity()) / 8,
                        4096));
  if (shard_budget_ > 0) {
    arena_step = std::max<int64_t>(
        arena_add, std::min<int64_t>(arena_step, shard_budget_ / 4));
  }
  const bool needs_grow =
      shard.entries + 1 > static_cast<int64_t>(shard.slots) * 4 / 5;
  bool over_budget = false;
  if (shard_budget_ > 0) {
    int64_t projected = ShardResidentBytes(shard);
    if (shard.arena.size() + arena_add > shard.arena.capacity()) {
      projected += arena_step;
    }
    if (needs_grow) {
      projected += static_cast<int64_t>(shard.slots) * kTableSlotBytes;
    }
    over_budget = projected > shard_budget_;
  }
  const bool arena_full =
      shard.arena.size() + arena_add > 0xFFFF0000u;  // uint32 pos ceiling.
  if (shard.entries + 1 > shard_capacity_ || over_budget || arena_full) {
    SealShard(&shard, ShardIndex(h));
  }

  // Grow the table before it saturates (linear probing degrades past ~0.8
  // load); under a byte budget the seal above already bounded the size.
  if (shard.entries + 1 > static_cast<int64_t>(shard.slots) * 4 / 5) {
    GrowTable(&shard);
  }

  // Grow the arena in the projected step instead of vector's doubling:
  // slack is resident bytes, and bytes/unique-cell is the whole point here.
  if (shard.arena.size() + arena_add > shard.arena.capacity()) {
    shard.arena.reserve(shard.arena.size() +
                        static_cast<size_t>(arena_step));
  }
  const uint32_t record_pos = static_cast<uint32_t>(shard.arena.size());
  PutVarint(static_cast<uint32_t>(key.size()), &shard.arena);
  shard.arena.insert(shard.arena.end(), key.begin(), key.end());
  const size_t p_at = shard.arena.size();
  shard.arena.resize(p_at + 4);
  std::memcpy(shard.arena.data() + p_at, &p_error, 4);

  uint64_t slot = SlotFor(h, shard.slots);
  while (shard.pos[slot] != kEmptySlot) {
    if (++slot == shard.slots) slot = 0;
  }
  shard.tag[slot] = HashTag(h);
  shard.pos[slot] = record_pos;
  shard.entries += 1;
  bloom_.Add(h);
  UpdateShardBytes(&shard);
}

void ContentMemo::GrowTable(Shard* shard) {
  const uint64_t old_slots = shard->slots;
  const uint64_t new_slots = old_slots * 2;
  std::vector<uint32_t> old_tag = std::move(shard->tag);
  std::vector<uint32_t> old_pos = std::move(shard->pos);
  std::vector<uint32_t>(new_slots, 0).swap(shard->tag);
  std::vector<uint32_t>(new_slots, kEmptySlot).swap(shard->pos);
  shard->slots = new_slots;
  for (uint64_t s = 0; s < old_slots; ++s) {
    if (old_pos[s] == kEmptySlot) continue;
    // The table keeps only a 32-bit tag; the placement hash is rebuilt from
    // the packed key (grow is rare, decode cost is fine).
    const uint8_t* rec = shard->arena.data() + old_pos[s];
    const uint8_t* end = shard->arena.data() + shard->arena.size();
    uint32_t key_len = 0;
    const size_t vn = GetVarint(rec, end, &key_len);
    const uint64_t h = PackedKeyContentHash(rec + vn, key_len);
    uint64_t slot = SlotFor(h, new_slots);
    while (shard->pos[slot] != kEmptySlot) {
      if (++slot == new_slots) slot = 0;
    }
    shard->tag[slot] = old_tag[s];
    shard->pos[slot] = old_pos[s];
  }
}

int64_t ContentMemo::entries() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries;
  }
  return total;
}

int64_t ContentMemo::evictions() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.evictions;
  }
  return total;
}

ContentMemoStats ContentMemo::stats() const {
  ContentMemoStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += shard.entries;
    s.hits += shard.hits;
    s.bloom_fps += shard.bloom_fps;
    s.evictions += shard.evictions;
    s.evicted_entries += shard.evicted_entries;
    s.spilled_segments += static_cast<int64_t>(shard.segments.size());
    s.spilled_entries += shard.spilled_entries;
    s.spill_hits += shard.spill_hits;
    s.spill_failures += shard.spill_failures;
  }
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.bloom_negatives = bloom_negatives_.load(std::memory_order_relaxed);
  s.probe_seconds =
      static_cast<double>(probe_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

}  // namespace birnn::core
