#ifndef BIRNN_CORE_TRAINER_H_
#define BIRNN_CORE_TRAINER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/model.h"
#include "data/encoding.h"
#include "util/threadpool.h"

namespace birnn::core {

/// Training setup of the paper's §5.2: 120 epochs, RMSprop, binary
/// cross-entropy, batch size = a quarter of the trainset, checkpointing the
/// weights whenever the epoch's train loss improves.
struct TrainerOptions {
  int epochs = 120;
  /// First epoch index to run (exclusive upper bound stays `epochs`). A
  /// warm-start resume sets this to the epoch count already completed: Fit
  /// burns that many shuffle rounds before the loop so the minibatch order
  /// stream continues exactly where the interrupted run left off.
  int start_epoch = 0;
  float learning_rate = 1e-3f;
  float rmsprop_rho = 0.9f;
  /// Batch size as a fraction of the trainset (paper: 1/4).
  double batch_fraction = 0.25;
  bool shuffle = true;
  uint64_t seed = 99;

  /// After restoring the best checkpoint, replace the batch-norm running
  /// statistics with the exact trainset statistics under those weights.
  /// The EMA estimates trail the fast-moving activations of a 220-cell
  /// trainset badly enough to flip inference wholesale; calibration removes
  /// that failure mode (documented in DESIGN.md).
  bool calibrate_batchnorm = true;

  /// Restore the best-train-loss checkpoint at the end of Fit (the paper's
  /// callback behaviour). Off leaves the final-epoch weights in place —
  /// what a mid-run checkpoint/resume split needs for bit-identity, and
  /// what the adapt fine-tune uses (its gate judges the candidate as-is).
  bool restore_best = true;

  /// Record test accuracy per epoch (Fig. 6/7). Costs one inference sweep
  /// per epoch over up to `test_eval_max_cells` test cells. The per-epoch
  /// sweep intentionally uses the *uncalibrated* running stats — that is
  /// what produces the wavy test-accuracy curves with "gaps" the paper
  /// describes in §5.4.
  bool track_test_accuracy = false;
  /// Subsample size for the per-epoch test sweep; 0 = use all test cells.
  int64_t test_eval_max_cells = 2000;
  /// Inference batch size.
  int eval_batch = 256;

  /// Worker threads for data-parallel gradient computation (0 = run all
  /// shards inline on the calling thread). Each minibatch is split into
  /// fixed shards; every shard runs forward/backward on its own tape into a
  /// private gradient buffer, and the buffers are reduced in shard order.
  /// Because the shard partition depends only on the batch size and
  /// `grad_shard_cells` — never on the thread count — training results are
  /// bit-identical for every value of `train_threads`.
  int train_threads = 0;
  /// Target shard size (cells) for data-parallel gradient accumulation.
  /// Must stay fixed across runs that should be comparable: changing it
  /// changes the batch-norm shard statistics and FP summation order.
  int grad_shard_cells = 128;
};

/// Per-epoch measurements.
struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  bool has_test = false;
};

/// Outcome of one training run.
struct TrainHistory {
  std::vector<EpochStats> epochs;
  int best_epoch = -1;          ///< epoch with the lowest train loss.
  double best_train_loss = 0.0;
  double train_seconds = 0.0;   ///< wall-clock time of Fit().
};

/// Optimizer + checkpoint state that outlives one Fit call. Exported when a
/// run is interrupted and imported by the resuming Fit so that
/// (Fit epochs [0,k) → save → load → Fit epochs [k,E)) produces weights
/// bit-identical to one uninterrupted Fit over [0,E) — proven in
/// trainer_test. The RNG itself is not stored: the resuming Fit replays
/// `start_epoch` shuffle rounds, which reproduces both the generator state
/// and the in-place permutation of the minibatch order.
struct TrainState {
  /// RMSprop squared-gradient cache, in `model->Params()` order.
  std::vector<nn::Tensor> rms_cache;
  /// Best-train-loss checkpoint tracking (for `restore_best`).
  double best_loss = std::numeric_limits<double>::infinity();
  int best_epoch = -1;
  ModelSnapshot best;  ///< valid when `best_epoch >= 0`.
};

/// Trains an ErrorDetectionModel on an encoded trainset.
class Trainer {
 public:
  explicit Trainer(TrainerOptions options = {});

  /// Runs the full training loop. If `test` is non-null and
  /// `track_test_accuracy` is set, records test accuracy every epoch. On
  /// return the model holds the best-train-loss weights (checkpoint
  /// restore), matching the paper's callback behaviour.
  ///
  /// `state` (optional, in/out) warm-starts the optimizer and checkpoint
  /// tracking from a previous Fit segment and receives the end-of-run
  /// state back; pair it with `options.start_epoch` for an exact resume.
  TrainHistory Fit(ErrorDetectionModel* model,
                   const data::EncodedDataset& train,
                   const data::EncodedDataset* test = nullptr,
                   TrainState* state = nullptr);

 private:
  TrainerOptions options_;
};

/// Runs thresholded inference over every cell of `ds` through a memoized
/// InferenceEngine sweep (core/inference.h): each distinct cell content is
/// predicted once and broadcast to its duplicates. When `pool` is non-null
/// the sweep's batches are sharded across it; results are bit-identical for
/// every thread count.
void PredictDataset(const ErrorDetectionModel& model,
                    const data::EncodedDataset& ds, int eval_batch,
                    std::vector<uint8_t>* predictions,
                    ThreadPool* pool = nullptr);

/// Fraction of cells of `ds` (restricted to `indices`, or all cells if
/// empty) whose thresholded prediction matches the label. Runs a memoized
/// InferenceEngine sweep; when `pool` is non-null the batches are sharded
/// across it with results identical to the sequential path.
double DatasetAccuracy(const ErrorDetectionModel& model,
                       const data::EncodedDataset& ds, int eval_batch,
                       const std::vector<int64_t>& indices,
                       ThreadPool* pool = nullptr);

}  // namespace birnn::core

#endif  // BIRNN_CORE_TRAINER_H_
