#ifndef BIRNN_CORE_DETECTOR_H_
#define BIRNN_CORE_DETECTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/inference.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dictionary.h"
#include "data/prepare.h"
#include "data/table.h"
#include "eval/metrics.h"
#include "util/status.h"

namespace birnn::core {

/// Answers "is cell (row_id, attr) erroneous?" for the tuples the sampler
/// proposed — the human-in-the-loop labeling step. Experiments back it
/// with ground truth; deployments with an actual user.
using LabelOracle = std::function<int(int64_t row_id, int attr)>;

/// End-to-end configuration: "The user gives our system a dataset and
/// chooses the number of tuples for training" (§1, System in action).
struct DetectorOptions {
  /// "tsb" (value branch only) or "etsb" (enriched).
  std::string model = "etsb";
  /// "randomset" | "rahaset" | "diverset" (paper default: DiverSet).
  std::string sampler = "diverset";
  /// Labeled-tuple budget (paper: 20).
  int n_label_tuples = 20;

  data::PrepareOptions prepare;
  TrainerOptions trainer;

  /// Architecture overrides (defaults are the paper's).
  int units = 64;
  int stacks = 2;
  bool bidirectional = true;
  /// "rnn" (paper), "gru", or "lstm".
  std::string cell_type = "rnn";
  int char_emb_dim = 32;
  bool use_attr_branch = true;
  bool use_length_branch = true;

  /// Worker threads for the final whole-table inference sweep (0 = run on
  /// the calling thread). The sweep's batch plan never depends on the
  /// thread count, so predictions are bit-identical for every value.
  int eval_threads = 0;

  /// Opt-in: length-bucket the final inference sweep so the backward value
  /// chain skips its all-pad prefix (precomputed once and warm-started per
  /// bucket). Bit-identical predictions, fewer RNN steps on tables whose
  /// value lengths vary; see InferenceOptions::bucketed.
  bool bucketed_inference = false;

  /// Worker threads for data-parallel gradient computation during training
  /// (0 = inline). Copied into `trainer.train_threads`; results are
  /// bit-identical for every thread count (see TrainerOptions).
  int train_threads = 0;

  /// §5.7 future-work extension: OR the model's verdict with the
  /// functional-dependency and duplicate-record strategies, which catch the
  /// cross-attribute errors the character model cannot see.
  bool use_fd_ensemble = false;

  uint64_t seed = 42;
};

/// Everything a detection run produces.
struct DetectionReport {
  /// Per-cell prediction over the *whole* frame, tuple-major
  /// (row_id * n_attrs + attr).
  std::vector<uint8_t> predicted;
  /// Ground-truth labels in the same layout (empty in deployment mode).
  std::vector<int32_t> truth;
  /// Tuples the sampler selected for labeling.
  std::vector<int64_t> labeled_tuples;
  /// Metrics over the test cells only (cells of non-labeled tuples),
  /// matching the paper's evaluation protocol.
  eval::Metrics test_metrics;
  eval::Confusion test_confusion;
  /// Training curve + best-epoch bookkeeping.
  TrainHistory history;
  /// Accounting of the final whole-table inference sweep (dedup factor,
  /// batches, RNN steps, wall clock).
  InferenceStats inference;
  /// Sizes, for reporting ("trainset of size 220, testset of size 26,290").
  int64_t train_cells = 0;
  int64_t test_cells = 0;
};

/// Everything needed to reconstruct a trained detector without retraining —
/// the unit serve::SaveDetectorBundle persists. The model holds the
/// best-checkpoint weights with calibrated batch-norm statistics: exactly
/// the state that produced the accompanying DetectionReport's predictions,
/// so a served detector answers bit-identically to the offline run. The
/// encoding state (dictionary, attribute names, per-attribute length_norm
/// denominators) lets serving-time cells be encoded exactly as the training
/// frame's cells were.
struct TrainedDetector {
  ModelConfig config;
  std::unique_ptr<ErrorDetectionModel> model;
  data::CharIndex chars;
  std::vector<std::string> attr_names;
  /// Longest value_x length per attribute over the training frame — the
  /// denominator of data::CellRecord::length_norm.
  std::vector<int32_t> attr_max_value_len;
  data::PrepareOptions prepare;
  /// Provenance: the options the detector was trained with.
  DetectorOptions options;
  /// Distinct cell contents in the training table's whole-frame sweep (0
  /// when unknown). Persisted in the bundle manifest so a serving process
  /// can pre-size its verdict memo for the table it was trained on instead
  /// of growing through rehashes on the first sweep.
  int64_t train_unique_cells = 0;
  /// core::DatasetContentFingerprint of the encoded training frame (0 when
  /// unknown) — lets operators recognize which table a bundle came from.
  uint64_t content_fingerprint = 0;
  /// Frozen train-time column statistics (bundle manifest v3): per-attribute
  /// empty-value rate over the prepared frame and per-attribute predicted-
  /// error rate of the whole-table sweep. Streaming sessions diff their
  /// live ingest statistics against these to raise drift alarms without
  /// ever rescanning the training table. Both are sized n_attrs when
  /// `has_frozen_stats` is set.
  std::vector<float> attr_empty_rate;
  std::vector<float> attr_error_rate;
  bool has_frozen_stats = false;
};

/// The paper's end-to-end system: data preparation -> trainset selection ->
/// user labeling -> training -> per-cell error detection.
class ErrorDetector {
 public:
  explicit ErrorDetector(DetectorOptions options = {});

  /// Experiment mode: the clean table provides both the oracle labels for
  /// the sampled tuples and the ground truth for evaluation. When `trained`
  /// is non-null it receives the trained model and encoding state for
  /// serving (see TrainedDetector).
  StatusOr<DetectionReport> Run(const data::Table& dirty,
                                const data::Table& clean,
                                TrainedDetector* trained = nullptr);

  /// Deployment mode: no clean table; `oracle` labels the sampled tuples
  /// (e.g. by asking a human). The report's truth vector and test metrics
  /// are empty/zero.
  StatusOr<DetectionReport> RunWithOracle(const data::Table& dirty,
                                          const LabelOracle& oracle,
                                          TrainedDetector* trained = nullptr);

  const DetectorOptions& options() const { return options_; }

 private:
  StatusOr<DetectionReport> RunInternal(const data::Table& dirty,
                                        const data::Table* clean,
                                        const LabelOracle& oracle,
                                        TrainedDetector* trained);

  DetectorOptions options_;
};

/// Builds a ModelConfig from detector options + encoded data properties.
ModelConfig BuildModelConfig(const DetectorOptions& options, int vocab,
                             int max_len, int n_attrs);

}  // namespace birnn::core

#endif  // BIRNN_CORE_DETECTOR_H_
