#include "core/inference.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "core/content_index.h"
#include "obs/obs.h"
#include "util/stopwatch.h"

namespace birnn::core {
namespace {

/// Batches are padded (by repeating the last real cell) to a multiple of
/// this row count. The elementwise transcendental sweeps (vecmath.cc) run
/// libmvec SIMD bodies with scalar tails; keeping every (rows x cols)
/// activation buffer a multiple of the widest SIMD register (16 floats)
/// guarantees the tail is never taken, so a cell's values cannot depend on
/// its position in a batch — the invariant behind "memoized == unmemoized,
/// bit for bit".
constexpr int kRowQuantum = 16;

int64_t PaddedRows(int64_t rows) {
  return (rows + kRowQuantum - 1) / kRowQuantum * kRowQuantum;
}

}  // namespace

InferenceEngine::InferenceEngine(const ErrorDetectionModel& model,
                                 InferenceOptions options, ThreadPool* pool)
    : model_(model), options_(options), external_pool_(pool) {
  options_.eval_batch = std::max(1, options_.eval_batch);
  options_.bucket_quantum = std::max(1, options_.bucket_quantum);
}

void InferenceEngine::BuildPlan(const data::EncodedDataset& ds,
                                const std::vector<int64_t>& indices,
                                SweepPlan* plan) const {
  const int64_t n = static_cast<int64_t>(indices.size());
  plan->unique_cells.clear();
  plan->cell_to_unique.resize(static_cast<size_t>(n));

  if (options_.memoize) {
    // Dedup on (attr id, encoded chars, length_norm), first occurrence
    // wins; the hash narrows, content equality confirms. Open-addressing
    // flat table in two parallel arrays (no per-entry heap allocation,
    // contiguous probes) sized up front for the worst case — every cell
    // unique — at <= 0.75 load, so it never rehashes mid-plan. Distinct
    // contents sharing a 64-bit hash simply occupy separate slots; the
    // content-equality confirm keeps the dedup exact either way.
    uint64_t slots = 64;
    const uint64_t want =
        static_cast<uint64_t>(n) + static_cast<uint64_t>(n) / 3 + 1;
    while (slots < want) slots <<= 1;
    const uint64_t mask = slots - 1;
    std::vector<uint64_t> slot_hash(slots, 0);
    std::vector<int32_t> slot_unique(slots, -1);
    for (int64_t k = 0; k < n; ++k) {
      const int64_t cell = indices[static_cast<size_t>(k)];
      const uint64_t h = ds.CellContentHash(cell);
      uint64_t s = h & mask;
      int32_t unique = -1;
      while (slot_unique[s] >= 0) {
        if (slot_hash[s] == h &&
            ds.CellContentEquals(
                plan->unique_cells[static_cast<size_t>(slot_unique[s])],
                cell)) {
          unique = slot_unique[s];
          break;
        }
        s = (s + 1) & mask;
      }
      if (unique < 0) {
        unique = static_cast<int32_t>(plan->unique_cells.size());
        plan->unique_cells.push_back(cell);
        slot_hash[s] = h;
        slot_unique[s] = unique;
      }
      plan->cell_to_unique[static_cast<size_t>(k)] = unique;
    }
  } else {
    plan->unique_cells.assign(indices.begin(), indices.end());
    for (int64_t k = 0; k < n; ++k) {
      plan->cell_to_unique[static_cast<size_t>(k)] = static_cast<int32_t>(k);
    }
  }

  const int64_t n_unique = static_cast<int64_t>(plan->unique_cells.size());
  plan->order.resize(static_cast<size_t>(n_unique));
  for (int64_t u = 0; u < n_unique; ++u) {
    plan->order[static_cast<size_t>(u)] = static_cast<int32_t>(u);
  }

  // Padded length per unique cell: the dataset-global max_len, or — under
  // opt-in bucketing — the effective length rounded up to the bucket
  // quantum. A batch never mixes padded lengths, so each cell always runs
  // at exactly its bucket's length regardless of batch composition.
  std::vector<int> padded_len;
  if (options_.bucketed) {
    padded_len.resize(static_cast<size_t>(n_unique));
    for (int64_t u = 0; u < n_unique; ++u) {
      const int eff =
          std::max(1, ds.effective_len(plan->unique_cells[static_cast<size_t>(u)]));
      const int rounded =
          (eff + options_.bucket_quantum - 1) / options_.bucket_quantum *
          options_.bucket_quantum;
      padded_len[static_cast<size_t>(u)] = std::min(ds.max_len, rounded);
    }
    std::stable_sort(plan->order.begin(), plan->order.end(),
                     [&padded_len](int32_t a, int32_t b) {
                       return padded_len[static_cast<size_t>(a)] <
                              padded_len[static_cast<size_t>(b)];
                     });
  }

  plan->batches.clear();
  int64_t begin = 0;
  while (begin < n_unique) {
    const int len = options_.bucketed
                        ? padded_len[static_cast<size_t>(
                              plan->order[static_cast<size_t>(begin)])]
                        : ds.max_len;
    int64_t end = begin;
    while (end < n_unique && end - begin < options_.eval_batch &&
           (!options_.bucketed ||
            padded_len[static_cast<size_t>(
                plan->order[static_cast<size_t>(end)])] == len)) {
      ++end;
    }
    plan->batches.push_back(PlanBatch{begin, end, len});
    begin = end;
  }
}

void InferenceEngine::RunPlan(const data::EncodedDataset& ds,
                              const SweepPlan& plan, bool want_hidden,
                              std::vector<float>* p_unique,
                              nn::Tensor* hidden_unique) {
  const int64_t n_unique = static_cast<int64_t>(plan.unique_cells.size());
  if (want_hidden) {
    hidden_unique->ResizeForOverwrite(
        static_cast<int>(n_unique), model_.config().hidden_dense_dim);
  } else {
    p_unique->resize(static_cast<size_t>(n_unique));
  }
  if (n_unique == 0) return;

  const int64_t n_batches = static_cast<int64_t>(plan.batches.size());
  auto run_range = [&](int64_t b_begin, int64_t b_end) {
    // Per-worker scratch: BatchInput columns, every forward tensor and the
    // result buffers persist across this worker's batches.
    InferenceScratch scratch;
    BatchInput batch;
    std::vector<int64_t> cells;
    std::vector<float> probs;
    nn::Tensor hidden;
    for (int64_t b = b_begin; b < b_end; ++b) {
      OBS_SPAN("inference/batch");
      const PlanBatch& pb = plan.batches[static_cast<size_t>(b)];
      cells.clear();
      for (int64_t i = pb.begin; i < pb.end; ++i) {
        cells.push_back(plan.unique_cells[static_cast<size_t>(
            plan.order[static_cast<size_t>(i)])]);
      }
      const int64_t real_rows = pb.end - pb.begin;
      while (static_cast<int64_t>(cells.size()) < PaddedRows(real_rows)) {
        cells.push_back(cells.back());
      }
      MakeBatchInto(ds, cells, pb.padded_len, &batch);
      const BucketedInferenceContext* ctx =
          pb.padded_len < ds.max_len ? &bucketed_ctx_ : nullptr;
      if (want_hidden) {
        model_.ForwardHidden(batch, &hidden, &scratch, ctx,
                             options_.precision);
        for (int64_t r = 0; r < real_rows; ++r) {
          const int32_t u = plan.order[static_cast<size_t>(pb.begin + r)];
          for (int j = 0; j < hidden.cols(); ++j) {
            hidden_unique->at(u, j) = hidden.at(static_cast<int>(r), j);
          }
        }
      } else {
        model_.PredictProbs(batch, &probs, &scratch, ctx,
                            options_.precision);
        for (int64_t r = 0; r < real_rows; ++r) {
          const int32_t u = plan.order[static_cast<size_t>(pb.begin + r)];
          (*p_unique)[static_cast<size_t>(u)] =
              probs[static_cast<size_t>(r)];
        }
      }
    }
  };

  // Shard contiguous batch ranges over the workers. Every batch's inputs
  // and output slots are fixed by the plan, so the shard boundaries (and
  // the thread count) cannot change any result bit.
  ThreadPool* pool = external_pool_;
  std::unique_ptr<ThreadPool> own_pool;
  if (pool == nullptr && options_.threads > 0) {
    own_pool = std::make_unique<ThreadPool>(options_.threads);
    pool = own_pool.get();
  }
  const int workers = pool != nullptr ? pool->num_threads() : 0;
  if (workers <= 1 || n_batches <= 1) {
    run_range(0, n_batches);
    return;
  }
  const int64_t n_chunks = std::min<int64_t>(workers, n_batches);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(n_chunks));
  for (int64_t c = 0; c < n_chunks; ++c) {
    const int64_t b_begin = c * n_batches / n_chunks;
    const int64_t b_end = (c + 1) * n_batches / n_chunks;
    tasks.push_back([&run_range, b_begin, b_end]() {
      run_range(b_begin, b_end);
    });
  }
  pool->SubmitBulk(std::move(tasks));
  pool->Wait();
}

void InferenceEngine::SweepUnique(const data::EncodedDataset& ds,
                                  const std::vector<int64_t>& indices,
                                  bool want_hidden, SweepPlan* plan,
                                  std::vector<float>* p_unique,
                                  nn::Tensor* hidden_unique) {
  OBS_SPAN("inference/sweep");
  Stopwatch timer;
  BuildPlan(ds, indices, plan);

  // Shadow weights and the pad-prefix trajectory are built serially here,
  // before RunPlan fans out: the pool's task submission gives every worker
  // a happens-before edge on them. The trajectory is computed *at the
  // engine's precision* — the bucketed==unbucketed bit-identity must hold
  // within the precision the sweep actually runs.
  if (options_.precision != nn::Precision::kFp32 && !quant_ready_) {
    model_.PrepareQuantizedInference(options_.precision);
    quant_ready_ = true;
  }
  if (options_.bucketed && !bucketed_ctx_ready_) {
    model_.PrepareBucketedInference(&bucketed_ctx_, options_.precision);
    bucketed_ctx_ready_ = true;
  }

  stats_ = InferenceStats{};
  stats_.cells = static_cast<int64_t>(indices.size());
  stats_.unique_cells = static_cast<int64_t>(plan->unique_cells.size());
  stats_.dedup_factor =
      stats_.unique_cells > 0
          ? static_cast<double>(stats_.cells) /
                static_cast<double>(stats_.unique_cells)
          : 1.0;
  stats_.batches = static_cast<int64_t>(plan->batches.size());
  const int dirs = model_.config().bidirectional ? 2 : 1;
  stats_.rnn_steps_dense = stats_.cells * ds.max_len * dirs;
  int64_t pad_rows = 0;
  for (const PlanBatch& pb : plan->batches) {
    // The forward chain always runs to max_len; bucketing shortens only
    // the backward chain (its pad prefix is warm-started, not re-run).
    const int64_t real_rows = pb.end - pb.begin;
    pad_rows += PaddedRows(real_rows) - real_rows;
    stats_.rnn_steps +=
        PaddedRows(real_rows) *
        (ds.max_len + (dirs == 2 ? pb.padded_len : 0));
    OBS_HISTOGRAM_RECORD("inference/batch_fill",
                         static_cast<double>(real_rows) /
                             static_cast<double>(PaddedRows(real_rows)));
  }
  OBS_COUNTER_ADD("inference/cells", stats_.cells);
  OBS_COUNTER_ADD("inference/unique_cells", stats_.unique_cells);
  OBS_COUNTER_ADD("inference/memo_hits", stats_.cells - stats_.unique_cells);
  OBS_COUNTER_ADD("inference/batches", stats_.batches);
  OBS_COUNTER_ADD("inference/rnn_steps", stats_.rnn_steps);
  OBS_COUNTER_ADD("inference/rnn_steps_dense", stats_.rnn_steps_dense);
  OBS_COUNTER_ADD("inference/pad_rows", pad_rows);

  RunPlan(ds, *plan, want_hidden, p_unique, hidden_unique);
  stats_.seconds = timer.ElapsedSeconds();
  OBS_HISTOGRAM_RECORD("inference/sweep_seconds", stats_.seconds);
}

void InferenceEngine::PredictProbs(const data::EncodedDataset& ds,
                                   const std::vector<int64_t>& indices,
                                   std::vector<float>* p_error) {
  std::vector<int64_t> all;
  const std::vector<int64_t>* use = &indices;
  if (indices.empty()) {
    all.resize(static_cast<size_t>(ds.num_cells()));
    for (int64_t i = 0; i < ds.num_cells(); ++i) {
      all[static_cast<size_t>(i)] = i;
    }
    use = &all;
  }

  SweepPlan plan;
  std::vector<float> p_unique;
  SweepUnique(ds, *use, /*want_hidden=*/false, &plan, &p_unique, nullptr);

  p_error->resize(use->size());
  for (size_t k = 0; k < use->size(); ++k) {
    (*p_error)[k] = p_unique[static_cast<size_t>(plan.cell_to_unique[k])];
  }
}

int64_t InferenceEngine::PredictProbsMemoized(const data::EncodedDataset& ds,
                                              ContentMemo* memo,
                                              std::vector<float>* p_error) {
  const int64_t n = ds.num_cells();
  p_error->assign(static_cast<size_t>(n), 0.0f);
  if (memo == nullptr || !memo->enabled()) {
    if (n > 0) PredictProbs(ds, {}, p_error);
    return 0;
  }
  std::vector<uint8_t> hit(static_cast<size_t>(n), 0);
  const int64_t hits = memo->Lookup(ds, p_error, &hit);
  if (hits >= n) {
    // Fully memo-served: no model work. Report an empty (zero-second)
    // sweep so callers can sum stats().seconds unconditionally.
    stats_ = InferenceStats{};
    stats_.cells = n;
    return hits;
  }
  std::vector<int64_t> miss;
  miss.reserve(static_cast<size_t>(n - hits));
  for (int64_t i = 0; i < n; ++i) {
    if (!hit[static_cast<size_t>(i)]) miss.push_back(i);
  }
  const data::EncodedDataset miss_ds = data::TakeCells(ds, miss);
  std::vector<float> miss_p;
  PredictProbs(miss_ds, {}, &miss_p);
  for (size_t k = 0; k < miss.size(); ++k) {
    (*p_error)[static_cast<size_t>(miss[k])] = miss_p[k];
    memo->Insert(miss_ds, static_cast<int64_t>(k), miss_p[k]);
  }
  return hits;
}

void InferenceEngine::Predict(const data::EncodedDataset& ds,
                              std::vector<uint8_t>* labels) {
  std::vector<float> p;
  PredictProbs(ds, {}, &p);
  labels->resize(p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    (*labels)[i] = p[i] > 0.5f ? 1 : 0;
  }
}

double InferenceEngine::Accuracy(const data::EncodedDataset& ds,
                                 const std::vector<int64_t>& indices) {
  std::vector<float> p;
  PredictProbs(ds, indices, &p);
  if (p.empty()) return 0.0;
  int64_t correct = 0;
  for (size_t k = 0; k < p.size(); ++k) {
    const int64_t cell =
        indices.empty() ? static_cast<int64_t>(k) : indices[k];
    const int pred = p[k] > 0.5f ? 1 : 0;
    if (pred == ds.labels[static_cast<size_t>(cell)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(p.size());
}

void CalibrateBatchNormMemoized(ErrorDetectionModel* model,
                                const data::EncodedDataset& ds,
                                const InferenceOptions& options,
                                ThreadPool* pool) {
  if (ds.num_cells() == 0) return;
  InferenceOptions calibrate_options = options;
  calibrate_options.bucketed = false;  // exact activations only
  // Calibration defines the model's training-time statistics; they must
  // not drift with the serving precision.
  calibrate_options.precision = nn::Precision::kFp32;
  InferenceEngine engine(*model, calibrate_options, pool);

  std::vector<int64_t> all(static_cast<size_t>(ds.num_cells()));
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    all[static_cast<size_t>(i)] = i;
  }
  InferenceEngine::SweepPlan plan;
  nn::Tensor hidden_unique;
  engine.SweepUnique(ds, all, /*want_hidden=*/true, &plan, nullptr,
                     &hidden_unique);

  // Accumulate per original cell (not per unique cell) in dataset order —
  // the same double-precision summation sequence as the unmemoized
  // reference in ErrorDetectionModel::CalibrateBatchNorm.
  const int features = model->config().hidden_dense_dim;
  std::vector<double> sum(static_cast<size_t>(features), 0.0);
  std::vector<double> sum_sq(static_cast<size_t>(features), 0.0);
  for (int64_t i = 0; i < ds.num_cells(); ++i) {
    const int32_t u = plan.cell_to_unique[static_cast<size_t>(i)];
    for (int j = 0; j < features; ++j) {
      const double v = hidden_unique.at(u, j);
      sum[static_cast<size_t>(j)] += v;
      sum_sq[static_cast<size_t>(j)] += v * v;
    }
  }
  const double count = static_cast<double>(ds.num_cells());
  nn::Tensor mean(std::vector<int>{features});
  nn::Tensor var(std::vector<int>{features});
  for (int j = 0; j < features; ++j) {
    const size_t sj = static_cast<size_t>(j);
    const double m = sum[sj] / count;
    mean[sj] = static_cast<float>(m);
    var[sj] =
        static_cast<float>(std::max(0.0, sum_sq[sj] / count - m * m));
  }
  model->SetBatchNormStats(std::move(mean), std::move(var));
}

}  // namespace birnn::core
