#include "core/model.h"

#include <algorithm>
#include <map>
#include <utility>

#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace birnn::core {

Status ModelConfig::Validate() const {
  if (vocab < 2) return Status::InvalidArgument("vocab must be >= 2");
  if (max_len < 1) return Status::InvalidArgument("max_len must be >= 1");
  if (enriched && use_attr_branch && n_attrs < 1) {
    return Status::InvalidArgument("enriched model needs n_attrs >= 1");
  }
  if (units < 1 || stacks < 1) {
    return Status::InvalidArgument("units and stacks must be >= 1");
  }
  return Status::OK();
}

BatchInput MakeBatch(const data::EncodedDataset& ds,
                     const std::vector<int64_t>& indices) {
  BatchInput b;
  MakeBatchInto(ds, indices, ds.max_len, &b);
  return b;
}

void MakeBatchInto(const data::EncodedDataset& ds,
                   const std::vector<int64_t>& indices, int padded_len,
                   BatchInput* out) {
  BIRNN_CHECK_GE(padded_len, 1);
  BIRNN_CHECK_LE(padded_len, ds.max_len);
  out->batch = static_cast<int>(indices.size());
  out->char_steps.resize(static_cast<size_t>(padded_len));
  for (auto& step : out->char_steps) step.resize(indices.size());
  out->attr_ids.resize(indices.size());
  out->length_norm.resize(indices.size());
  out->labels.resize(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t cell = indices[i];
    for (int t = 0; t < padded_len; ++t) {
      out->char_steps[static_cast<size_t>(t)][i] = ds.seq_at(cell, t);
    }
    out->attr_ids[i] = ds.attrs[static_cast<size_t>(cell)];
    out->length_norm[i] = ds.length_norm[static_cast<size_t>(cell)];
    out->labels[i] = ds.labels[static_cast<size_t>(cell)];
  }
}

ErrorDetectionModel::ErrorDetectionModel(const ModelConfig& config)
    : config_(config), name_(config.enriched ? "ETSB-RNN" : "TSB-RNN") {
  BIRNN_CHECK(config.Validate().ok()) << config.Validate().ToString();
  Rng rng(config.seed ^ 0xE75BULL);

  char_emb_ = std::make_unique<nn::Embedding>("char_emb", config.vocab,
                                              config.char_emb_dim, &rng);
  value_rnn_ = std::make_unique<nn::StackedBiRecurrent>(
      config.cell_type, "value_rnn", config.char_emb_dim, config.units,
      config.stacks, config.bidirectional, &rng);

  if (config.enriched && config.use_attr_branch) {
    attr_emb_ = std::make_unique<nn::Embedding>("attr_emb", config.n_attrs,
                                                config.attr_emb_dim, &rng);
    attr_rnn_ = std::make_unique<nn::StackedBiRecurrent>(
        config.cell_type, "attr_rnn", config.attr_emb_dim, config.attr_units,
        config.stacks, config.bidirectional, &rng);
  }
  if (config.enriched && config.use_length_branch) {
    length_dense_ = std::make_unique<nn::Dense>(
        "length_dense", 1, config.length_dense_dim,
        nn::Dense::Activation::kRelu, &rng);
  }

  hidden_dense_ = std::make_unique<nn::Dense>("hidden_dense", ConcatDim(),
                                              config.hidden_dense_dim,
                                              nn::Dense::Activation::kRelu,
                                              &rng);
  batch_norm_ =
      std::make_unique<nn::BatchNorm1d>("batch_norm", config.hidden_dense_dim);
  output_dense_ = std::make_unique<nn::Dense>("output_dense",
                                              config.hidden_dense_dim, 2,
                                              nn::Dense::Activation::kNone,
                                              &rng);
}

int ErrorDetectionModel::ConcatDim() const {
  int dim = value_rnn_->output_dim();
  if (attr_rnn_ != nullptr) dim += attr_rnn_->output_dim();
  if (length_dense_ != nullptr) dim += config_.length_dense_dim;
  return dim;
}

nn::Graph::Var ErrorDetectionModel::Forward(nn::Graph* g,
                                            const BatchInput& batch,
                                            bool training,
                                            nn::Tensor* bn_mean_out,
                                            nn::Tensor* bn_var_out) {
  BIRNN_CHECK_EQ(static_cast<int>(batch.char_steps.size()), config_.max_len);

  // Value branch: character embedding -> two-stacked bidirectional RNN.
  const nn::Graph::Var char_table = char_emb_->Bind(g);
  std::vector<nn::Graph::Var> steps;
  steps.reserve(batch.char_steps.size());
  for (const auto& ids : batch.char_steps) {
    steps.push_back(g->Embedding(char_table, ids));
  }
  nn::Graph::Var features = value_rnn_->Apply(g, steps, batch.batch);

  std::vector<nn::Graph::Var> parts{features};
  if (attr_rnn_ != nullptr) {
    // Attribute branch: the attribute id is a length-1 sequence through its
    // own embedding + BiRNN (Fig. 5, bottom left).
    const nn::Graph::Var attr_table = attr_emb_->Bind(g);
    std::vector<nn::Graph::Var> attr_steps{
        g->Embedding(attr_table, batch.attr_ids)};
    parts.push_back(attr_rnn_->Apply(g, attr_steps, batch.batch));
  }
  if (length_dense_ != nullptr) {
    // Length branch: length_norm scalar -> Dense(64) ReLU.
    nn::Tensor len(batch.batch, 1);
    for (int i = 0; i < batch.batch; ++i) {
      len.at(i, 0) = batch.length_norm[static_cast<size_t>(i)];
    }
    parts.push_back(length_dense_->Bind(g).Apply(g->Input(std::move(len))));
  }
  nn::Graph::Var concat =
      parts.size() == 1 ? parts[0] : g->ConcatCols(parts);

  // Head: Dense(32) ReLU -> BatchNorm -> Dense(2) (softmax applied by the
  // loss / by PredictProbs).
  nn::Graph::Var hidden = hidden_dense_->Bind(g).Apply(concat);
  nn::Graph::Var normed;
  if (training && bn_mean_out != nullptr) {
    normed =
        batch_norm_->ApplyTrainCaptured(g, hidden, bn_mean_out, bn_var_out);
  } else {
    normed = batch_norm_->Apply(g, hidden, training);
  }
  return output_dense_->Bind(g).Apply(normed);
}

void ErrorDetectionModel::UpdateBatchNorm(const nn::Tensor& batch_mean,
                                          const nn::Tensor& batch_var) {
  batch_norm_->UpdateRunningStats(batch_mean, batch_var);
}

void ErrorDetectionModel::ForwardHidden(
    const BatchInput& batch, nn::Tensor* hidden, InferenceScratch* scratch,
    const BucketedInferenceContext* bucketed, nn::Precision precision) const {
  const int t_count = static_cast<int>(batch.char_steps.size());
  BIRNN_CHECK_GE(t_count, 1);
  BIRNN_CHECK_LE(t_count, config_.max_len);
  BIRNN_CHECK(t_count == config_.max_len || bucketed != nullptr);

  if (scratch->char_steps.size() < static_cast<size_t>(t_count)) {
    scratch->char_steps.resize(static_cast<size_t>(t_count));
  }
  for (int t = 0; t < t_count; ++t) {
    char_emb_->LookupForward(batch.char_steps[static_cast<size_t>(t)],
                             &scratch->char_steps[static_cast<size_t>(t)]);
  }
  if (t_count < config_.max_len) {
    // Length-bucketed batch: complete the sequence to max_len exactly. The
    // forward chain runs the pad tail on a shared all-pad input column; the
    // backward chain warm-starts from the precomputed pad-prefix state.
    scratch->pad_ids.assign(static_cast<size_t>(batch.batch), 0);
    char_emb_->LookupForward(scratch->pad_ids, &scratch->pad_step);
    value_rnn_->ApplyForwardBucketed(scratch->char_steps.data(), t_count,
                                     config_.max_len, scratch->pad_step,
                                     bucketed->value_traj, &scratch->features,
                                     &scratch->value_rnn, precision);
  } else {
    value_rnn_->ApplyForward(scratch->char_steps.data(), t_count,
                             &scratch->features, &scratch->value_rnn,
                             precision);
  }

  std::vector<const nn::Tensor*> parts{&scratch->features};
  if (attr_rnn_ != nullptr) {
    attr_emb_->LookupForward(batch.attr_ids, &scratch->attr_emb);
    attr_rnn_->ApplyForward(&scratch->attr_emb, 1, &scratch->attr_features,
                            &scratch->attr_rnn, precision);
    parts.push_back(&scratch->attr_features);
  }
  if (length_dense_ != nullptr) {
    scratch->len_in.ResizeForOverwrite(batch.batch, 1);
    for (int i = 0; i < batch.batch; ++i) {
      scratch->len_in.at(i, 0) = batch.length_norm[static_cast<size_t>(i)];
    }
    length_dense_->ApplyForward(scratch->len_in, &scratch->len_features,
                                &scratch->dense);
    parts.push_back(&scratch->len_features);
  }
  if (parts.size() == 1) {
    hidden_dense_->ApplyForward(scratch->features, hidden, &scratch->dense);
  } else {
    nn::ConcatCols(parts, &scratch->concat);
    hidden_dense_->ApplyForward(scratch->concat, hidden, &scratch->dense);
  }
}

void ErrorDetectionModel::PredictProbs(const BatchInput& batch,
                                       std::vector<float>* p_error) const {
  InferenceScratch scratch;
  PredictProbs(batch, p_error, &scratch);
}

void ErrorDetectionModel::PrepareBucketedInference(
    BucketedInferenceContext* ctx, nn::Precision precision) const {
  // 16 identical rows: one full SIMD register, so the elementwise kernels
  // take the same vector path as the engine's row-padded batches and the
  // trajectory is bit-identical to running the prefix inline.
  const std::vector<int> pad_ids(16, 0);
  nn::Tensor pad_step;
  char_emb_->LookupForward(pad_ids, &pad_step);
  value_rnn_->ComputeBackwardPadPrefix(pad_step, config_.max_len,
                                       &ctx->value_traj, precision);
}

void ErrorDetectionModel::PrepareQuantizedInference(nn::Precision p) const {
  if (p == nn::Precision::kFp32) return;
  std::lock_guard<std::mutex> lock(quant_mutex_);
  value_rnn_->PrepareQuantized(p);
  if (attr_rnn_ != nullptr) attr_rnn_->PrepareQuantized(p);
}

bool ErrorDetectionModel::QuantizedInferenceReady(nn::Precision p) const {
  if (!value_rnn_->QuantizedReady(p)) return false;
  return attr_rnn_ == nullptr || attr_rnn_->QuantizedReady(p);
}

void ErrorDetectionModel::ExportQuantized(
    std::vector<nn::TypedEntry>* entries) const {
  std::lock_guard<std::mutex> lock(quant_mutex_);
  value_rnn_->ExportQuantized(entries);
  if (attr_rnn_ != nullptr) attr_rnn_->ExportQuantized(entries);
}

std::vector<const nn::Parameter*> ErrorDetectionModel::ConstParams() const {
  // Params() is non-const because the trainer writes through it; this view
  // only drops the mutability for callers that inspect.
  std::vector<const nn::Parameter*> out;
  for (nn::Parameter* p : const_cast<ErrorDetectionModel*>(this)->Params()) {
    out.push_back(p);
  }
  return out;
}

Status ErrorDetectionModel::ImportQuantized(
    std::vector<nn::TypedEntry> entries) {
  std::map<std::string, nn::TypedEntry> by_name;
  for (auto& e : entries) {
    const std::string name = e.name;
    if (!by_name.emplace(name, std::move(e)).second) {
      return Status::InvalidArgument("duplicate quantized entry: " + name);
    }
  }
  std::lock_guard<std::mutex> lock(quant_mutex_);
  BIRNN_RETURN_IF_ERROR(value_rnn_->ImportQuantized(&by_name));
  if (attr_rnn_ != nullptr) {
    BIRNN_RETURN_IF_ERROR(attr_rnn_->ImportQuantized(&by_name));
  }
  if (!by_name.empty()) {
    return Status::InvalidArgument("unrecognized quantized entry: " +
                                   by_name.begin()->first);
  }
  return Status::OK();
}

void ErrorDetectionModel::PredictProbs(
    const BatchInput& batch, std::vector<float>* p_error,
    InferenceScratch* scratch, const BucketedInferenceContext* bucketed,
    nn::Precision precision) const {
  ForwardHidden(batch, &scratch->hidden, scratch, bucketed, precision);
  batch_norm_->ApplyForward(scratch->hidden, &scratch->normed);
  output_dense_->ApplyForward(scratch->normed, &scratch->logits,
                              &scratch->dense);
  nn::SoftmaxRows(scratch->logits, &scratch->probs);

  p_error->resize(static_cast<size_t>(batch.batch));
  for (int i = 0; i < batch.batch; ++i) {
    (*p_error)[static_cast<size_t>(i)] = scratch->probs.at(i, 1);
  }
}

void ErrorDetectionModel::CalibrateBatchNorm(const data::EncodedDataset& ds,
                                             int batch_size) {
  if (ds.num_cells() == 0) return;
  const int features = config_.hidden_dense_dim;
  std::vector<double> sum(static_cast<size_t>(features), 0.0);
  std::vector<double> sum_sq(static_cast<size_t>(features), 0.0);
  int64_t count = 0;

  std::vector<int64_t> indices;
  nn::Tensor hidden;
  InferenceScratch scratch;
  BatchInput batch;
  for (int64_t start = 0; start < ds.num_cells(); start += batch_size) {
    const int64_t end = std::min<int64_t>(start + batch_size, ds.num_cells());
    indices.clear();
    for (int64_t i = start; i < end; ++i) indices.push_back(i);
    MakeBatchInto(ds, indices, ds.max_len, &batch);
    ForwardHidden(batch, &hidden, &scratch);
    for (int i = 0; i < hidden.rows(); ++i) {
      for (int j = 0; j < features; ++j) {
        const double v = hidden.at(i, j);
        sum[static_cast<size_t>(j)] += v;
        sum_sq[static_cast<size_t>(j)] += v * v;
      }
    }
    count += hidden.rows();
  }

  nn::Tensor mean(std::vector<int>{features});
  nn::Tensor var(std::vector<int>{features});
  for (int j = 0; j < features; ++j) {
    const size_t sj = static_cast<size_t>(j);
    const double m = sum[sj] / static_cast<double>(count);
    mean[sj] = static_cast<float>(m);
    var[sj] = static_cast<float>(
        std::max(0.0, sum_sq[sj] / static_cast<double>(count) - m * m));
  }
  batch_norm_->SetRunningStats(std::move(mean), std::move(var));
}

void ErrorDetectionModel::SetBatchNormStats(nn::Tensor mean, nn::Tensor var) {
  batch_norm_->SetRunningStats(std::move(mean), std::move(var));
}

void ErrorDetectionModel::Predict(const BatchInput& batch,
                                  std::vector<uint8_t>* labels) const {
  std::vector<float> p;
  PredictProbs(batch, &p);
  labels->resize(p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    (*labels)[i] = p[i] > 0.5f ? 1 : 0;
  }
}

std::vector<nn::Parameter*> ErrorDetectionModel::Params() {
  std::vector<nn::Parameter*> out;
  auto append = [&out](std::vector<nn::Parameter*> ps) {
    out.insert(out.end(), ps.begin(), ps.end());
  };
  append(char_emb_->Params());
  append(value_rnn_->Params());
  if (attr_emb_ != nullptr) append(attr_emb_->Params());
  if (attr_rnn_ != nullptr) append(attr_rnn_->Params());
  if (length_dense_ != nullptr) append(length_dense_->Params());
  append(hidden_dense_->Params());
  append(batch_norm_->Params());
  append(output_dense_->Params());
  return out;
}

ModelSnapshot ErrorDetectionModel::Snapshot() const {
  // Params() is non-const only because it hands out mutable Parameter
  // pointers; snapshotting just copies their values (ConstParams idiom).
  ModelSnapshot s;
  s.params = nn::SnapshotParams(
      const_cast<ErrorDetectionModel*>(this)->Params());
  s.bn_mean = batch_norm_->running_mean();
  s.bn_var = batch_norm_->running_var();
  return s;
}

void ErrorDetectionModel::Restore(const ModelSnapshot& snapshot) {
  nn::RestoreParams(snapshot.params, Params());
  batch_norm_->SetRunningStats(snapshot.bn_mean, snapshot.bn_var);
}

size_t ErrorDetectionModel::NumWeights() {
  return nn::CountWeights(Params());
}

}  // namespace birnn::core
