#ifndef BIRNN_CORE_MODEL_H_
#define BIRNN_CORE_MODEL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/encoding.h"
#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/recurrent.h"
#include "util/status.h"

namespace birnn::core {

/// Hyper-parameters of the paper's architectures (Fig. 5). The defaults are
/// the paper's settings; ablation benches vary them.
struct ModelConfig {
  // --- data-derived (required) ---
  int vocab = 0;     ///< character vocabulary size (pad + chars + unk).
  int max_len = 0;   ///< padded sequence length.
  int n_attrs = 0;   ///< number of attributes (ETSB metadata branch).

  // --- value branch (both models) ---
  int char_emb_dim = 32;     ///< character embedding width.
  int units = 64;            ///< RNN units (paper: 64).
  int stacks = 2;            ///< stacked RNN levels (paper: two-stacked).
  bool bidirectional = true; ///< forward + backward chains (paper: yes).
  /// Recurrent cell family. The paper uses plain tanh RNNs and argues (§2)
  /// they train faster than LSTM/GRU; bench_ablation_cell_type measures it.
  nn::CellType cell_type = nn::CellType::kVanilla;

  // --- enrichment (ETSB-RNN only) ---
  bool enriched = false;        ///< false = TSB-RNN, true = ETSB-RNN.
  bool use_attr_branch = true;  ///< attribute-metadata branch on/off.
  bool use_length_branch = true;///< length_norm branch on/off.
  int attr_emb_dim = 8;         ///< attribute embedding width.
  int attr_units = 8;           ///< attribute BiRNN units (paper: 8).
  int length_dense_dim = 64;    ///< length branch dense width (paper: 64).

  // --- head (both models) ---
  int hidden_dense_dim = 32;    ///< pre-batchnorm dense width (paper: 32).

  uint64_t seed = 1;            ///< weight initialization seed.

  /// Validates data-derived fields.
  Status Validate() const;
};

/// A mini-batch in the layout the models consume: per-time-step character
/// id columns plus the enrichment inputs.
struct BatchInput {
  int batch = 0;
  /// char_steps[t][i] = character id of cell i at time step t.
  std::vector<std::vector<int>> char_steps;
  std::vector<int> attr_ids;        ///< attribute id per cell.
  std::vector<float> length_norm;   ///< length_norm per cell.
  std::vector<int> labels;          ///< 0/1 per cell (training only).
};

/// Assembles a BatchInput from dataset cells `indices`.
BatchInput MakeBatch(const data::EncodedDataset& ds,
                     const std::vector<int64_t>& indices);

/// Assembles a BatchInput into caller-owned storage, padding the character
/// sequences to `padded_len` time steps instead of the dataset's global
/// `max_len` (`padded_len` must cover the effective length of every listed
/// cell). Reuses `out`'s heap buffers across calls — the zero-allocation
/// batch builder of the inference engine's sweep loop.
void MakeBatchInto(const data::EncodedDataset& ds,
                   const std::vector<int64_t>& indices, int padded_len,
                   BatchInput* out);

/// Reusable per-thread intermediates for the forward-only inference path.
/// All tensors retain capacity across batches, so a sweep allocates only on
/// its first batch (mirrors the trainer's tape-arena reuse).
struct InferenceScratch {
  std::vector<nn::Tensor> char_steps;
  nn::StackedBiRecurrent::ForwardScratch value_rnn;
  nn::StackedBiRecurrent::ForwardScratch attr_rnn;
  nn::Tensor attr_emb;
  nn::Tensor len_in;
  nn::Dense::ForwardScratch dense;
  nn::Tensor features;
  nn::Tensor attr_features;
  nn::Tensor len_features;
  nn::Tensor concat;
  nn::Tensor hidden;
  nn::Tensor normed;
  nn::Tensor logits;
  nn::Tensor probs;
  std::vector<int> pad_ids;  ///< bucketed only: all-pad id column.
  nn::Tensor pad_step;       ///< bucketed only: pad embedding per row.
};

/// Cell-independent precomputation for length-bucketed inference: the
/// backward value-chain's state trajectory over an all-pad prefix. Compute
/// once per sweep with PrepareBucketedInference; safe to share read-only
/// across threads.
struct BucketedInferenceContext {
  nn::PadPrefixTrajectory value_traj;
};

/// Weight snapshot including batch-norm running statistics — what the
/// best-train-loss checkpoint callback captures.
struct ModelSnapshot {
  std::vector<nn::Tensor> params;
  nn::Tensor bn_mean;
  nn::Tensor bn_var;
};

/// The paper's error-detection network. With `config.enriched == false`
/// this is TSB-RNN (value branch only); with `true` it is ETSB-RNN (value
/// branch + attribute-metadata branch + length_norm branch). See Fig. 5.
class ErrorDetectionModel {
 public:
  explicit ErrorDetectionModel(const ModelConfig& config);

  ErrorDetectionModel(const ErrorDetectionModel&) = delete;
  ErrorDetectionModel& operator=(const ErrorDetectionModel&) = delete;

  /// Training-mode forward pass on an autograd graph; returns the logits
  /// Var (batch, 2). Pair with Graph::SoftmaxCrossEntropy.
  ///
  /// When `bn_mean_out`/`bn_var_out` are non-null (training only), the
  /// batch-norm batch statistics are captured there and the running
  /// estimates are left untouched; the caller applies the EMA update later
  /// with `UpdateBatchNorm` (data-parallel shards do this in fixed shard
  /// order for determinism).
  nn::Graph::Var Forward(nn::Graph* g, const BatchInput& batch, bool training,
                         nn::Tensor* bn_mean_out = nullptr,
                         nn::Tensor* bn_var_out = nullptr);

  /// Applies one batch-norm EMA step with captured batch statistics.
  void UpdateBatchNorm(const nn::Tensor& batch_mean,
                       const nn::Tensor& batch_var);

  /// Forward-only inference: probability that each cell is erroneous
  /// (class 1). No tape overhead; uses batch-norm running statistics.
  void PredictProbs(const BatchInput& batch, std::vector<float>* p_error) const;

  /// Forward-only inference with caller-owned scratch (bit-identical to the
  /// scratch-free overload). Unlike the training path, `batch.char_steps`
  /// may hold fewer than `max_len` steps; `bucketed` must then be non-null,
  /// and the value RNN completes the sequence to `max_len` exactly — pad
  /// tail run for the forward chain, precomputed pad prefix for the
  /// backward chain (see StackedBiRecurrent::ApplyForwardBucketed).
  /// `precision` selects the value/attr-RNN kernel set (nn::Precision):
  /// kFp32 is the bit-exact reference; kBf16/kInt8 require
  /// PrepareQuantizedInference (or imported bundle weights) and quantize
  /// only the recurrent stacks — embeddings, dense layers, batch-norm and
  /// softmax stay fp32 (they are a few percent of the compute and keep the
  /// head numerics exact; DESIGN.md §12).
  void PredictProbs(const BatchInput& batch, std::vector<float>* p_error,
                    InferenceScratch* scratch,
                    const BucketedInferenceContext* bucketed = nullptr,
                    nn::Precision precision = nn::Precision::kFp32) const;

  /// Forward-only pipeline up to the pre-batch-norm hidden activations,
  /// with caller-owned scratch. Same short-sequence contract as the scratch
  /// PredictProbs. Exposed for the inference engine's memoized batch-norm
  /// calibration.
  void ForwardHidden(const BatchInput& batch, nn::Tensor* hidden,
                     InferenceScratch* scratch,
                     const BucketedInferenceContext* bucketed = nullptr,
                     nn::Precision precision = nn::Precision::kFp32) const;

  /// Fills `ctx` for length-bucketed inference under the current weights.
  /// Recompute after any weight update. The trajectory is precision-
  /// specific: pass the precision the bucketed sweeps will run at.
  void PrepareBucketedInference(
      BucketedInferenceContext* ctx,
      nn::Precision precision = nn::Precision::kFp32) const;

  /// Idempotently builds the recurrent stacks' quantized shadow weights
  /// for `p` (kFp32 no-op). Serialized by an internal mutex, so concurrent
  /// engines sharing one model may call it; readers of the shadows must
  /// still be ordered after the prepare (the inference engine prepares
  /// before fanning a sweep out to its pool).
  void PrepareQuantizedInference(nn::Precision p) const;

  /// True once the shadow weights for `p` exist.
  bool QuantizedInferenceReady(nn::Precision p) const;

  /// Appends pre-quantized shadow weights (int8 + bf16 for every recurrent
  /// cell, prepared on demand) as typed checkpoint entries — the bundle v2
  /// payload that makes low-precision loading zero-cost.
  void ExportQuantized(std::vector<nn::TypedEntry>* entries) const;

  /// Installs shadow weights exported by ExportQuantized. Unknown entry
  /// names or shape mismatches fail; partial precision sets are fine.
  Status ImportQuantized(std::vector<nn::TypedEntry> entries);

  /// Replaces the batch-norm running statistics with the exact mean and
  /// variance of the pre-normalization activations over `ds`, computed with
  /// the current weights. Run after restoring a checkpoint: the momentum-EMA
  /// estimates trail the rapidly moving activations of a small trainset and
  /// can wreck inference (see DESIGN.md, "BatchNorm calibration").
  void CalibrateBatchNorm(const data::EncodedDataset& ds, int batch_size = 256);

  /// Overwrites the batch-norm running statistics directly. Used by the
  /// inference engine's memoized calibration (core/inference.h), which
  /// computes the same trainset statistics as CalibrateBatchNorm but visits
  /// each distinct cell content only once.
  void SetBatchNormStats(nn::Tensor mean, nn::Tensor var);

  /// Thresholded predictions (p_error > 0.5 -> 1).
  void Predict(const BatchInput& batch, std::vector<uint8_t>* labels) const;

  std::vector<nn::Parameter*> Params();
  /// Read-only view of Params() for inspection (names, shapes, sizes).
  std::vector<const nn::Parameter*> ConstParams() const;

  /// Checkpointing of weights + batch-norm running stats.
  ModelSnapshot Snapshot() const;
  void Restore(const ModelSnapshot& snapshot);

  const ModelConfig& config() const { return config_; }
  const std::string& name() const { return name_; }
  size_t NumWeights();

 private:
  int ConcatDim() const;

  ModelConfig config_;
  std::string name_;

  std::unique_ptr<nn::Embedding> char_emb_;
  std::unique_ptr<nn::StackedBiRecurrent> value_rnn_;
  std::unique_ptr<nn::Embedding> attr_emb_;            // enriched only
  std::unique_ptr<nn::StackedBiRecurrent> attr_rnn_;   // enriched only
  std::unique_ptr<nn::Dense> length_dense_;    // enriched only
  std::unique_ptr<nn::Dense> hidden_dense_;
  std::unique_ptr<nn::BatchNorm1d> batch_norm_;
  std::unique_ptr<nn::Dense> output_dense_;

  /// Serializes shadow-weight builds from concurrent PrepareQuantized-
  /// Inference calls (the cells' caches themselves are plain mutables).
  mutable std::mutex quant_mutex_;
};

}  // namespace birnn::core

#endif  // BIRNN_CORE_MODEL_H_
