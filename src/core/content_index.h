#ifndef BIRNN_CORE_CONTENT_INDEX_H_
#define BIRNN_CORE_CONTENT_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/encoding.h"
#include "obs/registry.h"
#include "util/status.h"

namespace birnn::core {

/// Succinct cell-content index (DESIGN.md §14): the shared storage layer
/// behind every cross-sweep verdict memo. Three pieces compose:
///
///   BlockedBloom  — a cache-line-blocked bloom filter in front of every
///                   probe, so first-seen content (the common case on
///                   high-cardinality columns) skips the table entirely;
///   ContentMemo   — mutex-striped shards of open-addressing flat tables
///                   (contiguous hash/position/verdict arrays, zero
///                   per-entry allocation) over a varint-packed content
///                   arena that confirms hash matches exactly without
///                   retaining the padded int32 sequence;
///   SpillSegment  — immutable, checksummed, sorted-by-hash on-disk
///                   segments a shard seals into when it outgrows its
///                   memory budget, so warehouse-scale sweeps keep their
///                   memo inside a configurable byte budget.
///
/// Exactness contract: a hit is only ever declared after the stored packed
/// key is compared byte-for-byte against the probing cell, so hash
/// collisions cannot cross-wire verdicts, and an evicted entry merely
/// recomputes (bit-identically — the forward path is a pure function of
/// the content key; see core/inference.h).

// ---------------------------------------------------------------------------
// Packed cell keys
// ---------------------------------------------------------------------------

/// Appends the canonical packed content key of cell `i`: varint attribute
/// id, the 4 raw length_norm bytes, varint effective length, then one
/// varint per character id. Canonical and injective — two cells have equal
/// packed keys iff `CellContentEquals` holds — and ~4x smaller than the
/// int32 sequence it replaces (character ids are almost always < 128).
void AppendPackedCellKey(const data::EncodedDataset& ds, int64_t i,
                         std::vector<uint8_t>* out);

/// True when `key[0..key_len)` equals cell `i`'s packed content key.
bool PackedKeyMatchesCell(const uint8_t* key, size_t key_len,
                          const data::EncodedDataset& ds, int64_t i);

/// Recomputes `EncodedDataset::CellContentHash` from a packed content key
/// alone (the key carries every hashed field). Lets the memo store only a
/// 32-bit hash tag per table slot and reconstruct the full 64-bit hash on
/// the rare grow/spill paths. Returns 0 on a malformed key.
uint64_t PackedKeyContentHash(const uint8_t* key, size_t key_len);

/// Order-sensitive FNV-1a fingerprint of a dataset's full cell content
/// (shape + every cell's content hash). Bundles persist it so a serving
/// process can recognize — and pre-size for — the table it was trained on.
uint64_t DatasetContentFingerprint(const data::EncodedDataset& ds);

// ---------------------------------------------------------------------------
// Blocked bloom filter
// ---------------------------------------------------------------------------

/// Cache-line-blocked bloom filter over 64-bit content hashes (the RocksDB
/// full-filter layout): a key selects one 64-byte block with its high bits
/// and sets `k` bits inside that single block by double hashing of its low
/// bits, so any probe costs exactly one cache line. No false negatives
/// ever; false positives only waste a table probe. Add/MayContain are
/// lock-free (relaxed atomics) and TSAN-clean under concurrent writers.
class BlockedBloom {
 public:
  BlockedBloom() = default;

  /// (Re)builds the filter sized for `expected_keys` at `bits_per_key`
  /// (~1% false positives at 10). `expected_keys <= 0` or
  /// `bits_per_key <= 0` disables the filter (MayContain always true).
  void Reset(int64_t expected_keys, double bits_per_key);

  void Add(uint64_t hash);
  bool MayContain(uint64_t hash) const;

  bool enabled() const { return num_blocks_ > 0; }
  int64_t bytes() const { return static_cast<int64_t>(num_blocks_) * 64; }

 private:
  struct alignas(64) Block {
    std::atomic<uint64_t> words[8];
  };

  std::unique_ptr<Block[]> blocks_;
  uint64_t num_blocks_ = 0;
  int num_probes_ = 6;
};

// ---------------------------------------------------------------------------
// Spill segments
// ---------------------------------------------------------------------------

/// One record of a sealed memo shard.
struct SpillRecord {
  uint64_t hash = 0;
  float p_error = 0.0f;
  std::vector<uint8_t> key;  ///< packed content key.
};

/// An immutable on-disk memo segment: a sorted-by-hash slot array plus a
/// packed-key blob, FNV-1a checksummed and written atomically (tmp +
/// rename, the checkpoint-v1 discipline). Lookups binary-search the slot
/// array with pread — a sealed segment costs a file descriptor, not RAM.
class SpillSegment {
 public:
  SpillSegment() = default;
  ~SpillSegment();
  SpillSegment(SpillSegment&& other) noexcept;
  SpillSegment& operator=(SpillSegment&& other) noexcept;
  SpillSegment(const SpillSegment&) = delete;
  SpillSegment& operator=(const SpillSegment&) = delete;

  /// Writes `records` (sorted by hash internally) to `path`.
  static Status Write(const std::string& path,
                      std::vector<SpillRecord> records);

  /// Opens a segment, verifying magic, shape and the whole-file checksum
  /// (streaming — the segment is never resident). A corrupt or truncated
  /// file is refused here, so a reader can treat the failure as a miss.
  static StatusOr<SpillSegment> Open(const std::string& path);

  /// Looks up (hash, packed key); true on an exact key match, storing the
  /// memoized verdict into `*p_error`.
  bool Find(uint64_t hash, const uint8_t* key, size_t key_len,
            float* p_error) const;

  int64_t count() const { return count_; }
  const std::string& path() const { return path_; }

 private:
  bool ReadSlot(int64_t index, uint64_t* hash, float* p_error,
                uint32_t* key_off) const;

  int fd_ = -1;
  int64_t count_ = 0;
  int64_t blob_offset_ = 0;
  int64_t blob_size_ = 0;
  std::string path_;
};

// ---------------------------------------------------------------------------
// ContentMemo
// ---------------------------------------------------------------------------

struct ContentMemoOptions {
  /// Bound on live in-memory entries (0 disables the memo entirely).
  int64_t capacity = 1 << 18;

  /// Bound on in-memory bytes (flat tables + content arena + bloom).
  /// 0 = unbounded. When an insert would push a shard past its share, the
  /// shard is sealed: spilled to disk when `spill` is set, dropped
  /// otherwise. Either way the memo answers every future probe correctly —
  /// dropped content simply recomputes, bit-identically.
  int64_t budget_bytes = 0;

  /// Pre-size hint (e.g. the bundle's training-table unique-cell count):
  /// tables and bloom are allocated for this population up front, so the
  /// first sweep never grows through rehashes. 0 = start small and grow.
  int64_t expected_entries = 0;

  /// Bloom prefilter density (~1% false positives at 10). <= 0 disables
  /// the prefilter; every probe then takes its shard lock.
  double bloom_bits_per_key = 10.0;

  /// Seal overflowing shards into SpillSegments under `spill_dir` instead
  /// of dropping them. Spilled entries remain probe-hits (served via
  /// pread) at zero resident cost.
  bool spill = false;
  std::string spill_dir;
};

/// Aggregate accounting (cheap enough to snapshot per batch).
struct ContentMemoStats {
  int64_t entries = 0;   ///< live in-memory entries.
  int64_t bytes = 0;     ///< tables + arenas + bloom, resident.
  int64_t lookups = 0;   ///< cells probed.
  int64_t hits = 0;      ///< answered from memory or a spill segment.
  int64_t bloom_negatives = 0;  ///< probes short-circuited lock-free.
  int64_t bloom_fps = 0; ///< bloom said maybe, index said no.
  int64_t evictions = 0;         ///< shard seals that dropped entries.
  int64_t evicted_entries = 0;
  int64_t spilled_segments = 0;  ///< live on-disk segments.
  int64_t spilled_entries = 0;
  int64_t spill_hits = 0;        ///< hits served by a segment.
  int64_t spill_failures = 0;    ///< failed seals, degraded to eviction.
  double probe_seconds = 0.0;    ///< wall clock inside Lookup.
};

/// The succinct cross-sweep verdict memo: content key -> p_error under
/// fixed weights. Thread-safe; 16 mutex-striped shards plus the lock-free
/// bloom front. Replaces the `unordered_map<uint64_t, vector<Entry>>`
/// store (PR 7's serve::VerdictMemo) with flat open-addressing tables over
/// a packed arena — no per-entry heap allocation, ~an order of magnitude
/// fewer bytes per unique cell — and adds the bloom prefilter and the
/// budget/seal machinery described above.
///
/// The memo must not outlive a weight change (owned per model generation,
/// exactly like the map it replaces).
class ContentMemo {
 public:
  explicit ContentMemo(ContentMemoOptions options = {});
  ~ContentMemo();

  ContentMemo(const ContentMemo&) = delete;
  ContentMemo& operator=(const ContentMemo&) = delete;

  /// Probes every cell of `ds`. On a hit, `(*p)[i]` receives the memoized
  /// p_error and `(*hit)[i]` is set to 1; misses leave their slots alone.
  /// Both vectors must already be sized to `ds.num_cells()`. Returns the
  /// hit count.
  int64_t Lookup(const data::EncodedDataset& ds, std::vector<float>* p,
                 std::vector<uint8_t>* hit) const;

  /// Records cell `i` of `ds` -> `p_error`. Duplicate inserts of the same
  /// content are ignored (first value wins; all writers compute the same
  /// value anyway).
  void Insert(const data::EncodedDataset& ds, int64_t i, float p_error);

  bool enabled() const { return options_.capacity > 0; }
  int64_t entries() const;
  int64_t evictions() const;
  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  ContentMemoStats stats() const;
  const ContentMemoOptions& options() const { return options_; }

 private:
  static constexpr int kShards = 16;
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  struct Shard {
    mutable std::mutex mu;
    /// Open-addressing flat table, SoA: parallel hash-tag / arena-position
    /// arrays (8 bytes per slot), linear probing. Slot counts are
    /// arbitrary — indices come from a Lemire multiply-shift of the full
    /// hash, so tables are sized at ~0.8 load exactly instead of rounding
    /// up to a power of two. Only the high 32 hash bits are stored (a
    /// filter; the packed-key compare is the truth) — the full hash is
    /// reconstructed from the arena key via PackedKeyContentHash when a
    /// grow or spill needs it. `pos` is kEmptySlot for free slots.
    std::vector<uint32_t> tag;
    std::vector<uint32_t> pos;
    /// Packed records, appended: varint(key_len) + key bytes + the 4 raw
    /// p_error bytes per entry (the verdict lives next to the key it is
    /// confirmed against — one cache stream on a hit, no per-slot float).
    std::vector<uint8_t> arena;
    uint64_t slots = 0;
    int64_t entries = 0;
    std::vector<SpillSegment> segments;
    int64_t seals = 0;
    /// Resident bytes of this shard's table + arena, maintained under `mu`
    /// (the memo-wide atomic is advanced by deltas, so no cross-shard reads).
    int64_t resident = 0;
    // Accounting (mutated under mu; Lookup is const, hence mutable).
    mutable int64_t hits = 0;
    mutable int64_t bloom_fps = 0;
    mutable int64_t spill_hits = 0;
    int64_t evictions = 0;
    int64_t evicted_entries = 0;
    int64_t spilled_entries = 0;
    int64_t spill_failures = 0;
  };

  static int ShardIndex(uint64_t hash) {
    return static_cast<int>(hash & (kShards - 1));
  }

  int64_t ShardResidentBytes(const Shard& shard) const;
  void InitTable(Shard* shard, int64_t expected_entries);
  void GrowTable(Shard* shard);
  /// Seals a full shard: spill to disk (keeping it probe-able) or drop.
  void SealShard(Shard* shard, int shard_index);
  /// Probes one shard's table + segments (pure — no stat updates). Caller
  /// holds the shard lock. `*from_segment` reports a spill-served hit.
  bool ProbeLocked(const Shard& shard, uint64_t hash, const uint8_t* key,
                   size_t key_len, float* p_error, bool* from_segment) const;
  /// Lookup fast path: probes for cell `i` by comparing stored keys against
  /// the cell fields in place, packing into `*scratch` only when spill
  /// segments must be searched. Caller holds the shard lock.
  bool ProbeCellLocked(const Shard& shard, uint64_t hash,
                       const data::EncodedDataset& ds, int64_t i,
                       std::vector<uint8_t>* scratch, float* p_error,
                       bool* from_segment) const;
  /// Recomputes `shard->resident` and applies the delta to the memo-wide
  /// byte atomic + gauge. Caller holds the shard lock.
  void UpdateShardBytes(Shard* shard);

  ContentMemoOptions options_;
  int64_t shard_capacity_ = 0;
  int64_t shard_budget_ = 0;  ///< bytes per shard (0 = unbounded).
  BlockedBloom bloom_;
  Shard shards_[kShards];
  std::vector<std::string> spilled_paths_;  ///< for cleanup; under spill_mu_.
  std::mutex spill_mu_;
  mutable std::atomic<int64_t> bytes_{0};
  mutable std::atomic<int64_t> lookups_{0};
  mutable std::atomic<int64_t> bloom_negatives_{0};
  mutable std::atomic<int64_t> probe_ns_{0};

  // Owned obs handles (registry names are what the serve stats op and the
  // footprint bench scrape; see DESIGN.md §14). Mutable: Lookup is
  // logically const but records probe accounting.
  obs::Gauge bytes_gauge_{"inference/memo_bytes"};
  mutable obs::Counter bloom_fp_counter_{"inference/memo_bloom_fp"};
  obs::Counter spilled_segments_counter_{"inference/memo_spilled_segments"};
  obs::Counter evictions_counter_{"inference/memo_evictions"};
  mutable obs::Histogram probe_ns_hist_{"inference/memo_probe_ns"};
};

}  // namespace birnn::core

#endif  // BIRNN_CORE_CONTENT_INDEX_H_
