#include "core/detector.h"

#include <algorithm>
#include <unordered_set>

#include "core/content_index.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "raha/strategy.h"
#include "sampling/sampler.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace birnn::core {

ErrorDetector::ErrorDetector(DetectorOptions options)
    : options_(std::move(options)) {}

ModelConfig BuildModelConfig(const DetectorOptions& options, int vocab,
                             int max_len, int n_attrs) {
  ModelConfig config;
  config.vocab = vocab;
  config.max_len = max_len;
  config.n_attrs = n_attrs;
  config.char_emb_dim = options.char_emb_dim;
  config.units = options.units;
  config.stacks = options.stacks;
  config.bidirectional = options.bidirectional;
  auto cell = nn::ParseCellType(options.cell_type);
  config.cell_type = cell.ok() ? *cell : nn::CellType::kVanilla;
  config.enriched = ToLower(options.model) == "etsb";
  config.use_attr_branch = options.use_attr_branch;
  config.use_length_branch = options.use_length_branch;
  config.seed = options.seed;
  return config;
}

StatusOr<DetectionReport> ErrorDetector::Run(const data::Table& dirty,
                                             const data::Table& clean,
                                             TrainedDetector* trained) {
  // Ground-truth oracle: the user "labels" by consulting the clean table.
  LabelOracle oracle = [&dirty, &clean](int64_t row, int attr) {
    return TrimLeft(dirty.cell(static_cast<int>(row), attr)) !=
                   TrimLeft(clean.cell(static_cast<int>(row), attr))
               ? 1
               : 0;
  };
  return RunInternal(dirty, &clean, oracle, trained);
}

StatusOr<DetectionReport> ErrorDetector::RunWithOracle(
    const data::Table& dirty, const LabelOracle& oracle,
    TrainedDetector* trained) {
  return RunInternal(dirty, nullptr, oracle, trained);
}

StatusOr<DetectionReport> ErrorDetector::RunInternal(
    const data::Table& dirty, const data::Table* clean,
    const LabelOracle& oracle, TrainedDetector* trained) {
  const std::string model_name = ToLower(options_.model);
  if (model_name != "tsb" && model_name != "etsb") {
    return Status::InvalidArgument("unknown model: " + options_.model);
  }
  if (!nn::ParseCellType(options_.cell_type).ok()) {
    return Status::InvalidArgument("unknown cell type: " + options_.cell_type);
  }

  // 1. Data preparation (§4.1).
  data::CellFrame frame;
  if (clean != nullptr) {
    BIRNN_ASSIGN_OR_RETURN(frame,
                           data::PrepareData(dirty, *clean, options_.prepare));
  } else {
    BIRNN_ASSIGN_OR_RETURN(frame,
                           data::PrepareDirtyOnly(dirty, options_.prepare));
  }
  const data::CharIndex chars = data::CharIndex::Build(frame);
  data::EncodedDataset all = data::EncodeCells(frame, chars);

  // 2. Trainset selection (§4.2).
  BIRNN_ASSIGN_OR_RETURN(auto sampler,
                         sampling::MakeSampler(options_.sampler));
  Rng rng(options_.seed);
  BIRNN_ASSIGN_OR_RETURN(
      std::vector<int64_t> train_ids,
      sampler->Select(frame, options_.n_label_tuples, &rng));

  // 3. User labeling: overwrite the labels of the sampled tuples with the
  // oracle's answers (in experiment mode these equal the prepared labels;
  // in deployment mode they are the only labels we have).
  std::unordered_set<int64_t> train_id_set(train_ids.begin(), train_ids.end());
  for (int64_t i = 0; i < all.num_cells(); ++i) {
    const int64_t row = all.row_ids[static_cast<size_t>(i)];
    if (train_id_set.count(row) > 0) {
      all.labels[static_cast<size_t>(i)] =
          oracle(row, all.attrs[static_cast<size_t>(i)]);
    }
  }

  data::EncodedDataset train;
  data::EncodedDataset test;
  data::SplitByRowIds(all, train_ids, &train, &test);
  if (train.num_cells() == 0) {
    return Status::FailedPrecondition("sampler selected no tuples");
  }

  // 4. Training.
  ModelConfig config = BuildModelConfig(options_, all.vocab, all.max_len,
                                        all.n_attrs);
  auto model_ptr = std::make_unique<ErrorDetectionModel>(config);
  ErrorDetectionModel& model = *model_ptr;
  TrainerOptions trainer_options = options_.trainer;
  trainer_options.seed = options_.seed ^ 0x5EEDULL;
  trainer_options.train_threads = options_.train_threads;
  Trainer trainer(trainer_options);

  DetectionReport report;
  report.history = trainer.Fit(&model, train, &test);
  report.labeled_tuples = train_ids;
  report.train_cells = train.num_cells();
  report.test_cells = test.num_cells();

  // 5. Detection over every cell of the frame through the inference
  // engine: distinct cell contents are predicted once and broadcast to
  // their duplicates, optionally length-bucketed (see core/inference.h).
  InferenceOptions inference_options;
  inference_options.eval_batch = options_.trainer.eval_batch;
  inference_options.threads = options_.eval_threads;
  inference_options.bucketed = options_.bucketed_inference;
  InferenceEngine engine(model, inference_options);
  engine.Predict(all, &report.predicted);
  report.inference = engine.stats();

  // Optional §5.7 ensemble: cross-attribute errors (violated dependencies,
  // duplicate-source disagreements) that a per-cell character model cannot
  // see are OR-ed in from the rule-based strategies.
  if (options_.use_fd_ensemble) {
    raha::DetectionMask fd_mask(report.predicted.size(), 0);
    raha::FdViolationStrategy fd(0.85);
    fd.Detect(dirty, &fd_mask);
    raha::KeyDuplicateStrategy dup;
    dup.Detect(dirty, &fd_mask);
    for (size_t i = 0; i < report.predicted.size(); ++i) {
      report.predicted[i] = report.predicted[i] || fd_mask[i];
    }
  }

  // Export the trained artifacts *after* the detection sweep: the model is
  // in exactly the state (best-checkpoint weights, calibrated batch norm)
  // that produced report.predicted, so a detector served from these
  // artifacts answers bit-identically to this run.
  if (trained != nullptr) {
    trained->config = config;
    trained->chars = chars;
    trained->attr_names = frame.attr_names();
    trained->attr_max_value_len.assign(
        static_cast<size_t>(frame.num_attrs()), 0);
    for (const auto& cell : frame.cells()) {
      int32_t& mx = trained->attr_max_value_len[static_cast<size_t>(cell.attr)];
      mx = std::max(mx, static_cast<int32_t>(cell.value.size()));
    }
    trained->prepare = options_.prepare;
    trained->options = options_;
    // Frozen column statistics for streaming drift baselines (manifest
    // v3): empty rates from the prepared frame, error rates from the
    // sweep's predictions — both per attribute over the whole table.
    const size_t n_attrs = static_cast<size_t>(frame.num_attrs());
    std::vector<int64_t> attr_cells(n_attrs, 0);
    std::vector<int64_t> attr_empties(n_attrs, 0);
    std::vector<int64_t> attr_errors(n_attrs, 0);
    const auto& cells = frame.cells();
    for (size_t i = 0; i < cells.size(); ++i) {
      const size_t a = static_cast<size_t>(cells[i].attr);
      ++attr_cells[a];
      if (cells[i].empty) ++attr_empties[a];
      if (report.predicted[i] != 0) ++attr_errors[a];
    }
    trained->attr_empty_rate.assign(n_attrs, 0.0f);
    trained->attr_error_rate.assign(n_attrs, 0.0f);
    for (size_t a = 0; a < n_attrs; ++a) {
      if (attr_cells[a] == 0) continue;
      trained->attr_empty_rate[a] =
          static_cast<float>(attr_empties[a]) /
          static_cast<float>(attr_cells[a]);
      trained->attr_error_rate[a] =
          static_cast<float>(attr_errors[a]) /
          static_cast<float>(attr_cells[a]);
    }
    trained->has_frozen_stats = true;
    // Memo pre-size hint + provenance: the sweep already counted the
    // distinct contents, the fingerprint is one extra hash pass.
    trained->train_unique_cells = report.inference.unique_cells;
    trained->content_fingerprint = DatasetContentFingerprint(all);
    trained->model = std::move(model_ptr);
  }

  // 6. Evaluation on the test cells (experiment mode only).
  if (clean != nullptr) {
    report.truth.reserve(frame.cells().size());
    for (const auto& cell : frame.cells()) report.truth.push_back(cell.label);
    eval::Confusion confusion;
    for (int64_t i = 0; i < all.num_cells(); ++i) {
      const int64_t row = all.row_ids[static_cast<size_t>(i)];
      if (train_id_set.count(row) > 0) continue;  // test cells only
      confusion.Add(report.predicted[static_cast<size_t>(i)],
                    report.truth[static_cast<size_t>(i)]);
    }
    report.test_confusion = confusion;
    report.test_metrics = eval::Metrics::From(confusion);
  }
  return report;
}

}  // namespace birnn::core
