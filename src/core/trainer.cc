#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "core/inference.h"
#include "nn/optimizer.h"
#include "obs/obs.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace birnn::core {

Trainer::Trainer(TrainerOptions options) : options_(options) {}

void PredictDataset(const ErrorDetectionModel& model,
                    const data::EncodedDataset& ds, int eval_batch,
                    std::vector<uint8_t>* predictions, ThreadPool* pool) {
  InferenceOptions opts;
  opts.eval_batch = eval_batch;
  InferenceEngine engine(model, opts, pool);
  engine.Predict(ds, predictions);
}

double DatasetAccuracy(const ErrorDetectionModel& model,
                       const data::EncodedDataset& ds, int eval_batch,
                       const std::vector<int64_t>& indices, ThreadPool* pool) {
  InferenceOptions opts;
  opts.eval_batch = eval_batch;
  InferenceEngine engine(model, opts, pool);
  return engine.Accuracy(ds, indices);
}

TrainHistory Trainer::Fit(ErrorDetectionModel* model,
                          const data::EncodedDataset& train,
                          const data::EncodedDataset* test,
                          TrainState* state) {
  BIRNN_CHECK_GT(train.num_cells(), 0);
  BIRNN_CHECK(options_.start_epoch >= 0 &&
              options_.start_epoch <= options_.epochs);
  OBS_SPAN("trainer/fit");
  Stopwatch timer;
  Rng rng(options_.seed ^ 0x7124139ULL);

  const int64_t n = train.num_cells();
  const int batch_size = std::max<int>(
      1, static_cast<int>(std::lround(options_.batch_fraction *
                                      static_cast<double>(n))));

  std::vector<nn::Parameter*> params = model->Params();
  nn::RmsProp optimizer(options_.learning_rate, options_.rmsprop_rho);
  if (state != nullptr && !state->rms_cache.empty()) {
    optimizer.ImportState(params, state->rms_cache);
  }

  // Fixed subsample of test cells for the per-epoch accuracy curve.
  std::vector<int64_t> test_indices;
  if (test != nullptr && options_.track_test_accuracy &&
      test->num_cells() > 0) {
    if (options_.test_eval_max_cells > 0 &&
        test->num_cells() > options_.test_eval_max_cells) {
      const auto picks = rng.SampleWithoutReplacement(
          static_cast<size_t>(test->num_cells()),
          static_cast<size_t>(options_.test_eval_max_cells));
      for (size_t p : picks) test_indices.push_back(static_cast<int64_t>(p));
    } else {
      for (int64_t i = 0; i < test->num_cells(); ++i) test_indices.push_back(i);
    }
  }

  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  TrainHistory history;
  ModelSnapshot best = model->Snapshot();
  double best_loss = std::numeric_limits<double>::infinity();
  int best_epoch = -1;
  if (state != nullptr && state->best_epoch >= 0) {
    best = state->best;
    best_loss = state->best_loss;
    best_epoch = state->best_epoch;
  }

  // Resume: replay the shuffle rounds of the epochs already completed so
  // the RNG state and the in-place `order` permutation match where the
  // interrupted run's would have been at this point.
  if (options_.shuffle) {
    for (int e = 0; e < options_.start_epoch; ++e) rng.Shuffle(&order);
  }

  // Data-parallel minibatch sharding. The shard partition is a pure
  // function of the batch size and `grad_shard_cells` — NEVER of the thread
  // count — and the per-shard gradient buffers are reduced in shard-index
  // order, so every value of `train_threads` (including 0) produces
  // bit-identical weights. Shard workspaces persist across batches so the
  // per-shard tape arenas stop allocating after the first step.
  ThreadPool pool(std::max(0, options_.train_threads));
  const int shard_cells = std::max(1, options_.grad_shard_cells);
  struct ShardWorkspace {
    nn::Graph graph;
    nn::ParamGradMap grads;
    nn::Tensor bn_mean;
    nn::Tensor bn_var;
    double loss = 0.0;
    int64_t correct = 0;
    int64_t rows = 0;
  };
  std::vector<std::unique_ptr<ShardWorkspace>> workspaces;
  std::vector<std::function<void()>> shard_tasks;

  for (int epoch = options_.start_epoch; epoch < options_.epochs; ++epoch) {
    OBS_SPAN("trainer/epoch");
    Stopwatch epoch_timer;
    if (options_.shuffle) rng.Shuffle(&order);

    double loss_sum = 0.0;
    int64_t correct = 0;
    int64_t seen = 0;
    int batches = 0;
    for (int64_t start = 0; start < n; start += batch_size) {
      const int64_t end = std::min<int64_t>(start + batch_size, n);
      const int64_t batch_rows = end - start;
      const int64_t num_shards = (batch_rows + shard_cells - 1) / shard_cells;
      while (workspaces.size() < static_cast<size_t>(num_shards)) {
        workspaces.push_back(std::make_unique<ShardWorkspace>());
      }

      shard_tasks.clear();
      for (int64_t s = 0; s < num_shards; ++s) {
        const int64_t s_begin = start + s * shard_cells;
        const int64_t s_end = std::min<int64_t>(s_begin + shard_cells, end);
        ShardWorkspace* ws = workspaces[static_cast<size_t>(s)].get();
        shard_tasks.push_back([ws, s_begin, s_end, batch_rows, &order, &train,
                               model]() {
          OBS_SPAN("trainer/grad_shard");
          const std::vector<int64_t> shard_indices(
              order.begin() + s_begin, order.begin() + s_end);
          const BatchInput batch = MakeBatch(train, shard_indices);
          ws->rows = s_end - s_begin;

          ws->graph.Reset();
          nn::ZeroParamGradMap(&ws->grads);
          const nn::Graph::Var logits =
              model->Forward(&ws->graph, batch, /*training=*/true,
                             &ws->bn_mean, &ws->bn_var);
          const nn::Graph::Var loss =
              ws->graph.SoftmaxCrossEntropy(logits, batch.labels);
          // Seed with the shard's weight so the summed shard gradients
          // equal the gradient of the full-batch mean cross-entropy.
          const float weight = static_cast<float>(ws->rows) /
                               static_cast<float>(batch_rows);
          ws->graph.Backward(loss, weight, &ws->grads);

          ws->loss = ws->graph.value(loss).scalar();
          ws->correct = 0;
          const nn::Tensor& probs = ws->graph.Probs(loss);
          for (int i = 0; i < batch.batch; ++i) {
            const int pred = probs.at(i, 1) > probs.at(i, 0) ? 1 : 0;
            if (pred == batch.labels[static_cast<size_t>(i)]) ++ws->correct;
          }
        });
      }
      pool.SubmitBulk(std::move(shard_tasks));
      pool.Wait();
      shard_tasks.clear();

      // Fixed-order reduction: shared gradients, batch-norm EMA updates and
      // the loss/accuracy tallies all walk shards in index order.
      nn::ZeroGrads(params);
      double batch_loss = 0.0;
      for (int64_t s = 0; s < num_shards; ++s) {
        ShardWorkspace* ws = workspaces[static_cast<size_t>(s)].get();
        for (nn::Parameter* p : params) {
          auto it = ws->grads.find(p);
          if (it == ws->grads.end()) continue;
          p->grad.Add(it->second);
        }
        model->UpdateBatchNorm(ws->bn_mean, ws->bn_var);
        batch_loss += static_cast<double>(ws->rows) /
                      static_cast<double>(batch_rows) * ws->loss;
        correct += ws->correct;
        seen += ws->rows;
      }
      optimizer.Step(params);

      loss_sum += batch_loss;
      ++batches;
      OBS_COUNTER_ADD("trainer/batches", 1);
      OBS_COUNTER_ADD("trainer/cells", batch_rows);
      OBS_COUNTER_ADD("trainer/grad_shards", num_shards);
    }
    OBS_COUNTER_ADD("trainer/epochs", 1);
    OBS_HISTOGRAM_RECORD("trainer/epoch_seconds", epoch_timer.ElapsedSeconds());

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_sum / std::max(1, batches);
    stats.train_accuracy =
        seen == 0 ? 0.0
                  : static_cast<double>(correct) / static_cast<double>(seen);
    if (!test_indices.empty()) {
      stats.test_accuracy = DatasetAccuracy(
          *model, *test, options_.eval_batch, test_indices, &pool);
      stats.has_test = true;
    }
    history.epochs.push_back(stats);

    // Checkpoint callback: keep the weights with the lowest train loss.
    if (stats.train_loss < best_loss) {
      best_loss = stats.train_loss;
      best_epoch = epoch;
      best = model->Snapshot();
    }
  }

  if (state != nullptr) {
    state->rms_cache = optimizer.ExportState(params);
    state->best = best;
    state->best_loss = best_loss;
    state->best_epoch = best_epoch;
  }

  if (options_.restore_best && best_epoch >= 0) model->Restore(best);
  if (options_.calibrate_batchnorm) {
    CalibrateBatchNormMemoized(model, train, {}, &pool);
  }
  history.best_epoch = best_epoch;
  history.best_train_loss = best_loss;
  history.train_seconds = timer.ElapsedSeconds();
  return history;
}

}  // namespace birnn::core
