#ifndef BIRNN_CORE_INFERENCE_H_
#define BIRNN_CORE_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "core/model.h"
#include "data/encoding.h"
#include "util/threadpool.h"

namespace birnn::core {

class ContentMemo;

/// Configuration of the forward-only inference engine.
struct InferenceOptions {
  /// Cells per forward batch (before the internal row padding).
  int eval_batch = 256;

  /// Worker threads for the sweep (0 = run on the calling thread). Used
  /// only when no external ThreadPool is handed to the engine. Results are
  /// bit-identical for every thread count: the batch plan is a pure
  /// function of the data and options, threads only execute it.
  int threads = 0;

  /// Predict each distinct cell content once and broadcast the result to
  /// its duplicates. Exact: a cell's prediction is a pure function of its
  /// (attribute id, character sequence, length_norm) key, every kernel on
  /// the forward path is row-independent, and batches are padded to a
  /// register-width multiple so no value ever depends on its batch
  /// position. Real tables repeat values heavily (a `state` column holds
  /// ~50 distinct strings across thousands of rows), so this alone removes
  /// most of the sweep's work — `InferenceStats::dedup_factor` reports how
  /// much.
  bool memoize = true;

  /// Opt-in: group cells by content length so the *backward* value chain
  /// skips its all-pad prefix. The prefix is cell-independent — identical
  /// pad inputs evolving the zero initial state — so it is precomputed once
  /// per sweep and every bucket warm-starts from it. The forward chain
  /// still runs its pad tail: the (trained) pad embedding keeps moving
  /// per-cell state, so those steps cannot be skipped (they are not
  /// absorbing under the tanh/GRU/LSTM cell equations — naive truncation
  /// wrecks accuracy). Bit-identical to the unbucketed sweep, verified on
  /// all six paper generators in inference_test; saves up to half the RNN
  /// steps on tables whose values are much shorter than max_len.
  bool bucketed = false;

  /// Bucket granularity: padded lengths are rounded up to this multiple
  /// (capped at max_len). Larger quanta mean fewer, fuller batches.
  int bucket_quantum = 8;

  /// Kernel set for the recurrent stacks (DESIGN.md §12). kFp32 is the
  /// bit-exact reference. kInt8/kBf16 run the quantized shadow weights —
  /// prepared lazily on the first sweep (or imported zero-cost from a v2
  /// bundle). Orthogonal to every option above: the sweep plan and the
  /// memoization keys are precision-independent, and the determinism
  /// contract (thread count / memoize / bucketed invariance) holds
  /// *within* each precision.
  nn::Precision precision = nn::Precision::kFp32;
};

/// What one sweep did — throughput accounting for the bench and reports.
struct InferenceStats {
  int64_t cells = 0;          ///< cells requested.
  int64_t unique_cells = 0;   ///< distinct cell contents actually predicted.
  double dedup_factor = 1.0;  ///< cells / unique_cells.
  int64_t batches = 0;        ///< forward batches run.
  /// Per-direction RNN time steps executed, summed over batches (including
  /// the internal row padding). The forward chain always runs to max_len;
  /// bucketing shortens only the backward chain.
  int64_t rnn_steps = 0;
  /// `cells * max_len * directions` — the unoptimized sweep's step count.
  int64_t rnn_steps_dense = 0;
  double seconds = 0.0;         ///< wall clock of the last sweep.
};

/// Reusable forward-only executor for whole-table detection sweeps: the
/// serving-side counterpart of the data-parallel trainer. Memoizes
/// duplicate cells, optionally length-buckets the unique ones, reuses
/// per-worker scratch (BatchInput columns and every intermediate tensor),
/// and shards batches over a ThreadPool with deterministic output order.
///
/// Determinism contract: for fixed data, the sweep's output is a pure
/// function of the model weights — bit-identical across thread counts,
/// memoize on/off, and bucketed on/off.
class InferenceEngine {
 public:
  /// `model` must outlive the engine. `pool` (optional, not owned) is used
  /// for the sweep when non-null; otherwise the engine runs inline unless
  /// `options.threads > 0`, in which case it creates its own pool per
  /// sweep.
  explicit InferenceEngine(const ErrorDetectionModel& model,
                           InferenceOptions options = {},
                           ThreadPool* pool = nullptr);

  /// Per-cell error probability for the cells listed in `indices` (all
  /// cells of `ds` when empty), in listed order.
  void PredictProbs(const data::EncodedDataset& ds,
                    const std::vector<int64_t>& indices,
                    std::vector<float>* p_error);

  /// Whole-dataset probability sweep through a *cross-sweep* content memo
  /// (content_index.h): memo hits are answered without touching the model,
  /// only the miss subset is swept (and inserted), and `p_error` is
  /// bit-identical to `PredictProbs(ds, {}, ...)` — a memoized verdict is
  /// the same pure function of the cell's content key. Returns the memo
  /// hit count; `stats()` afterwards describes the miss sweep (zeroed, with
  /// `cells` set, when every cell hit). A null or disabled memo degrades to
  /// a plain sweep.
  int64_t PredictProbsMemoized(const data::EncodedDataset& ds,
                               ContentMemo* memo,
                               std::vector<float>* p_error);

  /// Thresholded per-cell predictions (p_error > 0.5) over every cell.
  void Predict(const data::EncodedDataset& ds, std::vector<uint8_t>* labels);

  /// Fraction of cells (restricted to `indices`, or all when empty) whose
  /// thresholded prediction matches the dataset label.
  double Accuracy(const data::EncodedDataset& ds,
                  const std::vector<int64_t>& indices);

  /// Accounting of the most recent sweep.
  const InferenceStats& stats() const { return stats_; }

  const InferenceOptions& options() const { return options_; }

 private:
  friend void CalibrateBatchNormMemoized(ErrorDetectionModel* model,
                                         const data::EncodedDataset& ds,
                                         const InferenceOptions& options,
                                         ThreadPool* pool);

  /// One forward batch of the sweep plan: unique-cell positions
  /// [begin, end) of `SweepPlan::order`, padded to `padded_len` steps.
  struct PlanBatch {
    int64_t begin = 0;
    int64_t end = 0;
    int padded_len = 0;
  };

  /// The deterministic decomposition of a sweep. Built once per call from
  /// (dataset, indices, options) — never from the thread count.
  struct SweepPlan {
    std::vector<int64_t> unique_cells;   ///< representative cell ids.
    std::vector<int32_t> cell_to_unique; ///< per position of `indices`.
    std::vector<int32_t> order;          ///< unique indices in sweep order.
    std::vector<PlanBatch> batches;
  };

  void BuildPlan(const data::EncodedDataset& ds,
                 const std::vector<int64_t>& indices, SweepPlan* plan) const;

  /// Runs the planned batches (sharded over the pool when available),
  /// calling the model once per batch. `want_hidden` selects the pre-batch-
  /// norm hidden sweep (rows into `hidden_unique`) instead of the
  /// probability sweep (values into `p_unique`).
  void RunPlan(const data::EncodedDataset& ds, const SweepPlan& plan,
               bool want_hidden, std::vector<float>* p_unique,
               nn::Tensor* hidden_unique);

  void SweepUnique(const data::EncodedDataset& ds,
                   const std::vector<int64_t>& indices, bool want_hidden,
                   SweepPlan* plan, std::vector<float>* p_unique,
                   nn::Tensor* hidden_unique);

  const ErrorDetectionModel& model_;
  InferenceOptions options_;
  ThreadPool* external_pool_;
  InferenceStats stats_;
  /// Shared pad-prefix trajectory for bucketed sweeps, computed lazily on
  /// the first bucketed sweep (weights are fixed for the engine's lifetime).
  BucketedInferenceContext bucketed_ctx_;
  bool bucketed_ctx_ready_ = false;
  /// The model's shadow weights for `options_.precision` are ready.
  bool quant_ready_ = false;
};

/// Replaces the model's batch-norm running statistics with the exact
/// trainset statistics under the current weights (what
/// `ErrorDetectionModel::CalibrateBatchNorm` computes), but through the
/// engine: the pre-normalization activations are computed once per distinct
/// cell and accumulated per duplicate in original cell order — the same
/// double-precision summation sequence as the unmemoized reference.
/// Always runs unbucketed (full-length batches).
void CalibrateBatchNormMemoized(ErrorDetectionModel* model,
                                const data::EncodedDataset& ds,
                                const InferenceOptions& options = {},
                                ThreadPool* pool = nullptr);

}  // namespace birnn::core

#endif  // BIRNN_CORE_INFERENCE_H_
