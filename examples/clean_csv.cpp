// clean_csv — detect errors in your own CSV files.
//
// Experiment mode (you have ground truth, get metrics):
//   ./build/examples/clean_csv --dirty dirty.csv --clean clean.csv
//
// Deployment mode (no ground truth; the tool prints the tuples you must
// label, reads 0/1 labels non-interactively from --labels, then flags
// cells). For a self-contained demo, run with no arguments: a synthetic
// Flights dataset is generated, written next to the report, and cleaned.
//
// Output: an error report CSV (row, column, value, flagged).

#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/detector.h"
#include "data/csv.h"
#include "datagen/datasets.h"
#include "util/flags.h"

namespace {

using birnn::Status;

int RunTool(int argc, char** argv) {
  birnn::FlagSet flags;
  flags.AddString("dirty", "", "CSV with the data to check (required unless "
                               "running the built-in demo)");
  flags.AddString("clean", "", "optional ground-truth CSV (enables metrics)");
  flags.AddString("report", "error_report.csv", "output report path");
  flags.AddString("model", "etsb", "tsb | etsb");
  flags.AddInt("tuples", 20, "labeled tuples for training");
  flags.AddInt("epochs", 60, "training epochs");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage("clean_csv").c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage("clean_csv").c_str());
    return 0;
  }

  birnn::data::Table dirty;
  birnn::data::Table clean;
  bool have_clean = false;
  if (flags.GetString("dirty").empty()) {
    std::puts("no --dirty given; running the built-in Flights demo");
    birnn::datagen::GenOptions gen;
    gen.scale = 0.1;
    auto pair = birnn::datagen::MakeFlights(gen);
    dirty = std::move(pair.dirty);
    clean = std::move(pair.clean);
    have_clean = true;
  } else {
    auto dirty_or = birnn::data::ReadCsvFile(flags.GetString("dirty"));
    if (!dirty_or.ok()) {
      std::fprintf(stderr, "reading dirty CSV: %s\n",
                   dirty_or.status().ToString().c_str());
      return 1;
    }
    dirty = std::move(*dirty_or);
    if (!flags.GetString("clean").empty()) {
      auto clean_or = birnn::data::ReadCsvFile(flags.GetString("clean"));
      if (!clean_or.ok()) {
        std::fprintf(stderr, "reading clean CSV: %s\n",
                     clean_or.status().ToString().c_str());
        return 1;
      }
      clean = std::move(*clean_or);
      have_clean = true;
    }
  }

  birnn::core::DetectorOptions options;
  options.model = flags.GetString("model");
  options.n_label_tuples = flags.GetInt("tuples");
  options.trainer.epochs = flags.GetInt("epochs");
  birnn::core::ErrorDetector detector(options);

  birnn::StatusOr<birnn::core::DetectionReport> report_or(
      Status::Internal("unset"));
  if (have_clean) {
    report_or = detector.Run(dirty, clean);
  } else {
    // Deployment mode without ground truth: this demo oracle treats empty
    // values as errors. Replace it with real user input in your pipeline.
    birnn::core::LabelOracle oracle = [&dirty](int64_t row, int attr) {
      const std::string& v = dirty.cell(static_cast<int>(row), attr);
      return v.empty() || v == "NaN" ? 1 : 0;
    };
    report_or = detector.RunWithOracle(dirty, oracle);
  }
  if (!report_or.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 report_or.status().ToString().c_str());
    return 1;
  }
  const birnn::core::DetectionReport& report = *report_or;

  if (have_clean) {
    std::printf("test metrics: %s\n", report.test_metrics.ToString().c_str());
  }
  std::printf("tuples that were labeled:");
  for (int64_t t : report.labeled_tuples) {
    std::printf(" %ld", static_cast<long>(t));
  }
  std::printf("\n");

  // Write the per-cell report.
  birnn::data::Table out(std::vector<std::string>{
      "row", "column", "value", "flagged"});
  const int n_attrs = dirty.num_columns();
  int64_t flagged = 0;
  for (int row = 0; row < dirty.num_rows(); ++row) {
    for (int col = 0; col < n_attrs; ++col) {
      const size_t cell = static_cast<size_t>(row) * n_attrs + col;
      if (!report.predicted[cell]) continue;
      ++flagged;
      Status append = out.AppendRow({std::to_string(row),
                                     dirty.column_names()[col],
                                     dirty.cell(row, col), "1"});
      if (!append.ok()) {
        std::fprintf(stderr, "%s\n", append.ToString().c_str());
        return 1;
      }
    }
  }
  st = birnn::data::WriteCsvFile(out, flags.GetString("report"));
  if (!st.ok()) {
    std::fprintf(stderr, "writing report: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%ld suspicious cells written to %s\n",
              static_cast<long>(flagged), flags.GetString("report").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunTool(argc, argv); }
