/* Closing the adaptation loop from a plain-C host engine — the shape a
 * database UDF scheduler would take (cf. "The Duck's Brain": run the
 * model where the data lives). No C++ anywhere in this translation unit;
 * it compiles as C99.
 *
 * The loop a host engine runs:
 *   1. stream CDC tuples into a session (birnn_session_insert/update),
 *   2. watch birnn_session_drift_alarms() — the frozen bundle statistics
 *      latch an alarm when an attribute's live distribution walks away,
 *   3. on alarm, call birnn_adapt_run(): it fine-tunes a candidate on the
 *      session's reservoir (here batch-norm recalibration only — the
 *      cheapest tier), gates it on a held-back validation slice, and
 *      only returns a promoted handle when the candidate beats-or-matches
 *      the incumbent under a bit-reproducible evaluation,
 *   4. swap the promoted handle in, open a fresh session against it (the
 *      new bundle's baselines re-arm), and keep scoring.
 *
 * Supervision is optional: the label callback may return -1 to fall back
 * to the cell's stored verdict (self-training). A host with a trusted
 * label source (constraint checks, user feedback) passes it as the
 * gate_labels callback so a badly-supervised candidate cannot pass the
 * gate.
 *
 * Build & run:  ./build/examples/adapt_host_engine <bundle-dir>
 *
 * Create a stream-capable bundle first, e.g. by running the
 * serve_detector example (which writes hospital.bundle/). */

#include <stdint.h>
#include <stdio.h>

#include "birnn_c.h"

/* The host's label oracle. This demo has no trusted source, so it defers
 * every cell to its stored verdict (-1 = "no opinion"); a real UDF would
 * consult constraint violations or user corrections here. */
static int32_t host_labels(void* ctx, int64_t row_id, int32_t attr) {
  (void)ctx;
  (void)row_id;
  (void)attr;
  return -1;
}

static const char* outcome_name(int32_t outcome) {
  switch (outcome) {
    case BIRNN_ADAPT_PROMOTED:
      return "promoted";
    case BIRNN_ADAPT_REJECTED:
      return "rejected";
    default:
      return "skipped";
  }
}

int main(int argc, char** argv) {
  birnn_detector* detector = NULL;
  birnn_detector* promoted = NULL;
  birnn_session* session = NULL;
  birnn_adapt_options options;
  birnn_adapt_result result;
  birnn_verdict verdict;
  const char* values[64];
  char drifted[64];
  int32_t n_attrs;
  int32_t a;
  int64_t r;

  if (argc != 2) {
    fprintf(stderr, "usage: %s <bundle-dir>\n", argv[0]);
    return 2;
  }
  if (birnn_detector_load(argv[1], &detector) != BIRNN_OK) {
    fprintf(stderr, "load failed: %s\n", birnn_last_error());
    return 1;
  }
  n_attrs = birnn_detector_n_attrs(detector);
  if (n_attrs > 64) n_attrs = 64;
  printf("incumbent: %d attributes, stream-capable: %s\n", n_attrs,
         birnn_detector_stream_capable(detector) ? "yes" : "no");

  if (birnn_session_create(detector, &session) != BIRNN_OK) {
    fprintf(stderr, "session create failed: %s\n", birnn_last_error());
    birnn_detector_free(detector);
    return 1;
  }

  /* 1. In-distribution ingest: tuples the bundle was trained against. */
  for (a = 0; a < n_attrs; ++a) values[a] = "example value";
  for (r = 0; r < 24; ++r) {
    if (birnn_session_insert(session, r, values, n_attrs) != BIRNN_OK) {
      fprintf(stderr, "insert failed: %s\n", birnn_last_error());
      goto fail;
    }
  }

  /* 2. The distribution shifts: attribute 0 starts receiving long values
   * full of characters the training dictionary has never seen. */
  snprintf(drifted, sizeof(drifted), "####drifted-value-%d####", 7);
  for (r = 0; r < 24; ++r) {
    if (birnn_session_update(session, r, 0, drifted) != BIRNN_OK) {
      fprintf(stderr, "update failed: %s\n", birnn_last_error());
      goto fail;
    }
  }
  printf("streamed 24 tuples + 24 drifted updates: %lld alarm(s), %lld "
         "tuple(s) in the reservoir\n",
         (long long)birnn_session_drift_alarms(session),
         (long long)birnn_session_reservoir_rows(session));

  /* 3. Drift (or an explicit schedule) triggers adaptation. */
  birnn_adapt_options_init(&options);
  options.min_reservoir_rows = 8;
  options.bn_only = 1; /* recalibration only: no gradient steps */
  if (birnn_adapt_run(detector, session, &options, host_labels, NULL,
                      /*gate_labels=*/NULL, NULL, &result,
                      &promoted) != BIRNN_OK) {
    fprintf(stderr, "adapt failed: %s\n", birnn_last_error());
    goto fail;
  }
  printf("adaptation %s: incumbent F1 %.4f vs candidate F1 %.4f on %lld "
         "held-back cells (%lld fine-tune cells, eval reproducible: %s)\n",
         outcome_name(result.outcome), result.incumbent_f1,
         result.candidate_f1, (long long)result.validation_cells,
         (long long)result.train_cells,
         result.deterministic_eval ? "yes" : "no");

  /* 4. On promotion, serve the new generation: fresh session, re-armed
   * baselines. A rejected candidate costs nothing — the incumbent and
   * its session keep running untouched. */
  if (result.outcome == BIRNN_ADAPT_PROMOTED && promoted != NULL) {
    birnn_session_free(session);
    session = NULL;
    if (birnn_session_create(promoted, &session) != BIRNN_OK) {
      fprintf(stderr, "promoted session failed: %s\n", birnn_last_error());
      goto fail;
    }
    values[0] = drifted;
    if (birnn_session_insert(session, 1000, values, n_attrs) != BIRNN_OK ||
        birnn_session_verdict(session, 1000, 0, &verdict) != BIRNN_OK) {
      fprintf(stderr, "scoring failed: %s\n", birnn_last_error());
      goto fail;
    }
    printf("promoted generation scores the drifted value: p_error=%.6f "
           "error=%s (version %llu)\n",
           verdict.p_error, verdict.is_error ? "true" : "false",
           (unsigned long long)verdict.version);
  } else {
    /* Consume the trigger anyway so the host does not re-fire every
     * tuple; the alarms re-latch if the drift persists. */
    printf("re-arming drift alarms (%lld cleared)\n",
           (long long)birnn_session_reset_drift_alarms(session));
  }

  birnn_session_free(session);
  birnn_detector_free(promoted);
  birnn_detector_free(detector);
  return 0;

fail:
  birnn_session_free(session);
  birnn_detector_free(promoted);
  birnn_detector_free(detector);
  return 1;
}
