// Streaming (CDC) detection: train once, then keep verdicts current while
// the table changes underneath you — without re-detecting the whole table.
//
// 1. Train an ETSB-RNN detector on synthetic Hospital data. The trained
//    state now carries frozen column statistics (per-attribute max value
//    length, empty/error rates, dictionary fingerprint), which is what
//    makes a bundle stream-capable (manifest v3).
// 2. Open a stream::TableSession on the detector and replay the dirty
//    table as inserts. Only the arriving cells are encoded and scored —
//    bit-identically to the offline run, so the materialized verdict store
//    equals the offline DetectionReport exactly.
// 3. Apply single-cell updates and a delete, the way a change-data-capture
//    feed would. An update re-scores exactly one cell; a delete re-scores
//    none. Verdicts are versioned by the delta that produced them.
// 4. Feed the session out-of-distribution values (characters the train
//    dictionary never saw, lengths beyond the train-time maximum) and
//    watch drift alarms latch against the frozen baselines.
//
// Build & run:  ./build/examples/stream_detector
//
// For the same flow over the wire, the serve plane speaks a "delta" op
// (see DESIGN.md §15); for embedding in a C host (a database UDF, say),
// see embed_capi.c.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "datagen/datasets.h"
#include "serve/bundle.h"
#include "stream/session.h"

int main() {
  using birnn::stream::TableSession;

  // 1. Train offline.
  birnn::datagen::GenOptions gen;
  gen.scale = 0.1;
  gen.seed = 7;
  const birnn::datagen::DatasetPair hospital =
      birnn::datagen::MakeHospital(gen);

  birnn::core::DetectorOptions options;
  options.model = "etsb";
  options.trainer.epochs = 30;
  birnn::core::ErrorDetector detector(options);
  birnn::core::TrainedDetector trained;
  auto report = detector.Run(hospital.dirty, hospital.clean, &trained);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("trained on %s: %s\n", hospital.name.c_str(),
              report->test_metrics.ToString().c_str());

  // 2. Wrap the trained state as a loaded detector and open a session.
  // (SaveDetectorBundle / LoadDetectorBundle round-trips the same state
  // through a bundle directory, frozen statistics included.)
  auto loaded = birnn::serve::MakeLoadedDetector(std::move(trained));
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto shared = std::make_shared<const birnn::serve::LoadedDetector>(
      std::move(loaded).value());
  auto session = TableSession::Create(shared);
  if (!session.ok()) {
    // A pre-v3 bundle (no frozen statistics) fails here with
    // UNSUPPORTED_BUNDLE — re-save it from a current detector run.
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  TableSession& s = **session;

  // Replay the dirty table as inserts; the verdict store now equals the
  // offline report bit for bit.
  const int n_attrs = hospital.dirty.num_columns();
  for (int r = 0; r < hospital.dirty.num_rows(); ++r) {
    std::vector<std::string> tuple;
    for (int a = 0; a < n_attrs; ++a) tuple.push_back(hospital.dirty.cell(r, a));
    if (auto st = s.Insert(r, std::move(tuple)); !st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const auto replayed = s.MaterializedVerdicts();
  int64_t agree = 0;
  for (size_t i = 0; i < replayed.size(); ++i) {
    agree += replayed[i] == report->predicted[i];
  }
  std::printf("replayed %lld cells as inserts; %lld/%zu match offline\n",
              static_cast<long long>(s.stats().cells_scored),
              static_cast<long long>(agree), replayed.size());

  // 3. CDC-style changes: one corrupted cell arrives, then gets fixed.
  std::vector<std::pair<int, birnn::stream::CellVerdict>> affected;
  (void)s.Update(0, 1, "xxxxxx", &affected);  // hospital-style corruption
  std::printf("update(0,1,\"xxxxxx\") -> p_error=%.3f version=%llu\n",
              affected[0].second.p_error,
              static_cast<unsigned long long>(affected[0].second.version));
  (void)s.Update(0, 1, hospital.clean.cell(0, 1), &affected);
  std::printf("update(0,1,clean)     -> p_error=%.3f version=%llu\n",
              affected[0].second.p_error,
              static_cast<unsigned long long>(affected[0].second.version));
  (void)s.Delete(1);
  std::printf("after delete: %lld live rows, %lld cells scored total\n",
              static_cast<long long>(s.stats().rows),
              static_cast<long long>(s.stats().cells_scored));

  // 4. Drift: attribute 2 starts receiving values the training table never
  // prepared the detector for.
  for (int i = 0; i < 400; ++i) {
    (void)s.Update(0, 2, "@@@@ TOTALLY UNEXPECTED INPUT @@@@");
  }
  for (const birnn::stream::DriftAlarm& alarm : s.drift_alarms()) {
    std::printf("drift alarm: attr=%d kind=%s frozen=%.3f live=%.3f\n",
                alarm.attr, birnn::stream::DriftKindName(alarm.kind),
                alarm.frozen, alarm.live);
  }
  std::printf("session: %lld deltas, %lld memo hits, %lld drift alarms\n",
              static_cast<long long>(s.stats().deltas),
              static_cast<long long>(s.stats().memo_hits),
              static_cast<long long>(s.stats().drift_alarms));
  return 0;
}
