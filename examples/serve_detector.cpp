// Serving a trained detector: train offline, bundle to disk, host the
// bundle behind the TCP line protocol, and query it like a client would.
//
// 1. Train an ETSB-RNN detector on synthetic Hospital data and export the
//    trained state (model weights + encoding dictionaries).
// 2. SaveDetectorBundle / LoadDetectorBundle round trip through a bundle
//    directory — the detector is reconstructed without retraining.
// 3. Start serve::Server on an ephemeral loopback port and talk
//    newline-delimited JSON to it over a real socket: ping, then a detect
//    request for a clean-looking and an obviously corrupted cell.
// 4. Shut down gracefully (every admitted request is answered first).
// 5. Dump the run's observability artifacts: a chrome://tracing-loadable
//    span timeline and a Prometheus-style metrics snapshot (DESIGN.md §11).
//
// Build & run:  ./build/examples/serve_detector
//
// To serve interactively instead, keep the process alive and point e.g.
//   printf '{"op":"detect","cells":[{"attr":0,"value":"x"}]}\n' | nc host port
// at it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/detector.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "datagen/datasets.h"
#include "serve/bundle.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace {

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends one request line, prints the one-line response.
void Ask(int fd, const std::string& request) {
  const std::string framed = request + "\n";
  (void)!::write(fd, framed.data(), framed.size());
  std::string response;
  char c = 0;
  while (::read(fd, &c, 1) == 1 && c != '\n') response.push_back(c);
  std::printf("  -> %s\n  <- %s\n", request.c_str(), response.c_str());
}

}  // namespace

int main() {
  // 1. Train offline, exporting the trained state for serving.
  birnn::datagen::GenOptions gen;
  gen.scale = 0.1;
  gen.seed = 7;
  const birnn::datagen::DatasetPair hospital =
      birnn::datagen::MakeHospital(gen);

  birnn::core::DetectorOptions options;
  options.model = "etsb";
  options.trainer.epochs = 30;
  birnn::core::ErrorDetector detector(options);
  birnn::core::TrainedDetector trained;
  auto report = detector.Run(hospital.dirty, hospital.clean, &trained);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("trained on %s: %s\n", hospital.name.c_str(),
              report->test_metrics.ToString().c_str());

  // 2. Bundle through disk: everything needed to serve, no retraining.
  const std::string bundle_dir = "hospital.bundle";
  if (auto st = birnn::serve::SaveDetectorBundle(trained, bundle_dir);
      !st.ok()) {
    std::fprintf(stderr, "bundle save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  birnn::serve::ModelRegistry registry;
  if (auto st = registry.LoadBundle("hospital", bundle_dir); !st.ok()) {
    std::fprintf(stderr, "bundle load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("bundle saved + reloaded from %s/\n\n", bundle_dir.c_str());

  // 3. Serve it and act as our own client.
  birnn::serve::ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  birnn::serve::Server server(&registry, server_options);
  if (auto st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const int fd = ConnectTo(server.port());
  if (fd < 0) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  Ask(fd, R"({"id":"1","op":"ping"})");
  Ask(fd, R"({"id":"2","op":"models"})");
  // A plausible value and a corrupted one for the same attribute. Hospital
  // errors replace characters with 'x', so the served model should assign
  // the second a much higher p_error.
  const std::string clean_value = hospital.clean.cell(0, 1);
  Ask(fd, R"({"id":"3","op":"detect","cells":[{"attr":1,"value":")" +
              clean_value + R"("},{"attr":1,"value":"xxxxxx"}]})");
  Ask(fd, R"({"id":"4","op":"stats"})");
  ::close(fd);

  // 4. Graceful drain.
  server.Shutdown();
  std::printf("\nserver drained and stopped.\n");

  // 5. Everything above was also recorded by the obs layer: training
  // epochs, inference batches, micro-batcher dispatches, request spans.
  // Export the trace (load in chrome://tracing) and a text metrics
  // snapshot of the whole train-bundle-serve session.
  const std::string trace_path = "serve_detector.trace.json";
  if (auto st = birnn::obs::Tracing::Get().WriteChromeTrace(trace_path);
      st.ok()) {
    std::printf("trace written to %s (%lld spans)\n", trace_path.c_str(),
                static_cast<long long>(birnn::obs::Tracing::Get().EventCount()));
  } else {
    std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
  }
  const std::string metrics_path = "serve_detector.metrics.txt";
  std::ofstream metrics_out(metrics_path);
  metrics_out << birnn::obs::Registry::Get().TextExposition();
  std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  return 0;
}
