// detect_and_repair — the paper's §6 vision end to end: detect errors with
// ETSB-RNN, then *correct* them with the Baran/HoloClean-style repair
// engines, and measure how much cleaner the table gets.
//
//   ./build/examples/detect_and_repair --dataset beers

#include <cstdio>

#include "core/detector.h"
#include "datagen/datasets.h"
#include "repair/corrector.h"
#include "util/flags.h"

namespace {

int64_t CountDirtyCells(const birnn::data::Table& table,
                        const birnn::data::Table& clean) {
  int64_t dirty = 0;
  for (int r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (table.cell(r, c) != clean.cell(r, c)) ++dirty;
    }
  }
  return dirty;
}

int Run(int argc, char** argv) {
  birnn::FlagSet flags;
  flags.AddString("dataset", "beers", "benchmark dataset");
  flags.AddDouble("scale", 0.12, "dataset scale");
  flags.AddInt("epochs", 40, "training epochs");
  flags.AddInt("seed", 21, "seed");
  birnn::Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage("detect_and_repair").c_str());
    return st.ok() ? 0 : 2;
  }

  birnn::datagen::GenOptions gen;
  gen.scale = flags.GetDouble("scale");
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  auto pair_or = birnn::datagen::MakeDataset(flags.GetString("dataset"), gen);
  if (!pair_or.ok()) {
    std::fprintf(stderr, "%s\n", pair_or.status().ToString().c_str());
    return 1;
  }
  const birnn::datagen::DatasetPair& pair = *pair_or;

  // 1. Detect.
  birnn::core::DetectorOptions options;
  options.trainer.epochs = flags.GetInt("epochs");
  options.seed = gen.seed;
  birnn::core::ErrorDetector detector(options);
  auto report = detector.Run(pair.dirty, pair.clean);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("detection: %s\n", report->test_metrics.ToString().c_str());

  // 2. Repair the flagged cells.
  birnn::repair::Repairer repairer;
  const auto suggestions = repairer.Repair(pair.dirty, report->predicted);
  const auto metrics =
      birnn::repair::EvaluateRepairs(pair.dirty, pair.clean, suggestions);
  std::printf("repair:    %zu suggestions, precision %.2f, recall %.2f\n",
              suggestions.size(), metrics.Precision(), metrics.Recall());

  // 3. Before / after.
  const birnn::data::Table repaired = repairer.Apply(pair.dirty, suggestions);
  const int64_t before = CountDirtyCells(pair.dirty, pair.clean);
  const int64_t after = CountDirtyCells(repaired, pair.clean);
  std::printf("dirty cells: %ld -> %ld (%.0f%% cleaned)\n",
              static_cast<long>(before), static_cast<long>(after),
              before == 0 ? 0.0
                          : 100.0 * static_cast<double>(before - after) /
                                static_cast<double>(before));

  // Show a few fixes.
  std::printf("\nsample fixes:\n");
  int shown = 0;
  for (const auto& s : suggestions) {
    const bool correct =
        s.repaired == pair.clean.cell(static_cast<int>(s.row), s.attr);
    if (!correct) continue;
    std::printf("  [%s] %s: '%s' -> '%s'\n", s.source.c_str(),
                pair.dirty.column_names()[s.attr].c_str(), s.original.c_str(),
                s.repaired.c_str());
    if (++shown >= 8) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
