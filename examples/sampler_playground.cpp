// sampler_playground — see what the three trainset-selection algorithms
// (§4.2) actually pick and how diverse their picks are.
//
//   ./build/examples/sampler_playground --dataset hospital --tuples 20

#include <cstdio>
#include <unordered_set>

#include "data/prepare.h"
#include "datagen/datasets.h"
#include "sampling/sampler.h"
#include "util/flags.h"

namespace {

/// Distinct attribute+value pairs covered by the selected tuples — the
/// "information content" DiverSet maximizes.
size_t DistinctConcats(const birnn::data::CellFrame& frame,
                       const std::vector<int64_t>& ids) {
  std::unordered_set<std::string> seen;
  for (int64_t id : ids) {
    for (int a = 0; a < frame.num_attrs(); ++a) {
      seen.insert(frame.cell(id, a).concat);
    }
  }
  return seen.size();
}

/// How many of the selected tuples contain at least one true error — a
/// trainset with no positives cannot teach the classifier anything.
int TuplesWithErrors(const birnn::data::CellFrame& frame,
                     const std::vector<int64_t>& ids) {
  int with_errors = 0;
  for (int64_t id : ids) {
    for (int a = 0; a < frame.num_attrs(); ++a) {
      if (frame.cell(id, a).label == 1) {
        ++with_errors;
        break;
      }
    }
  }
  return with_errors;
}

int Run(int argc, char** argv) {
  birnn::FlagSet flags;
  flags.AddString("dataset", "hospital", "benchmark dataset to sample from");
  flags.AddInt("tuples", 20, "tuples to select");
  flags.AddInt("seed", 7, "random seed");
  flags.AddDouble("scale", 0.3, "dataset scale");
  birnn::Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage("sampler_playground").c_str());
    return st.ok() ? 0 : 2;
  }

  birnn::datagen::GenOptions gen;
  gen.scale = flags.GetDouble("scale");
  auto pair_or = birnn::datagen::MakeDataset(flags.GetString("dataset"), gen);
  if (!pair_or.ok()) {
    std::fprintf(stderr, "%s\n", pair_or.status().ToString().c_str());
    return 1;
  }
  auto frame_or = birnn::data::PrepareData(pair_or->dirty, pair_or->clean);
  if (!frame_or.ok()) {
    std::fprintf(stderr, "%s\n", frame_or.status().ToString().c_str());
    return 1;
  }
  const birnn::data::CellFrame& frame = *frame_or;
  std::printf("dataset %s: %ld tuples x %d attributes, error rate %.3f\n\n",
              pair_or->name.c_str(), static_cast<long>(frame.num_tuples()),
              frame.num_attrs(), frame.ErrorRate());

  const int n = flags.GetInt("tuples");
  for (const char* name : {"randomset", "rahaset", "diverset"}) {
    auto sampler_or = birnn::sampling::MakeSampler(name);
    if (!sampler_or.ok()) continue;
    birnn::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
    auto ids_or = (*sampler_or)->Select(frame, n, &rng);
    if (!ids_or.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   ids_or.status().ToString().c_str());
      continue;
    }
    const std::vector<int64_t>& ids = *ids_or;
    std::printf("%-10s distinct attr+value pairs: %3zu / %d   tuples with "
                "errors: %2d / %d\n",
                (*sampler_or)->name().c_str(), DistinctConcats(frame, ids),
                n * frame.num_attrs(), TuplesWithErrors(frame, ids), n);
    std::printf("           picked ids:");
    for (int64_t id : ids) std::printf(" %ld", static_cast<long>(id));
    std::printf("\n\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
