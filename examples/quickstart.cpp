// Quickstart: the paper's "system in action" loop in ~40 lines.
//
// 1. Get a dirty table and its clean ground truth (here: the synthetic
//    Beers benchmark).
// 2. Configure the ErrorDetector: ETSB-RNN model, DiverSet sampling,
//    20 labeled tuples.
// 3. Run — the detector prepares the data, picks the tuples to label,
//    trains, and flags every suspicious cell.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/detector.h"
#include "datagen/datasets.h"

int main() {
  // A small Beers instance: ~240 rows, 11 attributes, 16% cell errors.
  birnn::datagen::GenOptions gen;
  gen.scale = 0.1;
  gen.seed = 42;
  const birnn::datagen::DatasetPair beers = birnn::datagen::MakeBeers(gen);
  std::printf("dataset: %s (%d rows x %d attributes)\n", beers.name.c_str(),
              beers.dirty.num_rows(), beers.dirty.num_columns());

  birnn::core::DetectorOptions options;
  options.model = "etsb";        // Enriched Two-Stacked Bidirectional RNN
  options.sampler = "diverset";  // Algorithm 3
  options.n_label_tuples = 20;
  options.trainer.epochs = 40;   // paper uses 120; 40 is plenty here

  birnn::core::ErrorDetector detector(options);
  auto report = detector.Run(beers.dirty, beers.clean);
  if (!report.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("labeled tuples: %zu  train cells: %ld  test cells: %ld\n",
              report->labeled_tuples.size(),
              static_cast<long>(report->train_cells),
              static_cast<long>(report->test_cells));
  std::printf("test metrics:   %s\n",
              report->test_metrics.ToString().c_str());
  std::printf("best epoch:     %d (train loss %.4f)\n",
              report->history.best_epoch, report->history.best_train_loss);

  // Show a few flagged cells with their ground truth.
  std::printf("\nsample of flagged cells:\n");
  int shown = 0;
  const int n_attrs = beers.dirty.num_columns();
  for (int row = 0; row < beers.dirty.num_rows() && shown < 8; ++row) {
    for (int col = 0; col < n_attrs && shown < 8; ++col) {
      const size_t cell = static_cast<size_t>(row) * n_attrs + col;
      if (!report->predicted[cell]) continue;
      std::printf("  row %3d  %-14s dirty='%s'  clean='%s'\n", row,
                  beers.dirty.column_names()[col].c_str(),
                  beers.dirty.cell(row, col).c_str(),
                  beers.clean.cell(row, col).c_str());
      ++shown;
    }
  }
  return 0;
}
