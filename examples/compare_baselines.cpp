// compare_baselines — run all four detection systems on one dataset and
// print a head-to-head comparison (a miniature Table 3).
//
//   ./build/examples/compare_baselines --dataset rayyan

#include <cstdio>

#include "core/detector.h"
#include "datagen/datasets.h"
#include "eval/metrics.h"
#include "raha/detector.h"
#include "rotom/baseline.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

void PrintRow(const char* system, const birnn::eval::Metrics& m,
              double seconds) {
  std::printf("%-12s P=%.2f R=%.2f F1=%.2f   (%.1f s)\n", system, m.precision,
              m.recall, m.f1, seconds);
}

int Run(int argc, char** argv) {
  birnn::FlagSet flags;
  flags.AddString("dataset", "rayyan", "benchmark dataset");
  flags.AddDouble("scale", 0.25, "dataset scale");
  flags.AddInt("epochs", 40, "RNN training epochs");
  flags.AddInt("seed", 13, "seed");
  birnn::Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage("compare_baselines").c_str());
    return st.ok() ? 0 : 2;
  }

  birnn::datagen::GenOptions gen;
  gen.scale = flags.GetDouble("scale");
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  auto pair_or = birnn::datagen::MakeDataset(flags.GetString("dataset"), gen);
  if (!pair_or.ok()) {
    std::fprintf(stderr, "%s\n", pair_or.status().ToString().c_str());
    return 1;
  }
  const birnn::datagen::DatasetPair& pair = *pair_or;
  std::printf("dataset %s: %d rows x %d attributes\n\n", pair.name.c_str(),
              pair.dirty.num_rows(), pair.dirty.num_columns());

  // Raha-style ensemble (20 labeled tuples).
  {
    birnn::Stopwatch timer;
    birnn::raha::RahaDetector raha;
    birnn::Rng rng(gen.seed);
    std::vector<int64_t> labeled;
    const auto mask = raha.DetectErrors(pair.dirty, pair.clean, &rng, &labeled);
    birnn::eval::Confusion confusion;
    std::vector<uint8_t> in_train(static_cast<size_t>(pair.dirty.num_rows()));
    for (int64_t r : labeled) in_train[static_cast<size_t>(r)] = 1;
    for (int r = 0; r < pair.dirty.num_rows(); ++r) {
      if (in_train[static_cast<size_t>(r)]) continue;
      for (int c = 0; c < pair.dirty.num_columns(); ++c) {
        confusion.Add(
            mask[static_cast<size_t>(r) * pair.dirty.num_columns() + c],
            pair.dirty.cell(r, c) != pair.clean.cell(r, c) ? 1 : 0);
      }
    }
    PrintRow("Raha", birnn::eval::Metrics::From(confusion),
             timer.ElapsedSeconds());
  }

  // Rotom-style augmentation baseline (200 labeled cells).
  for (const bool ssl : {false, true}) {
    birnn::Stopwatch timer;
    birnn::rotom::RotomOptions options;
    options.ssl = ssl;
    options.seed = gen.seed;
    birnn::rotom::RotomBaseline rotom(options);
    auto result = rotom.Detect(pair.dirty, pair.clean);
    if (result.ok()) {
      PrintRow(ssl ? "Rotom+SSL" : "Rotom", result->test_metrics,
               timer.ElapsedSeconds());
    }
  }

  // This paper's models (20 labeled tuples via DiverSet).
  for (const char* model : {"tsb", "etsb"}) {
    birnn::Stopwatch timer;
    birnn::core::DetectorOptions options;
    options.model = model;
    options.trainer.epochs = flags.GetInt("epochs");
    options.seed = gen.seed;
    birnn::core::ErrorDetector detector(options);
    auto report = detector.Run(pair.dirty, pair.clean);
    if (report.ok()) {
      PrintRow(model == std::string("tsb") ? "TSB-RNN" : "ETSB-RNN",
               report->test_metrics, timer.ElapsedSeconds());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
