/* Embedding the detector in a plain-C host through include/birnn_c.h —
 * the shape a database UDF or a C service would use. No C++ anywhere in
 * this translation unit; it compiles as C99.
 *
 * The API surface is deliberately tiny: load a bundle directory into an
 * opaque detector handle, open a streaming session on it, push
 * insert/update/delete deltas per tuple, and read (is_error, p_error,
 * version) verdicts back. Every call returns a birnn_status; details of
 * the last failure on this thread come from birnn_last_error(). No
 * exceptions ever cross the boundary.
 *
 * Build & run:  ./build/examples/embed_capi <bundle-dir>
 *
 * Create a stream-capable bundle first, e.g. by running the serve_detector
 * example (which writes hospital.bundle/) with a current build — bundles
 * from before manifest v3 carry no frozen column statistics and are
 * rejected for streaming with BIRNN_UNSUPPORTED_BUNDLE. */

#include <stdint.h>
#include <stdio.h>

#include "birnn_c.h"

int main(int argc, char** argv) {
  birnn_detector* detector = NULL;
  birnn_session* session = NULL;
  birnn_verdict verdict;
  const char* values[64];
  int32_t n_attrs;
  int32_t a;

  if (argc != 2) {
    fprintf(stderr, "usage: %s <bundle-dir>\n", argv[0]);
    return 2;
  }

  if (birnn_detector_load(argv[1], &detector) != BIRNN_OK) {
    fprintf(stderr, "load failed: %s\n", birnn_last_error());
    return 1;
  }
  n_attrs = birnn_detector_n_attrs(detector);
  printf("loaded %s: %d attributes, stream-capable: %s\n", argv[1], n_attrs,
         birnn_detector_stream_capable(detector) ? "yes" : "no");

  if (birnn_session_create(detector, &session) != BIRNN_OK) {
    fprintf(stderr, "session create failed: %s\n", birnn_last_error());
    birnn_detector_free(detector);
    return 1;
  }
  /* The session holds its own reference; the handle can go early. */
  birnn_detector_free(detector);

  /* One tuple arrives (a UDF would pull these from the row buffer). */
  if (n_attrs > 64) n_attrs = 64;
  for (a = 0; a < n_attrs; ++a) values[a] = "example value";
  if (birnn_session_insert(session, 1, values, n_attrs) != BIRNN_OK) {
    fprintf(stderr, "insert failed: %s\n", birnn_last_error());
    birnn_session_free(session);
    return 1;
  }
  for (a = 0; a < n_attrs; ++a) {
    if (birnn_session_verdict(session, 1, a, &verdict) == BIRNN_OK) {
      printf("  cell(1,%d): p_error=%.3f error=%d version=%llu\n", a,
             (double)verdict.p_error, (int)verdict.is_error,
             (unsigned long long)verdict.version);
    }
  }

  /* A cell changes; only that cell is re-scored. */
  if (birnn_session_update(session, 1, 0, "changed!") == BIRNN_OK &&
      birnn_session_verdict(session, 1, 0, &verdict) == BIRNN_OK) {
    printf("  after update: p_error=%.3f version=%llu\n",
           (double)verdict.p_error, (unsigned long long)verdict.version);
  }

  /* The tuple goes away. */
  (void)birnn_session_delete_row(session, 1);
  printf("rows live: %lld, drift alarms: %lld\n",
         (long long)birnn_session_num_rows(session),
         (long long)birnn_session_drift_alarms(session));

  birnn_session_free(session);
  return 0;
}
