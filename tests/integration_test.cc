// End-to-end integration tests: the full pipeline from CSV bytes through
// data preparation, sampling, training, detection, and reporting —
// crossing every module boundary the way the example binaries do.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/detector.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/csv.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "datagen/datasets.h"
#include "eval/runner.h"
#include "nn/serialize.h"
#include "raha/detector.h"
#include "rotom/baseline.h"
#include "sampling/sampler.h"

namespace birnn {
namespace {

TEST(IntegrationTest, CsvRoundtripThroughDetector) {
  // Generate -> write CSV -> read CSV -> detect. Exercises the same path a
  // user takes with their own files.
  datagen::GenOptions gen;
  gen.scale = 0.06;
  gen.seed = 77;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);

  std::ostringstream dirty_csv;
  std::ostringstream clean_csv;
  ASSERT_TRUE(data::WriteCsv(pair.dirty, dirty_csv).ok());
  ASSERT_TRUE(data::WriteCsv(pair.clean, clean_csv).ok());

  std::istringstream dirty_in(dirty_csv.str());
  std::istringstream clean_in(clean_csv.str());
  auto dirty = data::ReadCsv(dirty_in);
  auto clean = data::ReadCsv(clean_in);
  ASSERT_TRUE(dirty.ok());
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(dirty->Equals(pair.dirty));
  EXPECT_TRUE(clean->Equals(pair.clean));

  core::DetectorOptions options;
  options.n_label_tuples = 12;
  options.units = 16;
  options.trainer.epochs = 20;
  core::ErrorDetector detector(options);
  auto report = detector.Run(*dirty, *clean);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->test_metrics.f1, 0.3);
}

TEST(IntegrationTest, EverySamplerDrivesTheFullPipeline) {
  datagen::GenOptions gen;
  gen.scale = 0.05;
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  for (const char* sampler : {"randomset", "rahaset", "diverset"}) {
    core::DetectorOptions options;
    options.sampler = sampler;
    options.n_label_tuples = 10;
    options.units = 12;
    options.trainer.epochs = 10;
    core::ErrorDetector detector(options);
    auto report = detector.Run(pair.dirty, pair.clean);
    ASSERT_TRUE(report.ok()) << sampler;
    EXPECT_EQ(report->labeled_tuples.size(), 10u) << sampler;
    EXPECT_EQ(report->predicted.size(),
              static_cast<size_t>(pair.dirty.num_rows()) *
                  pair.dirty.num_columns());
  }
}

TEST(IntegrationTest, ModelCheckpointToDiskAndBack) {
  // Train a model, save its parameters, load into a freshly constructed
  // model, and verify identical predictions (modulo batch-norm running
  // stats, which we transfer explicitly).
  datagen::GenOptions gen;
  gen.scale = 0.04;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);
  auto frame = data::PrepareData(pair.dirty, pair.clean);
  ASSERT_TRUE(frame.ok());
  const data::CharIndex chars = data::CharIndex::Build(*frame);
  data::EncodedDataset all = data::EncodeCells(*frame, chars);

  core::ModelConfig config;
  config.vocab = all.vocab;
  config.max_len = all.max_len;
  config.n_attrs = all.n_attrs;
  config.units = 12;
  config.char_emb_dim = 8;
  config.enriched = true;
  config.seed = 5;

  core::ErrorDetectionModel model(config);
  core::TrainerOptions trainer_options;
  trainer_options.epochs = 8;
  core::Trainer trainer(trainer_options);
  trainer.Fit(&model, all, nullptr);

  const std::string path =
      (std::filesystem::temp_directory_path() / "birnn_integration_ckpt.bin")
          .string();
  ASSERT_TRUE(nn::SaveParameters(model.Params(), path).ok());

  core::ErrorDetectionModel reloaded(config);
  ASSERT_TRUE(nn::LoadParameters(path, reloaded.Params()).ok());
  // Batch-norm running stats ride along via the snapshot API.
  const core::ModelSnapshot snapshot = model.Snapshot();
  reloaded.Restore(snapshot);

  std::vector<uint8_t> original;
  std::vector<uint8_t> restored;
  core::PredictDataset(model, all, 64, &original);
  core::PredictDataset(reloaded, all, 64, &restored);
  EXPECT_EQ(original, restored);
  std::remove(path.c_str());
}

TEST(IntegrationTest, RunnerAggregatesAcrossRepetitions) {
  datagen::GenOptions gen;
  gen.scale = 0.04;
  const datagen::DatasetPair pair = datagen::MakeHospital(gen);
  eval::RunnerOptions options;
  options.repetitions = 2;
  options.detector.n_label_tuples = 10;
  options.detector.units = 12;
  options.detector.trainer.epochs = 8;
  options.detector.trainer.track_test_accuracy = true;
  options.detector.trainer.test_eval_max_cells = 200;

  const eval::RepeatedResult result = eval::RunRepeatedDetector(pair, options);
  EXPECT_EQ(result.runs.size(), 2u);
  EXPECT_EQ(result.histories.size(), 2u);
  EXPECT_EQ(result.f1.n, 2u);
  EXPECT_EQ(result.system, "ETSB-RNN");
  const auto curve = eval::AverageTestAccuracyCurve(result);
  EXPECT_EQ(curve.size(), 8u);
}

TEST(IntegrationTest, AllThreeSystemsProduceComparableMasks) {
  // Raha, Rotom and the RNN detector must each return one verdict per cell
  // on the same dataset — the contract the comparison harness relies on.
  datagen::GenOptions gen;
  gen.scale = 0.05;
  const datagen::DatasetPair pair = datagen::MakeRayyan(gen);
  const size_t n_cells = static_cast<size_t>(pair.dirty.num_rows()) *
                         pair.dirty.num_columns();

  Rng rng(1);
  raha::RahaDetector raha_detector;
  const raha::DetectionMask raha_mask =
      raha_detector.DetectErrors(pair.dirty, pair.clean, &rng);
  EXPECT_EQ(raha_mask.size(), n_cells);

  rotom::RotomBaseline rotom_baseline;
  auto rotom_result = rotom_baseline.Detect(pair.dirty, pair.clean);
  ASSERT_TRUE(rotom_result.ok());
  EXPECT_EQ(rotom_result->predicted.size(), n_cells);

  core::DetectorOptions options;
  options.n_label_tuples = 10;
  options.units = 12;
  options.trainer.epochs = 6;
  core::ErrorDetector rnn(options);
  auto rnn_report = rnn.Run(pair.dirty, pair.clean);
  ASSERT_TRUE(rnn_report.ok());
  EXPECT_EQ(rnn_report->predicted.size(), n_cells);
}

TEST(IntegrationTest, TrainsetSizeMatchesPaperFormula) {
  // §5.2: "for the dataset Beers we got a trainset of size 220, i.e. 20
  // tuples x 11 attributes, and a testset of size 26,290".
  datagen::GenOptions gen;
  gen.scale = 0.1;  // 241 rows
  const datagen::DatasetPair pair = datagen::MakeBeers(gen);
  core::DetectorOptions options;
  options.n_label_tuples = 20;
  options.units = 8;
  options.trainer.epochs = 2;
  core::ErrorDetector detector(options);
  auto report = detector.Run(pair.dirty, pair.clean);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->train_cells, 20 * 11);
  EXPECT_EQ(report->test_cells,
            static_cast<int64_t>(pair.dirty.num_rows() - 20) * 11);
}

}  // namespace
}  // namespace birnn
