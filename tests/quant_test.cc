// Low-precision kernel and plumbing tests: int8/bf16 GEMM parity against
// scalar references (int8 bit-exact — the arithmetic is integer-exact and
// the dequant expression is pinned; bf16 within the truncation bound),
// quantization-scheme properties, engine-level determinism of the quantized
// sweeps across memoize/bucketed/thread modes, and the bundle formats:
// v1 (no quantized payload) still round-trips, v2 installs shadow weights
// that predict bit-identically to recomputing them, and a corrupted
// checkpoint names the file and both FNV-1a checksums.

#include "nn/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/inference.h"
#include "core/model.h"
#include "data/dictionary.h"
#include "data/encoding.h"
#include "data/prepare.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "nn/tensor.h"
#include "serve/bundle.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace birnn::nn {
namespace {

Tensor RandomTensor(int rows, int cols, uint64_t seed, float lo = -2.0f,
                    float hi = 2.0f) {
  Tensor t(std::vector<int>{rows, cols});
  Rng rng(seed);
  for (size_t i = 0; i < t.size(); ++i) t[i] = rng.UniformFloat(lo, hi);
  return t;
}

/// The documented int8 reference, straight from the quant.h contract:
/// per-row absmax activation quantization with round-to-nearest-even
/// (lrintf under the default rounding mode), exact int32 accumulation, and
/// out[i][j] = float(acc) * (ascale[i] * w.scales[j]).
Tensor ReferenceInt8MatMul(const Tensor& x, const QuantizedMatrix& w) {
  const int n = x.rows();
  const int k = x.cols();
  Tensor out(std::vector<int>{n, w.rows});
  for (int i = 0; i < n; ++i) {
    float absmax = 0.0f;
    for (int c = 0; c < k; ++c) absmax = std::max(absmax, std::fabs(x.at(i, c)));
    const float ascale = absmax / 127.0f;
    const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
    std::vector<int32_t> aq(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) {
      long q = std::lrintf(x.at(i, c) * inv);
      q = std::min(127L, std::max(-127L, q));
      aq[static_cast<size_t>(c)] = static_cast<int32_t>(q);
    }
    for (int j = 0; j < w.rows; ++j) {
      int32_t acc = 0;
      for (int c = 0; c < k; ++c) {
        acc += aq[static_cast<size_t>(c)] *
               w.q[static_cast<size_t>(j) * static_cast<size_t>(k) +
                   static_cast<size_t>(c)];
      }
      out.at(i, j) = static_cast<float>(acc) *
                     (ascale * w.scales[static_cast<size_t>(j)]);
    }
  }
  return out;
}

TEST(QuantizeWeightTest, Int8SchemeProperties) {
  const Tensor w = RandomTensor(13, 9, 7);
  const QuantizedMatrix q = QuantizeWeightInt8(w);
  ASSERT_EQ(q.rows, 9);   // output channels
  ASSERT_EQ(q.cols, 13);  // input features
  for (int j = 0; j < q.rows; ++j) {
    float absmax = 0.0f;
    for (int c = 0; c < q.cols; ++c) {
      absmax = std::max(absmax, std::fabs(w.at(c, j)));
    }
    EXPECT_FLOAT_EQ(q.scales[static_cast<size_t>(j)], absmax / 127.0f);
    for (int c = 0; c < q.cols; ++c) {
      const int8_t v =
          q.q[static_cast<size_t>(j) * static_cast<size_t>(q.cols) +
              static_cast<size_t>(c)];
      EXPECT_GE(v, -127);
      EXPECT_LE(v, 127);
      // rint(w / scale), checked through the stored value's reconstruction:
      // within half a quantization step of the source weight.
      const float scale = q.scales[static_cast<size_t>(j)];
      EXPECT_NEAR(static_cast<float>(v) * scale, w.at(c, j), 0.5f * scale);
    }
  }
}

TEST(Int8MatMulTest, BitExactAgainstScalarReference) {
  // Shapes straddle the SIMD widths: 1..67 batch rows, odd k and out dims.
  for (const auto& [n, k, m] : {std::tuple{1, 5, 3}, std::tuple{4, 64, 64},
                               std::tuple{17, 33, 19}, std::tuple{67, 96, 48}}) {
    const Tensor x = RandomTensor(n, k, 11u * static_cast<uint64_t>(n));
    const Tensor wf = RandomTensor(k, m, 13u * static_cast<uint64_t>(m));
    const QuantizedMatrix w = QuantizeWeightInt8(wf);
    Tensor out;
    QuantScratch scratch;
    Int8MatMul(x, w, &out, &scratch);
    const Tensor ref = ReferenceInt8MatMul(x, w);
    ASSERT_EQ(out.rows(), n);
    ASSERT_EQ(out.cols(), m);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        EXPECT_EQ(out.at(i, j), ref.at(i, j))
            << "(" << n << "," << k << "," << m << ") at " << i << "," << j;
      }
    }
  }
}

TEST(Int8MatMulTest, QuantizationErrorIsBounded) {
  const Tensor x = RandomTensor(32, 64, 3);
  const Tensor wf = RandomTensor(64, 48, 5);
  Tensor exact;
  MatMul(x, wf, &exact);
  Tensor out;
  QuantScratch scratch;
  Int8MatMul(x, QuantizeWeightInt8(wf), &out, &scratch);
  // Both operands carry <= absmax/254 rounding error per element; with
  // k = 64 terms of magnitude <= 4 the documented bound is ~k * 2 * 4/254.
  // Observed error is far smaller; 0.5 catches regressions loudly without
  // flaking.
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) {
      EXPECT_NEAR(out.at(i, j), exact.at(i, j), 0.5f);
    }
  }
}

TEST(Int8MatMulTest, AccumulateMatchesOverwritePlusBase) {
  const Tensor x = RandomTensor(9, 21, 17);
  const QuantizedMatrix w = QuantizeWeightInt8(RandomTensor(21, 10, 19));
  QuantScratch scratch;
  Tensor product;
  Int8MatMul(x, w, &product, &scratch);
  Tensor acc = RandomTensor(9, 10, 23);
  const Tensor base = acc;
  Int8MatMulAcc(x, w, &acc, &scratch);
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_FLOAT_EQ(acc.at(i, j), base.at(i, j) + product.at(i, j));
    }
  }
}

TEST(Int8RnnStepTest, FusedStepMatchesUnfusedComposition) {
  const Tensor x = RandomTensor(8, 12, 29);
  const Tensor h = RandomTensor(8, 9, 31);
  const QuantizedMatrix wx = QuantizeWeightInt8(RandomTensor(12, 9, 37));
  const QuantizedMatrix wh = QuantizeWeightInt8(RandomTensor(9, 9, 41));
  Tensor b(std::vector<int>{9});
  Rng rng(43);
  for (size_t i = 0; i < b.size(); ++i) b[i] = rng.UniformFloat(-0.5f, 0.5f);

  Tensor fused, z_fused;
  QuantScratch s1;
  Int8RnnTanhStep(x, wx, h, wh, b, &fused, &z_fused, &s1);

  QuantScratch s2;
  Tensor z;
  Int8MatMul(x, wx, &z, &s2);
  Int8MatMulAcc(h, wh, &z, &s2);
  Tensor unfused;
  AddBiasTanh(z, b, &unfused);
  ASSERT_EQ(fused.rows(), 8);
  ASSERT_EQ(fused.cols(), 9);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 9; ++j) {
      EXPECT_EQ(fused.at(i, j), unfused.at(i, j));
    }
  }
}

TEST(Bf16Test, ConversionTruncates) {
  // 1.0f + 2^-9 truncates back to 1.0 (bf16 keeps 8 higher mantissa bits);
  // representable values round-trip exactly.
  EXPECT_EQ(FloatFromBf16(Bf16FromFloat(1.0f + 0x1p-9f)), 1.0f);
  for (const float v : {0.0f, -0.0f, 1.0f, -1.5f, 0.375f, 256.0f}) {
    EXPECT_EQ(FloatFromBf16(Bf16FromFloat(v)), v);
  }
}

TEST(Bf16MatMulTest, WithinTruncationBoundOfFp32) {
  const Tensor x = RandomTensor(16, 40, 51);
  const Tensor wf = RandomTensor(40, 24, 53);
  Tensor exact;
  MatMul(x, wf, &exact);
  Tensor out;
  Bf16MatMul(x, QuantizeWeightBf16(wf), &out);
  ASSERT_EQ(out.rows(), 16);
  ASSERT_EQ(out.cols(), 24);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 24; ++j) {
      // Truncation bound: each product's relative error < 2^-7; with the
      // |x|,|w| <= 2 inputs and k = 40 the absolute bound is
      // ~40 * 4 * 2^-7 = 1.25. Observed error is far smaller.
      EXPECT_NEAR(out.at(i, j), exact.at(i, j), 1.25f);
    }
  }
  // Deterministic: a second run reproduces bit for bit.
  Tensor again;
  Bf16MatMul(x, QuantizeWeightBf16(wf), &again);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], again[i]);
}

TEST(Bf16MatMulTest, ExactOnBf16RepresentableInputs) {
  // When every operand is already bf16-representable, truncation is the
  // identity and the kernel computes an ordinary fp32 product of those
  // values: compare against a reference accumulating the identical
  // operands in plain double (tolerance covers summation-order effects).
  Tensor x = RandomTensor(6, 10, 57);
  Tensor wf = RandomTensor(10, 8, 59);
  for (size_t i = 0; i < x.size(); ++i) x[i] = FloatFromBf16(Bf16FromFloat(x[i]));
  for (size_t i = 0; i < wf.size(); ++i) {
    wf[i] = FloatFromBf16(Bf16FromFloat(wf[i]));
  }
  Tensor out;
  Bf16MatMul(x, QuantizeWeightBf16(wf), &out);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 8; ++j) {
      double ref = 0.0;
      for (int k = 0; k < 10; ++k) {
        ref += static_cast<double>(x.at(i, k)) * static_cast<double>(wf.at(k, j));
      }
      EXPECT_NEAR(out.at(i, j), static_cast<float>(ref), 1e-5f);
    }
  }
}

TEST(QuantizedMatrixTest, SerializedPartsRoundTrip) {
  const Tensor wf = RandomTensor(14, 11, 61);
  const QuantizedMatrix w = QuantizeWeightInt8(wf);
  const QuantizedMatrix rebuilt =
      QuantizedMatrixFromParts(w.rows, w.cols, w.q, w.scales);
  EXPECT_EQ(rebuilt.q, w.q);
  EXPECT_EQ(rebuilt.scales, w.scales);
  EXPECT_EQ(rebuilt.packed, w.packed);  // derived layout rebuilt identically
}

// ------------------------------------------------------------ engine level

data::EncodedDataset SmallDataset() {
  data::Table dirty(std::vector<std::string>{"a", "b"});
  data::Table clean(std::vector<std::string>{"a", "b"});
  Rng rng(71);
  for (int i = 0; i < 40; ++i) {
    const std::string v = "item" + std::to_string(i % 9);
    const std::string w(static_cast<size_t>(1 + i % 6), 'y');
    EXPECT_TRUE(
        dirty.AppendRow({rng.Bernoulli(0.3) ? v + "?" : v, w}).ok());
    EXPECT_TRUE(clean.AppendRow({v, w}).ok());
  }
  auto frame = data::PrepareData(dirty, clean);
  EXPECT_TRUE(frame.ok());
  return data::EncodeCells(*frame, data::CharIndex::Build(*frame));
}

core::ModelConfig SmallModelConfig(const data::EncodedDataset& ds) {
  core::ModelConfig config;
  config.vocab = ds.vocab;
  config.max_len = ds.max_len;
  config.n_attrs = ds.n_attrs;
  config.char_emb_dim = 6;
  config.units = 9;  // odd: exercises every SIMD tail
  config.stacks = 2;
  config.bidirectional = true;
  config.enriched = true;
  config.attr_emb_dim = 4;
  config.attr_units = 3;
  config.length_dense_dim = 8;
  config.hidden_dense_dim = 6;
  config.seed = 77;
  return config;
}

std::vector<float> SweepProbs(const core::ErrorDetectionModel& model,
                              const data::EncodedDataset& ds,
                              core::InferenceOptions options,
                              ThreadPool* pool = nullptr) {
  core::InferenceEngine engine(model, options, pool);
  std::vector<float> p;
  engine.PredictProbs(ds, {}, &p);
  return p;
}

TEST(QuantizedEngineTest, Int8SweepInvariantAcrossEngineModes) {
  const data::EncodedDataset ds = SmallDataset();
  core::ErrorDetectionModel model(SmallModelConfig(ds));
  model.CalibrateBatchNorm(ds, 64);

  core::InferenceOptions base;
  base.eval_batch = 16;
  base.precision = Precision::kInt8;
  const std::vector<float> reference = SweepProbs(model, ds, base);
  ASSERT_EQ(reference.size(), static_cast<size_t>(ds.num_cells()));

  core::InferenceOptions unmemoized = base;
  unmemoized.memoize = false;
  EXPECT_EQ(SweepProbs(model, ds, unmemoized), reference);

  core::InferenceOptions bucketed = base;
  bucketed.bucketed = true;
  bucketed.bucket_quantum = 4;
  EXPECT_EQ(SweepProbs(model, ds, bucketed), reference);

  ThreadPool pool(2);
  EXPECT_EQ(SweepProbs(model, ds, base, &pool), reference);
}

TEST(QuantizedEngineTest, Bf16SweepInvariantAcrossEngineModes) {
  const data::EncodedDataset ds = SmallDataset();
  core::ErrorDetectionModel model(SmallModelConfig(ds));
  model.CalibrateBatchNorm(ds, 64);

  core::InferenceOptions base;
  base.eval_batch = 16;
  base.precision = Precision::kBf16;
  const std::vector<float> reference = SweepProbs(model, ds, base);

  core::InferenceOptions bucketed = base;
  bucketed.bucketed = true;
  bucketed.bucket_quantum = 4;
  EXPECT_EQ(SweepProbs(model, ds, bucketed), reference);
}

TEST(QuantizedEngineTest, QuantizedProbsTrackFp32) {
  const data::EncodedDataset ds = SmallDataset();
  core::ErrorDetectionModel model(SmallModelConfig(ds));
  model.CalibrateBatchNorm(ds, 64);

  core::InferenceOptions options;
  options.eval_batch = 16;
  const std::vector<float> fp32 = SweepProbs(model, ds, options);
  options.precision = Precision::kInt8;
  const std::vector<float> int8 = SweepProbs(model, ds, options);
  options.precision = Precision::kBf16;
  const std::vector<float> bf16 = SweepProbs(model, ds, options);

  double int8_err = 0.0, bf16_err = 0.0;
  for (size_t i = 0; i < fp32.size(); ++i) {
    int8_err += std::fabs(int8[i] - fp32[i]);
    bf16_err += std::fabs(bf16[i] - fp32[i]);
  }
  EXPECT_LT(int8_err / static_cast<double>(fp32.size()), 0.05);
  EXPECT_LT(bf16_err / static_cast<double>(fp32.size()), 0.05);
}

// ------------------------------------------------------------ bundle level

core::TrainedDetector MakeTinyTrained() {
  core::TrainedDetector trained;
  trained.chars = data::CharIndex::BuildFromStrings(
      {"abcdefghijklmnopqrstuvwxyz0123456789 ?"});
  core::ModelConfig config;
  config.vocab = trained.chars.vocab_size();
  config.max_len = 10;
  config.n_attrs = 2;
  config.char_emb_dim = 6;
  config.units = 7;
  config.stacks = 2;
  config.enriched = true;
  config.attr_emb_dim = 4;
  config.attr_units = 3;
  config.length_dense_dim = 6;
  config.hidden_dense_dim = 6;
  config.seed = 5;
  trained.config = config;
  trained.model = std::make_unique<core::ErrorDetectionModel>(config);
  trained.attr_names = {"a", "b"};
  trained.attr_max_value_len = {8, 10};
  return trained;
}

std::string TempDir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<float> ServeProbs(const serve::LoadedDetector& det,
                              Precision precision) {
  std::vector<serve::CellQuery> queries;
  for (int i = 0; i < 12; ++i) {
    serve::CellQuery q;
    q.attr = i % 2;
    q.value = "val " + std::to_string(i % 5);
    queries.push_back(std::move(q));
  }
  auto ds = det.EncodeQueries(queries);
  EXPECT_TRUE(ds.ok());
  core::InferenceOptions options;
  options.precision = precision;
  return SweepProbs(det.model(), *ds, options);
}

TEST(QuantBundleTest, V1BundleStillRoundTrips) {
  const std::string dir = TempDir("quant_bundle_v1");
  auto trained = MakeTinyTrained();
  serve::BundleSaveOptions options;
  options.include_quantized = false;
  ASSERT_TRUE(serve::SaveDetectorBundle(trained, dir, options).ok());

  auto loaded = serve::LoadDetectorBundle(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // No quantized payload: shadow weights absent until prepared on demand.
  EXPECT_FALSE(loaded->model().QuantizedInferenceReady(Precision::kInt8));

  auto original = serve::MakeLoadedDetector(std::move(trained));
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(ServeProbs(*loaded, Precision::kFp32),
            ServeProbs(*original, Precision::kFp32));
  std::filesystem::remove_all(dir);
}

TEST(QuantBundleTest, V2BundleInstallsShadowWeightsIdenticalToRecompute) {
  const std::string dir = TempDir("quant_bundle_v2");
  auto trained = MakeTinyTrained();
  ASSERT_TRUE(serve::SaveDetectorBundle(trained, dir).ok());

  auto loaded = serve::LoadDetectorBundle(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The v2 payload made both precisions ready with zero preparation.
  EXPECT_TRUE(loaded->model().QuantizedInferenceReady(Precision::kInt8));
  EXPECT_TRUE(loaded->model().QuantizedInferenceReady(Precision::kBf16));

  // Quantizing the original weights from scratch must agree bit for bit
  // with the blobs the bundle shipped.
  auto original = serve::MakeLoadedDetector(std::move(trained));
  ASSERT_TRUE(original.ok());
  for (const Precision p :
       {Precision::kFp32, Precision::kBf16, Precision::kInt8}) {
    EXPECT_EQ(ServeProbs(*loaded, p), ServeProbs(*original, p))
        << PrecisionName(p);
  }
  std::filesystem::remove_all(dir);
}

TEST(QuantBundleTest, ChecksumMismatchNamesFileAndChecksums) {
  const std::string dir = TempDir("quant_bundle_corrupt");
  auto trained = MakeTinyTrained();
  ASSERT_TRUE(serve::SaveDetectorBundle(trained, dir).ok());

  const std::string ckpt = dir + "/weights.ckpt";
  // Flip one payload byte past the header.
  std::fstream f(ckpt, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(64);
  char byte = 0;
  f.seekg(64);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(64);
  f.write(&byte, 1);
  f.close();

  auto loaded = serve::LoadDetectorBundle(dir);
  ASSERT_FALSE(loaded.ok());
  const std::string message = loaded.status().message();
  EXPECT_NE(message.find(ckpt), std::string::npos) << message;
  EXPECT_NE(message.find("expected FNV-1a 0x"), std::string::npos) << message;
  EXPECT_NE(message.find("actual 0x"), std::string::npos) << message;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace birnn::nn
