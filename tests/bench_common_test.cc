#include <gtest/gtest.h>

#include "bench_common.h"

namespace birnn::bench {
namespace {

TEST(BenchCommonTest, DefaultsAreFastMode) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const char* argv[] = {"prog"};
  const BenchConfig config =
      ParseCommonFlags(&flags, 1, const_cast<char**>(argv), "prog");
  EXPECT_EQ(config.reps, 3);
  EXPECT_EQ(config.epochs, 80);
  EXPECT_EQ(config.n_label_tuples, 20);
  EXPECT_DOUBLE_EQ(config.scale, 0.0);
  EXPECT_FALSE(config.paper_fidelity);
  EXPECT_TRUE(config.datasets.empty());
}

TEST(BenchCommonTest, PaperFidelityOverrides) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const char* argv[] = {"prog", "--paper-fidelity", "--reps=2"};
  const BenchConfig config =
      ParseCommonFlags(&flags, 3, const_cast<char**>(argv), "prog");
  EXPECT_EQ(config.reps, 10);
  EXPECT_EQ(config.epochs, 120);
  EXPECT_DOUBLE_EQ(config.scale, 1.0);
}

TEST(BenchCommonTest, DatasetListParsing) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const char* argv[] = {"prog", "--datasets=Beers, tax"};
  const BenchConfig config =
      ParseCommonFlags(&flags, 2, const_cast<char**>(argv), "prog");
  ASSERT_EQ(config.datasets.size(), 2u);
  EXPECT_EQ(config.datasets[0], "beers");
  EXPECT_EQ(config.datasets[1], "tax");
  EXPECT_EQ(DatasetList(config), config.datasets);
}

TEST(BenchCommonTest, DefaultScaleTargets300Rows) {
  BenchConfig config;
  // tax: 300 / 200000
  EXPECT_NEAR(DefaultScale("tax", config), 300.0 / 200000, 1e-9);
  EXPECT_NEAR(DefaultScale("hospital", config), 0.3, 1e-9);
  // Explicit scale wins.
  config.scale = 0.5;
  EXPECT_DOUBLE_EQ(DefaultScale("tax", config), 0.5);
}

TEST(BenchCommonTest, MakePairHonorsScale) {
  BenchConfig config;
  config.scale = 0.05;
  const datagen::DatasetPair pair = MakePair("hospital", config);
  EXPECT_EQ(pair.dirty.num_rows(), 50);
  EXPECT_EQ(pair.name, "hospital");
}

TEST(BenchCommonTest, RunnerOptionsMapping) {
  BenchConfig config;
  config.reps = 7;
  config.epochs = 33;
  config.n_label_tuples = 11;
  config.seed = 42;
  const eval::RunnerOptions options =
      MakeRunnerOptions(config, "tsb", "randomset");
  EXPECT_EQ(options.repetitions, 7);
  EXPECT_EQ(options.base_seed, 42u);
  EXPECT_EQ(options.detector.model, "tsb");
  EXPECT_EQ(options.detector.sampler, "randomset");
  EXPECT_EQ(options.detector.n_label_tuples, 11);
  EXPECT_EQ(options.detector.trainer.epochs, 33);
}

TEST(BenchCommonTest, AllDatasetsByDefault) {
  BenchConfig config;
  const auto list = DatasetList(config);
  ASSERT_EQ(list.size(), 6u);
  EXPECT_EQ(list.front(), "beers");
  EXPECT_EQ(list.back(), "tax");
}

}  // namespace
}  // namespace birnn::bench
