#include <gtest/gtest.h>

#include <sstream>

#include "bench_common.h"

namespace birnn::bench {
namespace {

TEST(BenchCommonTest, DefaultsAreFastMode) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const char* argv[] = {"prog"};
  const BenchConfig config =
      ParseCommonFlags(&flags, 1, const_cast<char**>(argv), "prog");
  EXPECT_EQ(config.reps, 3);
  EXPECT_EQ(config.epochs, 80);
  EXPECT_EQ(config.n_label_tuples, 20);
  EXPECT_DOUBLE_EQ(config.scale, 0.0);
  EXPECT_FALSE(config.paper_fidelity);
  EXPECT_TRUE(config.datasets.empty());
}

TEST(BenchCommonTest, PaperFidelityOverrides) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const char* argv[] = {"prog", "--paper-fidelity", "--reps=2"};
  const BenchConfig config =
      ParseCommonFlags(&flags, 3, const_cast<char**>(argv), "prog");
  EXPECT_EQ(config.reps, 10);
  EXPECT_EQ(config.epochs, 120);
  EXPECT_DOUBLE_EQ(config.scale, 1.0);
}

TEST(BenchCommonTest, DatasetListParsing) {
  FlagSet flags;
  AddCommonFlags(&flags);
  const char* argv[] = {"prog", "--datasets=Beers, tax"};
  const BenchConfig config =
      ParseCommonFlags(&flags, 2, const_cast<char**>(argv), "prog");
  ASSERT_EQ(config.datasets.size(), 2u);
  EXPECT_EQ(config.datasets[0], "beers");
  EXPECT_EQ(config.datasets[1], "tax");
  EXPECT_EQ(DatasetList(config), config.datasets);
}

TEST(BenchCommonTest, DefaultScaleTargets300Rows) {
  BenchConfig config;
  // tax: 300 / 200000
  EXPECT_NEAR(DefaultScale("tax", config), 300.0 / 200000, 1e-9);
  EXPECT_NEAR(DefaultScale("hospital", config), 0.3, 1e-9);
  // Explicit scale wins.
  config.scale = 0.5;
  EXPECT_DOUBLE_EQ(DefaultScale("tax", config), 0.5);
}

TEST(BenchCommonTest, MakePairHonorsScale) {
  BenchConfig config;
  config.scale = 0.05;
  const datagen::DatasetPair pair = MakePair("hospital", config);
  EXPECT_EQ(pair.dirty.num_rows(), 50);
  EXPECT_EQ(pair.name, "hospital");
}

TEST(BenchCommonTest, RunnerOptionsMapping) {
  BenchConfig config;
  config.reps = 7;
  config.epochs = 33;
  config.n_label_tuples = 11;
  config.seed = 42;
  const eval::RunnerOptions options =
      MakeRunnerOptions(config, "tsb", "randomset");
  EXPECT_EQ(options.repetitions, 7);
  EXPECT_EQ(options.base_seed, 42u);
  EXPECT_EQ(options.detector.model, "tsb");
  EXPECT_EQ(options.detector.sampler, "randomset");
  EXPECT_EQ(options.detector.n_label_tuples, 11);
  EXPECT_EQ(options.detector.trainer.epochs, 33);
}

TEST(BenchCommonTest, AllDatasetsByDefault) {
  BenchConfig config;
  const auto list = DatasetList(config);
  ASSERT_EQ(list.size(), 6u);
  EXPECT_EQ(list.front(), "beers");
  EXPECT_EQ(list.back(), "tax");
}

TEST(BenchCommonTest, HarnessFlagDefaultsAndOverrides) {
  FlagSet flags;
  AddCommonFlags(&flags, "out.json");
  const char* argv[] = {"prog", "--harness-threads=4", "--cache=false",
                        "--cache-dir=/tmp/c"};
  const BenchConfig config =
      ParseCommonFlags(&flags, 4, const_cast<char**>(argv), "prog");
  EXPECT_EQ(config.harness_threads, 4);
  EXPECT_FALSE(config.cache_enabled);
  EXPECT_EQ(config.cache_dir, "/tmp/c");
  EXPECT_EQ(config.json_path, "out.json");  // default_json passes through.
  EXPECT_EQ(MakeCache(config), nullptr);    // disabled cache -> null.
}

TEST(BenchCommonTest, SchedulerOptionsMapping) {
  BenchConfig config;
  config.harness_threads = 3;
  eval::ArtifactCache cache("/tmp/unused");
  const eval::SchedulerOptions options = MakeSchedulerOptions(config, &cache);
  EXPECT_EQ(options.threads, 3);
  EXPECT_EQ(options.cache, &cache);
}

TEST(JsonWriterTest, CommasEscapingAndNesting) {
  std::ostringstream out;
  JsonWriter json(out);
  json.BeginObject();
  json.Key("name").String("a \"b\"\n\\c");
  json.Key("n").Int(-3);
  json.Key("x").Number(0.5);
  json.Key("ok").Bool(true);
  json.Key("list").BeginArray();
  json.Int(1);
  json.Int(2);
  json.BeginObject();
  json.Key("y").Number(1.25);
  json.EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(out.str(),
            "{\"name\":\"a \\\"b\\\"\\n\\\\c\",\"n\":-3,\"x\":0.5,"
            "\"ok\":true,\"list\":[1,2,{\"y\":1.25}]}");
}

TEST(BenchCommonTest, BestEpochPicksLowestTrainLoss) {
  std::vector<core::EpochStats> history(4);
  history[0].train_loss = 0.9f;
  history[1].train_loss = 0.3f;
  history[2].train_loss = 0.5f;
  history[3].train_loss = 0.3f;  // ties keep the earliest.
  EXPECT_EQ(BestEpoch(history), 1);
}

TEST(BenchCommonTest, F1MapAggregation) {
  eval::RepeatedResult result;
  result.system = "TSB-RNN";
  result.dataset = "beers";
  eval::Metrics m;
  m.f1 = 0.5;
  result.runs.push_back(m);
  m.f1 = 0.7;
  result.runs.push_back(m);
  F1Map map;
  AddRunsToF1Map(&map, result);
  ASSERT_EQ(map["TSB-RNN"]["beers"].size(), 2u);
  std::ostringstream out;
  PrintAggregateF1Table(map, out);
  EXPECT_NE(out.str().find("TSB-RNN"), std::string::npos);
  EXPECT_NE(out.str().find("0.60"), std::string::npos);  // mean of .5/.7
}

}  // namespace
}  // namespace birnn::bench
