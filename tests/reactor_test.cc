// Reactor serve-plane tests: the epoll transport must speak the exact same
// protocol as the blocking baseline (byte-identical responses), survive
// hostile and fragmented input, keep pipelined responses in request order,
// shed typed errors at the connection cap, pause slow readers instead of
// ballooning, and hot-swap model bundles without dropping one in-flight
// request.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "serve/batcher.h"
#include "serve/bundle.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace birnn::serve {
namespace {

core::TrainedDetector MakeTinyTrained(uint64_t seed = 99) {
  core::TrainedDetector trained;
  trained.chars = data::CharIndex::BuildFromStrings(
      {"abcdefghijklmnopqrstuvwxyz0123456789 .-"});
  core::ModelConfig config;
  config.vocab = trained.chars.vocab_size();
  config.max_len = 12;
  config.n_attrs = 3;
  config.char_emb_dim = 8;
  config.units = 8;
  config.stacks = 1;
  config.enriched = true;
  config.attr_emb_dim = 4;
  config.attr_units = 4;
  config.length_dense_dim = 8;
  config.hidden_dense_dim = 8;
  config.seed = seed;
  trained.config = config;
  trained.model = std::make_unique<core::ErrorDetectionModel>(config);
  trained.attr_names = {"id", "name", "score"};
  trained.attr_max_value_len = {8, 12, 6};
  return trained;
}

LoadedDetector MakeTinyDetector(uint64_t seed = 99) {
  auto loaded = MakeLoadedDetector(MakeTinyTrained(seed));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

std::string TempDir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(0,
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  return fd;
}

// Reads one '\n'-terminated line; empty string means EOF before a newline.
std::string ReadLine(int fd) {
  std::string line;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') return line;
    line.push_back(c);
  }
  return std::string();
}

void SendRaw(int fd, const std::string& bytes) {
  ASSERT_EQ(static_cast<ssize_t>(bytes.size()),
            ::write(fd, bytes.data(), bytes.size()));
}

std::string RoundTrip(int fd, const std::string& line) {
  SendRaw(fd, line + "\n");
  return ReadLine(fd);
}

std::string DetectRequest(const std::string& id, int salt = 0) {
  std::string request = R"({"id":")" + id + R"(","cells":[)";
  for (int i = 0; i < 3; ++i) {
    if (i > 0) request += ",";
    request += R"({"attr":)" + std::to_string(i) + R"(,"value":"cell )" +
               std::to_string((salt * 7 + i * 13) % 31) + R"("})";
  }
  return request + "]}";
}

ServerOptions ReactorOptions4Test() {
  ServerOptions options;
  options.mode = ServeMode::kReactor;
  options.reactor_threads = 2;
  return options;
}

// ------------------------------------------- Byte-identity across transports

TEST(ReactorTest, BothTransportsAnswerByteIdentically) {
  // The reactor's acceptance bar: for the same request stream, its response
  // bytes must be indistinguishable from the blocking baseline's.
  ModelRegistry blocking_registry, reactor_registry;
  ASSERT_TRUE(blocking_registry.Add("tiny", MakeTinyDetector()).ok());
  ASSERT_TRUE(reactor_registry.Add("tiny", MakeTinyDetector()).ok());

  ServerOptions blocking_options;
  blocking_options.mode = ServeMode::kBlocking;
  Server blocking(&blocking_registry, blocking_options);
  Server reactor(&reactor_registry, ReactorOptions4Test());
  ASSERT_TRUE(blocking.Start().ok());
  ASSERT_TRUE(reactor.Start().ok());

  const std::vector<std::string> script = {
      R"({"id":"p","op":"ping"})",
      R"({"op":"models"})",
      DetectRequest("d1", 1),
      DetectRequest("d2", 2),
      R"({"op":"detect","model":"nope","cells":[]})",  // NOT_FOUND
      "garbage {",                                      // INVALID_ARGUMENT
      R"({"op":"explode"})",                            // unknown op
      R"({"cells":[{"value":"x"}]})",                   // cell missing attr
      DetectRequest("d3", 3),
  };

  const int blocking_fd = ConnectTo(blocking.port());
  const int reactor_fd = ConnectTo(reactor.port());
  for (const std::string& line : script) {
    const std::string expected = RoundTrip(blocking_fd, line);
    const std::string actual = RoundTrip(reactor_fd, line);
    EXPECT_EQ(expected, actual) << "request: " << line;
    EXPECT_FALSE(actual.empty());
  }
  ::close(blocking_fd);
  ::close(reactor_fd);
  blocking.Shutdown();
  reactor.Shutdown();
}

// ----------------------------------------------------- Pipelining + ordering

TEST(ReactorTest, PipelinedRequestsAnswerInRequestOrder) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  Server server(&registry, ReactorOptions4Test());
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectTo(server.port());
  constexpr int kRequests = 50;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += DetectRequest("r" + std::to_string(i), i) + "\n";
  }
  SendRaw(fd, burst);  // all 50 at once — completions race, delivery may not
  for (int i = 0; i < kRequests; ++i) {
    auto response = JsonValue::Parse(ReadLine(fd));
    ASSERT_TRUE(response.ok()) << "response " << i;
    EXPECT_EQ(response->GetString("id"), "r" + std::to_string(i));
    EXPECT_EQ(response->GetString("status"), "OK");
  }
  ::close(fd);
  server.Shutdown();
}

TEST(ReactorTest, HalfCloseStillAnswersEveryPipelinedRequest) {
  // A client that writes its whole burst and shutdown(SHUT_WR)s must still
  // receive every response, then a clean EOF.
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  Server server(&registry, ReactorOptions4Test());
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectTo(server.port());
  constexpr int kRequests = 10;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += DetectRequest("h" + std::to_string(i), i) + "\n";
  }
  SendRaw(fd, burst);
  ASSERT_EQ(0, ::shutdown(fd, SHUT_WR));
  for (int i = 0; i < kRequests; ++i) {
    auto response = JsonValue::Parse(ReadLine(fd));
    ASSERT_TRUE(response.ok()) << "response " << i;
    EXPECT_EQ(response->GetString("id"), "h" + std::to_string(i));
  }
  char c = 0;
  EXPECT_EQ(0, ::read(fd, &c, 1));  // EOF, not a hang or reset
  ::close(fd);
  server.Shutdown();
}

TEST(ReactorTest, QuitClosesAfterEarlierResponsesFlush) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  Server server(&registry, ReactorOptions4Test());
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectTo(server.port());
  SendRaw(fd, DetectRequest("before-quit") + "\n" + R"({"op":"quit"})" "\n");
  auto response = JsonValue::Parse(ReadLine(fd));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("id"), "before-quit");
  char c = 0;
  EXPECT_EQ(0, ::read(fd, &c, 1));  // quit answers nothing, then EOF
  ::close(fd);
  server.Shutdown();
}

// -------------------------------------------------- Malformed/hostile input

TEST(ReactorTest, SplitAcrossReadsRequestStillParses) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  Server server(&registry, ReactorOptions4Test());
  ASSERT_TRUE(server.Start().ok());

  const int reference_fd = ConnectTo(server.port());
  const std::string request = DetectRequest("frag");
  const std::string expected = RoundTrip(reference_fd, request);
  ::close(reference_fd);

  // The same request dribbled in 3-byte chunks must produce the same bytes
  // — the framer may see any fragmentation TCP cares to deliver.
  const int fd = ConnectTo(server.port());
  const std::string framed = request + "\n";
  for (size_t i = 0; i < framed.size(); i += 3) {
    SendRaw(fd, framed.substr(i, 3));
    if (i % 30 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(expected, ReadLine(fd));
  ::close(fd);
  server.Shutdown();
}

TEST(ReactorTest, OversizedLineGetsTypedErrorAndClose) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  ServerOptions options = ReactorOptions4Test();
  options.max_line_bytes = 4096;
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectTo(server.port());
  SendRaw(fd, std::string(64 * 1024, 'a'));  // no newline, 16x the cap
  auto response = JsonValue::Parse(ReadLine(fd));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("status"), "INVALID_ARGUMENT");
  char c = 0;
  EXPECT_EQ(0, ::read(fd, &c, 1));  // connection closed afterwards
  ::close(fd);

  // The server is unharmed: a fresh connection works.
  const int fd2 = ConnectTo(server.port());
  auto ok = JsonValue::Parse(RoundTrip(fd2, DetectRequest("after")));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->GetString("status"), "OK");
  ::close(fd2);
  server.Shutdown();
}

TEST(ReactorTest, AbruptDisconnectMidRequestIsHarmless) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  Server server(&registry, ReactorOptions4Test());
  ASSERT_TRUE(server.Start().ok());

  // Half a request, then a hard close.
  {
    const int fd = ConnectTo(server.port());
    SendRaw(fd, DetectRequest("never-finished").substr(0, 20));
    ::close(fd);
  }
  // A full request whose response the client never reads.
  {
    const int fd = ConnectTo(server.port());
    SendRaw(fd, DetectRequest("never-read") + "\n");
    ::close(fd);
  }
  // A reset (nonzero SO_LINGER, close == RST) mid-stream.
  {
    const int fd = ConnectTo(server.port());
    SendRaw(fd, DetectRequest("rst") + "\n");
    struct linger hard = {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // No crash, no leaked state: normal service continues.
  const int fd = ConnectTo(server.port());
  auto ok = JsonValue::Parse(RoundTrip(fd, DetectRequest("alive")));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->GetString("status"), "OK");
  ::close(fd);
  server.Shutdown();
}

// ------------------------------------------------ Admission + backpressure

TEST(ReactorTest, ConnectionCapShedsWithTypedOverloaded) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  ServerOptions options = ReactorOptions4Test();
  options.max_connections = 4;
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());

  // Fill the cap; the ping round trip guarantees each is fully admitted.
  std::vector<int> held;
  for (int i = 0; i < 4; ++i) {
    const int fd = ConnectTo(server.port());
    auto pong = JsonValue::Parse(RoundTrip(fd, R"({"op":"ping"})"));
    ASSERT_TRUE(pong.ok());
    held.push_back(fd);
  }

  // One over: the connect succeeds (TCP accepts), but the server answers
  // with a typed OVERLOADED line and closes — not a silent drop or a hang.
  const int over = ConnectTo(server.port());
  auto shed = JsonValue::Parse(ReadLine(over));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->GetString("status"), "OVERLOADED");
  char c = 0;
  EXPECT_EQ(0, ::read(over, &c, 1));
  ::close(over);

  // Freeing one slot readmits.
  ::close(held.back());
  held.pop_back();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const int readmitted = ConnectTo(server.port());
  auto pong = JsonValue::Parse(RoundTrip(readmitted, R"({"op":"ping"})"));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->GetString("status"), "OK");
  ::close(readmitted);
  for (const int fd : held) ::close(fd);
  server.Shutdown();
}

TEST(ReactorTest, SlowReaderIsPausedNotUnbounded) {
  // With a tiny output backlog, a client that floods requests without
  // reading responses gets its *reads* paused; once it starts consuming,
  // every response arrives, in order.
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  ServerOptions options = ReactorOptions4Test();
  options.max_output_backlog = 4096;  // ~30 responses' worth
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectTo(server.port());
  constexpr int kRequests = 300;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += DetectRequest("s" + std::to_string(i), i) + "\n";
  }
  SendRaw(fd, burst);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // let it jam
  for (int i = 0; i < kRequests; ++i) {
    auto response = JsonValue::Parse(ReadLine(fd));
    ASSERT_TRUE(response.ok()) << "response " << i;
    EXPECT_EQ(response->GetString("id"), "s" + std::to_string(i));
    EXPECT_EQ(response->GetString("status"), "OK");
  }
  ::close(fd);
  server.Shutdown();
}

TEST(ReactorTest, ManyConcurrentConnectionsAllServed) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("tiny", MakeTinyDetector()).ok());
  Server server(&registry, ReactorOptions4Test());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kConns = 128;
  std::vector<int> fds;
  fds.reserve(kConns);
  for (int i = 0; i < kConns; ++i) fds.push_back(ConnectTo(server.port()));
  // All open simultaneously; fire a detect on each, then collect.
  for (int i = 0; i < kConns; ++i) {
    SendRaw(fds[static_cast<size_t>(i)],
            DetectRequest("c" + std::to_string(i), i) + "\n");
  }
  for (int i = 0; i < kConns; ++i) {
    auto response =
        JsonValue::Parse(ReadLine(fds[static_cast<size_t>(i)]));
    ASSERT_TRUE(response.ok()) << "conn " << i;
    EXPECT_EQ(response->GetString("id"), "c" + std::to_string(i));
    EXPECT_EQ(response->GetString("status"), "OK");
  }
  for (const int fd : fds) ::close(fd);
  server.Shutdown();
}

// -------------------------------------------------- Hot reload and rollback

class HotReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    v1_dir_ = TempDir("birnn_reload_v1");
    v2_dir_ = TempDir("birnn_reload_v2");
    ASSERT_TRUE(SaveDetectorBundle(MakeTinyTrained(99), v1_dir_).ok());
    ASSERT_TRUE(SaveDetectorBundle(MakeTinyTrained(1234), v2_dir_).ok());
  }
  void TearDown() override {
    std::filesystem::remove_all(v1_dir_);
    std::filesystem::remove_all(v2_dir_);
  }

  // The exact response line each bundle produces for DetectRequest(id).
  std::string ExpectedResponse(const std::string& dir,
                               const std::string& id) {
    auto loaded = LoadDetectorBundle(dir);
    EXPECT_TRUE(loaded.ok());
    MicroBatcher batcher(*loaded);
    auto request = ParseRequest(DetectRequest(id));
    EXPECT_TRUE(request.ok());
    std::vector<CellVerdict> verdicts;
    EXPECT_TRUE(batcher.Detect(request->cells, &verdicts).ok());
    return OkDetectResponse(id, verdicts);
  }

  std::string v1_dir_, v2_dir_;
};

TEST_F(HotReloadTest, ReloadSwapsWithZeroDroppedRequests) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadBundle("tiny", v1_dir_).ok());
  Server server(&registry, ReactorOptions4Test());
  ASSERT_TRUE(server.Start().ok());

  const std::string v1_response = ExpectedResponse(v1_dir_, "x");
  const std::string v2_response = ExpectedResponse(v2_dir_, "x");
  ASSERT_NE(v1_response, v2_response);  // the swap must be observable

  // Hammer detect from several connections while the reload happens. The
  // zero-drop guarantee: every single request gets an answer, and every
  // answer is exactly v1's bytes or v2's bytes — never an error, never a
  // closed socket, never a torn read.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::atomic<int> answered{0}, v1_seen{0}, v2_seen{0}, wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  const int port = server.port();
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, port] {
      const int fd = ConnectTo(port);
      for (int i = 0; i < kPerThread; ++i) {
        const std::string response = RoundTrip(fd, DetectRequest("x"));
        if (response == v1_response) {
          v1_seen.fetch_add(1);
        } else if (response == v2_response) {
          v2_seen.fetch_add(1);
        } else {
          wrong.fetch_add(1);
          ADD_FAILURE() << "unexpected response: " << response;
        }
        answered.fetch_add(1);
      }
      ::close(fd);
    });
  }

  // Mid-hammer, swap the bundle over the wire.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const int admin = ConnectTo(port);
  auto reloaded = JsonValue::Parse(RoundTrip(
      admin, R"({"id":"a","op":"reload","dir":")" + v2_dir_ + R"("})"));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->GetString("status"), "OK");
  EXPECT_EQ(reloaded->GetNumber("generation"), 2.0);
  ::close(admin);

  for (std::thread& client : clients) client.join();
  EXPECT_EQ(answered.load(), kThreads * kPerThread);  // zero dropped
  EXPECT_EQ(wrong.load(), 0);
  // The swap happened mid-stream: v2 answers must have started.
  EXPECT_GT(v2_seen.load(), 0);
  EXPECT_EQ(server.ModelGeneration("tiny"), 2);
  // The registry tracked the swap.
  ASSERT_NE(registry.Get("tiny"), nullptr);
  server.Shutdown();
}

TEST_F(HotReloadTest, RollbackRestoresPreviousWeights) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadBundle("tiny", v1_dir_).ok());
  Server server(&registry, ReactorOptions4Test());
  ASSERT_TRUE(server.Start().ok());

  const std::string v1_response = ExpectedResponse(v1_dir_, "q");
  const std::string v2_response = ExpectedResponse(v2_dir_, "q");
  const int fd = ConnectTo(server.port());

  // Nothing to roll back to yet.
  auto premature =
      JsonValue::Parse(RoundTrip(fd, R"({"op":"rollback"})"));
  ASSERT_TRUE(premature.ok());
  EXPECT_EQ(premature->GetString("status"), "FAILED_PRECONDITION");

  EXPECT_EQ(RoundTrip(fd, DetectRequest("q")), v1_response);
  auto reloaded = JsonValue::Parse(RoundTrip(
      fd, R"({"op":"reload","dir":")" + v2_dir_ + R"("})"));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->GetString("status"), "OK");
  EXPECT_EQ(RoundTrip(fd, DetectRequest("q")), v2_response);

  // A reload from a bad directory fails without touching serving.
  auto bad = JsonValue::Parse(RoundTrip(
      fd, R"({"op":"reload","dir":"/nonexistent/bundle"})"));
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(bad->GetString("status"), "OK");
  EXPECT_EQ(RoundTrip(fd, DetectRequest("q")), v2_response);
  EXPECT_EQ(server.ModelGeneration("tiny"), 2);

  auto rolled = JsonValue::Parse(RoundTrip(fd, R"({"op":"rollback"})"));
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(rolled->GetString("status"), "OK");
  EXPECT_EQ(rolled->GetNumber("generation"), 3.0);
  EXPECT_EQ(RoundTrip(fd, DetectRequest("q")), v1_response);

  // Stats report the live generation.
  auto stats = JsonValue::Parse(RoundTrip(fd, R"({"op":"stats"})"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->GetNumber("generation"), 3.0);
  ::close(fd);
  server.Shutdown();
}

TEST_F(HotReloadTest, BlockingTransportReloadsToo) {
  // The reload protocol lives above the transport; the blocking server
  // must honor it identically.
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadBundle("tiny", v1_dir_).ok());
  ServerOptions options;
  options.mode = ServeMode::kBlocking;
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());

  const std::string v2_response = ExpectedResponse(v2_dir_, "b");
  const int fd = ConnectTo(server.port());
  auto reloaded = JsonValue::Parse(RoundTrip(
      fd, R"({"op":"reload","dir":")" + v2_dir_ + R"("})"));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->GetString("status"), "OK");
  EXPECT_EQ(RoundTrip(fd, DetectRequest("b")), v2_response);
  ::close(fd);
  server.Shutdown();
}

}  // namespace
}  // namespace birnn::serve
