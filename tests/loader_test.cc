#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "data/csv.h"
#include "datagen/datasets.h"
#include "datagen/loader.h"

namespace birnn::datagen {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "birnn_loader_test")
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(LoaderTest, RoundtripsGeneratedDataset) {
  GenOptions gen;
  gen.scale = 0.03;
  const DatasetPair original = MakeBeers(gen);
  ASSERT_TRUE(
      data::WriteCsvFile(original.dirty, dir_ + "/dirty.csv").ok());
  ASSERT_TRUE(
      data::WriteCsvFile(original.clean, dir_ + "/clean.csv").ok());

  auto loaded = LoadDatasetDir(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, "birnn_loader_test");
  EXPECT_TRUE(loaded->dirty.Equals(original.dirty));
  EXPECT_TRUE(loaded->clean.Equals(original.clean));
}

TEST_F(LoaderTest, ExplicitPathsAndName) {
  data::Table t(std::vector<std::string>{"a"});
  ASSERT_TRUE(t.AppendRow({"x"}).ok());
  ASSERT_TRUE(data::WriteCsvFile(t, dir_ + "/d.csv").ok());
  ASSERT_TRUE(data::WriteCsvFile(t, dir_ + "/c.csv").ok());
  auto loaded =
      LoadDatasetPair(dir_ + "/d.csv", dir_ + "/c.csv", "mydata");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, "mydata");
  EXPECT_EQ(loaded->dirty.num_rows(), 1);
}

TEST_F(LoaderTest, ShapeMismatchFails) {
  data::Table one(std::vector<std::string>{"a"});
  ASSERT_TRUE(one.AppendRow({"x"}).ok());
  data::Table two(std::vector<std::string>{"a", "b"});
  ASSERT_TRUE(two.AppendRow({"x", "y"}).ok());
  ASSERT_TRUE(data::WriteCsvFile(one, dir_ + "/dirty.csv").ok());
  ASSERT_TRUE(data::WriteCsvFile(two, dir_ + "/clean.csv").ok());
  EXPECT_FALSE(LoadDatasetDir(dir_).ok());

  data::Table three(std::vector<std::string>{"a"});
  ASSERT_TRUE(three.AppendRow({"x"}).ok());
  ASSERT_TRUE(three.AppendRow({"y"}).ok());
  ASSERT_TRUE(data::WriteCsvFile(three, dir_ + "/clean.csv").ok());
  EXPECT_FALSE(LoadDatasetDir(dir_).ok());
}

TEST_F(LoaderTest, MissingFilesFail) {
  EXPECT_FALSE(LoadDatasetDir(dir_).ok());
  EXPECT_FALSE(LoadDatasetPair("/no/dirty.csv", "/no/clean.csv", "x").ok());
}

// ----------------------------------------------- injected-error recording

class InjectedErrorsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(InjectedErrorsTest, RecordsExactlyTheDiffCells) {
  GenOptions gen;
  gen.scale = 0.1;
  gen.seed = 99;
  auto pair_or = MakeDataset(GetParam(), gen);
  ASSERT_TRUE(pair_or.ok());
  const DatasetPair& pair = *pair_or;

  // Every recorded injection corresponds to a cell that actually differs,
  // and together they cover all differing cells.
  std::set<std::pair<int, int>> recorded;
  for (const InjectedError& err : pair.injected_errors) {
    EXPECT_NE(pair.dirty.cell(err.row, err.col),
              pair.clean.cell(err.row, err.col))
        << "recorded error at unchanged cell";
    EXPECT_TRUE(recorded.insert({err.row, err.col}).second)
        << "duplicate injection record";
  }
  int64_t diff_cells = 0;
  for (int r = 0; r < pair.dirty.num_rows(); ++r) {
    for (int c = 0; c < pair.dirty.num_columns(); ++c) {
      if (pair.dirty.cell(r, c) != pair.clean.cell(r, c)) ++diff_cells;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(recorded.size()), diff_cells);
}

TEST_P(InjectedErrorsTest, TypesComeFromTheDatasetSpec) {
  GenOptions gen;
  gen.scale = 0.1;
  auto pair_or = MakeDataset(GetParam(), gen);
  ASSERT_TRUE(pair_or.ok());
  std::set<ErrorType> allowed(pair_or->error_types.begin(),
                              pair_or->error_types.end());
  for (const InjectedError& err : pair_or->injected_errors) {
    EXPECT_TRUE(allowed.count(err.type) > 0)
        << ErrorTypeCode(err.type) << " not declared for " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, InjectedErrorsTest,
                         ::testing::Values("beers", "flights", "hospital",
                                           "movies", "rayyan", "tax"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace birnn::datagen
